//! # apenet — GPU peer-to-peer techniques applied to a cluster interconnect
//!
//! Facade crate for the reproduction of Ammendola et al., *"GPU peer-to-peer
//! techniques applied to a cluster interconnect"* (2013, arXiv:1307.8276):
//! the APEnet+ FPGA 3D-torus network card with NVIDIA GPUDirect peer-to-peer
//! support, rebuilt as a functional, deterministic discrete-event simulation.
//!
//! The workspace crates are re-exported here under short names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `apenet-sim` | DES engine, time, bandwidth, RNG, stats |
//! | [`obs`] | `apenet-obs` | metrics registry, span breakdowns, Perfetto export |
//! | [`pcie`] | `apenet-pcie` | PCIe fabric: TLPs, links, switches, analyzer |
//! | [`gpu`] | `apenet-gpu` | GPU model: memory, P2P, BAR1, DMA, CUDA-ish API |
//! | [`nic`] | `apenet-core` | the APEnet+ card: torus, router, NI, Nios II |
//! | [`rdma`] | `apenet-rdma` | the RDMA programming model (public API) |
//! | [`ib`] | `apenet-ib` | InfiniBand + MVAPICH-like baseline |
//! | [`cluster`] | `apenet-cluster` | node/cluster assembly, paper presets |
//! | [`apps`] | `apenet-apps` | Heisenberg spin glass + distributed BFS |
//!
//! See `examples/quickstart.rs` for the one-minute tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` at the repository root for the experiment inventory.

pub use apenet_apps as apps;
pub use apenet_cluster as cluster;
pub use apenet_core as nic;
pub use apenet_gpu as gpu;
pub use apenet_ib as ib;
pub use apenet_obs as obs;
pub use apenet_pcie as pcie;
pub use apenet_rdma as rdma;
pub use apenet_sim as sim;
