#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test. No network access
# is needed at any step (the workspace has zero crates.io dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> trace-export smoke (Perfetto exporter self-validates nesting + JSON)"
cargo run --release --offline -q -p apenet-bench --bin trace-export

echo "==> deterministic telemetry artifacts (sim-profile + congestion-heatmap match committed)"
cargo run --release --offline -q -p apenet-bench --bin sim-profile
cargo run --release --offline -q -p apenet-bench --bin congestion-heatmap
git diff --exit-code -- results/sim_profile.txt results/congestion_heatmap.txt

echo "==> scheduler equivalence (calendar queue vs heap model, debug assertions on)"
# The test profile keeps debug_assert! live, so the calendar's internal
# invariants (floor monotonicity, cache coherence) are checked on every
# push/pop of the 96 seeded random schedules — not just the pop order.
cargo test --offline -q -p apenet-sim --test calendar_equiv

echo "==> perf-regression gate (fresh microbench vs committed BENCH_microbench.json)"
# Tolerance covers shared-runner noise; the calendar-queue engine bought
# enough headroom (6x on the real-run bench) that a step-function
# regression lands far outside 25%. Deterministic event counts are
# compared exactly regardless of tolerance.
APENET_GATE_TOL="${APENET_GATE_TOL:-0.25}" \
APENET_BENCH_ITERS="${APENET_BENCH_ITERS:-5}" \
    cargo run --release --offline -q -p apenet-bench --bin perf-gate

echo "==> chaos soak (APENET_CHAOS_CASES=${APENET_CHAOS_CASES:-512} seeded fault schedules)"
APENET_CHAOS_CASES="${APENET_CHAOS_CASES:-512}" \
    cargo test --release --offline -q -p apenet-cluster --test chaos

echo "==> GET chaos soak (one-sided reads + selective signaling under the same schedules)"
APENET_CHAOS_CASES="${APENET_CHAOS_CASES:-512}" \
    cargo test --release --offline -q -p apenet-cluster --test get_chaos

echo "==> hard-fault soak (link kills, partitions, RX-ring exhaustion)"
cargo test --release --offline -q -p apenet-cluster --test hard_faults

echo "==> deterministic GET sweep (doorbell-batch saturation matches committed)"
cargo run --release --offline -q -p apenet-bench --bin get-sweep
git diff --exit-code -- results/get_sweep.txt

echo "==> ci.sh: all green"
