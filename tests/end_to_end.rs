//! Workspace integration tests: whole-stack behaviours that span every
//! crate (driver → card → torus → card → memory).

use apenet::cluster::cluster::ClusterBuilder;
use apenet::cluster::msg::{HostApi, HostIn, HostProgram, NodeCtx};
use apenet::cluster::presets::cluster_i_default;
use apenet::nic::coord::{Coord, TorusDims};
use apenet::rdma::api::SrcHint;
use apenet::sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

type Deliveries = Rc<RefCell<Vec<(u32, u64, u64, SimTime)>>>; // (rank, addr, len, at)

/// A host program that registers one GPU + one host buffer and records
/// deliveries; rank 0 additionally sends a scripted list of messages.
struct Script {
    sends: Vec<(Coord, u64 /*len*/, SrcHint, u64 /*dst offset*/)>,
    deliveries: Deliveries,
    gpu_buf: u64,
    host_buf: u64,
}

const REGION: u64 = 1 << 20;

impl HostProgram for Script {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        self.gpu_buf = node.cuda[0].borrow_mut().malloc(REGION).unwrap();
        self.host_buf = node.hostmem.borrow_mut().alloc(REGION).unwrap();
        node.ep.register(self.gpu_buf, REGION).unwrap();
        node.ep.register(self.host_buf, REGION).unwrap();
        // Deterministic fill patterns.
        let gpu_data: Vec<u8> = (0..REGION).map(|i| (i % 253) as u8).collect();
        let host_data: Vec<u8> = (0..REGION).map(|i| (i % 241) as u8).collect();
        node.cuda[0]
            .borrow_mut()
            .mem
            .write(self.gpu_buf, &gpu_data)
            .unwrap();
        node.hostmem
            .borrow_mut()
            .write(self.host_buf, &host_data)
            .unwrap();
        let sends = std::mem::take(&mut self.sends);
        for (dst, len, hint, off) in sends {
            let src = match hint {
                SrcHint::Host => self.host_buf,
                _ => self.gpu_buf,
            };
            let dst_vaddr = match hint {
                // Cross-kind: GPU source lands in the peer's GPU buffer,
                // host source in the peer's host buffer (same layout).
                SrcHint::Host => self.host_buf + off,
                _ => self.gpu_buf + off,
            };
            let out = node.ep.put(src, len, dst, dst_vaddr, hint).unwrap();
            api.submit(out.host_cost, out.desc);
        }
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let HostIn::Delivered { dst_vaddr, len, .. } = ev {
            self.deliveries
                .borrow_mut()
                .push((node.rank, dst_vaddr, len, api.now));
        }
    }
}

fn run_scripted(
    dims: TorusDims,
    sends: Vec<(Coord, u64, SrcHint, u64)>,
) -> (Deliveries, Vec<apenet::cluster::cluster::NodeHandles>) {
    let deliveries: Deliveries = Rc::new(RefCell::new(Vec::new()));
    let programs: Vec<Box<dyn HostProgram>> = (0..dims.nodes())
        .map(|r| {
            Box::new(Script {
                sends: if r == 0 { sends.clone() } else { Vec::new() },
                deliveries: deliveries.clone(),
                gpu_buf: 0,
                host_buf: 0,
            }) as Box<dyn HostProgram>
        })
        .collect();
    let mut cluster = ClusterBuilder::new(dims, cluster_i_default()).build(programs);
    cluster.run();
    (deliveries, cluster.nodes)
}

#[test]
fn multi_hop_delivery_across_the_torus() {
    // 4x2 torus: (0,0,0) -> (2,1,0) is a 3-hop dimension-ordered route.
    let dims = TorusDims::new(4, 2, 1);
    let dst = Coord::new(2, 1, 0);
    let (deliveries, nodes) = run_scripted(dims, vec![(dst, 100_000, SrcHint::Gpu, 8192)]);
    let d = deliveries.borrow();
    assert_eq!(d.len(), 1);
    let (rank, addr, len, _at) = d[0];
    assert_eq!(rank as usize, dims.rank_of(dst));
    assert_eq!(len, 100_000);
    // Bytes intact at the destination GPU.
    let got = nodes[rank as usize].cuda[0]
        .borrow_mut()
        .mem
        .read_vec(addr, len)
        .unwrap();
    // PUTs read from the start of the source region.
    let expect: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
    assert_eq!(got, expect);
    // Intermediate cards forwarded without consuming the packets.
    // (3 hops => 2 transit cards; 25 packets each.)
    let _ = _at;
}

#[test]
fn odd_sizes_and_offsets_arrive_exactly() {
    let dims = TorusDims::new(2, 1, 1);
    let sends = vec![
        (Coord::new(1, 0, 0), 1u64, SrcHint::Gpu, 0),
        (Coord::new(1, 0, 0), 4095, SrcHint::Gpu, 4096),
        (Coord::new(1, 0, 0), 4097, SrcHint::Gpu, 16384),
        (Coord::new(1, 0, 0), 65_537, SrcHint::Gpu, 65536),
        (Coord::new(1, 0, 0), 333, SrcHint::Host, 1000),
    ];
    let (deliveries, nodes) = run_scripted(dims, sends.clone());
    let d = deliveries.borrow();
    assert_eq!(d.len(), sends.len());
    for (rank, addr, len, _) in d.iter() {
        assert_eq!(*rank, 1);
        let gpu_base = nodes[1].cuda[0].borrow().mem.base();
        let is_gpu = *addr >= gpu_base;
        let got = if is_gpu {
            nodes[1].cuda[0]
                .borrow_mut()
                .mem
                .read_vec(*addr, *len)
                .unwrap()
        } else {
            nodes[1].hostmem.borrow_mut().read_vec(*addr, *len).unwrap()
        };
        // PUTs read from the start of the source region.
        let modulus = if is_gpu { 253 } else { 241 };
        let expect: Vec<u8> = (0..*len).map(|i| (i % modulus) as u8).collect();
        assert_eq!(&got, &expect, "payload mismatch, len {len}");
    }
}

#[test]
fn zero_length_put_completes() {
    let dims = TorusDims::new(2, 1, 1);
    let (deliveries, _) = run_scripted(dims, vec![(Coord::new(1, 0, 0), 0, SrcHint::Gpu, 0)]);
    let d = deliveries.borrow();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].2, 0);
}

#[test]
fn deterministic_replay() {
    let dims = TorusDims::new(2, 1, 1);
    let sends = vec![
        (Coord::new(1, 0, 0), 12_345, SrcHint::Gpu, 0),
        (Coord::new(1, 0, 0), 54_321, SrcHint::Host, 0),
    ];
    let (d1, _) = run_scripted(dims, sends.clone());
    let (d2, _) = run_scripted(dims, sends);
    assert_eq!(*d1.borrow(), *d2.borrow(), "bit-identical event timing");
}

#[test]
fn many_messages_keep_order_per_flow() {
    let dims = TorusDims::new(2, 1, 1);
    let sends: Vec<_> = (0..20u64)
        .map(|i| (Coord::new(1, 0, 0), 4096, SrcHint::Gpu, i * 4096))
        .collect();
    let (deliveries, _) = run_scripted(dims, sends);
    let d = deliveries.borrow();
    assert_eq!(d.len(), 20);
    // Deliveries of one flow arrive in submission order.
    for w in d.windows(2) {
        assert!(w[0].3 <= w[1].3, "delivery times must be monotone");
        assert!(w[0].1 < w[1].1, "addresses in submission order");
    }
}

fn run_faulty(link_retrans: bool) -> (Deliveries, apenet::cluster::cluster::Cluster) {
    use apenet::cluster::cluster::ClusterBuilder;
    use apenet::cluster::presets::cluster_i_default;
    let deliveries: Deliveries = Rc::new(RefCell::new(Vec::new()));
    // 6 messages of 2 packets each => 12 packets, every 3rd corrupted:
    // packets 3, 6, 9, 12 hit messages 2, 3, 5, 6.
    let sends: Vec<_> = (0..6u64)
        .map(|i| (Coord::new(1, 0, 0), 8192, SrcHint::Gpu, i * 8192))
        .collect();
    let mut cfg = cluster_i_default();
    cfg.card.tx_bit_error_every = Some(3);
    cfg.card.link_retrans = link_retrans;
    let programs: Vec<Box<dyn HostProgram>> = (0..2)
        .map(|r| {
            Box::new(Script {
                sends: if r == 0 { sends.clone() } else { Vec::new() },
                deliveries: deliveries.clone(),
                gpu_buf: 0,
                host_buf: 0,
            }) as Box<dyn HostProgram>
        })
        .collect();
    let mut cluster = ClusterBuilder::new(TorusDims::new(2, 1, 1), cfg).build(programs);
    cluster.run();
    (deliveries, cluster)
}

#[test]
fn fault_injection_is_recovered_by_link_retransmission() {
    // A marginal link flips a bit in every 3rd packet. The receiving
    // card's CRC catches each one and NAKs; go-back-N replays from the
    // sender's clean replay buffer, so every message still arrives
    // exactly once with intact bytes.
    let (deliveries, cluster) = run_faulty(true);
    assert_eq!(deliveries.borrow().len(), 6, "all messages delivered");
    let tx_stats = cluster.card(0).card().stats;
    let rx_stats = cluster.card(1).card().stats;
    assert!(
        tx_stats.retransmits >= 4,
        "each of the 4 corrupted frames forces at least one replay, got {}",
        tx_stats.retransmits
    );
    assert_eq!(rx_stats.crc_dropped, 0, "nothing is dropped on the floor");
    assert!(rx_stats.links.iter().any(|l| l.naks_sent > 0));
    for (_, addr, len, _) in deliveries.borrow().iter() {
        let got = cluster.nodes[1].cuda[0]
            .borrow_mut()
            .mem
            .read_vec(*addr, *len)
            .unwrap();
        let expect: Vec<u8> = (0..*len).map(|i| (i % 253) as u8).collect();
        assert_eq!(got, expect);
    }
}

#[test]
fn fault_injection_without_retransmission_loses_messages() {
    // Kill switch thrown: the pre-reliability datapath. The CRC still
    // catches every corrupted packet, but they are simply dropped —
    // their messages never complete.
    let (deliveries, cluster) = run_faulty(false);
    let rx_stats = cluster.card(1).card().stats;
    assert_eq!(rx_stats.crc_dropped, 4, "every corrupted packet dropped");
    assert_eq!(rx_stats.retransmits, 0);
    assert_eq!(
        deliveries.borrow().len(),
        2,
        "only the untouched messages complete"
    );
    for (_, addr, len, _) in deliveries.borrow().iter() {
        let got = cluster.nodes[1].cuda[0]
            .borrow_mut()
            .mem
            .read_vec(*addr, *len)
            .unwrap();
        let expect: Vec<u8> = (0..*len).map(|i| (i % 253) as u8).collect();
        assert_eq!(got, expect);
    }
}

#[test]
fn healthy_links_have_zero_crc_errors() {
    let dims = TorusDims::new(2, 1, 1);
    let (deliveries, _) = run_scripted(dims, vec![(Coord::new(1, 0, 0), 100_000, SrcHint::Gpu, 0)]);
    assert_eq!(deliveries.borrow().len(), 1);
}
