//! Workspace-level property tests: arbitrary transfers through the whole
//! simulated stack must deliver exact bytes with causal timing.

use apenet::cluster::cluster::ClusterBuilder;
use apenet::cluster::msg::{HostApi, HostIn, HostProgram, NodeCtx};
use apenet::cluster::presets::cluster_i_default;
use apenet::nic::coord::{Coord, TorusDims};
use apenet::rdma::api::SrcHint;
use apenet::sim::check::{self, Gen};
use apenet::sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

const REGION: u64 = 512 * 1024;

#[derive(Debug, Clone)]
struct Xfer {
    len: u64,
    dst_off: u64,
    gpu_src: bool,
    gpu_dst: bool,
}

fn gen_xfer(g: &mut Gen) -> Xfer {
    let len = g.u64(1, 150_000);
    let dst_off = g.u64(0, 300_000);
    Xfer {
        len,
        dst_off: dst_off.min(REGION - len),
        gpu_src: g.chance(0.5),
        gpu_dst: g.chance(0.5),
    }
}

struct PropProgram {
    xfers: Vec<Xfer>,
    outcome: Rc<RefCell<Vec<(u64, u64, SimTime)>>>,
    gpu_buf: u64,
    host_buf: u64,
}

impl HostProgram for PropProgram {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        self.gpu_buf = node.cuda[0].borrow_mut().malloc(REGION).unwrap();
        self.host_buf = node.hostmem.borrow_mut().alloc(REGION).unwrap();
        node.ep.register(self.gpu_buf, REGION).unwrap();
        node.ep.register(self.host_buf, REGION).unwrap();
        let fill: Vec<u8> = (0..REGION).map(|i| (i % 251) as u8).collect();
        node.cuda[0]
            .borrow_mut()
            .mem
            .write(self.gpu_buf, &fill)
            .unwrap();
        node.hostmem
            .borrow_mut()
            .write(self.host_buf, &fill)
            .unwrap();
        for x in std::mem::take(&mut self.xfers) {
            let src = if x.gpu_src {
                self.gpu_buf
            } else {
                self.host_buf
            };
            let dst = if x.gpu_dst {
                self.gpu_buf
            } else {
                self.host_buf
            } + x.dst_off;
            let hint = if x.gpu_src {
                SrcHint::Gpu
            } else {
                SrcHint::Host
            };
            let out = node
                .ep
                .put(src, x.len, Coord::new(1, 0, 0), dst, hint)
                .unwrap();
            api.submit(out.host_cost, out.desc);
        }
    }

    fn on_event(&mut self, ev: HostIn, _node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let HostIn::Delivered { dst_vaddr, len, .. } = ev {
            self.outcome.borrow_mut().push((dst_vaddr, len, api.now));
        }
    }
}

/// Any mix of transfer kinds, sizes and destination offsets delivers
/// the exact source bytes at the exact destination, in causal time.
///
/// Destination offsets are spaced so transfers never overlap.
#[test]
fn arbitrary_transfers_deliver_exact_bytes() {
    check::cases("arbitrary_transfers_deliver_exact_bytes", 24, |g| {
        let seed_xfers = g.vec_of(1, 5, gen_xfer);
        // De-overlap destinations: give each transfer its own lane.
        let lanes = seed_xfers.len() as u64;
        let lane_size = REGION / lanes;
        let xfers: Vec<Xfer> = seed_xfers
            .into_iter()
            .enumerate()
            .map(|(i, mut x)| {
                x.len = x.len.min(lane_size);
                x.dst_off = i as u64 * lane_size;
                x
            })
            .collect();
        let outcome = Rc::new(RefCell::new(Vec::new()));
        let programs: Vec<Box<dyn HostProgram>> = (0..2)
            .map(|r| {
                Box::new(PropProgram {
                    xfers: if r == 0 { xfers.clone() } else { Vec::new() },
                    outcome: outcome.clone(),
                    gpu_buf: 0,
                    host_buf: 0,
                }) as Box<dyn HostProgram>
            })
            .collect();
        let mut cluster =
            ClusterBuilder::new(TorusDims::new(2, 1, 1), cluster_i_default()).build(programs);
        cluster.run();
        let got = outcome.borrow();
        assert_eq!(got.len(), xfers.len(), "every transfer delivered once");
        for (addr, len, at) in got.iter() {
            assert!(*at > SimTime::ZERO);
            let gpu_base = cluster.nodes[1].cuda[0].borrow().mem.base();
            let data = if *addr >= gpu_base {
                cluster.nodes[1].cuda[0]
                    .borrow_mut()
                    .mem
                    .read_vec(*addr, *len)
                    .unwrap()
            } else {
                cluster.nodes[1]
                    .hostmem
                    .borrow_mut()
                    .read_vec(*addr, *len)
                    .unwrap()
            };
            let expect: Vec<u8> = (0..*len).map(|i| (i % 251) as u8).collect();
            assert_eq!(data, expect);
        }
    });
}
