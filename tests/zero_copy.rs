//! The zero-copy guarantee, end to end: a clean (no fault injection)
//! two-node G-G transfer fragments and delivers its payload purely by
//! refcount bumps and range narrowing. The process-global copied-bytes
//! counter (bumped by every copy-on-write and gather fallback in the
//! payload fabric) must not move.
//!
//! This test lives in its own integration binary so no concurrently
//! running test can touch the global counter.

use apenet::cluster::harness::{two_node_bandwidth, BufSide, TwoNodeParams};
use apenet::cluster::presets::cluster_i_default;
use apenet::sim::bytes;

#[test]
fn clean_gg_transfer_moves_payload_without_copies() {
    let before = bytes::copied_bytes();
    let r = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Gpu,
            dst: BufSide::Gpu,
            size: 256 * 1024,
            count: 4,
            staged: false,
        },
    );
    assert!(r.bandwidth.mb_per_sec_f64() > 0.0);
    assert_eq!(
        bytes::copied_bytes() - before,
        0,
        "clean TX fragmentation and delivery must not copy payload bytes"
    );
}
