//! Bus-analyzer view of the GPU peer-to-peer read protocol: attach an
//! interposer to the card's PCIe slot (the Fig. 3 setup) and dump the
//! TLP-level timeline of a GPU-buffer transmission.
//!
//! Run with: `cargo run --release --example pcie_trace`

use apenet::cluster::harness::{flush_read_with_trace, BufSide};
use apenet::cluster::presets::plx_node;
use apenet::gpu::GpuArch;
use apenet::nic::config::GpuTxVersion;
use apenet::pcie::analyzer::{render_trace, summarize_p2p_read};
use apenet::sim::trace::SharedSink;

fn main() {
    let cfg = plx_node(GpuArch::Fermi2050, GpuTxVersion::V2, 32 * 1024);
    let sink = SharedSink::capturing();
    let (bw, records) = flush_read_with_trace(cfg, BufSide::Gpu, 256 * 1024, 2, Some(sink));
    println!("# interposer capture: 256 KiB GPU read, GPU_P2P_TX v2, 32 KiB window\n");
    println!("{}", render_trace(&records, 24));
    let s = summarize_p2p_read(&records, bw.first_submit).expect("capture has read traffic");
    println!("setup (PUT -> first read request): {}", s.setup);
    println!("head latency at the slot:          {}", s.head_latency);
    println!("completion throughput:             {}", s.throughput);
    println!("read requests observed:            {}", s.read_requests);
    println!("\nmeasured read bandwidth: {}", bw.bandwidth);
}
