//! Quickstart: build a two-node APEnet+ cluster, register a GPU buffer on
//! each side, RDMA-PUT real bytes from GPU to GPU through the simulated
//! PCIe fabric and torus link, and check both the data and the timing.
//!
//! Run with: `cargo run --release --example quickstart`

use apenet::cluster::cluster::ClusterBuilder;
use apenet::cluster::msg::{HostApi, HostIn, HostProgram, NodeCtx};
use apenet::cluster::presets::cluster_i_default;
use apenet::nic::coord::TorusDims;
use apenet::rdma::api::SrcHint;
use apenet::sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

const LEN: u64 = 64 * 1024;

/// The sender: allocate a GPU buffer, fill it, PUT it to the peer.
struct Sender {
    done_at: Rc<RefCell<Option<(SimTime, u64)>>>,
}

impl HostProgram for Sender {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let src = node.cuda[0].borrow_mut().malloc(LEN).unwrap();
        let payload: Vec<u8> = (0..LEN).map(|i| (i * 37 % 251) as u8).collect();
        node.cuda[0].borrow_mut().mem.write(src, &payload).unwrap();
        // The receiver allocates identically, so its buffer sits at the
        // same (node-local) UVA address.
        let dst = src;
        let out = node
            .ep
            .put(src, LEN, node.dims.coord_of(1), dst, SrcHint::Gpu)
            .expect("put");
        println!(
            "[sender] PUT {} KiB GPU->GPU submitted (host cost {})",
            LEN / 1024,
            out.host_cost
        );
        api.submit(out.host_cost, out.desc);
        let _ = self.done_at;
    }

    fn on_event(&mut self, _ev: HostIn, _node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {}
}

/// The receiver: register the landing buffer, verify the bytes on arrival.
struct Receiver {
    done_at: Rc<RefCell<Option<(SimTime, u64)>>>,
}

impl HostProgram for Receiver {
    fn start(&mut self, node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {
        let dst = node.cuda[0].borrow_mut().malloc(LEN).unwrap();
        node.ep.register(dst, LEN).expect("register");
        println!("[receiver] GPU buffer registered at {dst:#x}");
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let HostIn::Delivered { dst_vaddr, len, .. } = ev {
            let bytes = node.cuda[0]
                .borrow_mut()
                .mem
                .read_vec(dst_vaddr, len)
                .unwrap();
            let expect: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            assert_eq!(bytes, expect, "payload corrupted in flight!");
            *self.done_at.borrow_mut() = Some((api.now, len));
        }
    }
}

fn main() {
    let done = Rc::new(RefCell::new(None));
    let mut cluster =
        ClusterBuilder::new(TorusDims::new(2, 1, 1), cluster_i_default()).build(vec![
            Box::new(Sender {
                done_at: done.clone(),
            }),
            Box::new(Receiver {
                done_at: done.clone(),
            }),
        ]);
    cluster.run();
    let (at, len) = done.borrow().expect("message delivered");
    println!("[receiver] {} KiB arrived intact at t = {at}", len / 1024);
    let stats = cluster.card(0).card().stats;
    println!(
        "[sender card] fetched {} B from GPU memory in {} packets",
        stats.tx_bytes_fetched, stats.tx_packets
    );
    println!(
        "effective one-way time: {at} for {} KiB ({:.0} MB/s incl. startup)",
        len / 1024,
        len as f64 / at.as_secs_f64() / 1e6
    );
}
