//! Distributed BFS on an R-MAT graph (the §V.E application): real
//! traversal over the simulated interconnect, validated against a
//! sequential reference, reported in TEPS.
//!
//! Usage: `cargo run --release --example bfs_traversal -- [scale] [np]`
//! (defaults: scale 14, 4 ranks).

use apenet::apps::bfs::csr::Csr;
use apenet::apps::bfs::run::run_apenet;
use apenet::apps::bfs::{rmat, seq, BfsConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u32 = args.get(1).map_or(14, |s| s.parse().expect("scale"));
    let np: usize = args.get(2).map_or(4, |s| s.parse().expect("np"));
    let cfg = BfsConfig::small(scale, np);
    println!(
        "# BFS over APEnet+: |V| = 2^{scale}, edgefactor {}, {np} GPUs",
        cfg.edgefactor
    );
    let r = run_apenet(&cfg);
    println!(
        "traversed {} edges in {} over {} levels -> {:.3e} TEPS",
        r.traversed_edges, r.wall, r.levels, r.teps
    );
    for (rank, (comp, comm)) in r.breakdown.iter().enumerate() {
        println!("  rank {rank}: compute {comp}, comm+wait {comm}");
    }
    // Validate against the sequential reference.
    let edges = rmat::generate_with(cfg.scale, cfg.edgefactor, cfg.seed, cfg.permute);
    let g = Csr::build(1 << cfg.scale, &edges);
    let reference = seq::bfs(&g, cfg.root);
    seq::validate(&g, cfg.root, &r.tree, &reference).expect("distributed tree valid");
    println!("BFS tree validated against the sequential reference ✓");
}
