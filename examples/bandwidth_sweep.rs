//! Interactive bandwidth sweep: the Fig. 6/7 experiment with your choice
//! of buffer sides and staging.
//!
//! Usage: `cargo run --release --example bandwidth_sweep -- [H|G] [H|G] [p2p|staged]`
//! e.g. `cargo run --release --example bandwidth_sweep -- G G staged`

use apenet::cluster::harness::{two_node_bandwidth, BufSide, TwoNodeParams};
use apenet::cluster::presets::cluster_i_default;

fn side(arg: Option<&String>) -> BufSide {
    match arg.map(String::as_str) {
        Some("H") | Some("h") => BufSide::Host,
        Some("G") | Some("g") | None => BufSide::Gpu,
        Some(other) => panic!("expected H or G, got {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let src = side(args.get(1));
    let dst = side(args.get(2));
    let staged = matches!(args.get(3).map(String::as_str), Some("staged"));
    let label = |s| if s == BufSide::Host { "H" } else { "G" };
    println!(
        "# two-node {}-{} bandwidth on APEnet+ ({})",
        label(src),
        label(dst),
        if staged {
            "host staging (P2P=OFF)"
        } else {
            "GPU peer-to-peer"
        }
    );
    println!("{:>12} {:>12}", "bytes", "MB/s");
    for p in 5..=22 {
        let size = 1u64 << p;
        let count = if size <= 64 * 1024 { 24 } else { 8 };
        let r = two_node_bandwidth(
            cluster_i_default(),
            TwoNodeParams {
                src,
                dst,
                size,
                count,
                staged,
            },
        );
        println!("{size:>12} {:>12.1}", r.bandwidth.mb_per_sec_f64());
    }
}
