//! Multi-GPU Heisenberg spin glass (the §V.D application): real physics
//! over the simulated interconnect, with energy-conservation checking and
//! a strong-scaling mini-sweep.
//!
//! Usage: `cargo run --release --example spin_glass -- [L] [steps]`
//! (defaults: L = 32, 2 sweeps — small enough to validate the physics).

use apenet::apps::hsg::{run_apenet, HsgConfig, P2pMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l: usize = args.get(1).map_or(32, |s| s.parse().expect("L"));
    let steps: u32 = args.get(2).map_or(2, |s| s.parse().expect("steps"));
    println!("# 3D Heisenberg spin glass, L = {l}, {steps} over-relaxation sweeps");
    println!(
        "{:>3} {:>10} {:>10} {:>10} {:>14} {:>12}",
        "NP", "Ttot ps", "Tnet ps", "speedup", "energy drift", "checksum"
    );
    let mut base = None;
    for np in [1usize, 2, 4, 8] {
        if l / np < 2 {
            continue;
        }
        let mut cfg = HsgConfig::small(l, np, P2pMode::On);
        cfg.steps = steps;
        let r = run_apenet(&cfg);
        let drift = (r.energy_final - r.energy_initial).abs() / r.energy_initial.abs().max(1.0);
        let t1 = *base.get_or_insert(r.ttot_ps);
        println!(
            "{np:>3} {:>10.0} {:>10.0} {:>10.2} {:>14.2e} {:>12x}",
            r.ttot_ps,
            r.tnet_ps,
            t1 / r.ttot_ps,
            drift,
            r.checksum
        );
        assert!(drift < 1e-3, "over-relaxation must conserve energy");
    }
    println!("\nidentical checksums across NP = bit-identical physics through the");
    println!("simulated RDMA fabric (the checkerboard schedule is order-independent).");
}
