//! Ping-pong latency comparison: GPU peer-to-peer vs host staging vs
//! the InfiniBand/MVAPICH2 baseline (the Fig. 9 experiment).
//!
//! Run with: `cargo run --release --example latency_pingpong`

use apenet::cluster::harness::{pingpong_half_rtt, BufSide};
use apenet::cluster::presets::cluster_i_default;
use apenet::ib::osu::osu_latency_gg;
use apenet::ib::{CudaAwareMpi, IbConfig};

fn main() {
    println!("# G-G half-round-trip latency (us); paper anchors: 8.2 / 16.8 / 17.4");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "bytes", "APEnet+ P2P", "APEnet+ staged", "IB MVAPICH2"
    );
    for p in 5..=13 {
        let size = 1u64 << p;
        let p2p = pingpong_half_rtt(
            cluster_i_default(),
            BufSide::Gpu,
            BufSide::Gpu,
            size,
            10,
            false,
        );
        let staged = pingpong_half_rtt(
            cluster_i_default(),
            BufSide::Gpu,
            BufSide::Gpu,
            size,
            10,
            true,
        );
        let mut mpi = CudaAwareMpi::new(2, IbConfig::cluster_ii());
        let ib = osu_latency_gg(&mut mpi, size, 10);
        println!(
            "{size:>8} {:>14.2} {:>14.2} {:>14.2}",
            p2p.as_us_f64(),
            staged.as_us_f64(),
            ib.as_us_f64()
        );
    }
    println!("\npeer-to-peer halves the staging latency (\"50% less\", §V.C) because it");
    println!("skips the two host-synchronous cudaMemcpy calls on the critical path.");
}
