//! The APEnet+ packet format.
//!
//! "Network packets carry the 64-bit destination virtual memory address in
//! the header, so when they land onto the destination card, the BUF_LIST is
//! used to distinguish GPU from host buffers" (§IV.A). The RX datapath
//! processes packets of up to 4 KB ("3 µs, 1.2 GB/s for 4 KB packets").

use crate::coord::Coord;
use apenet_sim::bytes::PayloadSlice;
use apenet_sim::trace::SpanId;

/// Maximum payload of one APEnet+ packet.
pub const APE_MAX_PAYLOAD: u32 = 4096;

/// Header + footer wire overhead per packet (routing header with
/// destination coordinates, 64-bit destination address, size, CRC).
pub const APE_PACKET_OVERHEAD: u64 = 32;

/// A message identifier unique per (source node, sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId {
    /// Rank of the sending node.
    pub src_rank: u32,
    /// Per-sender sequence number.
    pub seq: u64,
}

impl MsgId {
    /// The trace span correlating every observation of this message —
    /// derived from the identity, so replays agree without coordination.
    pub fn span(self) -> SpanId {
        SpanId::from_msg(self.src_rank, self.seq)
    }
}

/// Header extension carried by a GET (RDMA-Read) request packet: where
/// on the *requesting* node the remotely-read bytes must land. The
/// responder copies it into the `dst_vaddr` of every reply fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetHeader {
    /// Requester-local virtual address the reply stream writes to.
    pub reply_vaddr: u64,
}

/// One packet on the torus.
#[derive(Debug, Clone, PartialEq)]
pub struct ApePacket {
    /// Destination node coordinates (used by the router).
    pub dst: Coord,
    /// Source node coordinates.
    pub src: Coord,
    /// The message this packet is a fragment of.
    pub msg: MsgId,
    /// Destination virtual (UVA) address of this fragment.
    pub dst_vaddr: u64,
    /// Total length of the whole message (for completion detection).
    pub msg_len: u64,
    /// The fragment data — a refcounted view into the source buffer, so
    /// fragmentation and forwarding never copy payload bytes.
    pub payload: PayloadSlice,
    /// Present on GET (remote-read) request packets: `dst_vaddr` then
    /// names the *responder-local* range to read, `msg_len` the length,
    /// and this header carries the requester-side landing address.
    pub get: Option<GetHeader>,
    /// Header checksum (set by [`ApePacket::seal`], checked on RX).
    pub crc: u32,
}

impl ApePacket {
    /// Build and seal a packet. `payload` may be anything convertible to a
    /// [`PayloadSlice`] (a `Vec<u8>` or an existing zero-copy slice).
    pub fn new(
        dst: Coord,
        src: Coord,
        msg: MsgId,
        dst_vaddr: u64,
        msg_len: u64,
        payload: impl Into<PayloadSlice>,
    ) -> Self {
        let payload = payload.into();
        assert!(payload.len() as u32 <= APE_MAX_PAYLOAD);
        let mut p = ApePacket {
            dst,
            src,
            msg,
            dst_vaddr,
            msg_len,
            payload,
            get: None,
            crc: 0,
        };
        p.crc = p.compute_crc();
        p
    }

    /// Build and seal a GET (remote-read) request: a header-only packet
    /// asking the card at `dst` to stream `len` bytes starting at its
    /// local `src_vaddr` back to `reply_vaddr` on the requesting node.
    pub fn get_request(
        dst: Coord,
        src: Coord,
        msg: MsgId,
        src_vaddr: u64,
        len: u64,
        reply_vaddr: u64,
    ) -> Self {
        let mut p = ApePacket {
            dst,
            src,
            msg,
            dst_vaddr: src_vaddr,
            msg_len: len,
            payload: PayloadSlice::empty(),
            get: Some(GetHeader { reply_vaddr }),
            crc: 0,
        };
        p.crc = p.compute_crc();
        p
    }

    /// True when this packet is a GET request header (no payload; asks
    /// the destination card to read and stream back local memory).
    pub fn is_get_request(&self) -> bool {
        self.get.is_some()
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        self.payload.len() as u64
    }

    /// True when carrying no payload (pure header, e.g. a 0-byte PUT).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Bytes this packet occupies on a torus link.
    pub fn wire_bytes(&self) -> u64 {
        APE_PACKET_OVERHEAD + self.len()
    }

    fn compute_crc(&self) -> u32 {
        // CRC-32/ISO-HDLC over header fields and payload — enough to catch
        // the corruption the tests inject; the real card uses link-level
        // CRC blocks in the Stratix transceivers.
        let mut crc = Crc32::new();
        crc.update(&[
            self.dst.x, self.dst.y, self.dst.z, self.src.x, self.src.y, self.src.z,
        ]);
        crc.update(&self.msg.src_rank.to_le_bytes());
        crc.update(&self.msg.seq.to_le_bytes());
        crc.update(&self.dst_vaddr.to_le_bytes());
        crc.update(&self.msg_len.to_le_bytes());
        // The GET discriminator and reply address are header bits too: a
        // corrupted read-request must fail verification, never silently
        // turn into (or out of) a write.
        match self.get {
            None => crc.update(&[0]),
            Some(g) => {
                crc.update(&[1]);
                crc.update(&g.reply_vaddr.to_le_bytes());
            }
        }
        crc.update(&self.payload);
        crc.finish()
    }

    /// Verify integrity.
    pub fn verify(&self) -> bool {
        self.crc == self.compute_crc()
    }
}

/// Fragment a message into packet-sized `(offset, len)` pieces.
pub fn fragments(len: u64) -> impl Iterator<Item = (u64, u32)> {
    let full = len / APE_MAX_PAYLOAD as u64;
    let rem = (len % APE_MAX_PAYLOAD as u64) as u32;
    (0..full)
        .map(|i| (i * APE_MAX_PAYLOAD as u64, APE_MAX_PAYLOAD))
        .chain((rem > 0).then_some((full * APE_MAX_PAYLOAD as u64, rem)))
}

/// A small, dependency-free CRC-32 (polynomial 0xEDB88320).
///
/// Table-driven "slice-by-8": 8 compile-time tables let the payload loop
/// consume 8 bytes per iteration with no per-bit work. Every packet is
/// sealed at the TX stage and verified at each link RX, with payloads up
/// to 4 KiB, so this sits squarely on the simulator's hot path — the
/// bit-at-a-time version it replaced dominated real-run wall time.
/// Output is identical to the bitwise definition (the reference check
/// value CRC32("123456789") = 0xCBF43926 is pinned in tests).
struct Crc32 {
    state: u32,
}

/// `TABLES[0]` is the classic per-byte CRC table; `TABLES[k][b]` extends
/// `TABLES[k-1][b]` by one zero byte, so 8 lookups advance 8 bytes.
static CRC32_TABLES: [[u32; 256]; 8] = build_crc32_tables();

const fn build_crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        tables[0][b] = crc;
        b += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut b = 0usize;
        while b < 256 {
            let prev = tables[k - 1][b];
            tables[k][b] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            b += 1;
        }
        k += 1;
    }
    tables
}

impl Crc32 {
    fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    fn update(&mut self, data: &[u8]) {
        let t = &CRC32_TABLES;
        let mut chunks = data.chunks_exact(8);
        let mut crc = self.state;
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    fn finish(self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(payload: Vec<u8>) -> ApePacket {
        ApePacket::new(
            Coord::new(1, 0, 0),
            Coord::new(0, 0, 0),
            MsgId {
                src_rank: 0,
                seq: 7,
            },
            0x7000_0000_1000,
            payload.len() as u64,
            payload,
        )
    }

    #[test]
    fn seal_and_verify() {
        let p = packet(vec![1, 2, 3, 4]);
        assert!(p.verify());
    }

    #[test]
    fn corruption_detected() {
        let mut p = packet((0..100).collect());
        p.payload.make_mut()[42] ^= 0x80;
        assert!(!p.verify());
        let mut q = packet((0..100).collect());
        q.dst_vaddr += 1;
        assert!(!q.verify());
    }

    #[test]
    fn wire_bytes_include_overhead() {
        let p = packet(vec![0; 4096]);
        assert_eq!(p.wire_bytes(), 4096 + APE_PACKET_OVERHEAD);
        assert_eq!(p.len(), 4096);
        assert!(!p.is_empty());
        assert!(packet(vec![]).is_empty());
    }

    #[test]
    fn fragmentation_covers_message() {
        for len in [0u64, 1, 4095, 4096, 4097, 128 * 1024, 100_001] {
            let frags: Vec<(u64, u32)> = fragments(len).collect();
            let total: u64 = frags.iter().map(|&(_, l)| l as u64).sum();
            assert_eq!(total, len);
            // Contiguity.
            let mut expect = 0;
            for (off, l) in frags {
                assert_eq!(off, expect);
                assert!(l <= APE_MAX_PAYLOAD);
                expect = off + l as u64;
            }
        }
        assert_eq!(fragments(128 * 1024).count(), 32);
    }

    #[test]
    fn get_request_is_header_only_and_crc_covered() {
        let msg = MsgId {
            src_rank: 3,
            seq: 11,
        };
        let p = ApePacket::get_request(
            Coord::new(1, 1, 0),
            Coord::new(0, 0, 0),
            msg,
            0x7000_0000_2000,
            64 * 1024,
            0x7000_0000_9000,
        );
        assert!(p.is_get_request());
        assert!(p.is_empty());
        assert_eq!(p.wire_bytes(), APE_PACKET_OVERHEAD);
        assert!(p.verify());
        // Every GET-specific header bit is CRC-covered.
        let mut r = p.clone();
        r.get = Some(GetHeader {
            reply_vaddr: 0x7000_0000_9008,
        });
        assert!(!r.verify(), "reply_vaddr flip");
        let mut d = p.clone();
        d.get = None;
        assert!(!d.verify(), "GET request must not decay into a write");
        // And the reverse: a sealed write cannot gain a GET header.
        let w = ApePacket::new(p.dst, p.src, msg, p.dst_vaddr, 0, vec![]);
        let mut w2 = w.clone();
        w2.get = Some(GetHeader { reply_vaddr: 0 });
        assert!(!w2.verify(), "write must not decay into a GET request");
    }

    #[test]
    fn crc_reference_value() {
        // Standard check value: CRC-32("123456789") = 0xCBF43926.
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    /// Adversarial CRC property: every corruption class the link layer's
    /// fault injector can produce (and several it can't) must flip
    /// `verify()` to false. CRC-32 detects all single-bit and all
    /// burst-≤32-bit errors by construction; the random multi-bit cases
    /// ride on the seeded property harness so a miss would replay.
    #[test]
    fn adversarial_corruption_is_always_detected() {
        use apenet_sim::check;
        check::cases("crc catches corruption", 128, |g| {
            let payload = g.bytes(1, 4096);
            let p = packet(payload);
            assert!(p.verify());

            // Single-bit flip at a random position.
            let mut single = p.clone();
            let idx = g.usize(0, single.payload.len());
            single.payload.make_mut()[idx] ^= 1 << g.u32(0, 8);
            assert!(!single.verify(), "single-bit flip at byte {idx}");

            // Multi-bit: 2–8 independent random flips.
            let mut multi = p.clone();
            for _ in 0..g.usize(2, 9) {
                let i = g.usize(0, multi.payload.len());
                multi.payload.make_mut()[i] ^= (g.byte() | 1).rotate_left(g.u32(0, 8));
            }
            // Flips can cancel pairwise; force at least one net change.
            if multi.payload.as_slice() == p.payload.as_slice() {
                multi.payload.make_mut()[0] ^= 0xFF;
            }
            assert!(!multi.verify(), "multi-bit flips");

            // Burst: 1–4 contiguous bytes overwritten.
            let mut burst = p.clone();
            let n = g.usize(1, 5.min(burst.payload.len() + 1));
            let start = g.usize(0, burst.payload.len() - n + 1);
            let mut changed = false;
            for i in start..start + n {
                let b = g.byte();
                let s = burst.payload.make_mut();
                changed |= s[i] != b;
                s[i] = b;
            }
            if changed {
                assert!(!burst.verify(), "burst of {n} at {start}");
            }

            // Truncation: drop trailing bytes (header msg_len unchanged).
            if p.payload.len() > 1 {
                let keep = g.usize(1, p.payload.len());
                let trunc = ApePacket {
                    payload: Vec::from(&p.payload.as_slice()[..keep]).into(),
                    ..p.clone()
                };
                assert!(!trunc.verify(), "truncated to {keep} bytes");
            }

            // Extension: append garbage.
            let mut extended = Vec::from(p.payload.as_slice());
            extended.extend(g.bytes(1, 32));
            let ext = ApePacket {
                payload: extended.into(),
                ..p.clone()
            };
            assert!(!ext.verify(), "extended payload");

            // Header corruption: each addressed field in turn.
            let mut h = p.clone();
            h.dst_vaddr ^= 1 << g.u32(0, 48);
            assert!(!h.verify(), "dst_vaddr flip");
            let mut m = p.clone();
            m.msg.seq ^= 1 << g.u32(0, 63);
            assert!(!m.verify(), "msg seq flip");
            let mut l = p.clone();
            l.msg_len ^= 1 << g.u32(0, 32);
            assert!(!l.verify(), "msg_len flip");
        });
    }
}
