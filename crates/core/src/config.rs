//! Card configuration: every calibration constant of the APEnet+ model,
//! each annotated with the paper statement it reproduces.

use apenet_sim::SimDuration;

/// The three generations of the GPU memory reading engine (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuTxVersion {
    /// Software-only on the Nios II, a single outstanding request of up to
    /// 4 KB — "the peak GPU reading bandwidth was throttled to 600 MB/s".
    V1,
    /// Hardware read-request generation (one every 80 ns) plus a bounded
    /// block-wise prefetch window (4–32 KB).
    V2,
    /// Unlimited prefetch with flow-control feedback from the almost-full
    /// signals of the on-board FIFOs.
    V3,
}

/// How the card reads GPU memory on transmission (§III, §VI): the
/// GPUDirect peer-to-peer protocol, or plain PCIe reads through the BAR1
/// aperture ("on Kepler, the BAR1 technique seems more promising").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuReadMethod {
    /// The GPUDirect peer-to-peer two-way read protocol.
    P2p,
    /// Memory-mapped reads through the BAR1 aperture (buffers must be
    /// mapped first — an expensive, aperture-limited operation).
    Bar1,
}

/// What the card does with packets that reach the TX injection FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxSinkMode {
    /// Normal operation: serialize onto torus links (or the loop-back
    /// path when the destination is this card).
    Torus,
    /// The Fig. 4 measurement mode: "obtained by flushing TX injection
    /// FIFOs, effectively simulating a zero-latency infinitely fast
    /// switch".
    Flush,
}

/// Calibration constants of one card.
#[derive(Debug, Clone)]
pub struct CardConfig {
    /// GPU-TX engine generation.
    pub gpu_tx: GpuTxVersion,
    /// How GPU memory is read on TX.
    pub gpu_read: GpuReadMethod,
    /// Prefetch window (v2: block size; v3: in-flight cap). Fig. 4 sweeps
    /// 4–32 KB for v2 and 64–128 KB for v3.
    pub prefetch_window: u64,
    /// TX FIFO capacity — "the packet injection logic (TX) with a 32 KB
    /// transmission buffer" (§III.B).
    pub tx_fifo_bytes: u64,
    /// What happens at the TX FIFO (normal vs Fig. 4 flush mode).
    pub tx_sink: TxSinkMode,
    /// Torus link signalling rate in Gbps (28 for the benchmarks, 20 for
    /// the HSG runs — figure captions).
    pub link_gbps: u64,
    /// Torus cable + SerDes latency.
    pub link_latency: SimDuration,
    /// Router forwarding latency for transit packets.
    pub router_forward: SimDuration,
    /// Switch transit latency on the internal loop-back path.
    pub loopback_transit: SimDuration,
    /// Nios II RX cost per packet before BUF_LIST/V2P (header parse,
    /// descriptor handling).
    pub rx_packet_base: SimDuration,
    /// Extra RX cost when the destination is GPU memory (driving the P2P
    /// write window) — the "10% penalty … probably related to the
    /// additional actions involved" of §V.C.
    pub rx_gpu_extra: SimDuration,
    /// Nios cost per 4 KB chunk for GPU_P2P_TX v1 (software-only engine).
    pub tx_v1_per_chunk: SimDuration,
    /// Nios cost per packet for v2 (descriptor bookkeeping only; request
    /// generation is in hardware).
    pub tx_v2_per_packet: SimDuration,
    /// Nios cost per packet for v3 (further offload — "the Nios II can
    /// allot a larger time-slice to the receive data path").
    pub tx_v3_per_packet: SimDuration,
    /// Per-message GPU-TX setup on the Nios for v1/v2 (the bulk of the
    /// ~3 µs initial delay measured on the bus analyzer, Fig. 3).
    pub tx_gpu_setup_v2: SimDuration,
    /// Hardware pipeline setup before the first read request for v1/v2
    /// (the rest of the Fig. 3 initial delay).
    pub tx_gpu_hw_setup_v2: SimDuration,
    /// Per-message Nios setup for v3 (the flow-control block removed most
    /// of the per-message software work).
    pub tx_gpu_setup_v3: SimDuration,
    /// Hardware setup for v3.
    pub tx_gpu_hw_setup_v3: SimDuration,
    /// Completion-notification cost on the receive side (writing the RX
    /// event queue entry the host polls).
    pub rx_notify: SimDuration,
    /// Nios cost of decoding a GET descriptor and building the remote
    /// read-request header on the requester card.
    pub get_req_nios: SimDuration,
    /// Fault injection: flip one payload bit (random position and mask,
    /// drawn from the card's seeded fault RNG) in every Nth data frame put
    /// on a link port — loop-back included (None = healthy links). The
    /// link layer must catch and retransmit every corrupted frame.
    pub tx_bit_error_every: Option<u32>,
    /// Link-level go-back-N retransmission (the reliability layer of the
    /// APElink channels: per-port sequence numbers, a bounded replay
    /// buffer, ACK/NAK credits and a retransmit timeout). Disabling it
    /// restores drop-on-CRC-failure — the chaos suite's kill-switch check
    /// proves the harness detects exactly that bug.
    pub link_retrans: bool,
    /// Go-back-N window: maximum unacknowledged data frames per port,
    /// enforced while fault injection is armed. It bounds replay-buffer
    /// memory and the size of go-back-N recovery bursts. On fault-free
    /// runs the window is not enforced (nothing can be lost, and
    /// deferring frames to ACK-arrival times would shift golden timing);
    /// ACK credits still continuously clear the replay buffer, which
    /// stays bounded by the in-flight frame count.
    pub link_window: u32,
    /// Retransmit timeout per port: recovers a dropped last-frame or a
    /// dropped ACK/NAK when no later traffic can trigger a NAK. Timers are
    /// armed only while fault injection is active, so healthy runs
    /// schedule no timer events at all. Backs off exponentially on
    /// consecutive barren timeouts.
    pub link_rto: SimDuration,
    /// Seed of the card's fault RNG (corruption position/mask draws for
    /// `tx_bit_error_every`); mixed with the card's coordinates so every
    /// card draws an independent stream.
    pub fault_seed: u64,
    /// Hard-failure tolerance plane (the fault-management features the
    /// APElink follow-up papers make first-class): dead-link detection by
    /// keepalive miss, deterministic detour routing around failed ring
    /// hops, link-state flooding, and drain/requeue of in-flight frames.
    /// `false` restores strict dimension-order routing with
    /// panic-on-missing-route — exactly today's behaviour — and the
    /// golden-digest test pins that clean-run figures are byte-identical
    /// either way. Defaults from the `APENET_ROUTE_AROUND_FAULTS` env var
    /// (unset/`0` = off) so the guard can flip it without recompiling.
    pub route_around_faults: bool,
    /// Consecutive unanswered keepalive probes before a port is declared
    /// dead. Probes ride barren retransmit timeouts (so they exist only
    /// while the fault plane is armed and traffic is stuck), making the
    /// detection bound ≈ `keepalive_misses` × backed-off `link_rto`s.
    pub keepalive_misses: u32,
    /// RX event ring capacity: completed deliveries the host has not yet
    /// reaped. A full ring backpressures — the completion is held (never
    /// dropped) until the host pops entries — and raises a
    /// [`crate::card::CardError::RxRingFull`] event. `None` models the
    /// host keeping up, i.e. an unbounded ring (today's behaviour).
    pub rx_ring_entries: Option<u32>,
}

impl Default for CardConfig {
    fn default() -> Self {
        Self::paper_v3(128 * 1024)
    }
}

impl CardConfig {
    fn base() -> Self {
        CardConfig {
            gpu_tx: GpuTxVersion::V3,
            gpu_read: GpuReadMethod::P2p,
            prefetch_window: 128 * 1024,
            tx_fifo_bytes: 32 * 1024,
            tx_sink: TxSinkMode::Torus,
            link_gbps: 28,
            link_latency: SimDuration::from_ns(400),
            router_forward: SimDuration::from_ns(150),
            loopback_transit: SimDuration::from_ns(200),
            rx_packet_base: SimDuration::from_ns(250),
            rx_gpu_extra: SimDuration::from_ns(300),
            tx_v1_per_chunk: SimDuration::from_ns(2360),
            tx_v2_per_packet: SimDuration::from_ns(800),
            tx_v3_per_packet: SimDuration::from_ns(250),
            tx_gpu_setup_v2: SimDuration::from_ns(2200),
            tx_gpu_hw_setup_v2: SimDuration::from_ns(800),
            tx_gpu_setup_v3: SimDuration::from_ns(350),
            tx_gpu_hw_setup_v3: SimDuration::from_ns(150),
            rx_notify: SimDuration::from_ns(150),
            get_req_nios: SimDuration::from_ns(250),
            tx_bit_error_every: None,
            link_retrans: true,
            link_window: 32,
            link_rto: SimDuration::from_us(100),
            fault_seed: 0xA9E0_5EED,
            route_around_faults: std::env::var("APENET_ROUTE_AROUND_FAULTS")
                .map(|v| v != "0" && !v.is_empty())
                .unwrap_or(false),
            keepalive_misses: 3,
            rx_ring_entries: None,
        }
    }

    /// The v1 engine configuration.
    pub fn paper_v1() -> Self {
        CardConfig {
            gpu_tx: GpuTxVersion::V1,
            prefetch_window: 4096,
            ..Self::base()
        }
    }

    /// The v2 engine with the given prefetch window (4–32 KB in Fig. 4).
    pub fn paper_v2(window: u64) -> Self {
        CardConfig {
            gpu_tx: GpuTxVersion::V2,
            prefetch_window: window,
            ..Self::base()
        }
    }

    /// The v3 engine with the given in-flight cap (64–128 KB in Fig. 4).
    pub fn paper_v3(window: u64) -> Self {
        CardConfig {
            gpu_tx: GpuTxVersion::V3,
            prefetch_window: window,
            ..Self::base()
        }
    }

    /// Nios cost per TX packet for the configured engine generation.
    pub fn tx_per_packet(&self) -> SimDuration {
        match self.gpu_tx {
            GpuTxVersion::V1 => self.tx_v1_per_chunk,
            GpuTxVersion::V2 => self.tx_v2_per_packet,
            GpuTxVersion::V3 => self.tx_v3_per_packet,
        }
    }

    /// Per-message Nios setup cost for the configured engine generation.
    pub fn tx_gpu_setup(&self) -> SimDuration {
        match self.gpu_tx {
            GpuTxVersion::V1 | GpuTxVersion::V2 => self.tx_gpu_setup_v2,
            GpuTxVersion::V3 => self.tx_gpu_setup_v3,
        }
    }

    /// Per-message hardware setup cost for the configured generation.
    pub fn tx_gpu_hw_setup(&self) -> SimDuration {
        match self.gpu_tx {
            GpuTxVersion::V1 | GpuTxVersion::V2 => self.tx_gpu_hw_setup_v2,
            GpuTxVersion::V3 => self.tx_gpu_hw_setup_v3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_version() {
        assert_eq!(CardConfig::paper_v1().gpu_tx, GpuTxVersion::V1);
        assert_eq!(CardConfig::paper_v2(8192).prefetch_window, 8192);
        assert_eq!(CardConfig::paper_v3(65536).gpu_tx, GpuTxVersion::V3);
    }

    #[test]
    fn tx_fifo_is_32k() {
        assert_eq!(CardConfig::default().tx_fifo_bytes, 32 * 1024);
    }

    #[test]
    fn link_reliability_defaults() {
        let c = CardConfig::default();
        assert!(c.link_retrans, "retransmission on by default");
        assert!(c.link_window >= 2);
        // The RTO must exceed a full window's serialization time at
        // 28 Gbps (~19 us) or healthy-but-slow links would time out.
        assert!(c.link_rto > SimDuration::from_us(20));
    }

    #[test]
    fn hard_fault_defaults() {
        let c = CardConfig::default();
        assert!(
            c.keepalive_misses >= 2,
            "one lost probe must not kill a link"
        );
        assert_eq!(c.rx_ring_entries, None, "host keeps up by default");
    }

    #[test]
    fn v3_offloads_nios_relative_to_v2() {
        let v2 = CardConfig::paper_v2(32768);
        let v3 = CardConfig::paper_v3(65536);
        assert!(v3.tx_per_packet() < v2.tx_per_packet());
        assert!(CardConfig::paper_v1().tx_per_packet() > v2.tx_per_packet());
    }
}
