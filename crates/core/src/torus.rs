//! Torus link model.
//!
//! Each of the six external link blocks is a serializing channel. The
//! figure captions give the signalling rate: "Link 28Gbps" for the
//! bandwidth/latency benchmarks, "Link 20Gbps" for the HSG runs (the
//! torus transceivers were clocked lower on that setup).

use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// One direction of one torus cable between two adjacent cards.
#[derive(Debug, Clone)]
pub struct TorusLink {
    rate: Bandwidth,
    latency: SimDuration,
    busy_until: SimTime,
    carried: u64,
}

/// Timing of one packet transmission on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSlot {
    /// Serialization start.
    pub start: SimTime,
    /// Last byte leaves the transmitter.
    pub depart_end: SimTime,
    /// Packet fully received at the neighbour.
    pub arrive: SimTime,
}

impl TorusLink {
    /// A link with the given signalling rate in Gbps and cable+SerDes
    /// latency.
    pub fn new_gbps(gbps: u64, latency: SimDuration) -> Self {
        TorusLink {
            rate: Bandwidth::from_gbit_per_sec(gbps),
            latency,
            busy_until: SimTime::ZERO,
            carried: 0,
        }
    }

    /// The paper's benchmark setup: 28 Gbps, ~500 ns cable+SerDes latency.
    pub fn paper_28g() -> Self {
        Self::new_gbps(28, SimDuration::from_ns(500))
    }

    /// The HSG setup: 20 Gbps links.
    pub fn paper_20g() -> Self {
        Self::new_gbps(20, SimDuration::from_ns(500))
    }

    /// Data rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Reserve transmission of `wire_bytes` starting no earlier than
    /// `ready`; transmissions are strictly serialized.
    pub fn reserve(&mut self, ready: SimTime, wire_bytes: u64) -> LinkSlot {
        let start = ready.max(self.busy_until);
        let depart_end = start + self.rate.time_for(wire_bytes);
        self.busy_until = depart_end;
        self.carried += wire_bytes;
        LinkSlot {
            start,
            depart_end,
            arrive: depart_end + self.latency,
        }
    }

    /// When the link next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total wire bytes carried.
    pub fn carried(&self) -> u64 {
        self.carried
    }

    /// Forget occupancy.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.carried = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_28gbps_is_3_5_gbs() {
        let l = TorusLink::paper_28g();
        assert_eq!(l.rate().bytes_per_sec(), 3_500_000_000);
    }

    #[test]
    fn serialization_and_latency() {
        let mut l = TorusLink::new_gbps(28, SimDuration::from_ns(500));
        // 4128 wire bytes at 3.5 GB/s ≈ 1.18 us
        let a = l.reserve(SimTime::ZERO, 4128);
        let b = l.reserve(SimTime::ZERO, 4128);
        assert_eq!(b.start, a.depart_end);
        assert_eq!(a.arrive, a.depart_end + SimDuration::from_ns(500));
        assert_eq!(l.carried(), 2 * 4128);
    }

    #[test]
    fn hsg_link_is_slower() {
        let fast = TorusLink::paper_28g();
        let slow = TorusLink::paper_20g();
        assert!(slow.rate() < fast.rate());
    }

    #[test]
    fn reset_clears() {
        let mut l = TorusLink::paper_28g();
        l.reserve(SimTime::ZERO, 1000);
        l.reset();
        assert_eq!(l.carried(), 0);
        assert_eq!(l.busy_until(), SimTime::ZERO);
    }
}
