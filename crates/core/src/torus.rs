//! Torus link model.
//!
//! Each of the six external link blocks is a serializing channel. The
//! figure captions give the signalling rate: "Link 28Gbps" for the
//! bandwidth/latency benchmarks, "Link 20Gbps" for the HSG runs (the
//! torus transceivers were clocked lower on that setup).

use crate::coord::{Coord, LinkDir};
use crate::packet::ApePacket;
use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// Number of link-layer ports per card: six torus directions plus the
/// internal loop-back path.
pub const NUM_PORTS: usize = 7;

/// One ingress/egress port of a card's link layer.
///
/// The go-back-N machinery treats the internal loop-back path as a
/// seventh port so that fault injection (and recovery) covers it too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// A torus cable direction.
    Link(LinkDir),
    /// The internal switch loop-back path.
    Loopback,
}

impl Port {
    /// All seven ports, torus directions first.
    pub const ALL: [Port; NUM_PORTS] = [
        Port::Link(LinkDir::Xp),
        Port::Link(LinkDir::Xm),
        Port::Link(LinkDir::Yp),
        Port::Link(LinkDir::Ym),
        Port::Link(LinkDir::Zp),
        Port::Link(LinkDir::Zm),
        Port::Loopback,
    ];

    /// Dense index: 0–5 for the torus directions, 6 for loop-back.
    pub fn index(self) -> usize {
        match self {
            Port::Link(d) => d.index(),
            Port::Loopback => 6,
        }
    }

    /// The port a peer receives on when we transmit on this one (the
    /// opposite direction; loop-back is its own reverse).
    pub fn reverse(self) -> Port {
        match self {
            Port::Link(d) => Port::Link(d.opposite()),
            Port::Loopback => Port::Loopback,
        }
    }
}

/// A sequenced data frame: one packet plus its per-(card, port) link
/// sequence number. The number rides inside the existing 32-byte packet
/// overhead, so framing adds no wire bytes.
#[derive(Debug, Clone)]
pub struct LinkFrame {
    /// Link-level sequence number (per sender, per port).
    pub seq: u64,
    /// The packet.
    pub packet: ApePacket,
}

/// What travels on a link: data frames in the data channel, ACK/NAK
/// credits as out-of-band control symbols (the APElink control channel),
/// which pay cable latency but occupy no data wire slots.
#[derive(Debug, Clone)]
pub enum LinkMsg {
    /// A sequenced data frame.
    Data(LinkFrame),
    /// Cumulative acknowledgement: all frames below `upto` received.
    Ack {
        /// First unacknowledged sequence number.
        upto: u64,
    },
    /// Negative acknowledgement: receiver is still waiting for `expect`
    /// (CRC failure or sequence gap); go-back-N from there.
    Nak {
        /// The sequence number the receiver expects next.
        expect: u64,
    },
    /// Keepalive probe: sent on barren retransmit timeouts to tell a live
    /// neighbour stuck in go-back-N recovery from a dead cable. Any frame
    /// is proof of life, so the probe carries only a nonce to pair with
    /// its echo.
    Ping {
        /// Echoed back verbatim in the matching [`LinkMsg::Pong`].
        nonce: u64,
    },
    /// Keepalive echo: the neighbour is alive (its receive side, at
    /// least — which is the direction the prober's frames travel).
    Pong {
        /// The nonce of the probe being answered.
        nonce: u64,
    },
    /// Link-state notification, flooded over live links when a card
    /// declares one of its ports dead so the whole mesh converges on the
    /// same fault map (the LSA of a link-state protocol, reduced to
    /// "this cable is gone").
    LinkDown {
        /// The card that owns the dead port.
        origin: Coord,
        /// The dead port's direction, from `origin`'s point of view.
        dir: LinkDir,
    },
}

impl LinkMsg {
    /// True for data frames (false for control symbols).
    pub fn is_data(&self) -> bool {
        matches!(self, LinkMsg::Data(_))
    }
}

/// One direction of one torus cable between two adjacent cards.
#[derive(Debug, Clone)]
pub struct TorusLink {
    rate: Bandwidth,
    latency: SimDuration,
    busy_until: SimTime,
    carried: u64,
}

/// Timing of one packet transmission on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSlot {
    /// Serialization start.
    pub start: SimTime,
    /// Last byte leaves the transmitter.
    pub depart_end: SimTime,
    /// Packet fully received at the neighbour.
    pub arrive: SimTime,
}

impl TorusLink {
    /// A link with the given signalling rate in Gbps and cable+SerDes
    /// latency.
    pub fn new_gbps(gbps: u64, latency: SimDuration) -> Self {
        TorusLink {
            rate: Bandwidth::from_gbit_per_sec(gbps),
            latency,
            busy_until: SimTime::ZERO,
            carried: 0,
        }
    }

    /// The paper's benchmark setup: 28 Gbps, ~500 ns cable+SerDes latency.
    pub fn paper_28g() -> Self {
        Self::new_gbps(28, SimDuration::from_ns(500))
    }

    /// The HSG setup: 20 Gbps links.
    pub fn paper_20g() -> Self {
        Self::new_gbps(20, SimDuration::from_ns(500))
    }

    /// Data rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Reserve transmission of `wire_bytes` starting no earlier than
    /// `ready`; transmissions are strictly serialized.
    pub fn reserve(&mut self, ready: SimTime, wire_bytes: u64) -> LinkSlot {
        let start = ready.max(self.busy_until);
        let depart_end = start + self.rate.time_for(wire_bytes);
        self.busy_until = depart_end;
        self.carried += wire_bytes;
        LinkSlot {
            start,
            depart_end,
            arrive: depart_end + self.latency,
        }
    }

    /// When the link next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total wire bytes carried.
    pub fn carried(&self) -> u64 {
        self.carried
    }

    /// Forget occupancy.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.carried = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_28gbps_is_3_5_gbs() {
        let l = TorusLink::paper_28g();
        assert_eq!(l.rate().bytes_per_sec(), 3_500_000_000);
    }

    #[test]
    fn serialization_and_latency() {
        let mut l = TorusLink::new_gbps(28, SimDuration::from_ns(500));
        // 4128 wire bytes at 3.5 GB/s ≈ 1.18 us
        let a = l.reserve(SimTime::ZERO, 4128);
        let b = l.reserve(SimTime::ZERO, 4128);
        assert_eq!(b.start, a.depart_end);
        assert_eq!(a.arrive, a.depart_end + SimDuration::from_ns(500));
        assert_eq!(l.carried(), 2 * 4128);
    }

    #[test]
    fn hsg_link_is_slower() {
        let fast = TorusLink::paper_28g();
        let slow = TorusLink::paper_20g();
        assert!(slow.rate() < fast.rate());
    }

    #[test]
    fn port_indices_are_dense_and_reversible() {
        for (i, p) in Port::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(p.reverse().reverse(), *p);
        }
        assert_eq!(Port::Loopback.reverse(), Port::Loopback);
        assert_eq!(
            Port::Link(LinkDir::Xp).reverse(),
            Port::Link(LinkDir::Xm),
            "reverse of a torus port is the opposite direction"
        );
    }

    #[test]
    fn reset_clears() {
        let mut l = TorusLink::paper_28g();
        l.reserve(SimTime::ZERO, 1000);
        l.reset();
        assert_eq!(l.carried(), 0);
        assert_eq!(l.busy_until(), SimTime::ZERO);
    }
}
