//! The assembled APEnet+ card.
//!
//! The card is a [`Device`] state machine: the cluster layer feeds it
//! [`CardIn`] events and routes its [`CardOut`] effects (self-timers,
//! torus transmissions, host notifications). All datapath timing — GPU
//! read prefetching, Nios II task contention, TX FIFO occupancy, torus
//! serialization, RX processing — is computed here against the shared
//! PCIe fabric and GPU models.

use crate::config::{CardConfig, GpuReadMethod, GpuTxVersion, TxSinkMode};
use crate::coord::{Coord, LinkDir, TorusDims};
use crate::gpu_tx::FetchPlan;
use crate::nios::{BufEntry, BufKind, BufList, GpuV2p, HostV2p, Nios, PageDesc};
use crate::packet::{ApePacket, MsgId, APE_MAX_PAYLOAD};
use crate::torus::TorusLink;
use apenet_gpu::cuda::CudaDevice;
use apenet_gpu::mem::Memory;
use apenet_gpu::GPU_PAGE_SIZE;
use apenet_pcie::fabric::{DeviceId, Fabric};
use apenet_pcie::server::ReadServer;
use apenet_pcie::tlp::TlpKind;
use apenet_sim::bytes::PayloadSlice;
use apenet_sim::{Bandwidth, ByteFifo, Device, Outbox, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::rc::Rc;

/// A local GPU as seen by the card: its PCIe endpoint and device model.
#[derive(Clone)]
pub struct GpuHandle {
    /// The GPU's endpoint on the host PCIe fabric.
    pub pcie_dev: DeviceId,
    /// The device model (memory, P2P engine, …).
    pub cuda: Rc<RefCell<CudaDevice>>,
}

/// The firmware-visible registration state (BUF_LIST + V2P maps), shared
/// between the card and the host driver: the driver populates it during
/// buffer registration, the RX datapath consults it per packet.
#[derive(Default)]
pub struct Firmware {
    /// The registered-buffer list with its linear traversal cost.
    pub buf_list: BufList,
    /// Host virtual-to-physical map.
    pub host_v2p: HostV2p,
    /// One 4-level page table per local GPU.
    pub gpu_v2p: Vec<GpuV2p>,
}

impl Firmware {
    /// Create firmware state for a card with `n_gpus` local GPUs.
    pub fn new(n_gpus: usize) -> Self {
        Firmware {
            buf_list: BufList::new(),
            host_v2p: HostV2p::new(),
            gpu_v2p: (0..n_gpus).map(|_| GpuV2p::new()).collect(),
        }
    }

    /// Register a host buffer (driver side of the registration call).
    pub fn register_host(&mut self, vaddr: u64, len: u64, pid: u32) -> usize {
        for page in (vaddr..vaddr + len.max(1)).step_by(apenet_gpu::HOST_PAGE_SIZE as usize) {
            self.host_v2p.insert(page, page); // identity "physical" model
        }
        self.buf_list.register(BufEntry {
            vaddr,
            len,
            kind: BufKind::Host,
            pid,
        })
    }

    /// Register a GPU buffer: fills the per-GPU V2P table with one page
    /// descriptor per 64 KB page, as the P2P mapping flow does.
    pub fn register_gpu(
        &mut self,
        gpu: apenet_gpu::GpuId,
        vaddr: u64,
        len: u64,
        pid: u32,
    ) -> usize {
        let table = &mut self.gpu_v2p[gpu.0 as usize];
        let first = vaddr / GPU_PAGE_SIZE;
        let last = (vaddr + len.max(1) - 1) / GPU_PAGE_SIZE;
        for p in first..=last {
            table.insert(
                p * GPU_PAGE_SIZE,
                PageDesc {
                    phys: p * GPU_PAGE_SIZE,
                    token: 0xA9E0_0000 | gpu.0 as u64,
                },
            );
        }
        self.buf_list.register(BufEntry {
            vaddr,
            len,
            kind: BufKind::Gpu(gpu),
            pid,
        })
    }
}

/// Everything the card shares with the rest of its host.
#[derive(Clone)]
pub struct CardShared {
    /// The host PCIe fabric.
    pub fabric: Rc<RefCell<Fabric>>,
    /// The card's endpoint on that fabric.
    pub nic_dev: DeviceId,
    /// The host-memory target endpoint.
    pub hostmem_dev: DeviceId,
    /// Host memory contents.
    pub hostmem: Rc<RefCell<Memory>>,
    /// Host-memory read completer (2.4 GB/s in Table I).
    pub host_read: Rc<RefCell<ReadServer>>,
    /// Local GPUs.
    pub gpus: Vec<GpuHandle>,
    /// Registration state.
    pub firmware: Rc<RefCell<Firmware>>,
}

/// A TX request descriptor pushed by the host driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxDesc {
    /// Message id.
    pub msg: MsgId,
    /// Destination node.
    pub dst: Coord,
    /// Destination UVA address.
    pub dst_vaddr: u64,
    /// Message length in bytes.
    pub len: u64,
    /// Source UVA address.
    pub src_addr: u64,
    /// Source buffer kind.
    pub src_kind: BufKind,
}

/// Events consumed by the card.
#[derive(Debug, Clone)]
pub enum CardIn {
    /// The host driver posts a transmission.
    TxSubmit(TxDesc),
    /// A packet arrives from a torus link (or the loop-back path).
    RxPacket(ApePacket),
    /// Data for TX job `job` arrived from the source memory.
    FetchArrived {
        /// TX job id.
        job: u32,
        /// Offset within the message.
        offset: u64,
        /// Bytes arrived.
        len: u32,
    },
    /// A staged packet finished its Nios bookkeeping and may enter the FIFO.
    PushReady {
        /// TX job id.
        job: u32,
        /// The sealed packet.
        packet: ApePacket,
    },
    /// The TX FIFO head finished serializing; advance the drain.
    DrainNext,
}

/// Effects produced by the card, routed by the cluster layer.
#[derive(Debug, Clone)]
pub enum CardOut {
    /// Deliver back to this card after the attached delay.
    ToSelf(CardIn),
    /// A packet leaves on the torus link in direction `dir`; the delay
    /// already accounts for serialization and cable latency.
    TorusSend {
        /// Outgoing link direction.
        dir: LinkDir,
        /// The packet.
        packet: ApePacket,
    },
    /// A complete message landed in a local buffer (RX completion event).
    Delivered {
        /// Message id.
        msg: MsgId,
        /// Destination address it landed at.
        dst_vaddr: u64,
        /// Message length.
        len: u64,
    },
    /// The TX side finished fetching and enqueuing a message.
    TxComplete {
        /// Message id.
        msg: MsgId,
    },
}

/// Datapath counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CardStats {
    /// Bytes fetched from TX source memory (host or GPU).
    pub tx_bytes_fetched: u64,
    /// Packets injected into the TX FIFO.
    pub tx_packets: u64,
    /// Packets extracted for local RX.
    pub rx_packets: u64,
    /// Payload bytes written to local destination buffers.
    pub rx_bytes: u64,
    /// Transit packets forwarded by the router.
    pub forwarded: u64,
    /// Packets dropped on CRC failure.
    pub crc_errors: u64,
    /// Packets dropped because no registered buffer matched.
    pub rx_unmatched: u64,
}

struct TxJob {
    desc: TxDesc,
    plan: FetchPlan,
    pushed: u64,
}

/// The APEnet+ card model.
pub struct Card {
    /// This card's torus coordinates.
    pub coord: Coord,
    /// Torus dimensions.
    pub dims: TorusDims,
    /// Calibration constants.
    pub cfg: CardConfig,
    shared: CardShared,
    /// The Nios II task server.
    pub nios: Nios,
    links_out: [Option<Rc<RefCell<TorusLink>>>; 6],
    tx_jobs: HashMap<u32, TxJob>,
    next_job: u32,
    /// GPU-source jobs are processed one at a time by the GPU_P2P_TX
    /// engine; this queue holds the waiting ones.
    gpu_job_queue: VecDeque<u32>,
    gpu_job_active: Option<u32>,
    tx_fifo: ByteFifo<ApePacket>,
    push_wait: VecDeque<(u32, ApePacket)>,
    tx_since_fault: u32,
    staged_pending: u64,
    outstanding_total: u64,
    draining: bool,
    rx_msgs: HashMap<MsgId, (u64, u64)>, // received bytes, lowest dst_vaddr seen
    /// Datapath counters.
    pub stats: CardStats,
}

impl Card {
    /// Build a card at `coord` on a torus of `dims`.
    pub fn new(coord: Coord, dims: TorusDims, cfg: CardConfig, shared: CardShared) -> Self {
        let fifo = ByteFifo::with_default_watermark(cfg.tx_fifo_bytes);
        Card {
            coord,
            dims,
            cfg,
            shared,
            nios: Nios::new(),
            links_out: [None, None, None, None, None, None],
            tx_jobs: HashMap::new(),
            next_job: 0,
            gpu_job_queue: VecDeque::new(),
            gpu_job_active: None,
            tx_fifo: fifo,
            push_wait: VecDeque::new(),
            tx_since_fault: 0,
            staged_pending: 0,
            outstanding_total: 0,
            draining: false,
            rx_msgs: HashMap::new(),
            stats: CardStats::default(),
        }
    }

    /// Wire the outgoing torus link for `dir`.
    pub fn set_link(&mut self, dir: LinkDir, link: Rc<RefCell<TorusLink>>) {
        self.links_out[dir.index()] = Some(link);
    }

    /// The shared host/PCIe/GPU handles.
    pub fn shared(&self) -> &CardShared {
        &self.shared
    }

    /// Free downstream space available for new read requests: FIFO space
    /// not yet claimed by in-flight data. (Per-packet Nios bookkeeping for
    /// the *next* window overlaps the data arrival of the current one, so
    /// staged-but-unpushed bytes do not gate issuing; the small overlap
    /// spill is absorbed by `push_wait`, which stands in for the header
    /// FIFO elasticity of the real datapath.)
    fn issue_budget(&self) -> u64 {
        self.tx_fifo.free().saturating_sub(self.outstanding_total)
    }

    /// Start the next queued GPU-source job, paying the per-message
    /// engine setup (the Fig. 3 initial delay).
    fn activate_next_gpu_job(&mut self, now: SimTime, out: &mut Outbox<CardOut>) {
        debug_assert!(self.gpu_job_active.is_none());
        let Some(job_id) = self.gpu_job_queue.pop_front() else {
            return;
        };
        self.gpu_job_active = Some(job_id);
        let (_s, e) = self.nios.run(now, self.cfg.tx_gpu_setup());
        let ready = e + self.cfg.tx_gpu_hw_setup();
        // Re-enter through a self event at `ready` (len 0 = kick).
        out.push(
            ready.since(now),
            CardOut::ToSelf(CardIn::FetchArrived {
                job: job_id,
                offset: 0,
                len: 0,
            }),
        );
    }

    /// Issue as many source reads as the engine generation allows.
    fn issue_fetches(&mut self, job_id: u32, now: SimTime, out: &mut Outbox<CardOut>) {
        // GPU jobs may only fetch while they hold the engine.
        if self
            .tx_jobs
            .get(&job_id)
            .is_some_and(|j| matches!(j.desc.src_kind, BufKind::Gpu(_)))
            && self.gpu_job_active != Some(job_id)
        {
            return;
        }
        loop {
            let budget = self.issue_budget();
            let almost_full = self.tx_fifo.almost_full();
            let Some(job) = self.tx_jobs.get_mut(&job_id) else {
                return;
            };
            let Some(n) = job.plan.next_issue(budget, almost_full) else {
                return;
            };
            let offset = job.plan.requested;
            let src_kind = job.desc.src_kind;
            // v1 pays Nios software time per request *before* issuing it.
            let req_ready =
                if matches!(src_kind, BufKind::Gpu(_)) && self.cfg.gpu_tx == GpuTxVersion::V1 {
                    let cost = self.cfg.tx_v1_per_chunk;
                    self.nios.run(now, cost).1
                } else {
                    now
                };
            let job = self.tx_jobs.get_mut(&job_id).expect("job exists");
            let arrive = match src_kind {
                BufKind::Gpu(_) => {
                    let gpu = match src_kind {
                        BufKind::Gpu(id) => self.shared.gpus[id.0 as usize].clone(),
                        BufKind::Host => unreachable!(),
                    };
                    // BAR1 reads need the source range mapped into the
                    // aperture first — once per buffer, and expensive
                    // ("a full reconfiguration of the GPU").
                    let mut req_ready = req_ready;
                    let src = job.desc.src_addr + offset;
                    if self.cfg.gpu_read == GpuReadMethod::Bar1 {
                        let mut cuda = gpu.cuda.borrow_mut();
                        if !cuda.bar1.is_mapped(job.desc.src_addr, job.desc.len.max(1)) {
                            let cost = cuda
                                .bar1
                                .map(job.desc.src_addr, job.desc.len.max(1))
                                .expect("BAR1 aperture exhausted");
                            req_ready += cost;
                        }
                    }
                    let mut fabric = self.shared.fabric.borrow_mut();
                    // Read request toward the GPU...
                    let req = fabric.send_tlp(
                        req_ready,
                        self.shared.nic_dev,
                        gpu.pcie_dev,
                        TlpKind::MemRead,
                        0,
                    );
                    // ...served by the P2P engine or the BAR1 aperture...
                    let cpl = match self.cfg.gpu_read {
                        GpuReadMethod::P2p => gpu.cuda.borrow_mut().p2p.serve_read(req.arrive, n),
                        GpuReadMethod::Bar1 => gpu
                            .cuda
                            .borrow_mut()
                            .bar1
                            .serve_read(req.arrive, src, n)
                            .expect("BAR1 range mapped above"),
                    };
                    // ...completion data streams back over the fabric.
                    let st = fabric.send_stream(
                        cpl.first,
                        gpu.pcie_dev,
                        self.shared.nic_dev,
                        TlpKind::Completion,
                        n,
                        apenet_pcie::MAX_PAYLOAD,
                    );
                    st.arrive.max(cpl.last)
                }
                BufKind::Host => {
                    let mut fabric = self.shared.fabric.borrow_mut();
                    let req = fabric.send_tlp(
                        req_ready,
                        self.shared.nic_dev,
                        self.shared.hostmem_dev,
                        TlpKind::MemRead,
                        0,
                    );
                    let cpl = self.shared.host_read.borrow_mut().serve(req.arrive, n);
                    let st = fabric.send_stream(
                        cpl.first,
                        self.shared.hostmem_dev,
                        self.shared.nic_dev,
                        TlpKind::Completion,
                        n,
                        apenet_pcie::MAX_PAYLOAD,
                    );
                    st.arrive.max(cpl.last)
                }
            };
            job.plan.issued(n);
            self.outstanding_total += n;
            out.push(
                arrive.since(now),
                CardOut::ToSelf(CardIn::FetchArrived {
                    job: job_id,
                    offset,
                    len: n as u32,
                }),
            );
        }
    }

    /// Borrow `len` bytes of the job's source buffer as a refcounted
    /// slice. Packet fragments are ≤ 4 KB at page-aligned offsets within a
    /// page-aligned allocation, so this shares the backing page and copies
    /// nothing on the clean TX path.
    fn read_source(&self, job: &TxJob, offset: u64, len: u32) -> PayloadSlice {
        let addr = job.desc.src_addr + offset;
        match job.desc.src_kind {
            BufKind::Host => self
                .shared
                .hostmem
                .borrow_mut()
                .read_payload(addr, len as u64)
                .expect("TX source range was validated at registration"),
            BufKind::Gpu(id) => self.shared.gpus[id.0 as usize]
                .cuda
                .borrow_mut()
                .mem
                .read_payload(addr, len as u64)
                .expect("TX source range was validated at registration"),
        }
    }

    fn make_packet(&self, job: &TxJob, offset: u64, len: u32) -> ApePacket {
        let payload = if len == 0 {
            PayloadSlice::empty()
        } else {
            self.read_source(job, offset, len)
        };
        ApePacket::new(
            job.desc.dst,
            self.coord,
            job.desc.msg,
            job.desc.dst_vaddr + offset,
            job.desc.len,
            payload,
        )
    }

    /// Stage the packets of an arrived fetch through the per-packet Nios
    /// bookkeeping (GPU sources only; the kernel driver already did this
    /// work for host sources).
    fn stage_packets(
        &mut self,
        job_id: u32,
        offset: u64,
        len: u32,
        now: SimTime,
        out: &mut Outbox<CardOut>,
    ) {
        let Some(job) = self.tx_jobs.get(&job_id) else {
            return;
        };
        let gpu_src = matches!(job.desc.src_kind, BufKind::Gpu(_));
        let per_packet = self.cfg.tx_per_packet();
        let mut pieces: Vec<(u64, u32)> = Vec::new();
        if len == 0 {
            pieces.push((0, 0));
        } else {
            let mut off = offset;
            let mut rem = len;
            while rem > 0 {
                let n = rem.min(APE_MAX_PAYLOAD);
                pieces.push((off, n));
                off += n as u64;
                rem -= n;
            }
        }
        for (off, n) in pieces {
            let ready = if gpu_src && self.cfg.gpu_tx != GpuTxVersion::V1 {
                // v1 already paid its Nios cost at request time.
                self.nios.run(now, per_packet).1
            } else {
                now
            };
            let job = self.tx_jobs.get(&job_id).expect("job exists");
            let packet = self.make_packet(job, off, n);
            out.push(
                ready.since(now),
                CardOut::ToSelf(CardIn::PushReady {
                    job: job_id,
                    packet,
                }),
            );
        }
    }

    /// Fault injection: flip a payload bit in every Nth transmitted
    /// packet when configured (models a marginal torus cable; the
    /// receiver's CRC must catch it).
    fn maybe_corrupt(&mut self, mut packet: ApePacket) -> ApePacket {
        if let Some(n) = self.cfg.tx_bit_error_every {
            self.tx_since_fault += 1;
            if self.tx_since_fault >= n && !packet.payload.is_empty() {
                self.tx_since_fault = 0;
                let idx = packet.payload.len() / 2;
                // Copy-on-write: only this fragment is duplicated; the
                // source buffer and sibling fragments stay shared.
                packet.payload.make_mut()[idx] ^= 0x10;
            }
        }
        packet
    }

    fn kick_drain(&mut self, now: SimTime, out: &mut Outbox<CardOut>) {
        if self.draining {
            return;
        }
        let Some((_bytes, packet)) = self.tx_fifo.pop() else {
            return;
        };
        self.draining = true;
        match self.cfg.tx_sink {
            TxSinkMode::Flush => {
                // Fig. 4 mode: the packet evaporates at the switch.
                out.push(SimDuration::ZERO, CardOut::ToSelf(CardIn::DrainNext));
            }
            TxSinkMode::Torus => {
                if packet.dst == self.coord {
                    // Loop-back through the internal switch.
                    let serialize = Bandwidth::from_gb_per_sec(4).time_for(packet.wire_bytes());
                    let transit = self.cfg.loopback_transit + serialize;
                    out.push(transit, CardOut::ToSelf(CardIn::RxPacket(packet)));
                    out.push(serialize, CardOut::ToSelf(CardIn::DrainNext));
                } else {
                    let dir = self
                        .dims
                        .next_hop(self.coord, packet.dst)
                        .expect("non-local packet has a route");
                    let link = self.links_out[dir.index()]
                        .as_ref()
                        .expect("torus link wired")
                        .clone();
                    let slot = link.borrow_mut().reserve(now, packet.wire_bytes());
                    let packet = self.maybe_corrupt(packet);
                    out.push(slot.arrive.since(now), CardOut::TorusSend { dir, packet });
                    out.push(
                        slot.depart_end.since(now),
                        CardOut::ToSelf(CardIn::DrainNext),
                    );
                }
            }
        }
    }

    fn try_push(
        &mut self,
        job_id: u32,
        packet: ApePacket,
        now: SimTime,
        out: &mut Outbox<CardOut>,
    ) {
        let len = packet.len();
        match self.tx_fifo.push(packet.wire_bytes(), packet) {
            Ok(()) => {
                self.staged_pending = self.staged_pending.saturating_sub(len);
                self.stats.tx_packets += 1;
                if let Some(job) = self.tx_jobs.get_mut(&job_id) {
                    job.pushed += len;
                    let done = job.plan.done() && job.pushed == job.desc.len;
                    let msg = job.desc.msg;
                    if done {
                        self.tx_jobs.remove(&job_id);
                        out.push(SimDuration::ZERO, CardOut::TxComplete { msg });
                        if self.gpu_job_active == Some(job_id) {
                            // Release the GPU_P2P_TX engine for the next
                            // queued message.
                            self.gpu_job_active = None;
                            self.activate_next_gpu_job(now, out);
                        }
                    }
                }
                self.kick_drain(now, out);
            }
            Err(packet) => {
                self.push_wait.push_back((job_id, packet));
            }
        }
    }

    /// Handle an extracted packet addressed to this node.
    fn rx_local(&mut self, packet: ApePacket, now: SimTime, out: &mut Outbox<CardOut>) {
        if !packet.verify() {
            self.stats.crc_errors += 1;
            return;
        }
        self.stats.rx_packets += 1;
        let fw = self.shared.firmware.borrow();
        let (entry, bl_cost) = fw.buf_list.lookup(packet.dst_vaddr, packet.len());
        let Some(entry) = entry else {
            drop(fw);
            self.stats.rx_unmatched += 1;
            return;
        };
        let (v2p_cost, gpu_extra) = match entry.kind {
            BufKind::Host => (fw.host_v2p.walk(packet.dst_vaddr).1, SimDuration::ZERO),
            BufKind::Gpu(id) => (
                fw.gpu_v2p[id.0 as usize].walk(packet.dst_vaddr).1,
                self.cfg.rx_gpu_extra,
            ),
        };
        drop(fw);
        let task = self.cfg.rx_packet_base + bl_cost + v2p_cost + gpu_extra;
        let (_s, nios_done) = self.nios.run(now, task);
        // Write the payload to the destination memory over the fabric.
        let len = packet.len();
        let done = match entry.kind {
            BufKind::Host => {
                let mut fabric = self.shared.fabric.borrow_mut();
                let st = fabric.send_stream(
                    nios_done,
                    self.shared.nic_dev,
                    self.shared.hostmem_dev,
                    TlpKind::MemWrite,
                    len,
                    apenet_pcie::MAX_PAYLOAD,
                );
                if len > 0 {
                    self.shared
                        .hostmem
                        .borrow_mut()
                        .write(packet.dst_vaddr, &packet.payload)
                        .expect("registered RX buffer is in range");
                }
                st.arrive
            }
            BufKind::Gpu(id) => {
                let gpu = self.shared.gpus[id.0 as usize].clone();
                let mut fabric = self.shared.fabric.borrow_mut();
                let st = fabric.send_stream(
                    nios_done,
                    self.shared.nic_dev,
                    gpu.pcie_dev,
                    TlpKind::MemWrite,
                    len,
                    apenet_pcie::MAX_PAYLOAD,
                );
                let mut cuda = gpu.cuda.borrow_mut();
                let wend = cuda.p2p.absorb_write(nios_done, packet.dst_vaddr, len);
                if len > 0 {
                    cuda.mem
                        .write(packet.dst_vaddr, &packet.payload)
                        .expect("registered RX buffer is in range");
                }
                st.arrive.max(wend)
            }
        };
        self.stats.rx_bytes += len;
        let entry = self
            .rx_msgs
            .entry(packet.msg)
            .or_insert((0, packet.dst_vaddr));
        entry.0 += len;
        entry.1 = entry.1.min(packet.dst_vaddr);
        if entry.0 >= packet.msg_len {
            let base = entry.1;
            self.rx_msgs.remove(&packet.msg);
            // Completion notification (event-queue write the host polls).
            let (_s, note_done) = self.nios.run(done, self.cfg.rx_notify);
            out.push(
                note_done.since(now),
                CardOut::Delivered {
                    msg: packet.msg,
                    dst_vaddr: base,
                    len: packet.msg_len,
                },
            );
        }
    }

    fn forward(&mut self, packet: ApePacket, now: SimTime, out: &mut Outbox<CardOut>) {
        self.stats.forwarded += 1;
        let dir = self
            .dims
            .next_hop(self.coord, packet.dst)
            .expect("transit packet has a route");
        let link = self.links_out[dir.index()]
            .as_ref()
            .expect("torus link wired")
            .clone();
        let slot = link
            .borrow_mut()
            .reserve(now + self.cfg.router_forward, packet.wire_bytes());
        out.push(slot.arrive.since(now), CardOut::TorusSend { dir, packet });
    }
}

impl Device for Card {
    type In = CardIn;
    type Out = CardOut;

    fn handle(&mut self, now: SimTime, ev: CardIn, out: &mut Outbox<CardOut>) {
        match ev {
            CardIn::TxSubmit(desc) => {
                let job_id = self.next_job;
                self.next_job += 1;
                let gpu_src = matches!(desc.src_kind, BufKind::Gpu(_));
                let (version, window) = if gpu_src {
                    (self.cfg.gpu_tx, self.cfg.prefetch_window)
                } else {
                    // Host sources always pipeline: the kernel driver keeps
                    // the injection queue full (§III.B).
                    (GpuTxVersion::V3, self.cfg.tx_fifo_bytes)
                };
                let plan = FetchPlan::new(version, window, desc.len);
                let len = desc.len;
                self.tx_jobs.insert(
                    job_id,
                    TxJob {
                        desc,
                        plan,
                        pushed: 0,
                    },
                );
                if gpu_src {
                    // GPU jobs serialize through the GPU_P2P_TX engine.
                    self.gpu_job_queue.push_back(job_id);
                    if self.gpu_job_active.is_none() {
                        self.activate_next_gpu_job(now, out);
                    }
                } else if len == 0 {
                    // Header-only message: stage one empty packet.
                    out.push(
                        SimDuration::ZERO,
                        CardOut::ToSelf(CardIn::FetchArrived {
                            job: job_id,
                            offset: 0,
                            len: 0,
                        }),
                    );
                } else {
                    self.issue_fetches(job_id, now, out);
                }
            }
            CardIn::FetchArrived { job, offset, len } => {
                if len > 0 {
                    self.outstanding_total = self.outstanding_total.saturating_sub(len as u64);
                    self.staged_pending += len as u64;
                    if let Some(j) = self.tx_jobs.get_mut(&job) {
                        j.plan.arrived_bytes(len as u64);
                        self.stats.tx_bytes_fetched += len as u64;
                    }
                    self.stage_packets(job, offset, len, now, out);
                } else if self.tx_jobs.get(&job).is_some_and(|j| j.desc.len == 0) {
                    // The zero-length sentinel packet.
                    self.stage_packets(job, 0, 0, now, out);
                }
                self.issue_fetches(job, now, out);
            }
            CardIn::PushReady { job, packet } => {
                self.try_push(job, packet, now, out);
            }
            CardIn::DrainNext => {
                self.draining = false;
                while let Some((job_id, packet)) = self.push_wait.pop_front() {
                    if self.tx_fifo.fits(packet.wire_bytes()) {
                        self.try_push(job_id, packet, now, out);
                    } else {
                        self.push_wait.push_front((job_id, packet));
                        break;
                    }
                }
                self.kick_drain(now, out);
                let jobs: Vec<u32> = self.tx_jobs.keys().copied().collect();
                for j in jobs {
                    self.issue_fetches(j, now, out);
                }
            }
            CardIn::RxPacket(packet) => {
                if packet.dst == self.coord {
                    self.rx_local(packet, now, out);
                } else {
                    self.forward(packet, now, out);
                }
            }
        }
    }
}
