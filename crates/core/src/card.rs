//! The assembled APEnet+ card.
//!
//! The card is a [`Device`] state machine: the cluster layer feeds it
//! [`CardIn`] events and routes its [`CardOut`] effects (self-timers,
//! torus transmissions, host notifications). All datapath timing — GPU
//! read prefetching, Nios II task contention, TX FIFO occupancy, torus
//! serialization, RX processing — is computed here against the shared
//! PCIe fabric and GPU models.

use crate::config::{CardConfig, GpuReadMethod, GpuTxVersion, TxSinkMode};
use crate::coord::{Coord, FaultMap, LinkDir, RouteChoice, TorusDims};
use crate::gpu_tx::FetchPlan;
use crate::nios::{BufEntry, BufKind, BufList, GpuV2p, HostV2p, Nios, PageDesc};
use crate::packet::{ApePacket, MsgId, APE_MAX_PAYLOAD};
use crate::torus::{LinkFrame, LinkMsg, Port, TorusLink, NUM_PORTS};
use apenet_gpu::cuda::CudaDevice;
use apenet_gpu::mem::Memory;
use apenet_gpu::GPU_PAGE_SIZE;
use apenet_obs::Registry;
use apenet_pcie::fabric::{DeviceId, Fabric};
use apenet_pcie::server::ReadServer;
use apenet_pcie::tlp::TlpKind;
use apenet_sim::bytes::PayloadSlice;
use apenet_sim::fault::{self, FaultInjector};
use apenet_sim::rng::Xoshiro256ss;
use apenet_sim::trace::{kind as tk, SharedSink, TracePayload};
use apenet_sim::{Bandwidth, ByteFifo, Device, Outbox, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// A local GPU as seen by the card: its PCIe endpoint and device model.
#[derive(Clone)]
pub struct GpuHandle {
    /// The GPU's endpoint on the host PCIe fabric.
    pub pcie_dev: DeviceId,
    /// The device model (memory, P2P engine, …).
    pub cuda: Rc<RefCell<CudaDevice>>,
}

/// The firmware-visible registration state (BUF_LIST + V2P maps), shared
/// between the card and the host driver: the driver populates it during
/// buffer registration, the RX datapath consults it per packet.
#[derive(Default)]
pub struct Firmware {
    /// The registered-buffer list with its linear traversal cost.
    pub buf_list: BufList,
    /// Host virtual-to-physical map.
    pub host_v2p: HostV2p,
    /// One 4-level page table per local GPU.
    pub gpu_v2p: Vec<GpuV2p>,
}

impl Firmware {
    /// Create firmware state for a card with `n_gpus` local GPUs.
    pub fn new(n_gpus: usize) -> Self {
        Firmware {
            buf_list: BufList::new(),
            host_v2p: HostV2p::new(),
            gpu_v2p: (0..n_gpus).map(|_| GpuV2p::new()).collect(),
        }
    }

    /// Register a host buffer (driver side of the registration call).
    pub fn register_host(&mut self, vaddr: u64, len: u64, pid: u32) -> usize {
        self.try_register_host(vaddr, len, pid)
            .expect("BUF_LIST full")
    }

    /// Fallible host registration: a full BUF_LIST rejects the request
    /// before any V2P state is touched, so the host can unregister a
    /// buffer and retry.
    pub fn try_register_host(&mut self, vaddr: u64, len: u64, pid: u32) -> Option<usize> {
        if self.buf_list.is_full() {
            return None;
        }
        for page in (vaddr..vaddr + len.max(1)).step_by(apenet_gpu::HOST_PAGE_SIZE as usize) {
            self.host_v2p.insert(page, page); // identity "physical" model
        }
        self.buf_list.try_register(BufEntry {
            vaddr,
            len,
            kind: BufKind::Host,
            pid,
        })
    }

    /// Register a GPU buffer: fills the per-GPU V2P table with one page
    /// descriptor per 64 KB page, as the P2P mapping flow does.
    pub fn register_gpu(
        &mut self,
        gpu: apenet_gpu::GpuId,
        vaddr: u64,
        len: u64,
        pid: u32,
    ) -> usize {
        self.try_register_gpu(gpu, vaddr, len, pid)
            .expect("BUF_LIST full")
    }

    /// Fallible GPU registration (see [`Firmware::try_register_host`]).
    pub fn try_register_gpu(
        &mut self,
        gpu: apenet_gpu::GpuId,
        vaddr: u64,
        len: u64,
        pid: u32,
    ) -> Option<usize> {
        if self.buf_list.is_full() {
            return None;
        }
        let table = &mut self.gpu_v2p[gpu.0 as usize];
        let first = vaddr / GPU_PAGE_SIZE;
        let last = (vaddr + len.max(1) - 1) / GPU_PAGE_SIZE;
        for p in first..=last {
            table.insert(
                p * GPU_PAGE_SIZE,
                PageDesc {
                    phys: p * GPU_PAGE_SIZE,
                    token: 0xA9E0_0000 | gpu.0 as u64,
                },
            );
        }
        self.buf_list.try_register(BufEntry {
            vaddr,
            len,
            kind: BufKind::Gpu(gpu),
            pid,
        })
    }
}

/// Everything the card shares with the rest of its host.
#[derive(Clone)]
pub struct CardShared {
    /// The host PCIe fabric.
    pub fabric: Rc<RefCell<Fabric>>,
    /// The card's endpoint on that fabric.
    pub nic_dev: DeviceId,
    /// The host-memory target endpoint.
    pub hostmem_dev: DeviceId,
    /// Host memory contents.
    pub hostmem: Rc<RefCell<Memory>>,
    /// Host-memory read completer (2.4 GB/s in Table I).
    pub host_read: Rc<RefCell<ReadServer>>,
    /// Local GPUs.
    pub gpus: Vec<GpuHandle>,
    /// Registration state.
    pub firmware: Rc<RefCell<Firmware>>,
}

/// A TX request descriptor pushed by the host driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxDesc {
    /// Message id.
    pub msg: MsgId,
    /// Destination node.
    pub dst: Coord,
    /// Destination UVA address.
    pub dst_vaddr: u64,
    /// Message length in bytes.
    pub len: u64,
    /// Source UVA address.
    pub src_addr: u64,
    /// Source buffer kind.
    pub src_kind: BufKind,
}

/// A GET (RDMA-Read) request descriptor pushed by the host driver: ask
/// the card at `peer` to stream `len` bytes starting at its local
/// `peer_vaddr` back into this node's buffer at `local_vaddr`. The
/// requester's RX side completes the message exactly like an inbound
/// PUT, so the watchdog, dedup and fault planes all compose unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetDesc {
    /// Message id (requester-assigned; the reply stream carries it).
    pub msg: MsgId,
    /// The node whose memory is read.
    pub peer: Coord,
    /// Responder-local UVA address of the range to read.
    pub peer_vaddr: u64,
    /// Bytes to read.
    pub len: u64,
    /// Requester-local UVA address the reply lands at.
    pub local_vaddr: u64,
}

/// Sentinel TX-job id for GET request headers: they ride the TX FIFO
/// and the link layer like staged packets but belong to no fetch job —
/// the requester's completion is the *reply* delivery, not a TxDone.
const GET_REQ_JOB: u32 = u32::MAX;

/// Events consumed by the card.
#[derive(Debug, Clone)]
pub enum CardIn {
    /// The host driver posts a transmission.
    TxSubmit(TxDesc),
    /// The host driver posts a one-sided GET (remote read).
    GetSubmit(GetDesc),
    /// A verified GET request finished its responder-side Nios decode +
    /// BUF_LIST lookup; start the reply TX job streaming the range back.
    GetServe {
        /// The reply transmission (destination = the requester).
        desc: TxDesc,
    },
    /// A link-layer frame (data or ACK/NAK credit) arrives on `port` —
    /// a torus ingress direction or the internal loop-back path.
    LinkRx {
        /// Ingress port.
        port: Port,
        /// The frame.
        msg: LinkMsg,
    },
    /// The retransmit timer of `port` fired. Stale epochs are ignored:
    /// the epoch counter bumps whenever the window advances.
    LinkTimeout {
        /// The transmitting port whose timer fired.
        port: Port,
        /// Timer epoch at arming time.
        epoch: u64,
    },
    /// Data for TX job `job` arrived from the source memory.
    FetchArrived {
        /// TX job id.
        job: u32,
        /// Offset within the message.
        offset: u64,
        /// Bytes arrived.
        len: u32,
    },
    /// A staged packet finished its Nios bookkeeping and may enter the FIFO.
    PushReady {
        /// TX job id.
        job: u32,
        /// The sealed packet.
        packet: ApePacket,
    },
    /// The TX FIFO head finished serializing; advance the drain.
    DrainNext,
    /// Administrative hard kill of `port`'s cable, scheduled by chaos
    /// plans at a chosen simulated time (both cable endpoints get one).
    /// The port immediately stops carrying traffic in both directions;
    /// *detecting* that is the keepalive plane's job.
    AdminLinkDown {
        /// The killed port.
        port: Port,
    },
    /// The host reaped `n` entries from the RX event ring, freeing slots
    /// for held-back completions (bounded-ring configurations only).
    RxRingPop {
        /// Entries reaped.
        n: u32,
    },
}

/// Typed failure effects: conditions that used to be panics or silent
/// drops, surfaced as events the host side can observe. Each is also
/// mirrored in a [`CardStats`] counter and a [`metrics`] id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardError {
    /// A torus port was declared dead (keepalive escalation or a
    /// neighbour's `LinkDown` about a shared cable).
    LinkDead {
        /// The dead port's direction.
        dir: LinkDir,
    },
    /// A packet was dropped because no usable route to `dst` remains:
    /// both arcs of a ring are cut, or the direction is unwired.
    Unreachable {
        /// The message the dropped packet belonged to.
        msg: MsgId,
        /// Its destination node.
        dst: Coord,
    },
    /// The RX event ring is full: the completion for `msg` is held back
    /// (never lost) until the host pops entries.
    RxRingFull {
        /// The backpressured message.
        msg: MsgId,
    },
}

/// Effects produced by the card, routed by the cluster layer.
#[derive(Debug, Clone)]
pub enum CardOut {
    /// Deliver back to this card after the attached delay.
    ToSelf(CardIn),
    /// A link-layer frame leaves on the torus link in direction `dir`;
    /// for data frames the delay already accounts for serialization and
    /// cable latency, for ACK/NAK credits (out-of-band control symbols)
    /// it is the cable latency alone.
    TorusSend {
        /// Outgoing link direction.
        dir: LinkDir,
        /// The frame.
        msg: LinkMsg,
    },
    /// A complete message landed in a local buffer (RX completion event).
    Delivered {
        /// Message id.
        msg: MsgId,
        /// Destination address it landed at.
        dst_vaddr: u64,
        /// Message length.
        len: u64,
    },
    /// The TX side finished fetching and enqueuing a message.
    TxComplete {
        /// Message id.
        msg: MsgId,
    },
    /// A typed failure effect (dead link, unreachable destination, RX
    /// event-ring backpressure) — failures are visible, never silent.
    Error(CardError),
}

/// Per-port link-layer counters: retransmission activity and injected
/// degradation, the raw material of the effective-bandwidth reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Data frames put on the wire (first transmissions + replays).
    pub data_frames: u64,
    /// Wire bytes serialized onto the port (header + payload + CRC for
    /// every data frame, replays included). Cumulative, so a sampler
    /// can turn deltas into per-interval link utilization.
    pub wire_bytes: u64,
    /// Data frames replayed by go-back-N (NAK- or timeout-triggered).
    pub retransmits: u64,
    /// Retransmit-timer expirations that triggered a replay.
    pub timeouts: u64,
    /// NAKs sent by this port's receive side.
    pub naks_sent: u64,
    /// Duplicate data frames discarded (and re-ACKed) on receive.
    pub dup_frames: u64,
    /// Frames corrupted by the port's fault injector.
    pub injected_corrupt: u64,
    /// Frames (data or control) eaten by the port's fault injector.
    pub injected_drops: u64,
    /// Stall windows inserted by the port's fault injector.
    pub injected_stalls: u64,
    /// Total injected stall time in picoseconds.
    pub stall_ps: u64,
    /// Frames dropped on CRC failure (kill-switch mode only; with
    /// retransmission on, CRC failures turn into NAKs instead).
    pub crc_dropped: u64,
}

impl LinkStats {
    /// True when the port saw no retransmission activity and no injected
    /// damage — what every port of a healthy run must report.
    pub fn is_clean(&self) -> bool {
        self.retransmits == 0
            && self.timeouts == 0
            && self.naks_sent == 0
            && self.dup_frames == 0
            && self.injected_corrupt == 0
            && self.injected_drops == 0
            && self.injected_stalls == 0
            && self.stall_ps == 0
            && self.crc_dropped == 0
    }
}

/// Stable metric ids for the card's link-reliability counters in the
/// observability registry (see `apenet-obs`). Values are the per-port
/// [`LinkStats`] fields summed across ports; all-zero on clean runs — a
/// fault-free simulation never replays, NAKs, or stalls.
pub mod metrics {
    /// Data frames replayed by go-back-N.
    pub const RETRANSMITS: &str = "link.retransmits";
    /// Retransmit-timer expirations that triggered a replay.
    pub const TIMEOUTS: &str = "link.timeouts";
    /// NAKs sent.
    pub const NAKS_SENT: &str = "link.naks_sent";
    /// Duplicate data frames discarded on receive.
    pub const DUP_FRAMES: &str = "link.dup_frames";
    /// Frames corrupted by fault injectors.
    pub const INJECTED_CORRUPT: &str = "link.injected_corrupt";
    /// Frames eaten by fault injectors.
    pub const INJECTED_DROPS: &str = "link.injected_drops";
    /// Stall windows inserted by fault injectors.
    pub const INJECTED_STALLS: &str = "link.injected_stalls";
    /// Total injected stall time in picoseconds.
    pub const STALL_PS: &str = "link.stall_ps";
    /// Frames lost to CRC failure (kill-switch mode only).
    pub const CRC_DROPPED: &str = "link.crc_dropped";
    /// Ports declared dead (keepalive escalation or a neighbour's
    /// link-state notification about a shared cable).
    pub const LINK_DEAD: &str = "link.dead";
    /// Routing decisions that detoured off the strict dimension-order
    /// direction to avoid a dead link.
    pub const ROUTE_DETOUR: &str = "route.detour";
    /// Packets dropped because both arcs of a ring were cut.
    pub const ROUTE_UNREACHABLE: &str = "route.unreachable_drops";
    /// Frames moved off a dead port's replay/pending queues onto detours.
    pub const ROUTE_REQUEUED: &str = "route.requeued";
    /// Duplicate fragments suppressed end-to-end (a detour re-delivered a
    /// fragment whose first copy arrived before the cable died).
    pub const RX_DUP_FRAGMENTS: &str = "rx.dup_fragments";
    /// Completions held back by RX event-ring backpressure.
    pub const RX_RING_STALL: &str = "rx.ring_stall";
    /// GET requests injected by the local host (requester side).
    pub const GET_REQUESTS: &str = "get.requests";
    /// GET requests served (reply TX job started) by this card.
    pub const GET_SERVED: &str = "get.served";
    /// GET requests dropped because no registered buffer covered the
    /// requested range (the requester's watchdog recovers or escalates).
    pub const GET_UNMATCHED: &str = "get.unmatched";
    /// Duplicate GET requests suppressed while the first reply job was
    /// still streaming (a watchdog reissue racing a slow reply).
    pub const GET_DUP_REQUESTS: &str = "get.dup_requests";

    /// Every link-reliability id, in reporting order.
    pub const ALL: [&str; 19] = [
        RETRANSMITS,
        TIMEOUTS,
        NAKS_SENT,
        DUP_FRAMES,
        INJECTED_CORRUPT,
        INJECTED_DROPS,
        INJECTED_STALLS,
        STALL_PS,
        CRC_DROPPED,
        LINK_DEAD,
        ROUTE_DETOUR,
        ROUTE_UNREACHABLE,
        ROUTE_REQUEUED,
        RX_DUP_FRAGMENTS,
        RX_RING_STALL,
        GET_REQUESTS,
        GET_SERVED,
        GET_UNMATCHED,
        GET_DUP_REQUESTS,
    ];
}

/// Datapath counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CardStats {
    /// Bytes fetched from TX source memory (host or GPU).
    pub tx_bytes_fetched: u64,
    /// Packets injected into the TX FIFO.
    pub tx_packets: u64,
    /// Packets extracted for local RX.
    pub rx_packets: u64,
    /// Payload bytes written to local destination buffers.
    pub rx_bytes: u64,
    /// Transit packets forwarded by the router.
    pub forwarded: u64,
    /// Data frames replayed by the link layer, all ports combined.
    pub retransmits: u64,
    /// Frames lost to CRC failure (kill-switch mode only).
    pub crc_dropped: u64,
    /// Packets dropped because no registered buffer matched.
    pub rx_unmatched: u64,
    /// Ports this card declared dead (keepalive escalation or a
    /// neighbour's notification about a shared cable).
    pub links_dead: u64,
    /// Routing decisions that detoured off the strict dimension-order
    /// direction to avoid a dead link.
    pub detours: u64,
    /// Packets dropped because both arcs of a ring were cut.
    pub unreachable_drops: u64,
    /// Frames moved off a dead port's replay/pending queues onto detours.
    pub requeued: u64,
    /// Duplicate fragments suppressed end-to-end after a detour.
    pub rx_dup_fragments: u64,
    /// Completions held back because the RX event ring was full.
    pub rx_ring_stalls: u64,
    /// GET requests injected by the local host (requester side).
    pub get_requests: u64,
    /// GET requests served (reply TX job started) by this card.
    pub get_served: u64,
    /// GET requests dropped because no registered buffer covered the
    /// requested range.
    pub get_unmatched: u64,
    /// Duplicate GET requests suppressed while the first reply job was
    /// still streaming.
    pub get_dup_requests: u64,
    /// Per-port link-layer counters (six torus directions + loop-back).
    pub links: [LinkStats; NUM_PORTS],
}

impl CardStats {
    /// Per-port link counters summed across all ports.
    pub fn link_sums(&self) -> LinkStats {
        let mut t = LinkStats::default();
        for l in &self.links {
            t.data_frames += l.data_frames;
            t.wire_bytes += l.wire_bytes;
            t.retransmits += l.retransmits;
            t.timeouts += l.timeouts;
            t.naks_sent += l.naks_sent;
            t.dup_frames += l.dup_frames;
            t.injected_corrupt += l.injected_corrupt;
            t.injected_drops += l.injected_drops;
            t.injected_stalls += l.injected_stalls;
            t.stall_ps += l.stall_ps;
            t.crc_dropped += l.crc_dropped;
        }
        t
    }
}

/// Point-in-time occupancy of one port's go-back-N transmit side, plus
/// its cumulative wire-byte counter (see [`Card::occupancy`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PortOccupancy {
    /// Unacknowledged frames held in the replay buffer.
    pub replay: usize,
    /// Frames parked waiting for window credit.
    pub pending: usize,
    /// Sequence-number window currently in flight (`next_seq - base`).
    pub in_flight: u64,
    /// Cumulative wire bytes serialized onto this port.
    pub wire_bytes: u64,
}

/// Point-in-time occupancy of every card-side queue and buffer — the
/// occupancy sampler's per-tick read (see [`Card::occupancy`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CardOccupancy {
    /// Bytes resident in the TX packet FIFO.
    pub tx_fifo_bytes: u64,
    /// Packets resident in the TX packet FIFO.
    pub tx_fifo_packets: usize,
    /// Packets parked in the header-FIFO elasticity queue.
    pub push_wait: usize,
    /// Bytes staged by Nios bookkeeping but not yet pushed.
    pub staged_pending: u64,
    /// Bytes claimed by in-flight source-memory reads.
    pub outstanding_total: u64,
    /// Open TX jobs (messages still fetching or draining).
    pub tx_jobs: usize,
    /// Partially reassembled RX messages.
    pub rx_partial_msgs: usize,
    /// RX event-ring entries the host has not reaped.
    pub rx_ring_used: u32,
    /// Completions held back by a full RX event ring.
    pub rx_ring_held: usize,
    /// Per-port link-layer occupancy.
    pub ports: [PortOccupancy; NUM_PORTS],
}

struct TxJob {
    desc: TxDesc,
    plan: FetchPlan,
    pushed: u64,
    /// This job streams a GET reply: its completion is silent (the
    /// responder host never posted it — the *requester's* RX delivery is
    /// the completion), and it suppresses duplicate serves of the same
    /// request while streaming.
    get_reply: bool,
}

/// Reassembly state of one partially received message.
#[derive(Debug)]
struct RxProgress {
    /// Payload bytes accepted so far.
    bytes: u64,
    /// Lowest fragment `dst_vaddr` seen (the message base).
    base: u64,
    /// Fragment addresses already accepted — end-to-end deduplication for
    /// the fault plane: a requeued detour can re-deliver a fragment whose
    /// first copy crossed the cable just before it died.
    got: BTreeSet<u64>,
}

/// Transmit side of one port's go-back-N channel.
#[derive(Debug, Default)]
struct LinkTxState {
    /// Next sequence number to assign.
    next_seq: u64,
    /// Lowest unacknowledged sequence number.
    base: u64,
    /// Clean (pre-corruption) copies of the unacknowledged frames
    /// `base..next_seq`, in order. Clones only bump payload refcounts, so
    /// the replay buffer costs no byte copies.
    replay: VecDeque<ApePacket>,
    /// Frames waiting for window credit, with their from-drain flag (a
    /// from-drain frame owes a `DrainNext` when it finally serializes).
    pending: VecDeque<(ApePacket, bool)>,
    /// Timer epoch; bumped whenever the window advances so in-flight
    /// timer events for the old window are ignored.
    epoch: u64,
    /// A timer event for the current epoch is outstanding.
    timer_live: bool,
    /// Consecutive barren timeouts (drives exponential backoff).
    consec_timeouts: u32,
}

/// Receive side of one port's go-back-N channel.
#[derive(Debug, Default)]
struct LinkRxState {
    /// Next expected sequence number.
    expect: u64,
    /// Sequence number we already NAKed (suppresses a NAK storm while a
    /// burst of in-flight frames behind one lost frame arrives); cleared
    /// when `expect` advances, so the retransmit timeout remains the
    /// backstop if the replayed frame is damaged again.
    nakked: Option<u64>,
}

/// The APEnet+ card model.
pub struct Card {
    /// This card's torus coordinates.
    pub coord: Coord,
    /// Torus dimensions.
    pub dims: TorusDims,
    /// Calibration constants.
    pub cfg: CardConfig,
    shared: CardShared,
    /// The Nios II task server.
    pub nios: Nios,
    links_out: [Option<Rc<RefCell<TorusLink>>>; 6],
    tx_jobs: HashMap<u32, TxJob>,
    next_job: u32,
    /// GPU-source jobs are processed one at a time by the GPU_P2P_TX
    /// engine; this queue holds the waiting ones.
    gpu_job_queue: VecDeque<u32>,
    gpu_job_active: Option<u32>,
    tx_fifo: ByteFifo<ApePacket>,
    push_wait: VecDeque<(u32, ApePacket)>,
    tx_since_fault: u32,
    staged_pending: u64,
    outstanding_total: u64,
    draining: bool,
    rx_msgs: HashMap<MsgId, RxProgress>,
    /// Messages fully delivered — the other half of the end-to-end
    /// duplicate suppression: a detour can re-deliver a fragment after
    /// its message already completed.
    rx_done: HashSet<MsgId>,
    /// RX event-ring occupancy: completions the host has not reaped yet
    /// (only tracked when `cfg.rx_ring_entries` bounds the ring).
    rx_ring_used: u32,
    /// Completions held back by a full RX event ring, with the time the
    /// notification write finished: `(note_done, msg, dst_vaddr, len)`.
    rx_ring_held: VecDeque<(SimTime, MsgId, u64, u64)>,
    /// Physically severed cables (admin kill): TX is swallowed, RX is
    /// ignored. The card does not *know* — detection is the keepalive
    /// plane's job.
    cable_cut: [bool; NUM_PORTS],
    /// Ports this card has declared dead (own keepalive escalation or a
    /// neighbour's `LinkDown` about a shared cable). Dead ports never
    /// re-arm timers, so the event stream stays bounded.
    port_dead: [bool; NUM_PORTS],
    /// Unanswered keepalive probes per port; any ingress traffic resets.
    probes: [u32; NUM_PORTS],
    /// Nonce source for keepalive pings.
    ping_nonce: u64,
    /// The mesh-wide dead-link map this card has converged on.
    fault_map: FaultMap,
    link_tx: [LinkTxState; NUM_PORTS],
    link_rx: [LinkRxState; NUM_PORTS],
    injectors: [Option<FaultInjector>; NUM_PORTS],
    /// Any fault source is configured (legacy periodic corruption or an
    /// injector on some port). When false, no retransmit timers are ever
    /// armed, so healthy runs schedule zero extra timing-relevant events.
    fault_active: bool,
    /// Seeded RNG for the legacy periodic corruption's position/mask.
    fault_rng: Xoshiro256ss,
    /// Span-correlated lifecycle trace sink (null by default; see
    /// [`Card::set_trace`]). Observation only — records never schedule
    /// events, so traced runs keep golden timing.
    trace: SharedSink,
    /// Datapath counters.
    pub stats: CardStats,
}

impl Card {
    /// Build a card at `coord` on a torus of `dims`.
    pub fn new(coord: Coord, dims: TorusDims, cfg: CardConfig, shared: CardShared) -> Self {
        let fifo = ByteFifo::with_default_watermark(cfg.tx_fifo_bytes);
        let coord_salt = ((coord.x as u64) << 16) | ((coord.y as u64) << 8) | coord.z as u64;
        let fault_active = cfg.tx_bit_error_every.is_some();
        let fault_rng = Xoshiro256ss::seed_from(fault::derive_seed(cfg.fault_seed, coord_salt));
        Card {
            coord,
            dims,
            cfg,
            shared,
            nios: Nios::new(),
            links_out: [None, None, None, None, None, None],
            tx_jobs: HashMap::new(),
            next_job: 0,
            gpu_job_queue: VecDeque::new(),
            gpu_job_active: None,
            tx_fifo: fifo,
            push_wait: VecDeque::new(),
            tx_since_fault: 0,
            staged_pending: 0,
            outstanding_total: 0,
            draining: false,
            rx_msgs: HashMap::new(),
            rx_done: HashSet::new(),
            rx_ring_used: 0,
            rx_ring_held: VecDeque::new(),
            cable_cut: [false; NUM_PORTS],
            port_dead: [false; NUM_PORTS],
            probes: [0; NUM_PORTS],
            ping_nonce: 0,
            fault_map: FaultMap::new(),
            link_tx: std::array::from_fn(|_| LinkTxState::default()),
            link_rx: std::array::from_fn(|_| LinkRxState::default()),
            injectors: std::array::from_fn(|_| None),
            fault_active,
            fault_rng,
            trace: SharedSink::null(),
            stats: CardStats::default(),
        }
    }

    /// Attach a lifecycle trace sink: every RDMA message flowing through
    /// this card records span-correlated post/fetch/frame/delivery
    /// events into it. The default null sink costs one branch per site.
    pub fn set_trace(&mut self, sink: SharedSink) {
        self.trace = sink;
    }

    /// Publish this card's link-reliability counters into `reg` under the
    /// [`metrics`] ids. Creates every id (at zero) even on clean runs so
    /// consumers see a stable key set.
    pub fn publish_link_metrics(&self, reg: &Registry) {
        let t = self.stats.link_sums();
        reg.add(metrics::RETRANSMITS, t.retransmits);
        reg.add(metrics::TIMEOUTS, t.timeouts);
        reg.add(metrics::NAKS_SENT, t.naks_sent);
        reg.add(metrics::DUP_FRAMES, t.dup_frames);
        reg.add(metrics::INJECTED_CORRUPT, t.injected_corrupt);
        reg.add(metrics::INJECTED_DROPS, t.injected_drops);
        reg.add(metrics::INJECTED_STALLS, t.injected_stalls);
        reg.add(metrics::STALL_PS, t.stall_ps);
        reg.add(metrics::CRC_DROPPED, t.crc_dropped);
        reg.add(metrics::LINK_DEAD, self.stats.links_dead);
        reg.add(metrics::ROUTE_DETOUR, self.stats.detours);
        reg.add(metrics::ROUTE_UNREACHABLE, self.stats.unreachable_drops);
        reg.add(metrics::ROUTE_REQUEUED, self.stats.requeued);
        reg.add(metrics::RX_DUP_FRAGMENTS, self.stats.rx_dup_fragments);
        reg.add(metrics::RX_RING_STALL, self.stats.rx_ring_stalls);
        reg.add(metrics::GET_REQUESTS, self.stats.get_requests);
        reg.add(metrics::GET_SERVED, self.stats.get_served);
        reg.add(metrics::GET_UNMATCHED, self.stats.get_unmatched);
        reg.add(metrics::GET_DUP_REQUESTS, self.stats.get_dup_requests);
    }

    /// Wire the outgoing torus link for `dir`.
    pub fn set_link(&mut self, dir: LinkDir, link: Rc<RefCell<TorusLink>>) {
        self.links_out[dir.index()] = Some(link);
    }

    /// Attach a fault injector to the transmit side of `port`. Arms the
    /// retransmit-timer machinery for the whole card.
    pub fn set_fault_injector(&mut self, port: Port, inj: FaultInjector) {
        self.fault_active = true;
        self.injectors[port.index()] = Some(inj);
    }

    /// The fault injector on `port`, if any.
    pub fn fault_injector(&self, port: Port) -> Option<&FaultInjector> {
        self.injectors[port.index()].as_ref()
    }

    /// Arm the fault plane without attaching an injector: admin kill
    /// schedules need windows and retransmit timers live from the start,
    /// exactly like injected chaos, or the first in-flight frames on a
    /// killed cable would never time out.
    pub fn arm_fault_plane(&mut self) {
        self.fault_active = true;
    }

    /// The mesh-wide dead-link map this card has converged on (empty on
    /// healthy runs; tests assert convergence across cards through it).
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// True when no datapath or link-layer state is in flight: no TX
    /// jobs, empty staging and TX FIFOs, every port's replay and pending
    /// queues drained, and no partially received messages. The chaos
    /// suite asserts this after every run — leaked state here means lost
    /// or phantom traffic.
    pub fn quiesced(&self) -> bool {
        self.tx_jobs.is_empty()
            && self.push_wait.is_empty()
            && self.tx_fifo.is_empty()
            && self.rx_msgs.is_empty()
            && self.rx_ring_held.is_empty()
            && self
                .link_tx
                .iter()
                .all(|st| st.replay.is_empty() && st.pending.is_empty())
    }

    /// The shared host/PCIe/GPU handles.
    pub fn shared(&self) -> &CardShared {
        &self.shared
    }

    /// Read-only snapshot of every queue and buffer level on the card —
    /// what the occupancy sampler records each tick. Pure reads over
    /// existing state: taking a snapshot can never perturb scheduling.
    pub fn occupancy(&self) -> CardOccupancy {
        CardOccupancy {
            tx_fifo_bytes: self.tx_fifo.occupied(),
            tx_fifo_packets: self.tx_fifo.len(),
            push_wait: self.push_wait.len(),
            staged_pending: self.staged_pending,
            outstanding_total: self.outstanding_total,
            tx_jobs: self.tx_jobs.len(),
            rx_partial_msgs: self.rx_msgs.len(),
            rx_ring_used: self.rx_ring_used,
            rx_ring_held: self.rx_ring_held.len(),
            ports: std::array::from_fn(|pi| PortOccupancy {
                replay: self.link_tx[pi].replay.len(),
                pending: self.link_tx[pi].pending.len(),
                in_flight: self.link_tx[pi].next_seq - self.link_tx[pi].base,
                wire_bytes: self.stats.links[pi].wire_bytes,
            }),
        }
    }

    /// Free downstream space available for new read requests: FIFO space
    /// not yet claimed by in-flight data. (Per-packet Nios bookkeeping for
    /// the *next* window overlaps the data arrival of the current one, so
    /// staged-but-unpushed bytes do not gate issuing; the small overlap
    /// spill is absorbed by `push_wait`, which stands in for the header
    /// FIFO elasticity of the real datapath.)
    fn issue_budget(&self) -> u64 {
        self.tx_fifo.free().saturating_sub(self.outstanding_total)
    }

    /// Start the next queued GPU-source job, paying the per-message
    /// engine setup (the Fig. 3 initial delay).
    fn activate_next_gpu_job(&mut self, now: SimTime, out: &mut Outbox<CardOut>) {
        debug_assert!(self.gpu_job_active.is_none());
        let Some(job_id) = self.gpu_job_queue.pop_front() else {
            return;
        };
        self.gpu_job_active = Some(job_id);
        let (_s, e) = self.nios.run(now, self.cfg.tx_gpu_setup());
        let ready = e + self.cfg.tx_gpu_hw_setup();
        // Re-enter through a self event at `ready` (len 0 = kick).
        out.push(
            ready.since(now),
            CardOut::ToSelf(CardIn::FetchArrived {
                job: job_id,
                offset: 0,
                len: 0,
            }),
        );
    }

    /// Issue as many source reads as the engine generation allows.
    fn issue_fetches(&mut self, job_id: u32, now: SimTime, out: &mut Outbox<CardOut>) {
        // GPU jobs may only fetch while they hold the engine.
        if self
            .tx_jobs
            .get(&job_id)
            .is_some_and(|j| matches!(j.desc.src_kind, BufKind::Gpu(_)))
            && self.gpu_job_active != Some(job_id)
        {
            return;
        }
        loop {
            let budget = self.issue_budget();
            let almost_full = self.tx_fifo.almost_full();
            let Some(job) = self.tx_jobs.get_mut(&job_id) else {
                return;
            };
            let Some(n) = job.plan.next_issue(budget, almost_full) else {
                return;
            };
            let offset = job.plan.requested;
            let src_kind = job.desc.src_kind;
            let span = job.desc.msg.span();
            // v1 pays Nios software time per request *before* issuing it.
            let req_ready =
                if matches!(src_kind, BufKind::Gpu(_)) && self.cfg.gpu_tx == GpuTxVersion::V1 {
                    let cost = self.cfg.tx_v1_per_chunk;
                    self.nios.run(now, cost).1
                } else {
                    now
                };
            let job = self.tx_jobs.get_mut(&job_id).expect("job exists");
            let arrive = match src_kind {
                BufKind::Gpu(_) => {
                    let gpu = match src_kind {
                        BufKind::Gpu(id) => self.shared.gpus[id.0 as usize].clone(),
                        BufKind::Host => unreachable!(),
                    };
                    // BAR1 reads need the source range mapped into the
                    // aperture first — once per buffer, and expensive
                    // ("a full reconfiguration of the GPU").
                    let mut req_ready = req_ready;
                    let src = job.desc.src_addr + offset;
                    if self.cfg.gpu_read == GpuReadMethod::Bar1 {
                        let mut cuda = gpu.cuda.borrow_mut();
                        if !cuda.bar1.is_mapped(job.desc.src_addr, job.desc.len.max(1)) {
                            let cost = cuda
                                .bar1
                                .map(job.desc.src_addr, job.desc.len.max(1))
                                .expect("BAR1 aperture exhausted");
                            req_ready += cost;
                        }
                    }
                    let mut fabric = self.shared.fabric.borrow_mut();
                    fabric.set_span(Some(span));
                    // Read request toward the GPU...
                    let req = fabric.send_tlp(
                        req_ready,
                        self.shared.nic_dev,
                        gpu.pcie_dev,
                        TlpKind::MemRead,
                        0,
                    );
                    // ...served by the P2P engine or the BAR1 aperture...
                    let cpl = match self.cfg.gpu_read {
                        GpuReadMethod::P2p => gpu.cuda.borrow_mut().p2p.serve_read(req.arrive, n),
                        GpuReadMethod::Bar1 => gpu
                            .cuda
                            .borrow_mut()
                            .bar1
                            .serve_read(req.arrive, src, n)
                            .expect("BAR1 range mapped above"),
                    };
                    // ...completion data streams back over the fabric.
                    let st = fabric.send_stream(
                        cpl.first,
                        gpu.pcie_dev,
                        self.shared.nic_dev,
                        TlpKind::Completion,
                        n,
                        apenet_pcie::MAX_PAYLOAD,
                    );
                    fabric.set_span(None);
                    st.arrive.max(cpl.last)
                }
                BufKind::Host => {
                    let mut fabric = self.shared.fabric.borrow_mut();
                    fabric.set_span(Some(span));
                    let req = fabric.send_tlp(
                        req_ready,
                        self.shared.nic_dev,
                        self.shared.hostmem_dev,
                        TlpKind::MemRead,
                        0,
                    );
                    let cpl = self.shared.host_read.borrow_mut().serve(req.arrive, n);
                    let st = fabric.send_stream(
                        cpl.first,
                        self.shared.hostmem_dev,
                        self.shared.nic_dev,
                        TlpKind::Completion,
                        n,
                        apenet_pcie::MAX_PAYLOAD,
                    );
                    fabric.set_span(None);
                    st.arrive.max(cpl.last)
                }
            };
            job.plan.issued(n);
            self.outstanding_total += n;
            out.push(
                arrive.since(now),
                CardOut::ToSelf(CardIn::FetchArrived {
                    job: job_id,
                    offset,
                    len: n as u32,
                }),
            );
        }
    }

    /// Borrow `len` bytes of the job's source buffer as a refcounted
    /// slice. Packet fragments are ≤ 4 KB at page-aligned offsets within a
    /// page-aligned allocation, so this shares the backing page and copies
    /// nothing on the clean TX path.
    fn read_source(&self, job: &TxJob, offset: u64, len: u32) -> PayloadSlice {
        let addr = job.desc.src_addr + offset;
        match job.desc.src_kind {
            BufKind::Host => self
                .shared
                .hostmem
                .borrow_mut()
                .read_payload(addr, len as u64)
                .expect("TX source range was validated at registration"),
            BufKind::Gpu(id) => self.shared.gpus[id.0 as usize]
                .cuda
                .borrow_mut()
                .mem
                .read_payload(addr, len as u64)
                .expect("TX source range was validated at registration"),
        }
    }

    fn make_packet(&self, job: &TxJob, offset: u64, len: u32) -> ApePacket {
        let payload = if len == 0 {
            PayloadSlice::empty()
        } else {
            self.read_source(job, offset, len)
        };
        ApePacket::new(
            job.desc.dst,
            self.coord,
            job.desc.msg,
            job.desc.dst_vaddr + offset,
            job.desc.len,
            payload,
        )
    }

    /// Stage the packets of an arrived fetch through the per-packet Nios
    /// bookkeeping (GPU sources only; the kernel driver already did this
    /// work for host sources).
    fn stage_packets(
        &mut self,
        job_id: u32,
        offset: u64,
        len: u32,
        now: SimTime,
        out: &mut Outbox<CardOut>,
    ) {
        let Some(job) = self.tx_jobs.get(&job_id) else {
            return;
        };
        let gpu_src = matches!(job.desc.src_kind, BufKind::Gpu(_));
        let per_packet = self.cfg.tx_per_packet();
        let mut pieces: Vec<(u64, u32)> = Vec::new();
        if len == 0 {
            pieces.push((0, 0));
        } else {
            let mut off = offset;
            let mut rem = len;
            while rem > 0 {
                let n = rem.min(APE_MAX_PAYLOAD);
                pieces.push((off, n));
                off += n as u64;
                rem -= n;
            }
        }
        for (off, n) in pieces {
            let ready = if gpu_src && self.cfg.gpu_tx != GpuTxVersion::V1 {
                // v1 already paid its Nios cost at request time.
                self.nios.run(now, per_packet).1
            } else {
                now
            };
            let job = self.tx_jobs.get(&job_id).expect("job exists");
            let packet = self.make_packet(job, off, n);
            out.push(
                ready.since(now),
                CardOut::ToSelf(CardIn::PushReady {
                    job: job_id,
                    packet,
                }),
            );
        }
    }

    /// Legacy fault injection: flip a payload bit in every Nth freshly
    /// transmitted packet when configured (models a marginal cable; the
    /// receiver's CRC must catch it). Position and mask come from the
    /// card's seeded fault RNG — a real marginal cable flips arbitrary
    /// bits, not always the middle one. Applies to loop-back traffic too.
    fn maybe_corrupt(&mut self, mut packet: ApePacket) -> ApePacket {
        if let Some(n) = self.cfg.tx_bit_error_every {
            self.tx_since_fault += 1;
            if self.tx_since_fault >= n && !packet.payload.is_empty() {
                self.tx_since_fault = 0;
                let idx = self.fault_rng.next_below(packet.payload.len() as u64) as usize;
                let mask = 1u8 << self.fault_rng.next_below(8);
                // Copy-on-write: only this fragment is duplicated; the
                // source buffer and sibling fragments stay shared.
                packet.payload.make_mut()[idx] ^= mask;
            }
        }
        packet
    }

    /// Hand a packet to the link layer of `port`. With retransmission on,
    /// the frame gets a sequence number and a replay-buffer slot (or
    /// queues for window credit); with the kill switch thrown it goes on
    /// the wire raw, exactly like the pre-reliability datapath.
    ///
    /// `ready` is the earliest serialization start (`now` from the TX
    /// FIFO drain, `now + router_forward` for transit packets);
    /// `from_drain` frames owe a `DrainNext` when they serialize.
    fn link_send(
        &mut self,
        port: Port,
        packet: ApePacket,
        ready: SimTime,
        now: SimTime,
        from_drain: bool,
        out: &mut Outbox<CardOut>,
    ) {
        if !self.cfg.link_retrans {
            self.transmit_data(port, 0, packet, ready, now, from_drain, false, out);
            return;
        }
        let pi = port.index();
        // The window is enforced only while fault injection is armed: on
        // a fault-free run nothing is ever lost, so holding frames back
        // buys no reliability but would defer link reservations to
        // ACK-arrival times and reorder them against competing port
        // users — shifting golden timing. ACKs still continuously clear
        // the replay buffer, which stays bounded by the in-flight count.
        let windowed = self.fault_active;
        let st = &mut self.link_tx[pi];
        if windowed
            && (!st.pending.is_empty() || st.next_seq - st.base >= self.cfg.link_window as u64)
        {
            st.pending.push_back((packet, from_drain));
            return;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.replay.push_back(packet.clone());
        self.transmit_data(port, seq, packet, ready, now, from_drain, false, out);
        self.arm_timer(port, out);
    }

    /// Put one data frame on the wire: apply fault injection (legacy
    /// periodic corruption only on fresh transmissions — replays resend
    /// the clean replay-buffer copy), burn the serialization slot, and
    /// schedule the arrival unless the frame was dropped.
    #[allow(clippy::too_many_arguments)]
    fn transmit_data(
        &mut self,
        port: Port,
        seq: u64,
        packet: ApePacket,
        ready: SimTime,
        now: SimTime,
        from_drain: bool,
        is_retrans: bool,
        out: &mut Outbox<CardOut>,
    ) {
        let pi = port.index();
        let mut wire = if is_retrans {
            packet
        } else {
            self.maybe_corrupt(packet)
        };
        let mut ready = ready;
        let mut dropped = false;
        if let Some(inj) = self.injectors[pi].as_mut() {
            let fate = inj.data_frame();
            if let Some(d) = fate.stall {
                // A stall delays the serialization start; everything
                // behind the frame backs up naturally through the link's
                // busy window (or the loop-back drain).
                ready += d;
                self.stats.links[pi].injected_stalls += 1;
                self.stats.links[pi].stall_ps += d.as_ps();
            }
            if fate.drop {
                dropped = true;
                self.stats.links[pi].injected_drops += 1;
            } else if let Some(c) = fate.corrupt {
                if !wire.payload.is_empty() {
                    let idx = (c.pos % wire.payload.len() as u64) as usize;
                    wire.payload.make_mut()[idx] ^= c.mask;
                    self.stats.links[pi].injected_corrupt += 1;
                }
            }
        }
        self.stats.links[pi].data_frames += 1;
        self.stats.links[pi].wire_bytes += wire.wire_bytes();
        if is_retrans {
            self.stats.retransmits += 1;
            self.stats.links[pi].retransmits += 1;
        }
        if self.trace.enabled() {
            self.trace.record(
                ready,
                "card",
                tk::FRAME_TX,
                Some(wire.msg.span()),
                TracePayload::Frame {
                    seq,
                    wire: wire.wire_bytes(),
                    retrans: is_retrans,
                },
            );
        }
        match port {
            Port::Loopback => {
                let serialize = Bandwidth::from_gb_per_sec(4).time_for(wire.wire_bytes());
                let drain_at = ready + serialize;
                if !dropped {
                    let arrive = drain_at + self.cfg.loopback_transit;
                    out.push(
                        arrive.since(now),
                        CardOut::ToSelf(CardIn::LinkRx {
                            port: Port::Loopback,
                            msg: LinkMsg::Data(LinkFrame { seq, packet: wire }),
                        }),
                    );
                }
                if from_drain {
                    out.push(drain_at.since(now), CardOut::ToSelf(CardIn::DrainNext));
                }
            }
            Port::Link(dir) => {
                let Some(link) = self.links_out[dir.index()].as_ref().cloned() else {
                    // An unwired direction (a mis-built cluster) used to
                    // be a panic; surface it and keep the drain alive.
                    self.stats.unreachable_drops += 1;
                    out.push(
                        SimDuration::ZERO,
                        CardOut::Error(CardError::Unreachable {
                            msg: wire.msg,
                            dst: wire.dst,
                        }),
                    );
                    if from_drain {
                        out.push(SimDuration::ZERO, CardOut::ToSelf(CardIn::DrainNext));
                    }
                    return;
                };
                let slot = link.borrow_mut().reserve(ready, wire.wire_bytes());
                // A cut or declared-dead cable swallows the frame: the
                // SerDes still burns its serialization slot (the card
                // does not know yet), but nothing reaches the far end.
                let swallowed = dropped || self.cable_cut[pi] || self.port_dead[pi];
                if !swallowed {
                    out.push(
                        slot.arrive.since(now),
                        CardOut::TorusSend {
                            dir,
                            msg: LinkMsg::Data(LinkFrame { seq, packet: wire }),
                        },
                    );
                }
                if from_drain {
                    out.push(
                        slot.depart_end.since(now),
                        CardOut::ToSelf(CardIn::DrainNext),
                    );
                }
            }
        }
    }

    /// Emit an ACK/NAK credit on `port`, back toward the sender whose
    /// data arrives there. Control symbols ride the out-of-band control
    /// channel: they pay cable (or switch-transit) latency but occupy no
    /// data wire slots, so healthy-run data timing is untouched.
    fn send_control(&mut self, port: Port, msg: LinkMsg, out: &mut Outbox<CardOut>) {
        let pi = port.index();
        if self.cable_cut[pi] || self.port_dead[pi] {
            return; // the cable is gone: control symbols vanish with it
        }
        if let Some(inj) = self.injectors[pi].as_mut() {
            if inj.control_frame() {
                self.stats.links[pi].injected_drops += 1;
                return;
            }
        }
        match port {
            Port::Link(dir) => out.push(self.cfg.link_latency, CardOut::TorusSend { dir, msg }),
            Port::Loopback => out.push(
                self.cfg.loopback_transit,
                CardOut::ToSelf(CardIn::LinkRx {
                    port: Port::Loopback,
                    msg,
                }),
            ),
        }
    }

    /// Arm the retransmit timer of `port` if it has unacknowledged frames
    /// and no live timer. Timers exist only while fault injection is
    /// possible: a fault-free run never schedules one, so the reliability
    /// layer adds zero events to golden-timing runs.
    fn arm_timer(&mut self, port: Port, out: &mut Outbox<CardOut>) {
        if !self.fault_active || !self.cfg.link_retrans || self.port_dead[port.index()] {
            return;
        }
        let st = &mut self.link_tx[port.index()];
        if st.timer_live || st.replay.is_empty() {
            return;
        }
        st.timer_live = true;
        let shift = st.consec_timeouts.min(6);
        let delay = SimDuration::from_ps(self.cfg.link_rto.as_ps() << shift);
        out.push(
            delay,
            CardOut::ToSelf(CardIn::LinkTimeout {
                port,
                epoch: st.epoch,
            }),
        );
    }

    /// Release acknowledged frames `< upto` from the replay buffer.
    /// Returns true when the window advanced.
    fn release_acked(&mut self, port: Port, upto: u64) -> bool {
        let st = &mut self.link_tx[port.index()];
        if upto <= st.base {
            return false;
        }
        let acked = ((upto - st.base) as usize).min(st.replay.len());
        for _ in 0..acked {
            st.replay.pop_front();
        }
        st.base += acked as u64;
        st.consec_timeouts = 0;
        st.epoch += 1;
        st.timer_live = false;
        true
    }

    /// Cumulative ACK: free replay slots, then let queued frames use the
    /// new window credit.
    fn handle_ack(&mut self, port: Port, upto: u64, now: SimTime, out: &mut Outbox<CardOut>) {
        if !self.cfg.link_retrans {
            return;
        }
        if self.release_acked(port, upto) {
            self.flush_pending(port, now, out);
        }
        self.arm_timer(port, out);
    }

    /// NAK: the receiver is stuck at `expect`. Treat it as a cumulative
    /// ACK for everything below, then go-back-N replay the rest.
    fn handle_nak(&mut self, port: Port, expect: u64, now: SimTime, out: &mut Outbox<CardOut>) {
        if !self.cfg.link_retrans {
            return;
        }
        {
            let st = &mut self.link_tx[port.index()];
            if expect < st.base {
                return; // stale: already acknowledged past it
            }
        }
        self.release_acked(port, expect);
        self.replay_window(port, now, out);
        self.flush_pending(port, now, out);
        self.arm_timer(port, out);
    }

    /// Retransmit timer: if the epoch still matches (no progress since
    /// arming), replay the whole window. Recovers dropped data frames
    /// *and* dropped ACK/NAK credits.
    fn handle_timeout(&mut self, port: Port, epoch: u64, now: SimTime, out: &mut Outbox<CardOut>) {
        let pi = port.index();
        if self.port_dead[pi] {
            return; // retired port; its frames were requeued already
        }
        {
            let st = &mut self.link_tx[pi];
            if epoch != st.epoch {
                return; // stale timer from a since-advanced window
            }
            st.timer_live = false;
            if st.replay.is_empty() {
                return;
            }
            st.consec_timeouts += 1;
            st.epoch += 1;
        }
        self.stats.links[pi].timeouts += 1;
        // Keepalive escalation: a timeout means a whole (backed-off) RTO
        // passed with no traffic back on this port — a dead cable and a
        // neighbour stuck in go-back-N recovery look identical from here,
        // so probe it. Any ingress on the port resets the count; enough
        // consecutive silent RTOs and the port is declared dead.
        if self.cfg.route_around_faults {
            if let Port::Link(dir) = port {
                self.probes[pi] += 1;
                if self.probes[pi] >= self.cfg.keepalive_misses {
                    self.declare_port_dead(dir, now, out);
                    return;
                }
                let nonce = self.ping_nonce;
                self.ping_nonce += 1;
                self.send_control(port, LinkMsg::Ping { nonce }, out);
            }
        }
        self.replay_window(port, now, out);
        self.arm_timer(port, out);
    }

    /// Replay every unacknowledged frame of `port`, in sequence order.
    fn replay_window(&mut self, port: Port, now: SimTime, out: &mut Outbox<CardOut>) {
        let st = &self.link_tx[port.index()];
        let base = st.base;
        let frames: Vec<(u64, ApePacket)> = st
            .replay
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (base + i as u64, p))
            .collect();
        for (seq, p) in frames {
            self.transmit_data(port, seq, p, now, now, false, true, out);
        }
    }

    /// Move frames from the pending queue into freed window slots.
    fn flush_pending(&mut self, port: Port, now: SimTime, out: &mut Outbox<CardOut>) {
        let pi = port.index();
        loop {
            let st = &mut self.link_tx[pi];
            if st.pending.is_empty() || st.next_seq - st.base >= self.cfg.link_window as u64 {
                return;
            }
            let (packet, from_drain) = st.pending.pop_front().expect("checked non-empty");
            let seq = st.next_seq;
            st.next_seq += 1;
            st.replay.push_back(packet.clone());
            self.transmit_data(port, seq, packet, now, now, from_drain, false, out);
        }
    }

    /// A data frame arrived on `port`: verify, sequence-check, ACK/NAK,
    /// and deliver in-order frames up to the routing layer.
    fn link_rx_data(
        &mut self,
        port: Port,
        frame: LinkFrame,
        now: SimTime,
        out: &mut Outbox<CardOut>,
    ) {
        let pi = port.index();
        if !self.cfg.link_retrans {
            // Kill-switch mode: the pre-reliability datapath — a CRC
            // failure drops the packet on the floor.
            if !frame.packet.verify() {
                self.stats.crc_dropped += 1;
                self.stats.links[pi].crc_dropped += 1;
                return;
            }
            self.record_frame_rx(&frame, now);
            self.deliver_up(frame.packet, now, out);
            return;
        }
        if !frame.packet.verify() {
            self.send_nak(port, out);
            return;
        }
        let rx = &mut self.link_rx[pi];
        if frame.seq == rx.expect {
            rx.expect += 1;
            rx.nakked = None;
            let upto = rx.expect;
            self.send_control(port, LinkMsg::Ack { upto }, out);
            self.record_frame_rx(&frame, now);
            self.deliver_up(frame.packet, now, out);
        } else if frame.seq < rx.expect {
            // Duplicate (a replay raced our ACK): discard and re-ACK so
            // the sender's window still advances. This is the hop-level
            // exactly-once guarantee.
            self.stats.links[pi].dup_frames += 1;
            let upto = self.link_rx[pi].expect;
            self.send_control(port, LinkMsg::Ack { upto }, out);
        } else {
            // Sequence gap: an earlier frame was lost on the wire.
            self.send_nak(port, out);
        }
    }

    /// Trace the in-order acceptance of a data frame.
    fn record_frame_rx(&self, frame: &LinkFrame, now: SimTime) {
        if self.trace.enabled() {
            self.trace.record(
                now,
                "card",
                tk::FRAME_RX,
                Some(frame.packet.msg.span()),
                TracePayload::Frame {
                    seq: frame.seq,
                    wire: frame.packet.wire_bytes(),
                    retrans: false,
                },
            );
        }
    }

    /// NAK the current expected sequence number, once per gap.
    fn send_nak(&mut self, port: Port, out: &mut Outbox<CardOut>) {
        let pi = port.index();
        let rx = &mut self.link_rx[pi];
        let expect = rx.expect;
        if rx.nakked == Some(expect) {
            return;
        }
        rx.nakked = Some(expect);
        self.stats.links[pi].naks_sent += 1;
        self.send_control(port, LinkMsg::Nak { expect }, out);
    }

    /// Route a link-verified packet: local extraction or transit forward.
    fn deliver_up(&mut self, packet: ApePacket, now: SimTime, out: &mut Outbox<CardOut>) {
        if packet.dst == self.coord {
            self.rx_local(packet, now, out);
        } else {
            self.forward(packet, now, out);
        }
    }

    fn kick_drain(&mut self, now: SimTime, out: &mut Outbox<CardOut>) {
        if self.draining {
            return;
        }
        let Some((_bytes, packet)) = self.tx_fifo.pop() else {
            return;
        };
        self.draining = true;
        match self.cfg.tx_sink {
            TxSinkMode::Flush => {
                // Fig. 4 mode: the packet evaporates at the switch.
                out.push(SimDuration::ZERO, CardOut::ToSelf(CardIn::DrainNext));
            }
            TxSinkMode::Torus => {
                if packet.dst == self.coord {
                    // Loop-back through the internal switch.
                    self.link_send(Port::Loopback, packet, now, now, true, out);
                } else {
                    match self.route_dir(packet.msg, packet.dst, out) {
                        Some(dir) => self.link_send(Port::Link(dir), packet, now, now, true, out),
                        // Dropped unreachable: free the drain slot at once.
                        None => out.push(SimDuration::ZERO, CardOut::ToSelf(CardIn::DrainNext)),
                    }
                }
            }
        }
    }

    fn try_push(
        &mut self,
        job_id: u32,
        packet: ApePacket,
        now: SimTime,
        out: &mut Outbox<CardOut>,
    ) {
        let len = packet.len();
        let span = packet.msg.span();
        match self.tx_fifo.push(packet.wire_bytes(), packet) {
            Ok(()) => {
                self.staged_pending = self.staged_pending.saturating_sub(len);
                self.stats.tx_packets += 1;
                if self.trace.enabled() {
                    self.trace.record(
                        now,
                        "card",
                        tk::STAGE,
                        Some(span),
                        TracePayload::Bytes { len },
                    );
                }
                if let Some(job) = self.tx_jobs.get_mut(&job_id) {
                    job.pushed += len;
                    let done = job.plan.done() && job.pushed == job.desc.len;
                    let msg = job.desc.msg;
                    let msg_len = job.desc.len;
                    let get_reply = job.get_reply;
                    if done {
                        self.tx_jobs.remove(&job_id);
                        if self.trace.enabled() {
                            self.trace.record(
                                now,
                                "card",
                                tk::TX_DONE,
                                Some(msg.span()),
                                TracePayload::Msg { len: msg_len },
                            );
                        }
                        if !get_reply {
                            out.push(SimDuration::ZERO, CardOut::TxComplete { msg });
                        }
                        if self.gpu_job_active == Some(job_id) {
                            // Release the GPU_P2P_TX engine for the next
                            // queued message.
                            self.gpu_job_active = None;
                            self.activate_next_gpu_job(now, out);
                        }
                    }
                }
                self.kick_drain(now, out);
            }
            Err(packet) => {
                self.push_wait.push_back((job_id, packet));
            }
        }
    }

    /// Handle an extracted packet addressed to this node. The CRC was
    /// already verified hop-by-hop at link ingress ([`Self::link_rx_data`]),
    /// so the packet is clean here.
    fn rx_local(&mut self, packet: ApePacket, now: SimTime, out: &mut Outbox<CardOut>) {
        self.stats.rx_packets += 1;
        // A GET request header: not a write — `dst_vaddr` names the range
        // to *read*. It has its own duplicate suppression (by in-flight
        // reply job), so it bypasses the write-side dedup below.
        if packet.is_get_request() {
            self.serve_get(packet, now, out);
            return;
        }
        // End-to-end duplicate suppression: a frame that crossed the cable
        // just before it died (its ACK lost with the cable) is requeued by
        // the sender onto the detour route and arrives a second time. The
        // per-message fragment set catches in-progress duplicates; the
        // tombstone catches ones landing after the message completed.
        if self.rx_done.contains(&packet.msg)
            || self
                .rx_msgs
                .get(&packet.msg)
                .is_some_and(|p| p.got.contains(&packet.dst_vaddr))
        {
            self.stats.rx_dup_fragments += 1;
            return;
        }
        if self.trace.enabled() {
            self.trace.record(
                now,
                "card",
                tk::RX_WRITE,
                Some(packet.msg.span()),
                TracePayload::Bytes { len: packet.len() },
            );
        }
        let fw = self.shared.firmware.borrow();
        let (entry, bl_cost) = fw.buf_list.lookup(packet.dst_vaddr, packet.len());
        let Some(entry) = entry else {
            drop(fw);
            self.stats.rx_unmatched += 1;
            return;
        };
        let (v2p_cost, gpu_extra) = match entry.kind {
            BufKind::Host => (fw.host_v2p.walk(packet.dst_vaddr).1, SimDuration::ZERO),
            BufKind::Gpu(id) => (
                fw.gpu_v2p[id.0 as usize].walk(packet.dst_vaddr).1,
                self.cfg.rx_gpu_extra,
            ),
        };
        drop(fw);
        let task = self.cfg.rx_packet_base + bl_cost + v2p_cost + gpu_extra;
        let (_s, nios_done) = self.nios.run(now, task);
        // Write the payload to the destination memory over the fabric.
        let len = packet.len();
        let done = match entry.kind {
            BufKind::Host => {
                let mut fabric = self.shared.fabric.borrow_mut();
                fabric.set_span(Some(packet.msg.span()));
                let st = fabric.send_stream(
                    nios_done,
                    self.shared.nic_dev,
                    self.shared.hostmem_dev,
                    TlpKind::MemWrite,
                    len,
                    apenet_pcie::MAX_PAYLOAD,
                );
                fabric.set_span(None);
                if len > 0 {
                    self.shared
                        .hostmem
                        .borrow_mut()
                        .write(packet.dst_vaddr, &packet.payload)
                        .expect("registered RX buffer is in range");
                }
                st.arrive
            }
            BufKind::Gpu(id) => {
                let gpu = self.shared.gpus[id.0 as usize].clone();
                let mut fabric = self.shared.fabric.borrow_mut();
                fabric.set_span(Some(packet.msg.span()));
                let st = fabric.send_stream(
                    nios_done,
                    self.shared.nic_dev,
                    gpu.pcie_dev,
                    TlpKind::MemWrite,
                    len,
                    apenet_pcie::MAX_PAYLOAD,
                );
                fabric.set_span(None);
                let mut cuda = gpu.cuda.borrow_mut();
                let wend = cuda.p2p.absorb_write(nios_done, packet.dst_vaddr, len);
                if len > 0 {
                    cuda.mem
                        .write(packet.dst_vaddr, &packet.payload)
                        .expect("registered RX buffer is in range");
                }
                st.arrive.max(wend)
            }
        };
        self.stats.rx_bytes += len;
        let entry = self
            .rx_msgs
            .entry(packet.msg)
            .or_insert_with(|| RxProgress {
                bytes: 0,
                base: packet.dst_vaddr,
                got: BTreeSet::new(),
            });
        entry.got.insert(packet.dst_vaddr);
        entry.bytes += len;
        entry.base = entry.base.min(packet.dst_vaddr);
        if entry.bytes >= packet.msg_len {
            let base = entry.base;
            self.rx_msgs.remove(&packet.msg);
            self.rx_done.insert(packet.msg);
            // Completion notification (event-queue write the host polls).
            let (_s, note_done) = self.nios.run(done, self.cfg.rx_notify);
            if self.trace.enabled() {
                self.trace.record(
                    note_done,
                    "card",
                    tk::DELIVERED,
                    Some(packet.msg.span()),
                    TracePayload::Msg {
                        len: packet.msg_len,
                    },
                );
            }
            if let Some(cap) = self.cfg.rx_ring_entries {
                if self.rx_ring_used >= cap {
                    // Credit backpressure: hold the completion (never drop
                    // it) until the host reaps ring entries via RxRingPop.
                    self.stats.rx_ring_stalls += 1;
                    self.rx_ring_held
                        .push_back((note_done, packet.msg, base, packet.msg_len));
                    out.push(
                        SimDuration::ZERO,
                        CardOut::Error(CardError::RxRingFull { msg: packet.msg }),
                    );
                    return;
                }
                self.rx_ring_used += 1;
            }
            out.push(
                note_done.since(now),
                CardOut::Delivered {
                    msg: packet.msg,
                    dst_vaddr: base,
                    len: packet.msg_len,
                },
            );
        }
    }

    fn forward(&mut self, packet: ApePacket, now: SimTime, out: &mut Outbox<CardOut>) {
        self.stats.forwarded += 1;
        let Some(dir) = self.route_dir(packet.msg, packet.dst, out) else {
            return; // dropped: both arcs of the next ring are cut
        };
        self.link_send(
            Port::Link(dir),
            packet,
            now + self.cfg.router_forward,
            now,
            false,
            out,
        );
    }

    /// Pick the egress direction for a non-local packet. With the fault
    /// plane on this consults the converged dead-link map and may detour
    /// (counted) or drop the packet as unreachable (typed error effect +
    /// counter; the RDMA watchdog turns that into a host-visible error
    /// completion). With the plane off it is strict dimension order —
    /// minus the old panic.
    fn route_dir(&mut self, msg: MsgId, dst: Coord, out: &mut Outbox<CardOut>) -> Option<LinkDir> {
        let choice = if self.cfg.route_around_faults {
            self.dims.next_hop_faulty(self.coord, dst, &self.fault_map)
        } else {
            match self.dims.next_hop(self.coord, dst) {
                Some(d) => RouteChoice::Hop(d),
                None => RouteChoice::Local,
            }
        };
        match choice {
            RouteChoice::Hop(d) => Some(d),
            RouteChoice::Detour(d) => {
                self.stats.detours += 1;
                Some(d)
            }
            // `Local` cannot happen (every caller checks dst != coord);
            // fold it into the dead-end path rather than panicking.
            RouteChoice::Unreachable | RouteChoice::Local => {
                self.stats.unreachable_drops += 1;
                out.push(
                    SimDuration::ZERO,
                    CardOut::Error(CardError::Unreachable { msg, dst }),
                );
                None
            }
        }
    }

    /// Keepalive escalation on this card's own `dir` port: record both
    /// endpoint orientations in the fault map, flood the link-state
    /// notification so the mesh converges, and retire the port.
    fn declare_port_dead(&mut self, dir: LinkDir, now: SimTime, out: &mut Outbox<CardOut>) {
        let far = self.dims.neighbor(self.coord, dir);
        self.fault_map.insert((self.coord, dir));
        self.fault_map.insert((far, dir.opposite()));
        self.flood_link_down(self.coord, dir, None, out);
        self.mark_own_port_dead(dir, now, out);
    }

    /// Retire one of this card's ports: stop its timers forever (bounding
    /// the event stream so the sim can quiesce), surface the typed error,
    /// and move its in-flight frames onto detour routes.
    fn mark_own_port_dead(&mut self, dir: LinkDir, now: SimTime, out: &mut Outbox<CardOut>) {
        let pi = Port::Link(dir).index();
        if self.port_dead[pi] {
            return;
        }
        self.port_dead[pi] = true;
        self.stats.links_dead += 1;
        out.push(
            SimDuration::ZERO,
            CardOut::Error(CardError::LinkDead { dir }),
        );
        self.requeue_dead_port(pi, now, out);
    }

    /// Drain the dead port's replay and pending queues and route every
    /// frame again through the fault-aware router. Replayed frames
    /// already produced their `DrainNext` when they first serialized;
    /// pending ones still owe theirs — even if they end up dropped as
    /// unreachable, the drain must advance.
    fn requeue_dead_port(&mut self, pi: usize, now: SimTime, out: &mut Outbox<CardOut>) {
        let st = &mut self.link_tx[pi];
        let mut frames: Vec<(ApePacket, bool)> = st.replay.drain(..).map(|p| (p, false)).collect();
        frames.extend(st.pending.drain(..));
        st.epoch += 1; // in-flight timer events for this port go stale
        st.timer_live = false;
        self.link_rx[pi] = LinkRxState::default();
        for (packet, from_drain) in frames {
            self.stats.requeued += 1;
            match self.route_dir(packet.msg, packet.dst, out) {
                Some(d) => self.link_send(Port::Link(d), packet, now, now, from_drain, out),
                None => {
                    if from_drain {
                        out.push(SimDuration::ZERO, CardOut::ToSelf(CardIn::DrainNext));
                    }
                }
            }
        }
    }

    /// Flood a `LinkDown` notification out of every live torus port
    /// (except the one it arrived on). Receivers deduplicate by fault-map
    /// membership, so the flood terminates after each card re-emits each
    /// failure at most once.
    fn flood_link_down(
        &mut self,
        origin: Coord,
        dir: LinkDir,
        ingress: Option<Port>,
        out: &mut Outbox<CardOut>,
    ) {
        for d in LinkDir::ALL {
            let port = Port::Link(d);
            if Some(port) == ingress
                || self.port_dead[port.index()]
                || self.cable_cut[port.index()]
                || self.links_out[d.index()].is_none()
                || self.dims.neighbor(self.coord, d) == self.coord
            {
                continue;
            }
            self.send_control(port, LinkMsg::LinkDown { origin, dir }, out);
        }
    }

    /// A link-state notification arrived: merge the fault, re-flood it,
    /// and — if the dead cable is one of ours because the neighbour's
    /// detector won the race — retire our end too.
    fn handle_link_down(
        &mut self,
        ingress: Port,
        origin: Coord,
        dir: LinkDir,
        now: SimTime,
        out: &mut Outbox<CardOut>,
    ) {
        if !self.cfg.route_around_faults || self.fault_map.contains(&(origin, dir)) {
            return;
        }
        let far = self.dims.neighbor(origin, dir);
        self.fault_map.insert((origin, dir));
        self.fault_map.insert((far, dir.opposite()));
        self.flood_link_down(origin, dir, Some(ingress), out);
        if origin == self.coord {
            self.mark_own_port_dead(dir, now, out);
        } else if far == self.coord {
            self.mark_own_port_dead(dir.opposite(), now, out);
        }
    }

    /// Open a TX job for `desc` and start fetching. The common body of a
    /// host-posted `TxSubmit` and a responder-side GET reply
    /// (`get_reply = true`, which completes silently — see [`TxJob`]).
    fn submit_tx(
        &mut self,
        desc: TxDesc,
        get_reply: bool,
        now: SimTime,
        out: &mut Outbox<CardOut>,
    ) {
        let job_id = self.next_job;
        self.next_job += 1;
        let gpu_src = matches!(desc.src_kind, BufKind::Gpu(_));
        let (version, window) = if gpu_src {
            (self.cfg.gpu_tx, self.cfg.prefetch_window)
        } else {
            // Host sources always pipeline: the kernel driver keeps
            // the injection queue full (§III.B).
            (GpuTxVersion::V3, self.cfg.tx_fifo_bytes)
        };
        let plan = FetchPlan::new(version, window, desc.len);
        let len = desc.len;
        if !get_reply && self.trace.enabled() {
            self.trace.record(
                now,
                "card",
                tk::POST,
                Some(desc.msg.span()),
                TracePayload::Msg { len },
            );
        }
        self.tx_jobs.insert(
            job_id,
            TxJob {
                desc,
                plan,
                pushed: 0,
                get_reply,
            },
        );
        if gpu_src {
            // GPU jobs serialize through the GPU_P2P_TX engine.
            self.gpu_job_queue.push_back(job_id);
            if self.gpu_job_active.is_none() {
                self.activate_next_gpu_job(now, out);
            }
        } else if len == 0 {
            // Header-only message: stage one empty packet.
            out.push(
                SimDuration::ZERO,
                CardOut::ToSelf(CardIn::FetchArrived {
                    job: job_id,
                    offset: 0,
                    len: 0,
                }),
            );
        } else {
            self.issue_fetches(job_id, now, out);
        }
    }

    /// Responder side of the one-sided GET protocol: a link-verified read
    /// request addressed to this node. Look the requested range up in the
    /// BUF_LIST (no registered buffer means a counted drop — the
    /// requester's watchdog retries or escalates), then start a reply TX
    /// job streaming the range back to the requester. The reply rides the
    /// ordinary fetch/FIFO/link machinery, so V2P-walk costs, go-back-N
    /// retransmission, dead-link detours and requester-side fragment
    /// dedup all compose unchanged.
    fn serve_get(&mut self, packet: ApePacket, now: SimTime, out: &mut Outbox<CardOut>) {
        let reply_vaddr = packet
            .get
            .expect("caller checked is_get_request")
            .reply_vaddr;
        // A watchdog-reissued request racing a still-streaming reply
        // would double-serve; the requester's dedup makes that harmless,
        // but suppressing it here keeps the wire quiet and counted.
        if self
            .tx_jobs
            .values()
            .any(|j| j.get_reply && j.desc.msg == packet.msg)
        {
            self.stats.get_dup_requests += 1;
            return;
        }
        let fw = self.shared.firmware.borrow();
        let (entry, bl_cost) = fw.buf_list.lookup(packet.dst_vaddr, packet.msg_len);
        let Some(entry) = entry else {
            drop(fw);
            self.stats.get_unmatched += 1;
            return;
        };
        let src_kind = entry.kind;
        drop(fw);
        self.stats.get_served += 1;
        // Request decode + BUF_LIST traversal on the Nios; the reply job
        // opens once that task retires and pays its own per-fragment
        // V2P/engine costs from there.
        let (_s, nios_done) = self.nios.run(now, self.cfg.rx_packet_base + bl_cost);
        let desc = TxDesc {
            msg: packet.msg,
            dst: packet.src,
            dst_vaddr: reply_vaddr,
            len: packet.msg_len,
            src_addr: packet.dst_vaddr,
            src_kind,
        };
        out.push(
            nios_done.since(now),
            CardOut::ToSelf(CardIn::GetServe { desc }),
        );
    }

    /// The host reaped `n` RX event-ring entries; release held-back
    /// completions into the freed slots, oldest first.
    fn rx_ring_pop(&mut self, n: u32, now: SimTime, out: &mut Outbox<CardOut>) {
        let Some(cap) = self.cfg.rx_ring_entries else {
            return; // unbounded ring: nothing is ever held
        };
        self.rx_ring_used = self.rx_ring_used.saturating_sub(n);
        while self.rx_ring_used < cap {
            let Some((note_done, msg, dst_vaddr, len)) = self.rx_ring_held.pop_front() else {
                break;
            };
            self.rx_ring_used += 1;
            let at = note_done.max(now);
            out.push(
                at.since(now),
                CardOut::Delivered {
                    msg,
                    dst_vaddr,
                    len,
                },
            );
        }
    }
}

impl Device for Card {
    type In = CardIn;
    type Out = CardOut;

    fn handle(&mut self, now: SimTime, ev: CardIn, out: &mut Outbox<CardOut>) {
        match ev {
            CardIn::TxSubmit(desc) => {
                self.submit_tx(desc, false, now, out);
            }
            CardIn::GetSubmit(desc) => {
                self.stats.get_requests += 1;
                if self.trace.enabled() {
                    self.trace.record(
                        now,
                        "card",
                        tk::POST,
                        Some(desc.msg.span()),
                        TracePayload::Msg { len: desc.len },
                    );
                }
                let packet = ApePacket::get_request(
                    desc.peer,
                    self.coord,
                    desc.msg,
                    desc.peer_vaddr,
                    desc.len,
                    desc.local_vaddr,
                );
                // Descriptor decode + request-header build on the Nios,
                // then the header enters the TX FIFO like a staged packet
                // and rides the ordinary drain/link/retransmit path.
                let (_s, ready) = self.nios.run(now, self.cfg.get_req_nios);
                out.push(
                    ready.since(now),
                    CardOut::ToSelf(CardIn::PushReady {
                        job: GET_REQ_JOB,
                        packet,
                    }),
                );
            }
            CardIn::GetServe { desc } => {
                self.submit_tx(desc, true, now, out);
            }
            CardIn::FetchArrived { job, offset, len } => {
                if len > 0 {
                    self.outstanding_total = self.outstanding_total.saturating_sub(len as u64);
                    self.staged_pending += len as u64;
                    if let Some(j) = self.tx_jobs.get_mut(&job) {
                        j.plan.arrived_bytes(len as u64);
                        self.stats.tx_bytes_fetched += len as u64;
                        if self.trace.enabled() {
                            self.trace.record(
                                now,
                                "card",
                                tk::FETCH,
                                Some(j.desc.msg.span()),
                                TracePayload::Bytes { len: len as u64 },
                            );
                        }
                    }
                    self.stage_packets(job, offset, len, now, out);
                } else if self.tx_jobs.get(&job).is_some_and(|j| j.desc.len == 0) {
                    // The zero-length sentinel packet.
                    self.stage_packets(job, 0, 0, now, out);
                }
                self.issue_fetches(job, now, out);
            }
            CardIn::PushReady { job, packet } => {
                self.try_push(job, packet, now, out);
            }
            CardIn::DrainNext => {
                self.draining = false;
                while let Some((job_id, packet)) = self.push_wait.pop_front() {
                    if self.tx_fifo.fits(packet.wire_bytes()) {
                        self.try_push(job_id, packet, now, out);
                    } else {
                        self.push_wait.push_front((job_id, packet));
                        break;
                    }
                }
                self.kick_drain(now, out);
                // Sorted: HashMap iteration order is seeded per process,
                // and the fetch-issue order below contends for the PCIe
                // fabric — unsorted it leaks hasher state into timing.
                let mut jobs: Vec<u32> = self.tx_jobs.keys().copied().collect();
                jobs.sort_unstable();
                for j in jobs {
                    self.issue_fetches(j, now, out);
                }
            }
            CardIn::LinkRx { port, msg } => {
                let pi = port.index();
                if self.cable_cut[pi] || self.port_dead[pi] {
                    return; // frames in flight when the cable died are lost
                }
                self.probes[pi] = 0; // any ingress traffic is proof of life
                match msg {
                    LinkMsg::Data(frame) => self.link_rx_data(port, frame, now, out),
                    LinkMsg::Ack { upto } => self.handle_ack(port, upto, now, out),
                    LinkMsg::Nak { expect } => self.handle_nak(port, expect, now, out),
                    LinkMsg::Ping { nonce } => {
                        self.send_control(port, LinkMsg::Pong { nonce }, out)
                    }
                    // The probe-counter reset above was the whole point.
                    LinkMsg::Pong { .. } => {}
                    LinkMsg::LinkDown { origin, dir } => {
                        self.handle_link_down(port, origin, dir, now, out)
                    }
                }
            }
            CardIn::LinkTimeout { port, epoch } => {
                self.handle_timeout(port, epoch, now, out);
            }
            CardIn::AdminLinkDown { port } => {
                let pi = port.index();
                if !self.cable_cut[pi] {
                    self.cable_cut[pi] = true;
                    // The kill schedule arms the fault plane; from here on
                    // frames are windowed and timers run, so the keepalive
                    // detector can escalate.
                    self.fault_active = true;
                }
            }
            CardIn::RxRingPop { n } => self.rx_ring_pop(n, now, out),
        }
    }
}

impl Drop for Card {
    fn drop(&mut self) {
        // Publish this card's lifetime reliability counters into the
        // process-wide registry (under the [`metrics`] ids), so a driver
        // that runs many simulations (`repro-all`) can report aggregate
        // retransmission/degradation activity without keeping any cluster
        // alive. Clean cards publish nothing, so fault-free runs touch no
        // shared state.
        let s = &self.stats;
        let hard = s.links_dead
            + s.detours
            + s.unreachable_drops
            + s.requeued
            + s.rx_dup_fragments
            + s.rx_ring_stalls;
        if !s.link_sums().is_clean() || hard > 0 {
            self.publish_link_metrics(apenet_obs::global());
        }
    }
}
