//! GPU_P2P_TX fetch planning: how much GPU data each engine generation
//! keeps in flight.
//!
//! * **v1** — "able to process a single packet request of up to 4 KB":
//!   one outstanding chunk, each preceded by Nios software work.
//! * **v2** — "an hardware acceleration block which generates the read
//!   requests … a pre-fetch logic which attempts to hide the response
//!   latency": one prefetch *window* outstanding at a time (block-wise,
//!   "related to the size of the transmission buffers").
//! * **v3** — "the new flow-control block is able to pre-fetch an
//!   unlimited amount of data so as to keep the GPU read request queue
//!   full, while at the same time back-reacting to almost-full conditions
//!   of the different on-board temporary buffers": continuous chunking
//!   gated by FIFO occupancy.

use crate::config::GpuTxVersion;
use crate::packet::APE_MAX_PAYLOAD;

/// The fetch-planning state of one in-flight GPU-source message.
#[derive(Debug, Clone)]
pub struct FetchPlan {
    version: GpuTxVersion,
    window: u64,
    /// Total message bytes.
    pub total: u64,
    /// Bytes whose read requests have been issued.
    pub requested: u64,
    /// Bytes that have arrived from the GPU.
    pub arrived: u64,
}

impl FetchPlan {
    /// Plan a fetch of `total` bytes with the given engine generation and
    /// prefetch window.
    pub fn new(version: GpuTxVersion, window: u64, total: u64) -> Self {
        assert!(window > 0);
        FetchPlan {
            version,
            window,
            total,
            requested: 0,
            arrived: 0,
        }
    }

    /// Bytes in flight (requested, not yet arrived).
    pub fn outstanding(&self) -> u64 {
        self.requested - self.arrived
    }

    /// True when every byte has arrived.
    pub fn done(&self) -> bool {
        self.arrived == self.total
    }

    /// Decide the size of the next read to issue, given how many bytes of
    /// staging space are free downstream and whether the TX FIFO asserts
    /// almost-full. Returns `None` when nothing should be issued now.
    pub fn next_issue(&self, staging_free: u64, almost_full: bool) -> Option<u64> {
        let remaining = self.total - self.requested;
        if remaining == 0 {
            return None;
        }
        match self.version {
            GpuTxVersion::V1 => {
                // One chunk of ≤4 KB outstanding at a time. Never emit a
                // runt chunk because of momentary FIFO pressure: wait for
                // space instead, so packets stay page-aligned.
                if self.outstanding() > 0 {
                    return None;
                }
                let n = remaining.min(APE_MAX_PAYLOAD as u64);
                (n <= staging_free).then_some(n)
            }
            GpuTxVersion::V2 => {
                // Block-wise: a whole window, only when the previous one
                // fully arrived and it fits downstream.
                if self.outstanding() > 0 {
                    return None;
                }
                let n = remaining.min(self.window);
                (n <= staging_free && n > 0).then_some(n)
            }
            GpuTxVersion::V3 => {
                // Continuous chunks while the in-flight cap and the FIFO
                // watermark allow.
                if almost_full || self.outstanding() >= self.window {
                    return None;
                }
                // Full packets only (the message tail may be shorter):
                // issuing runt chunks under FIFO pressure would fragment
                // the stream into sub-4K packets and waste Nios slots.
                let n = remaining.min(APE_MAX_PAYLOAD as u64);
                (n <= staging_free).then_some(n)
            }
        }
    }

    /// Record that a read of `bytes` was issued.
    pub fn issued(&mut self, bytes: u64) {
        self.requested += bytes;
        debug_assert!(self.requested <= self.total);
    }

    /// Record that `bytes` arrived from the GPU.
    pub fn arrived_bytes(&mut self, bytes: u64) {
        self.arrived += bytes;
        debug_assert!(self.arrived <= self.requested);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREE: u64 = 1 << 20;

    #[test]
    fn v1_single_4k_chunk() {
        let mut p = FetchPlan::new(GpuTxVersion::V1, 4096, 10_000);
        assert_eq!(p.next_issue(FREE, false), Some(4096));
        p.issued(4096);
        assert_eq!(p.next_issue(FREE, false), None, "single outstanding");
        p.arrived_bytes(4096);
        assert_eq!(p.next_issue(FREE, false), Some(4096));
        p.issued(4096);
        p.arrived_bytes(4096);
        assert_eq!(p.next_issue(FREE, false), Some(10_000 - 8192), "tail");
        p.issued(10_000 - 8192);
        p.arrived_bytes(10_000 - 8192);
        assert!(p.done());
        assert_eq!(p.next_issue(FREE, false), None);
    }

    #[test]
    fn v2_blockwise_window() {
        let mut p = FetchPlan::new(GpuTxVersion::V2, 16 * 1024, 100 * 1024);
        assert_eq!(p.next_issue(FREE, false), Some(16 * 1024));
        p.issued(16 * 1024);
        p.arrived_bytes(8 * 1024);
        assert_eq!(p.next_issue(FREE, false), None, "window not complete");
        p.arrived_bytes(8 * 1024);
        assert_eq!(p.next_issue(FREE, false), Some(16 * 1024));
        // Window must fit the free staging space.
        assert_eq!(p.next_issue(8 * 1024, false), None);
    }

    #[test]
    fn v2_ignores_almost_full_flag() {
        // v2 has no flow-control feedback; only space gating applies.
        let p = FetchPlan::new(GpuTxVersion::V2, 4096, 4096);
        assert_eq!(p.next_issue(FREE, true), Some(4096));
    }

    #[test]
    fn v3_pipelines_until_cap_or_watermark() {
        let mut p = FetchPlan::new(GpuTxVersion::V3, 64 * 1024, 1 << 20);
        let mut issued = 0;
        while let Some(n) = p.next_issue(FREE, false) {
            p.issued(n);
            issued += n;
            if issued >= 64 * 1024 {
                break;
            }
        }
        assert_eq!(p.outstanding(), 64 * 1024, "in-flight cap reached");
        assert_eq!(p.next_issue(FREE, false), None);
        // Back-pressure pauses issuing even with outstanding room.
        p.arrived_bytes(4096);
        assert_eq!(p.next_issue(FREE, true), None, "almost-full pauses v3");
        assert_eq!(p.next_issue(FREE, false), Some(4096));
    }

    #[test]
    fn zero_length_message_is_immediately_done() {
        let p = FetchPlan::new(GpuTxVersion::V3, 4096, 0);
        assert!(p.done());
        assert_eq!(p.next_issue(FREE, false), None);
    }
}
