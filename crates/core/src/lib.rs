//! # apenet-core — the APEnet+ card
//!
//! The paper's prototype: an FPGA (Altera Stratix IV) network card for a 3D
//! torus interconnect, with a PCIe Gen2 x8 host interface and direct
//! peer-to-peer access to NVIDIA GPUs. The model reproduces the structures
//! the paper identifies as performance-relevant:
//!
//! * [`coord`] — 3D torus coordinates and the dimension-ordered router's
//!   next-hop function;
//! * [`packet`] — the APEnet+ packet format (header with destination
//!   coordinates and 64-bit destination virtual address, ≤4 KB payload);
//! * [`torus`] — the serializing torus links (28 Gbps in the benchmark
//!   setups, 20 Gbps in the HSG runs);
//! * [`nios`] — the Nios II micro-controller as a serial task server, plus
//!   the data structures its firmware maintains: the `BUF_LIST` (linear
//!   traversal!) and the 4-level `GPU_V2P` page table;
//! * [`gpu_tx`] — the three generations of the GPU memory reading engine
//!   (`GPU_P2P_TX` v1/v2/v3) whose evolution Figs. 4–5 trace;
//! * [`card`] — the assembled card: TX/RX datapaths, router, loop-back and
//!   flush-TX test modes.

pub mod card;
pub mod config;
pub mod coord;
pub mod gpu_tx;
pub mod nios;
pub mod packet;
pub mod torus;

pub use card::{Card, CardIn, CardOut, CardShared, GpuHandle};
pub use config::{CardConfig, GpuTxVersion};
pub use coord::{Coord, TorusDims};
pub use packet::{ApePacket, APE_MAX_PAYLOAD};
