//! 3D torus coordinates and dimension-ordered routing.
//!
//! "The Router implements a dimension-ordered static routing algorithm and
//! directly controls an 8-ports switch, with 6 ports connecting the
//! external torus link blocks (X+, X−, Y+, Y−, Z+, Z−) and 2 local packet
//! injection/extraction ports" (§III.B).

use std::fmt;

/// A node position on the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// X position.
    pub x: u8,
    /// Y position.
    pub y: u8,
    /// Z position.
    pub z: u8,
}

impl Coord {
    /// Construct a coordinate.
    pub const fn new(x: u8, y: u8, z: u8) -> Self {
        Coord { x, y, z }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// The six torus link directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// X+.
    Xp,
    /// X−.
    Xm,
    /// Y+.
    Yp,
    /// Y−.
    Ym,
    /// Z+.
    Zp,
    /// Z−.
    Zm,
}

impl LinkDir {
    /// All six directions in port order.
    pub const ALL: [LinkDir; 6] = [
        LinkDir::Xp,
        LinkDir::Xm,
        LinkDir::Yp,
        LinkDir::Ym,
        LinkDir::Zp,
        LinkDir::Zm,
    ];

    /// Port index (0..6).
    pub const fn index(self) -> usize {
        match self {
            LinkDir::Xp => 0,
            LinkDir::Xm => 1,
            LinkDir::Yp => 2,
            LinkDir::Ym => 3,
            LinkDir::Zp => 4,
            LinkDir::Zm => 5,
        }
    }

    /// The direction a packet arrives from when sent along `self`.
    pub const fn opposite(self) -> LinkDir {
        match self {
            LinkDir::Xp => LinkDir::Xm,
            LinkDir::Xm => LinkDir::Xp,
            LinkDir::Yp => LinkDir::Ym,
            LinkDir::Ym => LinkDir::Yp,
            LinkDir::Zp => LinkDir::Zm,
            LinkDir::Zm => LinkDir::Zp,
        }
    }
}

/// Torus dimensions, e.g. the paper's 4×2×1 Cluster I.
///
/// ```
/// use apenet_core::coord::{Coord, TorusDims};
///
/// let dims = TorusDims::new(4, 2, 1); // Cluster I
/// // Dimension-ordered routing corrects X before Y:
/// let mut at = Coord::new(0, 0, 0);
/// let dst = Coord::new(3, 1, 0);
/// let mut hops = 0;
/// while let Some(dir) = dims.next_hop(at, dst) {
///     at = dims.neighbor(at, dir);
///     hops += 1;
/// }
/// assert_eq!(at, dst);
/// assert_eq!(hops, dims.hops(Coord::new(0, 0, 0), dst)); // 1 (wrap) + 1
/// assert_eq!(hops, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusDims {
    /// Ring length along X.
    pub x: u8,
    /// Ring length along Y.
    pub y: u8,
    /// Ring length along Z.
    pub z: u8,
}

impl TorusDims {
    /// Construct torus dimensions (each ≥ 1).
    pub const fn new(x: u8, y: u8, z: u8) -> Self {
        assert!(x >= 1 && y >= 1 && z >= 1);
        TorusDims { x, y, z }
    }

    /// Number of nodes.
    pub const fn nodes(self) -> usize {
        self.x as usize * self.y as usize * self.z as usize
    }

    /// Linear rank of a coordinate (x fastest).
    pub fn rank_of(self, c: Coord) -> usize {
        c.x as usize + self.x as usize * (c.y as usize + self.y as usize * c.z as usize)
    }

    /// Coordinate of a linear rank.
    pub fn coord_of(self, rank: usize) -> Coord {
        let x = (rank % self.x as usize) as u8;
        let y = ((rank / self.x as usize) % self.y as usize) as u8;
        let z = (rank / (self.x as usize * self.y as usize)) as u8;
        assert!(z < self.z, "rank out of range");
        Coord { x, y, z }
    }

    /// The neighbour of `c` in direction `d` (with wrap-around).
    pub fn neighbor(self, c: Coord, d: LinkDir) -> Coord {
        let step = |v: u8, n: u8, up: bool| -> u8 {
            if up {
                if v + 1 == n {
                    0
                } else {
                    v + 1
                }
            } else if v == 0 {
                n - 1
            } else {
                v - 1
            }
        };
        match d {
            LinkDir::Xp => Coord {
                x: step(c.x, self.x, true),
                ..c
            },
            LinkDir::Xm => Coord {
                x: step(c.x, self.x, false),
                ..c
            },
            LinkDir::Yp => Coord {
                y: step(c.y, self.y, true),
                ..c
            },
            LinkDir::Ym => Coord {
                y: step(c.y, self.y, false),
                ..c
            },
            LinkDir::Zp => Coord {
                z: step(c.z, self.z, true),
                ..c
            },
            LinkDir::Zm => Coord {
                z: step(c.z, self.z, false),
                ..c
            },
        }
    }

    /// Signed shortest displacement from `a` to `b` along a ring of
    /// length `n` (positive = plus direction; ties go to plus).
    fn ring_delta(a: u8, b: u8, n: u8) -> i16 {
        let fwd = (b as i16 - a as i16).rem_euclid(n as i16);
        let bwd = fwd - n as i16;
        if fwd <= -bwd {
            fwd
        } else {
            bwd
        }
    }

    /// The dimension-ordered (X, then Y, then Z) next hop from `at` toward
    /// `dst`; `None` when `at == dst`.
    pub fn next_hop(self, at: Coord, dst: Coord) -> Option<LinkDir> {
        if at == dst {
            return None;
        }
        let dx = Self::ring_delta(at.x, dst.x, self.x);
        if dx != 0 {
            return Some(if dx > 0 { LinkDir::Xp } else { LinkDir::Xm });
        }
        let dy = Self::ring_delta(at.y, dst.y, self.y);
        if dy != 0 {
            return Some(if dy > 0 { LinkDir::Yp } else { LinkDir::Ym });
        }
        let dz = Self::ring_delta(at.z, dst.z, self.z);
        if dz != 0 {
            return Some(if dz > 0 { LinkDir::Zp } else { LinkDir::Zm });
        }
        None
    }

    /// Number of hops on the dimension-ordered route from `a` to `b`.
    pub fn hops(self, a: Coord, b: Coord) -> u32 {
        Self::ring_delta(a.x, b.x, self.x).unsigned_abs() as u32
            + Self::ring_delta(a.y, b.y, self.y).unsigned_abs() as u32
            + Self::ring_delta(a.z, b.z, self.z).unsigned_abs() as u32
    }

    /// All coordinates, in rank order.
    pub fn iter(self) -> impl Iterator<Item = Coord> {
        (0..self.nodes()).map(move |r| self.coord_of(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: TorusDims = TorusDims::new(4, 2, 1); // the paper's Cluster I

    #[test]
    fn rank_coord_roundtrip() {
        for r in 0..C1.nodes() {
            assert_eq!(C1.rank_of(C1.coord_of(r)), r);
        }
        assert_eq!(C1.nodes(), 8);
    }

    #[test]
    fn neighbors_wrap() {
        let d = TorusDims::new(4, 2, 1);
        let c = Coord::new(3, 0, 0);
        assert_eq!(d.neighbor(c, LinkDir::Xp), Coord::new(0, 0, 0));
        assert_eq!(
            d.neighbor(Coord::new(0, 0, 0), LinkDir::Xm),
            Coord::new(3, 0, 0)
        );
        assert_eq!(d.neighbor(c, LinkDir::Yp), Coord::new(3, 1, 0));
        assert_eq!(d.neighbor(c, LinkDir::Ym), Coord::new(3, 1, 0), "ring of 2");
        // Z ring of 1: neighbour is self.
        assert_eq!(d.neighbor(c, LinkDir::Zp), c);
    }

    #[test]
    fn neighbor_opposite_inverts() {
        let d = TorusDims::new(4, 3, 2);
        for c in d.iter() {
            for dir in LinkDir::ALL {
                let n = d.neighbor(c, dir);
                assert_eq!(d.neighbor(n, dir.opposite()), c, "{c} {dir:?}");
            }
        }
    }

    #[test]
    fn dimension_order_x_first() {
        let d = TorusDims::new(4, 2, 1);
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(2, 1, 0);
        // X distance 2 (either way); ties go plus. Then Y.
        assert_eq!(d.next_hop(a, b), Some(LinkDir::Xp));
        let mid = d.neighbor(a, LinkDir::Xp);
        assert_eq!(d.next_hop(mid, b), Some(LinkDir::Xp));
        let mid2 = d.neighbor(mid, LinkDir::Xp);
        assert_eq!(d.next_hop(mid2, b), Some(LinkDir::Yp));
        assert_eq!(d.next_hop(b, b), None);
    }

    #[test]
    fn shortest_direction_chosen() {
        let d = TorusDims::new(4, 1, 1);
        // 0 -> 3 is one hop backwards.
        assert_eq!(
            d.next_hop(Coord::new(0, 0, 0), Coord::new(3, 0, 0)),
            Some(LinkDir::Xm)
        );
        assert_eq!(d.hops(Coord::new(0, 0, 0), Coord::new(3, 0, 0)), 1);
        assert_eq!(d.hops(Coord::new(0, 0, 0), Coord::new(2, 0, 0)), 2);
    }

    #[test]
    fn route_always_terminates() {
        let d = TorusDims::new(4, 2, 3);
        for a in d.iter() {
            for b in d.iter() {
                let mut at = a;
                let mut steps = 0;
                while let Some(h) = d.next_hop(at, b) {
                    at = d.neighbor(at, h);
                    steps += 1;
                    assert!(steps <= 16, "routing loop {a}->{b}");
                }
                assert_eq!(at, b);
                assert_eq!(steps, d.hops(a, b), "{a}->{b}");
            }
        }
    }
}
