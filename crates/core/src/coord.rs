//! 3D torus coordinates and dimension-ordered routing.
//!
//! "The Router implements a dimension-ordered static routing algorithm and
//! directly controls an 8-ports switch, with 6 ports connecting the
//! external torus link blocks (X+, X−, Y+, Y−, Z+, Z−) and 2 local packet
//! injection/extraction ports" (§III.B).

use std::fmt;

/// A node position on the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// X position.
    pub x: u8,
    /// Y position.
    pub y: u8,
    /// Z position.
    pub z: u8,
}

impl Coord {
    /// Construct a coordinate.
    pub const fn new(x: u8, y: u8, z: u8) -> Self {
        Coord { x, y, z }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// The six torus link directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkDir {
    /// X+.
    Xp,
    /// X−.
    Xm,
    /// Y+.
    Yp,
    /// Y−.
    Ym,
    /// Z+.
    Zp,
    /// Z−.
    Zm,
}

impl LinkDir {
    /// All six directions in port order.
    pub const ALL: [LinkDir; 6] = [
        LinkDir::Xp,
        LinkDir::Xm,
        LinkDir::Yp,
        LinkDir::Ym,
        LinkDir::Zp,
        LinkDir::Zm,
    ];

    /// Port index (0..6).
    pub const fn index(self) -> usize {
        match self {
            LinkDir::Xp => 0,
            LinkDir::Xm => 1,
            LinkDir::Yp => 2,
            LinkDir::Ym => 3,
            LinkDir::Zp => 4,
            LinkDir::Zm => 5,
        }
    }

    /// The direction a packet arrives from when sent along `self`.
    pub const fn opposite(self) -> LinkDir {
        match self {
            LinkDir::Xp => LinkDir::Xm,
            LinkDir::Xm => LinkDir::Xp,
            LinkDir::Yp => LinkDir::Ym,
            LinkDir::Ym => LinkDir::Yp,
            LinkDir::Zp => LinkDir::Zm,
            LinkDir::Zm => LinkDir::Zp,
        }
    }
}

/// The mesh-wide dead-link map a fault-aware router consults: the set of
/// `(card, direction)` ports known dead. Cables die whole, so every
/// failure appears twice — once per endpoint orientation — which lets a
/// router check only the transmit side of each hop.
pub type FaultMap = std::collections::BTreeSet<(Coord, LinkDir)>;

/// Outcome of fault-aware routing at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChoice {
    /// The strict dimension-order hop; its whole ring arc is dead-free.
    Hop(LinkDir),
    /// Misroute: the shortest arc crosses a dead link, so the packet goes
    /// the long way round the same ring.
    Detour(LinkDir),
    /// Both arcs of the first unresolved ring are cut; the destination
    /// cannot be reached under per-dimension routing (see the documented
    /// limitation on [`TorusDims::next_hop_faulty`]).
    Unreachable,
    /// Already at the destination.
    Local,
}

/// Torus dimensions, e.g. the paper's 4×2×1 Cluster I.
///
/// ```
/// use apenet_core::coord::{Coord, TorusDims};
///
/// let dims = TorusDims::new(4, 2, 1); // Cluster I
/// // Dimension-ordered routing corrects X before Y:
/// let mut at = Coord::new(0, 0, 0);
/// let dst = Coord::new(3, 1, 0);
/// let mut hops = 0;
/// while let Some(dir) = dims.next_hop(at, dst) {
///     at = dims.neighbor(at, dir);
///     hops += 1;
/// }
/// assert_eq!(at, dst);
/// assert_eq!(hops, dims.hops(Coord::new(0, 0, 0), dst)); // 1 (wrap) + 1
/// assert_eq!(hops, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusDims {
    /// Ring length along X.
    pub x: u8,
    /// Ring length along Y.
    pub y: u8,
    /// Ring length along Z.
    pub z: u8,
}

impl TorusDims {
    /// Construct torus dimensions (each ≥ 1).
    pub const fn new(x: u8, y: u8, z: u8) -> Self {
        assert!(x >= 1 && y >= 1 && z >= 1);
        TorusDims { x, y, z }
    }

    /// Number of nodes.
    pub const fn nodes(self) -> usize {
        self.x as usize * self.y as usize * self.z as usize
    }

    /// Linear rank of a coordinate (x fastest).
    pub fn rank_of(self, c: Coord) -> usize {
        c.x as usize + self.x as usize * (c.y as usize + self.y as usize * c.z as usize)
    }

    /// Coordinate of a linear rank.
    pub fn coord_of(self, rank: usize) -> Coord {
        let x = (rank % self.x as usize) as u8;
        let y = ((rank / self.x as usize) % self.y as usize) as u8;
        let z = (rank / (self.x as usize * self.y as usize)) as u8;
        assert!(z < self.z, "rank out of range");
        Coord { x, y, z }
    }

    /// The neighbour of `c` in direction `d` (with wrap-around).
    pub fn neighbor(self, c: Coord, d: LinkDir) -> Coord {
        let step = |v: u8, n: u8, up: bool| -> u8 {
            if up {
                if v + 1 == n {
                    0
                } else {
                    v + 1
                }
            } else if v == 0 {
                n - 1
            } else {
                v - 1
            }
        };
        match d {
            LinkDir::Xp => Coord {
                x: step(c.x, self.x, true),
                ..c
            },
            LinkDir::Xm => Coord {
                x: step(c.x, self.x, false),
                ..c
            },
            LinkDir::Yp => Coord {
                y: step(c.y, self.y, true),
                ..c
            },
            LinkDir::Ym => Coord {
                y: step(c.y, self.y, false),
                ..c
            },
            LinkDir::Zp => Coord {
                z: step(c.z, self.z, true),
                ..c
            },
            LinkDir::Zm => Coord {
                z: step(c.z, self.z, false),
                ..c
            },
        }
    }

    /// Signed shortest displacement from `a` to `b` along a ring of
    /// length `n` (positive = plus direction; ties go to plus).
    fn ring_delta(a: u8, b: u8, n: u8) -> i16 {
        let fwd = (b as i16 - a as i16).rem_euclid(n as i16);
        let bwd = fwd - n as i16;
        if fwd <= -bwd {
            fwd
        } else {
            bwd
        }
    }

    /// The dimension-ordered (X, then Y, then Z) next hop from `at` toward
    /// `dst`; `None` when `at == dst`.
    pub fn next_hop(self, at: Coord, dst: Coord) -> Option<LinkDir> {
        if at == dst {
            return None;
        }
        let dx = Self::ring_delta(at.x, dst.x, self.x);
        if dx != 0 {
            return Some(if dx > 0 { LinkDir::Xp } else { LinkDir::Xm });
        }
        let dy = Self::ring_delta(at.y, dst.y, self.y);
        if dy != 0 {
            return Some(if dy > 0 { LinkDir::Yp } else { LinkDir::Ym });
        }
        let dz = Self::ring_delta(at.z, dst.z, self.z);
        if dz != 0 {
            return Some(if dz > 0 { LinkDir::Zp } else { LinkDir::Zm });
        }
        None
    }

    /// True when walking from `at` along `dir` until the coordinate in
    /// `dir`'s dimension matches `dst`'s crosses no dead port.
    fn arc_clear(self, at: Coord, dst: Coord, dir: LinkDir, faults: &FaultMap) -> bool {
        let aligned = |a: Coord, b: Coord| match dir {
            LinkDir::Xp | LinkDir::Xm => a.x == b.x,
            LinkDir::Yp | LinkDir::Ym => a.y == b.y,
            LinkDir::Zp | LinkDir::Zm => a.z == b.z,
        };
        let mut c = at;
        while !aligned(c, dst) {
            if faults.contains(&(c, dir)) {
                return false;
            }
            c = self.neighbor(c, dir);
        }
        true
    }

    /// Fault-aware next hop: dimension order exactly as
    /// [`Self::next_hop`], but each ring is traversed in a direction whose
    /// whole arc to the target coordinate is free of dead links. The
    /// shortest (ties-plus) direction wins when clear — so an empty fault
    /// map reproduces strict dimension-order routing hop for hop — and the
    /// long way round the ring is the detour otherwise.
    ///
    /// The rule is deterministic and, once every node shares the fault
    /// map, loop-free: a clear arc's sub-arcs are clear, so each node
    /// downstream keeps choosing the same direction and the remaining arc
    /// shrinks every hop.
    ///
    /// Known limitation, by design: detours never leave the failing ring's
    /// dimension. A ring cut on both arcs reports
    /// [`RouteChoice::Unreachable`] even when a path exists through
    /// another dimension — matching the per-dimension fault bypass of the
    /// APElink fault-management papers rather than full adaptive routing.
    pub fn next_hop_faulty(self, at: Coord, dst: Coord, faults: &FaultMap) -> RouteChoice {
        if at == dst {
            return RouteChoice::Local;
        }
        let rings = [
            (Self::ring_delta(at.x, dst.x, self.x), LinkDir::Xp),
            (Self::ring_delta(at.y, dst.y, self.y), LinkDir::Yp),
            (Self::ring_delta(at.z, dst.z, self.z), LinkDir::Zp),
        ];
        for (delta, plus) in rings {
            if delta == 0 {
                continue;
            }
            let preferred = if delta > 0 { plus } else { plus.opposite() };
            if self.arc_clear(at, dst, preferred, faults) {
                return RouteChoice::Hop(preferred);
            }
            let other = preferred.opposite();
            if self.arc_clear(at, dst, other, faults) {
                return RouteChoice::Detour(other);
            }
            return RouteChoice::Unreachable;
        }
        unreachable!("at != dst implies a non-zero ring delta")
    }

    /// Number of hops on the dimension-ordered route from `a` to `b`.
    pub fn hops(self, a: Coord, b: Coord) -> u32 {
        Self::ring_delta(a.x, b.x, self.x).unsigned_abs() as u32
            + Self::ring_delta(a.y, b.y, self.y).unsigned_abs() as u32
            + Self::ring_delta(a.z, b.z, self.z).unsigned_abs() as u32
    }

    /// All coordinates, in rank order.
    pub fn iter(self) -> impl Iterator<Item = Coord> {
        (0..self.nodes()).map(move |r| self.coord_of(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: TorusDims = TorusDims::new(4, 2, 1); // the paper's Cluster I

    #[test]
    fn rank_coord_roundtrip() {
        for r in 0..C1.nodes() {
            assert_eq!(C1.rank_of(C1.coord_of(r)), r);
        }
        assert_eq!(C1.nodes(), 8);
    }

    #[test]
    fn neighbors_wrap() {
        let d = TorusDims::new(4, 2, 1);
        let c = Coord::new(3, 0, 0);
        assert_eq!(d.neighbor(c, LinkDir::Xp), Coord::new(0, 0, 0));
        assert_eq!(
            d.neighbor(Coord::new(0, 0, 0), LinkDir::Xm),
            Coord::new(3, 0, 0)
        );
        assert_eq!(d.neighbor(c, LinkDir::Yp), Coord::new(3, 1, 0));
        assert_eq!(d.neighbor(c, LinkDir::Ym), Coord::new(3, 1, 0), "ring of 2");
        // Z ring of 1: neighbour is self.
        assert_eq!(d.neighbor(c, LinkDir::Zp), c);
    }

    #[test]
    fn neighbor_opposite_inverts() {
        let d = TorusDims::new(4, 3, 2);
        for c in d.iter() {
            for dir in LinkDir::ALL {
                let n = d.neighbor(c, dir);
                assert_eq!(d.neighbor(n, dir.opposite()), c, "{c} {dir:?}");
            }
        }
    }

    #[test]
    fn dimension_order_x_first() {
        let d = TorusDims::new(4, 2, 1);
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(2, 1, 0);
        // X distance 2 (either way); ties go plus. Then Y.
        assert_eq!(d.next_hop(a, b), Some(LinkDir::Xp));
        let mid = d.neighbor(a, LinkDir::Xp);
        assert_eq!(d.next_hop(mid, b), Some(LinkDir::Xp));
        let mid2 = d.neighbor(mid, LinkDir::Xp);
        assert_eq!(d.next_hop(mid2, b), Some(LinkDir::Yp));
        assert_eq!(d.next_hop(b, b), None);
    }

    #[test]
    fn shortest_direction_chosen() {
        let d = TorusDims::new(4, 1, 1);
        // 0 -> 3 is one hop backwards.
        assert_eq!(
            d.next_hop(Coord::new(0, 0, 0), Coord::new(3, 0, 0)),
            Some(LinkDir::Xm)
        );
        assert_eq!(d.hops(Coord::new(0, 0, 0), Coord::new(3, 0, 0)), 1);
        assert_eq!(d.hops(Coord::new(0, 0, 0), Coord::new(2, 0, 0)), 2);
    }

    /// Both endpoint orientations of the cable leaving `c` along `d`.
    fn kill(d: TorusDims, c: Coord, dir: LinkDir) -> FaultMap {
        let mut m = FaultMap::new();
        m.insert((c, dir));
        m.insert((d.neighbor(c, dir), dir.opposite()));
        m
    }

    #[test]
    fn empty_fault_map_is_strict_dor() {
        let d = TorusDims::new(4, 2, 3);
        let none = FaultMap::new();
        for a in d.iter() {
            for b in d.iter() {
                let expect = match d.next_hop(a, b) {
                    Some(h) => RouteChoice::Hop(h),
                    None => RouteChoice::Local,
                };
                assert_eq!(d.next_hop_faulty(a, b, &none), expect, "{a}->{b}");
            }
        }
    }

    #[test]
    fn detour_goes_the_long_way_round() {
        let d = TorusDims::new(4, 1, 1);
        // 0 -> 2 prefers Xp (ties go plus); cutting 1--2 forces the
        // minus arc 0 -> 3 -> 2.
        let faults = kill(d, Coord::new(1, 0, 0), LinkDir::Xp);
        assert_eq!(
            d.next_hop_faulty(Coord::new(0, 0, 0), Coord::new(2, 0, 0), &faults),
            RouteChoice::Detour(LinkDir::Xm)
        );
        // Downstream of the detour the choice stays Xm (no oscillation) —
        // at 3 it is even the strict-DOR hop again.
        assert_eq!(
            d.next_hop_faulty(Coord::new(3, 0, 0), Coord::new(2, 0, 0), &faults),
            RouteChoice::Hop(LinkDir::Xm)
        );
        // Traffic not crossing the cut is untouched.
        assert_eq!(
            d.next_hop_faulty(Coord::new(0, 0, 0), Coord::new(1, 0, 0), &faults),
            RouteChoice::Hop(LinkDir::Xp)
        );
    }

    #[test]
    fn two_ring_has_two_distinct_cables() {
        // On a ring of 2 both directions reach the same neighbour over
        // *different* cables: killing one leaves the other usable.
        let d = TorusDims::new(2, 1, 1);
        let faults = kill(d, Coord::new(0, 0, 0), LinkDir::Xp);
        assert_eq!(
            d.next_hop_faulty(Coord::new(0, 0, 0), Coord::new(1, 0, 0), &faults),
            RouteChoice::Detour(LinkDir::Xm)
        );
        // Both cables dead: the ring is cut and the node unreachable.
        let mut both = faults.clone();
        both.extend(kill(d, Coord::new(0, 0, 0), LinkDir::Xm));
        assert_eq!(
            d.next_hop_faulty(Coord::new(0, 0, 0), Coord::new(1, 0, 0), &both),
            RouteChoice::Unreachable
        );
    }

    #[test]
    fn faulty_route_terminates_around_any_single_dead_cable() {
        let d = TorusDims::new(4, 2, 3);
        for fc in d.iter() {
            for fdir in LinkDir::ALL {
                if d.neighbor(fc, fdir) == fc {
                    continue; // ring of 1: no cable
                }
                let faults = kill(d, fc, fdir);
                for a in d.iter() {
                    for b in d.iter() {
                        let mut at = a;
                        let mut steps = 0;
                        loop {
                            match d.next_hop_faulty(at, b, &faults) {
                                RouteChoice::Local => break,
                                RouteChoice::Hop(h) | RouteChoice::Detour(h) => {
                                    assert!(
                                        !faults.contains(&(at, h)),
                                        "routed onto dead link {at} {h:?}"
                                    );
                                    at = d.neighbor(at, h);
                                    steps += 1;
                                    assert!(steps <= 16, "routing loop {a}->{b} cut {fc}{fdir:?}");
                                }
                                RouteChoice::Unreachable => {
                                    panic!("one dead cable partitioned {a}->{b}")
                                }
                            }
                        }
                        assert_eq!(at, b);
                    }
                }
            }
        }
    }

    #[test]
    fn route_always_terminates() {
        let d = TorusDims::new(4, 2, 3);
        for a in d.iter() {
            for b in d.iter() {
                let mut at = a;
                let mut steps = 0;
                while let Some(h) = d.next_hop(at, b) {
                    at = d.neighbor(at, h);
                    steps += 1;
                    assert!(steps <= 16, "routing loop {a}->{b}");
                }
                assert_eq!(at, b);
                assert_eq!(steps, d.hops(a, b), "{a}->{b}");
            }
        }
    }
}
