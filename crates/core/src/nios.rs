//! The Nios II micro-controller and its firmware data structures.
//!
//! "These tasks are currently partly implemented in software running on a
//! micro-controller (Nios II) … The processing time of an incoming GPU
//! data packet is of the order of 3 µs (1.2 GB/s for 4 KB packets) and it
//! is equally dominated by the two main tasks running on the Nios II: the
//! BUF_LIST traversal (which linearly scales with the number of registered
//! buffers) and the address translation (which has constant traversal time
//! thanks to the 4-level page table)" (§IV).
//!
//! The Nios is modelled as a **serial task server**: every firmware task
//! (RX packet processing, GPU-TX control) runs to completion in submission
//! order. Contention between the TX and RX datapaths — the mechanism
//! behind the loop-back bandwidth drop of Table I and the v3 gains of
//! Fig. 5 — emerges from this serialization.

use apenet_gpu::{GpuId, GPU_PAGE_SIZE, HOST_PAGE_SIZE};
use apenet_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// The serial task server.
#[derive(Debug, Clone, Default)]
pub struct Nios {
    busy_until: SimTime,
    busy_total: SimDuration,
    tasks_run: u64,
}

impl Nios {
    /// Idle micro-controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run a task of `cost` submitted at `ready`; returns `(start, end)`.
    pub fn run(&mut self, ready: SimTime, cost: SimDuration) -> (SimTime, SimTime) {
        let start = ready.max(self.busy_until);
        let end = start + cost;
        self.busy_until = end;
        self.busy_total += cost;
        self.tasks_run += 1;
        (start, end)
    }

    /// When the micro-controller next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time (firmware cycle-counter equivalent).
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Number of tasks executed.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run
    }

    /// Forget all state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Buffer kind recorded in the BUF_LIST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufKind {
    /// Host memory buffer.
    Host,
    /// GPU device memory buffer on the given local GPU.
    Gpu(GpuId),
}

/// One registered buffer: "a buffer — either host or GPU, uniquely
/// identified by its (UVA) 64-bit virtual address and process ID — can be
/// the target of a PUT operation coming from another node" (§IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufEntry {
    /// UVA base address.
    pub vaddr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Host or GPU.
    pub kind: BufKind,
    /// Owning process id.
    pub pid: u32,
}

/// The BUF_LIST with its linear traversal cost.
#[derive(Debug, Clone, Default)]
pub struct BufList {
    entries: Vec<BufEntry>,
    base_cost: SimDuration,
    per_entry: SimDuration,
    capacity: Option<usize>,
}

impl BufList {
    /// New list with the calibrated traversal costs: ≈1.5 µs for the
    /// single-buffer benchmark case, growing linearly with the number of
    /// registered buffers (§IV) at ≈0.2 µs per scanned entry.
    pub fn new() -> Self {
        BufList {
            entries: Vec::new(),
            base_cost: SimDuration::from_ns(1300),
            per_entry: SimDuration::from_ns(200),
            capacity: None,
        }
    }

    /// Cap the number of registrations (the real BUF_LIST lives in finite
    /// card memory). `None` — the default — is unbounded.
    pub fn set_capacity(&mut self, cap: Option<usize>) {
        self.capacity = cap;
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// True when a bounded list has no free slot left.
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|cap| self.entries.len() >= cap)
    }

    /// Register a buffer; returns its index.
    ///
    /// Panics if the list is full — callers on the fallible path use
    /// [`BufList::try_register`] instead.
    pub fn register(&mut self, e: BufEntry) -> usize {
        self.try_register(e).expect("BUF_LIST full")
    }

    /// Register a buffer unless the list is at capacity; full lists
    /// reject the registration (typed, no panic) so the host can
    /// unregister something and retry.
    pub fn try_register(&mut self, e: BufEntry) -> Option<usize> {
        if self.is_full() {
            return None;
        }
        self.entries.push(e);
        Some(self.entries.len() - 1)
    }

    /// Remove a registration by base address.
    pub fn unregister(&mut self, vaddr: u64) -> bool {
        match self.entries.iter().position(|e| e.vaddr == vaddr) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Number of registered buffers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no buffers are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Linear scan for the buffer containing `vaddr..vaddr+len`; returns
    /// the entry and the firmware time the traversal took.
    pub fn lookup(&self, vaddr: u64, len: u64) -> (Option<BufEntry>, SimDuration) {
        for (i, e) in self.entries.iter().enumerate() {
            if vaddr >= e.vaddr && vaddr + len <= e.vaddr + e.len {
                let cost = self.base_cost + self.per_entry.times(i as u64 + 1);
                return (Some(*e), cost);
            }
        }
        let cost = self.base_cost + self.per_entry.times(self.entries.len() as u64);
        (None, cost)
    }
}

/// A page descriptor: physical page address plus "additional low-level
/// protocol tokens which are used to physically read and write GPU
/// memory" (§III.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageDesc {
    /// Physical (device-local) page address.
    pub phys: u64,
    /// The opaque P2P protocol token.
    pub token: u64,
}

const LEVEL_BITS: u32 = 9;
const LEVELS: u32 = 4;

#[derive(Debug, Clone, Default)]
struct TableNode {
    children: HashMap<u16, TableNode>,
    leaf: Option<PageDesc>,
}

/// The 4-level GPU_V2P page table — "for each GPU card on the bus, a
/// 4-level GPU V2P page table is maintained, which resolves virtual
/// addresses to GPU page descriptors" (§IV). Walks are constant time.
#[derive(Debug, Clone)]
pub struct GpuV2p {
    root: TableNode,
    walk_cost: SimDuration,
    mapped_pages: u64,
}

impl Default for GpuV2p {
    fn default() -> Self {
        Self::new()
    }
}

impl GpuV2p {
    /// Empty table with the calibrated constant walk cost (≈1.5 µs,
    /// the other half of the 3 µs RX budget).
    pub fn new() -> Self {
        GpuV2p {
            root: TableNode::default(),
            walk_cost: SimDuration::from_ns(1500),
            mapped_pages: 0,
        }
    }

    fn indices(vaddr: u64) -> [u16; LEVELS as usize] {
        let vpn = vaddr / GPU_PAGE_SIZE;
        let mut out = [0u16; LEVELS as usize];
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = LEVEL_BITS * (LEVELS - 1 - i as u32);
            *slot = ((vpn >> shift) & ((1 << LEVEL_BITS) - 1)) as u16;
        }
        out
    }

    /// Map the 64 KB page containing `vaddr` to `desc`.
    pub fn insert(&mut self, vaddr: u64, desc: PageDesc) {
        let idx = Self::indices(vaddr);
        let mut node = &mut self.root;
        for &i in &idx {
            node = node.children.entry(i).or_default();
        }
        if node.leaf.replace(desc).is_none() {
            self.mapped_pages += 1;
        }
    }

    /// Walk the table for `vaddr`; returns the descriptor (offset within
    /// the page preserved by the caller) and the constant walk cost.
    pub fn walk(&self, vaddr: u64) -> (Option<PageDesc>, SimDuration) {
        let idx = Self::indices(vaddr);
        let mut node = &self.root;
        for &i in &idx {
            match node.children.get(&i) {
                Some(n) => node = n,
                None => return (None, self.walk_cost),
            }
        }
        (node.leaf, self.walk_cost)
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }
}

/// The HOST_V2P map: 4 KB host pages, constant lookup.
#[derive(Debug, Clone)]
pub struct HostV2p {
    pages: HashMap<u64, u64>, // vpn -> phys
    walk_cost: SimDuration,
}

impl Default for HostV2p {
    fn default() -> Self {
        Self::new()
    }
}

impl HostV2p {
    /// Empty map with the calibrated walk cost.
    pub fn new() -> Self {
        HostV2p {
            pages: HashMap::new(),
            walk_cost: SimDuration::from_ns(1500),
        }
    }

    /// Map the 4 KB host page containing `vaddr` to `phys`.
    pub fn insert(&mut self, vaddr: u64, phys: u64) {
        self.pages.insert(vaddr / HOST_PAGE_SIZE, phys);
    }

    /// Translate; returns the physical page address and the walk cost.
    pub fn walk(&self, vaddr: u64) -> (Option<u64>, SimDuration) {
        (
            self.pages.get(&(vaddr / HOST_PAGE_SIZE)).copied(),
            self.walk_cost,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nios_serializes_tasks() {
        let mut n = Nios::new();
        let (s1, e1) = n.run(SimTime::ZERO, SimDuration::from_us(3));
        let (s2, e2) = n.run(
            SimTime::ZERO + SimDuration::from_us(1),
            SimDuration::from_us(2),
        );
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2, e1, "second task queues");
        assert_eq!(e2.since(SimTime::ZERO), SimDuration::from_us(5));
        assert_eq!(n.busy_total(), SimDuration::from_us(5));
        assert_eq!(n.tasks_run(), 2);
    }

    #[test]
    fn nios_idle_gap() {
        let mut n = Nios::new();
        n.run(SimTime::ZERO, SimDuration::from_us(1));
        let late = SimTime::ZERO + SimDuration::from_us(10);
        let (s, _) = n.run(late, SimDuration::from_us(1));
        assert_eq!(s, late);
        assert_eq!(
            n.busy_total(),
            SimDuration::from_us(2),
            "idle time not counted"
        );
    }

    #[test]
    fn buflist_linear_cost() {
        let mut bl = BufList::new();
        for i in 0..10u64 {
            bl.register(BufEntry {
                vaddr: i * 0x10000,
                len: 0x10000,
                kind: BufKind::Host,
                pid: 1,
            });
        }
        let (e0, c0) = bl.lookup(0x100, 16);
        let (e9, c9) = bl.lookup(9 * 0x10000 + 5, 16);
        assert!(e0.is_some() && e9.is_some());
        assert!(c9 > c0, "later entries cost more to find");
        assert_eq!(c9 - c0, SimDuration::from_ns(200 * 9));
        let (missing, cm) = bl.lookup(0xFFFF_FFFF, 1);
        assert!(missing.is_none());
        assert_eq!(cm, SimDuration::from_ns(1300 + 200 * 10), "full scan");
        // single-buffer case matches the ~1.5 us calibration
        let mut one = BufList::new();
        one.register(BufEntry {
            vaddr: 0,
            len: 100,
            kind: BufKind::Host,
            pid: 0,
        });
        let (_, c) = one.lookup(0, 1);
        assert_eq!(c, SimDuration::from_ns(1500));
    }

    #[test]
    fn buflist_bounds_checked() {
        let mut bl = BufList::new();
        bl.register(BufEntry {
            vaddr: 0x1000,
            len: 0x1000,
            kind: BufKind::Host,
            pid: 0,
        });
        // A range leaking past the end of the registration must not match.
        let (hit, _) = bl.lookup(0x1800, 0x1000);
        assert!(hit.is_none());
        assert!(bl.unregister(0x1000));
        assert!(!bl.unregister(0x1000));
        assert!(bl.is_empty());
    }

    #[test]
    fn buflist_capacity_rejects_then_recovers() {
        let entry = |vaddr| BufEntry {
            vaddr,
            len: 0x1000,
            kind: BufKind::Host,
            pid: 0,
        };
        let mut bl = BufList::new();
        assert_eq!(bl.capacity(), None, "unbounded by default");
        assert!(!bl.is_full());
        bl.set_capacity(Some(2));
        assert_eq!(bl.try_register(entry(0x1000)), Some(0));
        assert_eq!(bl.try_register(entry(0x2000)), Some(1));
        assert!(bl.is_full());
        assert_eq!(bl.try_register(entry(0x3000)), None, "typed, no panic");
        assert_eq!(bl.len(), 2, "rejected entry left no trace");
        // Unregistering frees a slot and the same registration succeeds.
        assert!(bl.unregister(0x1000));
        assert!(!bl.is_full());
        assert_eq!(bl.try_register(entry(0x3000)), Some(1));
    }

    #[test]
    fn gpu_v2p_roundtrip() {
        let mut pt = GpuV2p::new();
        let base = 0x7000_0000_0000u64;
        for p in 0..64u64 {
            pt.insert(
                base + p * GPU_PAGE_SIZE,
                PageDesc {
                    phys: p * GPU_PAGE_SIZE,
                    token: 0xA9E0,
                },
            );
        }
        assert_eq!(pt.mapped_pages(), 64);
        let (d, cost) = pt.walk(base + 5 * GPU_PAGE_SIZE + 1234);
        assert_eq!(d.unwrap().phys, 5 * GPU_PAGE_SIZE);
        assert_eq!(cost, SimDuration::from_ns(1500));
        let (miss, miss_cost) = pt.walk(base + 1000 * GPU_PAGE_SIZE);
        assert!(miss.is_none());
        assert_eq!(miss_cost, cost, "constant-time walk either way");
    }

    #[test]
    fn gpu_v2p_reinsert_idempotent() {
        let mut pt = GpuV2p::new();
        pt.insert(0, PageDesc { phys: 0, token: 1 });
        pt.insert(0, PageDesc { phys: 0, token: 2 });
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.walk(0).0.unwrap().token, 2, "last mapping wins");
    }

    #[test]
    fn gpu_v2p_distinguishes_distant_addresses() {
        // Addresses that differ only in high level-indices must not alias.
        let mut pt = GpuV2p::new();
        let a = 0u64;
        let b = GPU_PAGE_SIZE << (9 * 3); // differs at the top level
        pt.insert(
            a,
            PageDesc {
                phys: 111,
                token: 0,
            },
        );
        pt.insert(
            b,
            PageDesc {
                phys: 222,
                token: 0,
            },
        );
        assert_eq!(pt.walk(a).0.unwrap().phys, 111);
        assert_eq!(pt.walk(b).0.unwrap().phys, 222);
    }

    #[test]
    fn host_v2p() {
        let mut pt = HostV2p::new();
        pt.insert(0x4000, 0xAAAA000);
        let (p, _) = pt.walk(0x4FFF);
        assert_eq!(p, Some(0xAAAA000));
        assert_eq!(pt.walk(0x5000).0, None);
    }
}
