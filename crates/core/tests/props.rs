//! Property tests for the APEnet+ card building blocks.

use apenet_core::coord::{Coord, TorusDims};
use apenet_core::nios::{BufEntry, BufKind, BufList, GpuV2p, PageDesc};
use apenet_core::packet::{fragments, ApePacket, MsgId, APE_MAX_PAYLOAD};
use apenet_gpu::GPU_PAGE_SIZE;
use apenet_sim::check::{self, Gen};

fn gen_dims(g: &mut Gen) -> TorusDims {
    TorusDims::new(g.u32(1, 6) as u8, g.u32(1, 6) as u8, g.u32(1, 4) as u8)
}

/// Dimension-ordered routing always terminates in exactly `hops()`
/// steps, for every torus shape and coordinate pair.
#[test]
fn routing_terminates() {
    check::check("routing_terminates", |g| {
        let dims = gen_dims(g);
        let a = dims.coord_of(g.usize(0, 120) % dims.nodes());
        let b = dims.coord_of(g.usize(0, 120) % dims.nodes());
        let mut at = a;
        let mut steps = 0;
        while let Some(h) = dims.next_hop(at, b) {
            at = dims.neighbor(at, h);
            steps += 1;
            assert!(steps <= 32, "routing loop {a} -> {b}");
        }
        assert_eq!(at, b);
        assert_eq!(steps, dims.hops(a, b));
        // Routes are never longer than half of each ring summed.
        let bound = (dims.x / 2 + dims.y / 2 + dims.z / 2) as u32;
        assert!(steps <= bound.max(1));
    });
}

/// rank_of/coord_of are inverse bijections.
#[test]
fn rank_coord_bijection() {
    check::check("rank_coord_bijection", |g| {
        let dims = gen_dims(g);
        let mut seen = std::collections::HashSet::new();
        for r in 0..dims.nodes() {
            let c = dims.coord_of(r);
            assert_eq!(dims.rank_of(c), r);
            assert!(seen.insert(c));
        }
    });
}

/// Fragmentation is a contiguous exact partition into ≤4 KB pieces.
#[test]
fn fragments_partition() {
    check::check("fragments_partition", |g| {
        let len = g.u64(0, 1 << 24);
        let mut expect_off = 0u64;
        for (off, l) in fragments(len) {
            assert_eq!(off, expect_off);
            assert!(l > 0 && l <= APE_MAX_PAYLOAD);
            expect_off = off + l as u64;
        }
        assert_eq!(expect_off, len);
    });
}

/// The packet CRC catches any single bit flip in the payload.
#[test]
fn crc_catches_bit_flips() {
    check::check("crc_catches_bit_flips", |g| {
        let payload = g.bytes(1, 2048);
        let flip = g.u64(0, u64::MAX);
        let mut p = ApePacket::new(
            Coord::new(1, 0, 0),
            Coord::new(0, 0, 0),
            MsgId {
                src_rank: 0,
                seq: 1,
            },
            0x1000,
            payload.len() as u64,
            payload,
        );
        assert!(p.verify());
        let bit = (flip as usize) % (p.payload.len() * 8);
        p.payload.make_mut()[bit / 8] ^= 1 << (bit % 8);
        assert!(!p.verify(), "undetected bit flip at {bit}");
    });
}

/// The 4-level page table is a faithful map over arbitrary page sets.
#[test]
fn v2p_faithful() {
    check::check("v2p_faithful", |g| {
        let pages: std::collections::BTreeSet<u64> = {
            let n = g.usize(1, 200);
            (0..n).map(|_| g.u64(0, 1 << 22)).collect()
        };
        let mut pt = GpuV2p::new();
        for &p in &pages {
            pt.insert(
                p * GPU_PAGE_SIZE,
                PageDesc {
                    phys: p * GPU_PAGE_SIZE,
                    token: p,
                },
            );
        }
        assert_eq!(pt.mapped_pages(), pages.len() as u64);
        for &p in &pages {
            let (d, _) = pt.walk(p * GPU_PAGE_SIZE + (p % GPU_PAGE_SIZE));
            assert_eq!(d.unwrap().phys, p * GPU_PAGE_SIZE);
        }
        // A page just past the set's maximum is unmapped.
        let probe = (pages.iter().max().unwrap() + 1) * GPU_PAGE_SIZE;
        if !pages.contains(&(probe / GPU_PAGE_SIZE)) {
            assert!(pt.walk(probe).0.is_none());
        }
    });
}

/// BUF_LIST lookups: a registered range is always found; lookup cost
/// grows with scan position.
#[test]
fn buflist_finds_registered() {
    check::check("buflist_finds_registered", |g| {
        let ranges = g.vec_of(1, 30, |g| (g.u64(0, 1000), g.u64(1, 50)));
        let mut bl = BufList::new();
        // Make ranges disjoint by spacing them a MB apart.
        let mut entries = Vec::new();
        for (i, (off, len)) in ranges.iter().enumerate() {
            let vaddr = (i as u64) << 20 | off;
            bl.register(BufEntry {
                vaddr,
                len: *len,
                kind: BufKind::Host,
                pid: 1,
            });
            entries.push((vaddr, *len));
        }
        let mut prev_cost = None;
        for (vaddr, len) in entries {
            let (hit, cost) = bl.lookup(vaddr, len);
            assert!(hit.is_some());
            if let Some(p) = prev_cost {
                assert!(cost >= p, "later entries cost at least as much");
            }
            prev_cost = Some(cost);
        }
    });
}
