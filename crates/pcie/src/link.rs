//! Serializing PCIe links.
//!
//! A link has two independent directions; each direction transmits one TLP
//! at a time at the link's raw symbol rate. Occupancy is tracked as a
//! *busy-until* horizon per direction, so concurrent traffic on a shared
//! link stretches delivery times — this is how read-request traffic and
//! completion traffic on the same segment interact, and how the model's
//! congestion arises without per-byte events.

use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// PCIe generation (signalling rate per lane after 8b/10b / 128b/130b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 2.5 GT/s, 250 MB/s effective per lane.
    Gen1,
    /// 5 GT/s, 500 MB/s effective per lane.
    Gen2,
    /// 8 GT/s, ~985 MB/s effective per lane.
    Gen3,
}

impl PcieGen {
    /// Effective bytes/s per lane (after line coding).
    pub const fn per_lane(self) -> u64 {
        match self {
            PcieGen::Gen1 => 250_000_000,
            PcieGen::Gen2 => 500_000_000,
            PcieGen::Gen3 => 985_000_000,
        }
    }
}

/// Width and speed of one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSpec {
    /// Generation.
    pub gen: PcieGen,
    /// Lane count (1, 4, 8, 16).
    pub lanes: u8,
}

impl LinkSpec {
    /// Gen2 x8 — the APEnet+ and Cluster II ConnectX-2 slots.
    pub const GEN2_X8: LinkSpec = LinkSpec {
        gen: PcieGen::Gen2,
        lanes: 8,
    };
    /// Gen2 x4 — the Cluster I ConnectX-2 slot ("due to motherboard
    /// constraints", §V).
    pub const GEN2_X4: LinkSpec = LinkSpec {
        gen: PcieGen::Gen2,
        lanes: 4,
    };
    /// Gen2 x16 — GPU slots.
    pub const GEN2_X16: LinkSpec = LinkSpec {
        gen: PcieGen::Gen2,
        lanes: 16,
    };

    /// Raw symbol bandwidth per direction.
    pub fn raw_rate(self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.gen.per_lane() * self.lanes as u64)
    }
}

/// Direction of travel on a link relative to the topology tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward the root complex.
    Up,
    /// Away from the root complex.
    Down,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }

    const fn idx(self) -> usize {
        match self {
            Dir::Up => 0,
            Dir::Down => 1,
        }
    }
}

/// One physical link with per-direction occupancy.
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    /// Propagation + PHY latency per traversal.
    latency: SimDuration,
    busy_until: [SimTime; 2],
    wire_bytes: [u64; 2],
}

/// The result of reserving a TLP transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the TLP starts serializing onto the wire.
    pub start: SimTime,
    /// When the last byte has left the transmitter (= link free again).
    pub depart_end: SimTime,
    /// When the TLP has fully arrived at the other end.
    pub arrive: SimTime,
}

impl Link {
    /// Create a link of the given spec with a fixed traversal latency.
    pub fn new(spec: LinkSpec, latency: SimDuration) -> Self {
        Link {
            spec,
            latency,
            busy_until: [SimTime::ZERO; 2],
            wire_bytes: [0; 2],
        }
    }

    /// The link's spec.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Reserve transmission of `wire_bytes` in direction `dir`, starting no
    /// earlier than `ready`. Transmissions in one direction are strictly
    /// serialized; directions are independent.
    pub fn reserve(&mut self, ready: SimTime, dir: Dir, wire_bytes: u64) -> Reservation {
        let i = dir.idx();
        let start = ready.max(self.busy_until[i]);
        let depart_end = start + self.spec.raw_rate().time_for(wire_bytes);
        self.busy_until[i] = depart_end;
        self.wire_bytes[i] += wire_bytes;
        Reservation {
            start,
            depart_end,
            arrive: depart_end + self.latency,
        }
    }

    /// When the given direction next becomes free.
    pub fn busy_until(&self, dir: Dir) -> SimTime {
        self.busy_until[dir.idx()]
    }

    /// Total wire bytes carried in `dir` so far (utilization accounting).
    pub fn carried(&self, dir: Dir) -> u64 {
        self.wire_bytes[dir.idx()]
    }

    /// Reset occupancy (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.busy_until = [SimTime::ZERO; 2];
        self.wire_bytes = [0; 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_x8_is_4gbs() {
        assert_eq!(LinkSpec::GEN2_X8.raw_rate().bytes_per_sec(), 4_000_000_000);
        assert_eq!(LinkSpec::GEN2_X4.raw_rate().bytes_per_sec(), 2_000_000_000);
    }

    #[test]
    fn serialization_is_exclusive_per_direction() {
        let mut l = Link::new(LinkSpec::GEN2_X8, SimDuration::from_ns(100));
        // 280 wire bytes at 4 GB/s = 70 ns
        let a = l.reserve(SimTime::ZERO, Dir::Up, 280);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.depart_end, SimTime::ZERO + SimDuration::from_ns(70));
        assert_eq!(a.arrive, SimTime::ZERO + SimDuration::from_ns(170));
        // Second TLP queues behind the first.
        let b = l.reserve(SimTime::ZERO, Dir::Up, 280);
        assert_eq!(b.start, a.depart_end);
        // Opposite direction is independent.
        let c = l.reserve(SimTime::ZERO, Dir::Down, 280);
        assert_eq!(c.start, SimTime::ZERO);
    }

    #[test]
    fn ready_after_busy_starts_at_ready() {
        let mut l = Link::new(LinkSpec::GEN2_X8, SimDuration::ZERO);
        let _ = l.reserve(SimTime::ZERO, Dir::Up, 4000); // busy until 1 us
        let late = SimTime::ZERO + SimDuration::from_us(5);
        let r = l.reserve(late, Dir::Up, 4000);
        assert_eq!(r.start, late);
    }

    #[test]
    fn carried_accumulates_and_reset_clears() {
        let mut l = Link::new(LinkSpec::GEN2_X4, SimDuration::ZERO);
        l.reserve(SimTime::ZERO, Dir::Up, 100);
        l.reserve(SimTime::ZERO, Dir::Up, 50);
        l.reserve(SimTime::ZERO, Dir::Down, 7);
        assert_eq!(l.carried(Dir::Up), 150);
        assert_eq!(l.carried(Dir::Down), 7);
        l.reset();
        assert_eq!(l.carried(Dir::Up), 0);
        assert_eq!(l.busy_until(Dir::Up), SimTime::ZERO);
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::Up.flip(), Dir::Down);
        assert_eq!(Dir::Down.flip(), Dir::Up);
    }
}
