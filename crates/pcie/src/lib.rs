//! # apenet-pcie — PCI Express fabric model
//!
//! A transaction-layer-packet (TLP) granularity model of the PCIe fabrics
//! the paper's platforms are built on:
//!
//! * [`tlp`] — TLP kinds, wire sizes (header + framing overhead), payload
//!   chunking at the 256 B maximum payload size;
//! * [`link`] — per-direction serializing links for Gen1/2/3 × lanes;
//! * [`fabric`] — a tree topology of root complexes, PLX-style switches and
//!   endpoints, with store-and-forward path timing, per-direction link
//!   occupancy (congestion emerges from shared links) and cross-socket
//!   (QPI) path penalties;
//! * [`server`] — a generic *completer* model: a memory target that answers
//!   read requests with a first-byte latency and a sustained completion
//!   rate (used for host memory, GPU P2P and BAR1 targets);
//! * [`analyzer`] — the bus-analyzer interposer of paper §V.A (Fig. 3).
//!
//! The model collapses the PCIe data-link layer (credits, ACK/NAK replay)
//! into per-TLP overhead bytes, as DESIGN.md §7 documents: every bandwidth
//! effect the paper reports is a transaction-layer effect.

pub mod analyzer;
pub mod fabric;
pub mod link;
pub mod server;
pub mod tlp;

pub use fabric::{DeviceId, Fabric, PathClass};
pub use link::{Dir, LinkSpec, PcieGen};
pub use server::ReadServer;
pub use tlp::{TlpKind, MAX_PAYLOAD, MAX_READ_REQUEST};
