//! Transaction layer packets: kinds, wire sizes and chunking.

/// Maximum data payload of one TLP in bytes (the common Gen2 platform
/// setting; both test clusters in the paper ran 256 B).
pub const MAX_PAYLOAD: u32 = 256;

/// Maximum read request size in bytes (PCIe spec default).
pub const MAX_READ_REQUEST: u32 = 4096;

/// Per-TLP overhead in bytes for TLPs carrying a 64-bit address:
/// 2 B framing + 6 B DLL (seq + LCRC) + 16 B TLP header.
pub const DATA_TLP_OVERHEAD: u64 = 24;

/// Per-TLP overhead for completions (32-bit routing, 12 B header).
pub const CPL_TLP_OVERHEAD: u64 = 20;

/// The TLP kinds the model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlpKind {
    /// Posted memory write carrying payload.
    MemWrite,
    /// Non-posted memory read request (no payload).
    MemRead,
    /// Completion with data (response to `MemRead`).
    Completion,
    /// A GPUDirect P2P protocol message (mailbox write); behaves like a
    /// small posted write on the wire.
    P2pProtocol,
}

impl TlpKind {
    /// Bytes this TLP occupies on the wire for `payload` bytes of data.
    pub fn wire_bytes(self, payload: u32) -> u64 {
        match self {
            TlpKind::MemWrite | TlpKind::P2pProtocol => DATA_TLP_OVERHEAD + payload as u64,
            TlpKind::MemRead => {
                debug_assert_eq!(payload, 0, "read requests carry no payload");
                DATA_TLP_OVERHEAD
            }
            TlpKind::Completion => CPL_TLP_OVERHEAD + payload as u64,
        }
    }

    /// Short mnemonic used by the bus analyzer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TlpKind::MemWrite => "MWr",
            TlpKind::MemRead => "MRd",
            TlpKind::Completion => "CplD",
            TlpKind::P2pProtocol => "P2P",
        }
    }
}

/// Split a transfer of `len` bytes into TLP payload chunks of at most
/// `chunk` bytes. Yields nothing for `len == 0`.
pub fn chunks(len: u64, chunk: u32) -> impl Iterator<Item = u32> {
    assert!(chunk > 0);
    let chunk = chunk as u64;
    let n = len / chunk;
    let rem = (len % chunk) as u32;
    (0..n)
        .map(move |_| chunk as u32)
        .chain((rem > 0).then_some(rem))
}

/// Total wire bytes to move `len` bytes of data as TLPs of `kind` with
/// payloads of at most `chunk` bytes.
pub fn wire_bytes_for(kind: TlpKind, len: u64, chunk: u32) -> u64 {
    chunks(len, chunk).map(|c| kind.wire_bytes(c)).sum()
}

/// Protocol efficiency of moving data in `chunk`-byte write TLPs: the ratio
/// payload / (payload + overhead). At 256 B this is ~0.914, which is what
/// turns the 4 GB/s raw Gen2 x8 link into ~3.6 GB/s of data.
pub fn write_efficiency(chunk: u32) -> f64 {
    chunk as f64 / (chunk as f64 + DATA_TLP_OVERHEAD as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_by_kind() {
        assert_eq!(TlpKind::MemWrite.wire_bytes(256), 280);
        assert_eq!(TlpKind::MemRead.wire_bytes(0), 24);
        assert_eq!(TlpKind::Completion.wire_bytes(256), 276);
        assert_eq!(TlpKind::P2pProtocol.wire_bytes(16), 40);
    }

    #[test]
    fn chunking_exact_and_remainder() {
        let v: Vec<u32> = chunks(1024, 256).collect();
        assert_eq!(v, vec![256; 4]);
        let v: Vec<u32> = chunks(1000, 256).collect();
        assert_eq!(v, vec![256, 256, 256, 232]);
        let v: Vec<u32> = chunks(0, 256).collect();
        assert!(v.is_empty());
        let v: Vec<u32> = chunks(10, 256).collect();
        assert_eq!(v, vec![10]);
    }

    #[test]
    fn total_wire_bytes() {
        // 1024 B as 4 write TLPs: 4 * (24 + 256)
        assert_eq!(wire_bytes_for(TlpKind::MemWrite, 1024, 256), 4 * 280);
        // read requests: overhead only
        assert_eq!(wire_bytes_for(TlpKind::MemRead, 0, 256), 0);
    }

    #[test]
    fn efficiency_sane() {
        let e = write_efficiency(256);
        assert!(e > 0.91 && e < 0.92, "{e}");
        assert!(write_efficiency(128) < e, "smaller payloads less efficient");
    }

    #[test]
    fn chunk_count_matches() {
        for len in [0u64, 1, 255, 256, 257, 4096, 4097] {
            let n = chunks(len, 256).count() as u64;
            assert_eq!(n, len.div_ceil(256));
            let total: u64 = chunks(len, 256).map(u64::from).sum();
            assert_eq!(total, len, "no bytes lost");
        }
    }
}
