//! Bus-analyzer post-processing: turn interposer traces into the timing
//! summary of the paper's Fig. 3.

use apenet_sim::trace::{TracePayload, TraceRecord};
use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// Summary statistics of a P2P read phase seen on the analyzer, mirroring
/// the annotations of Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct P2pReadSummary {
    /// Time from the trigger to the first read request (the GPU_P2P_TX
    /// setup overhead; ~3 µs on v2).
    pub setup: SimDuration,
    /// Time from the first read request to the first completion data
    /// (the GPU head latency; 1.8 µs on Fermi).
    pub head_latency: SimDuration,
    /// Duration of the completion data stream.
    pub stream: SimDuration,
    /// Payload bytes observed in completions.
    pub data_bytes: u64,
    /// Number of read requests observed.
    pub read_requests: u64,
    /// Sustained completion throughput over the stream window.
    pub throughput: Bandwidth,
    /// Mean spacing between consecutive read requests.
    pub request_cadence: SimDuration,
}

fn payload_of(rec: &TraceRecord) -> u64 {
    match rec.payload {
        TracePayload::Tlp { len, .. } => len,
        _ => 0,
    }
}

/// Analyze an interposer capture of a single GPU-read phase.
///
/// `trigger` is the instant the transmission was posted (transaction "1"
/// of Fig. 3). Returns `None` when the capture holds no read traffic.
pub fn summarize_p2p_read(records: &[TraceRecord], trigger: SimTime) -> Option<P2pReadSummary> {
    let mut first_req: Option<SimTime> = None;
    let mut last_req: Option<SimTime> = None;
    let mut n_req = 0u64;
    let mut first_data: Option<SimTime> = None;
    let mut last_data: Option<SimTime> = None;
    let mut data_bytes = 0u64;
    let mut first_payload = 0u64;
    for r in records {
        match r.kind {
            "MRd" => {
                first_req.get_or_insert(r.at);
                last_req = Some(r.at);
                n_req += 1;
            }
            "CplD" => {
                if first_data.is_none() {
                    first_data = Some(r.at);
                    first_payload = payload_of(r);
                }
                last_data = Some(r.at);
                data_bytes += payload_of(r);
            }
            _ => {}
        }
    }
    let first_req = first_req?;
    let first_data = first_data?;
    let last_data = last_data?;
    let stream = last_data.since(first_data);
    let cadence = if n_req > 1 {
        last_req.unwrap().since(first_req) / (n_req - 1)
    } else {
        SimDuration::ZERO
    };
    Some(P2pReadSummary {
        setup: first_req.since(trigger),
        head_latency: first_data.since(first_req),
        stream,
        data_bytes,
        read_requests: n_req,
        // Record timestamps mark TLP arrival instants, so the window between
        // the first and last completion covers all payloads except the
        // first; excluding it makes the estimate exact at any capture size.
        throughput: Bandwidth::measured(
            data_bytes - first_payload,
            stream.max(SimDuration::from_ps(1)),
        ),
        request_cadence: cadence,
    })
}

/// Render an interposer capture as a human-readable trace listing
/// (the textual equivalent of the Fig. 3 timeline).
pub fn render_trace(records: &[TraceRecord], limit: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{:>14}  {:<6} detail", "time", "TLP");
    for r in records.iter().take(limit) {
        let _ = writeln!(
            out,
            "{:>14}  {:<6} {}",
            format!("{}", r.at),
            r.kind,
            r.payload
        );
    }
    if records.len() > limit {
        let _ = writeln!(out, "... ({} more records)", records.len() - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64, kind: &'static str, len: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::ZERO + SimDuration::from_ns(at_ns),
            source: "interposer",
            kind,
            span: None,
            payload: TracePayload::Tlp {
                len,
                wire: len + 24,
                up: true,
            },
        }
    }

    #[test]
    fn summary_extracts_fig3_quantities() {
        // setup 3 us, head latency 1.8 us, two completions 256 B each.
        let records = vec![
            rec(3_000, "MRd", 0),
            rec(3_080, "MRd", 0),
            rec(4_800, "CplD", 256),
            rec(4_967, "CplD", 256),
        ];
        let s = summarize_p2p_read(&records, SimTime::ZERO).unwrap();
        assert_eq!(s.setup, SimDuration::from_ns(3_000));
        assert_eq!(s.head_latency, SimDuration::from_ns(1_800));
        assert_eq!(s.read_requests, 2);
        assert_eq!(s.data_bytes, 512);
        assert_eq!(s.request_cadence, SimDuration::from_ns(80));
        // 256 B in 167 ns ≈ 1533 MB/s
        assert!((s.throughput.mb_per_sec_f64() - 1533.0).abs() < 10.0);
    }

    #[test]
    fn empty_capture_is_none() {
        assert!(summarize_p2p_read(&[], SimTime::ZERO).is_none());
        let only_writes = vec![rec(10, "MWr", 64)];
        assert!(summarize_p2p_read(&only_writes, SimTime::ZERO).is_none());
    }

    #[test]
    fn render_limits_output() {
        let records: Vec<TraceRecord> = (0..10).map(|i| rec(i, "MRd", 0)).collect();
        let t = render_trace(&records, 3);
        assert!(t.contains("7 more records"));
        assert_eq!(t.lines().count(), 5);
    }
}
