//! PCIe topology: a tree of root complexes, switches and endpoints.
//!
//! The paper stresses that GPU peer-to-peer "performance is excellent when
//! two GPUs share the same PCIe root-complex … otherwise performance may
//! suffer or malfunctionings can arise" (§III.A). The fabric classifies
//! every endpoint pair ([`PathClass`]) and charges a latency penalty for
//! paths that cross the inter-socket QPI on multi-socket platforms.

use crate::link::{Dir, Link, LinkSpec, Reservation};
use crate::tlp::{self, TlpKind};
use apenet_sim::trace::{SharedSink, SpanId, TracePayload};
use apenet_sim::{SimDuration, SimTime};

/// Identifies any node (root complex, switch, endpoint) in a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub(crate) usize);

#[derive(Debug, Clone)]
enum NodeKind {
    Root { socket: u8 },
    Switch { forward_latency: SimDuration },
    Endpoint { name: &'static str },
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    /// Parent node and the link connecting to it (None for roots).
    up: Option<(usize, usize)>,
    depth: u32,
}

/// How two endpoints relate topologically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathClass {
    /// Same PLX switch or hub: the ideal platform of Table I.
    SameSwitch,
    /// Same root complex, different branches.
    SameRoot,
    /// Different sockets: traffic crosses QPI (penalized).
    CrossSocket,
}

/// One precomputed hop of a TLP path: the link to reserve (`None` at
/// the QPI root-to-root seam) and the forwarding latency charged after
/// crossing it (zero into the final endpoint).
struct Hop {
    link: Option<(usize, Dir)>,
    forward: SimDuration,
}

/// The outcome of sending one TLP end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlpArrival {
    /// When the TLP started serializing on its first link.
    pub start: SimTime,
    /// When it fully arrived at the destination.
    pub arrive: SimTime,
}

/// A tree-shaped PCIe fabric with per-direction link occupancy.
///
/// ```
/// use apenet_pcie::fabric::plx_platform;
/// use apenet_pcie::TlpKind;
/// use apenet_sim::SimTime;
///
/// // The Table I "ideal platform": GPU and NIC behind one PLX switch.
/// let (mut fabric, gpu, nic, _hostmem) = plx_platform();
/// let tlp = fabric.send_tlp(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, 256);
/// assert!(tlp.arrive > SimTime::ZERO);
/// // 280 wire bytes crossed the NIC's x8 uplink.
/// use apenet_pcie::link::Dir;
/// assert_eq!(fabric.uplink_carried(nic, Dir::Down), 280);
/// ```
pub struct Fabric {
    nodes: Vec<Node>,
    links: Vec<Link>,
    analyzers: Vec<Option<SharedSink>>,
    /// Message span stamped onto analyzer records (see
    /// [`Fabric::set_span`]).
    span: Option<SpanId>,
    /// Latency added once per QPI crossing.
    pub qpi_penalty: SimDuration,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// Create an empty fabric. The default QPI crossing penalty is 400 ns.
    pub fn new() -> Self {
        Fabric {
            nodes: Vec::new(),
            links: Vec::new(),
            analyzers: Vec::new(),
            span: None,
            qpi_penalty: SimDuration::from_ns(400),
        }
    }

    /// Set the message span attributed to subsequent TLPs on any attached
    /// analyzer (None clears it). Pure observation metadata: it never
    /// affects timing, so callers may set it unconditionally.
    pub fn set_span(&mut self, span: Option<SpanId>) {
        self.span = span;
    }

    /// Add a root complex on CPU socket `socket`.
    pub fn add_root(&mut self, socket: u8) -> DeviceId {
        self.nodes.push(Node {
            kind: NodeKind::Root { socket },
            up: None,
            depth: 0,
        });
        DeviceId(self.nodes.len() - 1)
    }

    fn attach(
        &mut self,
        parent: DeviceId,
        kind: NodeKind,
        spec: LinkSpec,
        lat: SimDuration,
    ) -> DeviceId {
        let link_id = self.links.len();
        self.links.push(Link::new(spec, lat));
        self.analyzers.push(None);
        let depth = self.nodes[parent.0].depth + 1;
        self.nodes.push(Node {
            kind,
            up: Some((parent.0, link_id)),
            depth,
        });
        DeviceId(self.nodes.len() - 1)
    }

    /// Add a switch under `parent` with the given uplink.
    pub fn add_switch(
        &mut self,
        parent: DeviceId,
        spec: LinkSpec,
        link_latency: SimDuration,
        forward_latency: SimDuration,
    ) -> DeviceId {
        self.attach(
            parent,
            NodeKind::Switch { forward_latency },
            spec,
            link_latency,
        )
    }

    /// Add a leaf endpoint (GPU, NIC, host-memory target) under `parent`.
    pub fn add_endpoint(
        &mut self,
        parent: DeviceId,
        name: &'static str,
        spec: LinkSpec,
        link_latency: SimDuration,
    ) -> DeviceId {
        self.attach(parent, NodeKind::Endpoint { name }, spec, link_latency)
    }

    /// Attach a bus-analyzer interposer to the uplink of `dev` — the
    /// physical setup of paper Fig. 3 ("active interposer sitting between
    /// the APEnet+ card and the motherboard slot").
    pub fn attach_analyzer(&mut self, dev: DeviceId, sink: SharedSink) {
        let (_, link) = self.nodes[dev.0].up.expect("roots have no uplink");
        self.analyzers[link] = Some(sink);
    }

    /// The display name of an endpoint.
    pub fn name(&self, dev: DeviceId) -> &'static str {
        match self.nodes[dev.0].kind {
            NodeKind::Endpoint { name } => name,
            NodeKind::Switch { .. } => "switch",
            NodeKind::Root { .. } => "root",
        }
    }

    fn socket_of(&self, mut n: usize) -> u8 {
        loop {
            match self.nodes[n].kind {
                NodeKind::Root { socket } => return socket,
                _ => n = self.nodes[n].up.expect("non-root has parent").0,
            }
        }
    }

    /// Lowest common ancestor of two nodes.
    fn lca(&self, a: usize, b: usize) -> Option<usize> {
        let (mut x, mut y) = (a, b);
        while self.nodes[x].depth > self.nodes[y].depth {
            x = self.nodes[x].up?.0;
        }
        while self.nodes[y].depth > self.nodes[x].depth {
            y = self.nodes[y].up?.0;
        }
        while x != y {
            x = self.nodes[x].up?.0;
            y = self.nodes[y].up?.0;
        }
        Some(x)
    }

    /// Classify the path between two endpoints.
    pub fn path_class(&self, a: DeviceId, b: DeviceId) -> PathClass {
        if self.socket_of(a.0) != self.socket_of(b.0) {
            return PathClass::CrossSocket;
        }
        let lca = self.lca(a.0, b.0).expect("same socket implies common root");
        match self.nodes[lca].kind {
            NodeKind::Switch { .. } => PathClass::SameSwitch,
            _ => PathClass::SameRoot,
        }
    }

    /// The ordered node path from `a` to `b` (inclusive of both).
    fn node_path(&self, a: usize, b: usize) -> Vec<usize> {
        let cross = self.socket_of(a) != self.socket_of(b);
        let lca = if cross { None } else { self.lca(a, b) };
        let mut up = Vec::new();
        let mut x = a;
        up.push(x);
        while Some(x) != lca && self.nodes[x].up.is_some() {
            x = self.nodes[x].up.unwrap().0;
            up.push(x);
        }
        let mut down = Vec::new();
        let stop = if cross { None } else { lca };
        let mut y = b;
        while Some(y) != stop && self.nodes[y].up.is_some() {
            down.push(y);
            y = self.nodes[y].up.unwrap().0;
        }
        if cross {
            down.push(y); // b's root complex
        }
        down.reverse();
        up.extend(down);
        up
    }

    /// The link (by id) and direction connecting adjacent nodes `x` → `y`,
    /// or `None` for the virtual root-to-root (QPI) seam.
    fn connecting_link(&self, x: usize, y: usize) -> Option<(usize, Dir)> {
        if let Some((parent, link)) = self.nodes[x].up {
            if parent == y {
                return Some((link, Dir::Up));
            }
        }
        if let Some((parent, link)) = self.nodes[y].up {
            if parent == x {
                return Some((link, Dir::Down));
            }
        }
        None
    }

    fn forward_latency_of(&self, node: usize) -> SimDuration {
        match self.nodes[node].kind {
            NodeKind::Switch { forward_latency } => forward_latency,
            // Root complexes forward peer traffic between their ports with a
            // latency comparable to a switch hop.
            NodeKind::Root { .. } => SimDuration::from_ns(250),
            NodeKind::Endpoint { .. } => SimDuration::ZERO,
        }
    }

    /// Precompute the hop plan from `from` to `to`: per hop, the link to
    /// reserve (`None` for the QPI root-to-root seam) and the forwarding
    /// latency charged after crossing it. Streams compute this once and
    /// replay it per chunk instead of re-walking the tree per TLP.
    fn hop_plan(&self, from: DeviceId, to: DeviceId) -> Vec<Hop> {
        let path = self.node_path(from.0, to.0);
        assert!(path.len() >= 2, "from == to or disconnected");
        (0..path.len() - 1)
            .map(|w| {
                let (x, y) = (path[w], path[w + 1]);
                Hop {
                    link: self.connecting_link(x, y),
                    // The node we just arrived at forwards (unless it is
                    // the final destination endpoint).
                    forward: if w + 1 < path.len() - 1 {
                        self.forward_latency_of(y)
                    } else {
                        SimDuration::ZERO
                    },
                }
            })
            .collect()
    }

    /// Run one TLP over a precomputed hop plan, reserving every traversed
    /// link store-and-forward.
    fn send_tlp_over(
        &mut self,
        now: SimTime,
        kind: TlpKind,
        payload: u32,
        hops: &[Hop],
    ) -> TlpArrival {
        let wire = kind.wire_bytes(payload);
        let mut ready = now;
        let mut first_start = None;
        for hop in hops {
            match hop.link {
                Some((link, dir)) => {
                    let res: Reservation = self.links[link].reserve(ready, dir, wire);
                    if first_start.is_none() {
                        first_start = Some(res.start);
                    }
                    if let Some(sink) = &self.analyzers[link] {
                        if sink.enabled() {
                            sink.record(
                                res.arrive,
                                "interposer",
                                kind.mnemonic(),
                                self.span,
                                TracePayload::Tlp {
                                    len: payload as u64,
                                    wire,
                                    up: dir == Dir::Up,
                                },
                            );
                        }
                    }
                    ready = res.arrive;
                }
                None => {
                    // Root-to-root seam: the QPI crossing.
                    ready += self.qpi_penalty;
                    first_start.get_or_insert(ready);
                }
            }
            ready += hop.forward;
        }
        TlpArrival {
            start: first_start.unwrap(),
            arrive: ready,
        }
    }

    /// Send one TLP of `kind` with `payload` data bytes from endpoint `from`
    /// to endpoint `to`, reserving every traversed link store-and-forward.
    pub fn send_tlp(
        &mut self,
        now: SimTime,
        from: DeviceId,
        to: DeviceId,
        kind: TlpKind,
        payload: u32,
    ) -> TlpArrival {
        let hops = self.hop_plan(from, to);
        self.send_tlp_over(now, kind, payload, &hops)
    }

    /// Send `len` bytes of data as a stream of `kind` TLPs with payloads of
    /// at most `chunk` bytes. Returns the arrival time of the final TLP.
    /// The path is resolved once for the whole stream.
    pub fn send_stream(
        &mut self,
        now: SimTime,
        from: DeviceId,
        to: DeviceId,
        kind: TlpKind,
        len: u64,
        chunk: u32,
    ) -> TlpArrival {
        let hops = self.hop_plan(from, to);
        let mut first = None;
        let mut last = now;
        for payload in tlp::chunks(len, chunk) {
            let a = self.send_tlp_over(now, kind, payload, &hops);
            first.get_or_insert(a.start);
            last = a.arrive;
        }
        TlpArrival {
            start: first.unwrap_or(now),
            arrive: last,
        }
    }

    /// Reset all link occupancy (between benchmark repetitions).
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l.reset();
        }
    }

    /// Total wire bytes carried by the uplink of `dev` in `dir`.
    pub fn uplink_carried(&self, dev: DeviceId, dir: Dir) -> u64 {
        let (_, link) = self.nodes[dev.0].up.expect("roots have no uplink");
        self.links[link].carried(dir)
    }
}

/// Build the "ideal platform" of Table I: a SuperMicro 4U server where the
/// GPU and the APEnet+ (or a second GPU) hang off one PLX PCIe switch.
pub fn plx_platform() -> (Fabric, DeviceId, DeviceId, DeviceId) {
    let mut f = Fabric::new();
    let root = f.add_root(0);
    let plx = f.add_switch(
        root,
        LinkSpec::GEN2_X16,
        SimDuration::from_ns(100),
        SimDuration::from_ns(150),
    );
    let gpu = f.add_endpoint(plx, "gpu0", LinkSpec::GEN2_X16, SimDuration::from_ns(100));
    let nic = f.add_endpoint(plx, "apenet", LinkSpec::GEN2_X8, SimDuration::from_ns(100));
    let hostmem = f.add_endpoint(
        root,
        "hostmem",
        LinkSpec::GEN2_X16,
        SimDuration::from_ns(100),
    );
    (f, gpu, nic, hostmem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let mut f = Fabric::new();
        let r0 = f.add_root(0);
        let r1 = f.add_root(1);
        let sw = f.add_switch(r0, LinkSpec::GEN2_X16, SimDuration::ZERO, SimDuration::ZERO);
        let a = f.add_endpoint(sw, "a", LinkSpec::GEN2_X8, SimDuration::ZERO);
        let b = f.add_endpoint(sw, "b", LinkSpec::GEN2_X8, SimDuration::ZERO);
        let c = f.add_endpoint(r0, "c", LinkSpec::GEN2_X8, SimDuration::ZERO);
        let d = f.add_endpoint(r1, "d", LinkSpec::GEN2_X8, SimDuration::ZERO);
        assert_eq!(f.path_class(a, b), PathClass::SameSwitch);
        assert_eq!(f.path_class(a, c), PathClass::SameRoot);
        assert_eq!(f.path_class(a, d), PathClass::CrossSocket);
    }

    #[test]
    fn tlp_timing_same_switch() {
        let (mut f, gpu, nic, _) = plx_platform();
        // 280 wire bytes over x16 (25 ns... wait: x16 @8 GB/s = 35 ns for 280)
        // then x8 (70 ns), plus 100 ns per link latency and 150 ns forward.
        let a = f.send_tlp(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, 256);
        let expect = SimDuration::from_ns(35 + 100 + 150 + 70 + 100);
        assert_eq!(a.arrive, SimTime::ZERO + expect);
    }

    #[test]
    fn stream_serializes_on_bottleneck() {
        let (mut f, gpu, nic, _) = plx_platform();
        // 64 KiB of 256 B writes: bottleneck is the x8 downlink at 4 GB/s.
        let a = f.send_stream(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, 64 * 1024, 256);
        let wire: u64 = 256 * 280;
        let serial = LinkSpec::GEN2_X8.raw_rate().time_for(wire);
        // Total time ≥ serialization on the slowest link.
        assert!(a.arrive.since(SimTime::ZERO) >= serial);
        // And not absurdly larger (pipelining overlaps the fast links).
        assert!(a.arrive.since(SimTime::ZERO) < serial + SimDuration::from_us(1));
    }

    #[test]
    fn cross_socket_penalized() {
        let mut f = Fabric::new();
        let r0 = f.add_root(0);
        let r1 = f.add_root(1);
        let a = f.add_endpoint(r0, "a", LinkSpec::GEN2_X8, SimDuration::from_ns(100));
        let b = f.add_endpoint(r1, "b", LinkSpec::GEN2_X8, SimDuration::from_ns(100));
        let c = f.add_endpoint(r0, "c", LinkSpec::GEN2_X8, SimDuration::from_ns(100));
        let same = f.send_tlp(SimTime::ZERO, a, c, TlpKind::MemWrite, 64);
        f.reset();
        let cross = f.send_tlp(SimTime::ZERO, a, b, TlpKind::MemWrite, 64);
        // The cross-socket path pays the QPI penalty plus one extra
        // root-complex forwarding hop.
        assert_eq!(
            cross.arrive.since(SimTime::ZERO),
            same.arrive.since(SimTime::ZERO) + f.qpi_penalty + SimDuration::from_ns(250)
        );
    }

    #[test]
    fn analyzer_captures_uplink_traffic() {
        let (mut f, gpu, nic, _) = plx_platform();
        let sink = SharedSink::capturing();
        f.attach_analyzer(nic, sink.clone());
        f.send_tlp(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, 128);
        f.send_tlp(SimTime::ZERO, nic, gpu, TlpKind::MemRead, 0);
        let recs = sink.snapshot().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, "MWr");
        assert_eq!(recs[1].kind, "MRd");
    }

    #[test]
    fn carried_accounting() {
        let (mut f, gpu, nic, _) = plx_platform();
        f.send_tlp(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, 256);
        assert_eq!(f.uplink_carried(nic, Dir::Down), 280);
        assert_eq!(f.uplink_carried(nic, Dir::Up), 0);
        assert_eq!(f.uplink_carried(gpu, Dir::Up), 280);
    }
}
