//! A generic read *completer*: the memory-side model of a read transaction.
//!
//! Host memory, GPU P2P targets and GPU BAR1 apertures all behave the same
//! way seen from a requester: the first completion data appears after a
//! head latency, and the completion stream then flows at a sustained rate.
//! The paper measures exactly these two parameters for each target
//! (Fig. 3: 1.8 µs head latency, 1536 MB/s sustained on Fermi P2P;
//! Table I: 2.4 GB/s host, 150 MB/s Fermi BAR1, 1.6 GB/s Kepler).
//!
//! Pipelining falls out naturally: while the completer is busy streaming
//! earlier completions, later requests queue and only pay the head latency
//! once — which is how the APEnet+ prefetch hides the GPU's latency.

use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// A read completer with head latency and a sustained completion rate.
#[derive(Debug, Clone)]
pub struct ReadServer {
    head_latency: SimDuration,
    rate: Bandwidth,
    busy_until: SimTime,
    served: u64,
}

/// Completion window of a single read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the first completion byte is on the wire.
    pub first: SimTime,
    /// When the last completion byte is on the wire.
    pub last: SimTime,
}

impl ReadServer {
    /// New idle completer.
    pub fn new(head_latency: SimDuration, rate: Bandwidth) -> Self {
        ReadServer {
            head_latency,
            rate,
            busy_until: SimTime::ZERO,
            served: 0,
        }
    }

    /// Sustained completion rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Head latency for a request arriving at an idle completer.
    pub fn head_latency(&self) -> SimDuration {
        self.head_latency
    }

    /// Serve a read request of `bytes` arriving at `arrive`.
    ///
    /// If the completer is idle the first data appears `head_latency`
    /// later; if it is still streaming earlier completions, the new data
    /// follows back-to-back at the sustained rate (latency hidden).
    pub fn serve(&mut self, arrive: SimTime, bytes: u64) -> Completion {
        let earliest = arrive + self.head_latency;
        let first = earliest.max(self.busy_until);
        let last = first + self.rate.time_for(bytes);
        self.busy_until = last;
        self.served += bytes;
        Completion { first, last }
    }

    /// Total bytes served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Forget all occupancy (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fermi() -> ReadServer {
        ReadServer::new(SimDuration::from_ns(1800), Bandwidth::from_mb_per_sec(1536))
    }

    #[test]
    fn idle_request_pays_head_latency() {
        let mut s = fermi();
        let c = s.serve(SimTime::ZERO, 4096);
        assert_eq!(c.first, SimTime::ZERO + SimDuration::from_ns(1800));
        let stream = Bandwidth::from_mb_per_sec(1536).time_for(4096);
        assert_eq!(c.last, c.first + stream);
    }

    #[test]
    fn pipelined_requests_hide_latency() {
        let mut s = fermi();
        let c1 = s.serve(SimTime::ZERO, 4096);
        // Second request arrives while the first still streams.
        let c2 = s.serve(SimTime::ZERO + SimDuration::from_ns(100), 4096);
        assert_eq!(c2.first, c1.last, "back-to-back completions");
        // Steady-state rate over both requests approaches the sustained cap.
        let total = 8192u64;
        let elapsed = c2.last.since(c1.first);
        let bw = Bandwidth::measured(total, elapsed);
        let rel = (bw.mb_per_sec_f64() - 1536.0).abs() / 1536.0;
        assert!(rel < 1e-6, "steady rate {bw}");
    }

    #[test]
    fn gap_re_pays_latency() {
        let mut s = fermi();
        let c1 = s.serve(SimTime::ZERO, 256);
        let late = c1.last + SimDuration::from_us(10);
        let c2 = s.serve(late, 256);
        assert_eq!(c2.first, late + SimDuration::from_ns(1800));
    }

    #[test]
    fn served_accounting_and_reset() {
        let mut s = fermi();
        s.serve(SimTime::ZERO, 100);
        s.serve(SimTime::ZERO, 28);
        assert_eq!(s.served(), 128);
        s.reset();
        assert_eq!(s.served(), 0);
        let c = s.serve(SimTime::ZERO, 1);
        assert_eq!(c.first, SimTime::ZERO + SimDuration::from_ns(1800));
    }

    #[test]
    fn single_outstanding_4k_matches_v1_bandwidth() {
        // The paper's GPU_P2P_TX v1 kept a single 4 KB request outstanding;
        // with ~2.3 µs of Nios software overhead per request the achievable
        // bandwidth throttles to ~600 MB/s (§IV). Reproduce the arithmetic.
        let mut s = fermi();
        let sw_overhead = SimDuration::from_ns(2360);
        let mut t = SimTime::ZERO;
        let reps = 64u64;
        for _ in 0..reps {
            t += sw_overhead;
            let c = s.serve(t, 4096);
            t = c.last;
        }
        let bw = Bandwidth::measured(reps * 4096, t.since(SimTime::ZERO));
        let mbs = bw.mb_per_sec_f64();
        assert!(
            (550.0..650.0).contains(&mbs),
            "v1-like bandwidth {mbs} MB/s"
        );
    }
}
