//! Property tests for the PCIe fabric model.

use apenet_pcie::fabric::{plx_platform, Fabric};
use apenet_pcie::link::LinkSpec;
use apenet_pcie::server::ReadServer;
use apenet_pcie::tlp::{chunks, wire_bytes_for, TlpKind};
use apenet_sim::check;
use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// Chunking partitions the transfer exactly, with every piece within
/// the payload bound.
#[test]
fn chunks_partition() {
    check::check("chunks_partition", |g| {
        let len = g.u64(0, 1 << 26);
        let chunk = g.u32(1, 4097);
        let pieces: Vec<u32> = chunks(len, chunk).collect();
        assert_eq!(pieces.iter().map(|&c| c as u64).sum::<u64>(), len);
        assert!(pieces.iter().all(|&c| c > 0 && c <= chunk));
        assert_eq!(pieces.len() as u64, len.div_ceil(chunk as u64));
    });
}

/// Wire bytes always exceed payload bytes (headers cost something).
#[test]
fn wire_overhead_positive() {
    check::check("wire_overhead_positive", |g| {
        let len = g.u64(1, 1 << 22);
        assert!(wire_bytes_for(TlpKind::MemWrite, len, 256) > len);
        assert!(wire_bytes_for(TlpKind::Completion, len, 256) > len);
    });
}

/// Fabric arrivals are causal (after `now`) and a stream of N bytes
/// never beats the bottleneck link's serialization time.
#[test]
fn stream_respects_bottleneck() {
    check::check("stream_respects_bottleneck", |g| {
        let len = g.u64(1, 1 << 20);
        let start_ns = g.u64(0, 1_000_000);
        let (mut fabric, gpu, nic, _) = plx_platform();
        let now = SimTime::ZERO + SimDuration::from_ns(start_ns);
        let a = fabric.send_stream(now, gpu, nic, TlpKind::MemWrite, len, 256);
        assert!(a.arrive > now);
        let wire = wire_bytes_for(TlpKind::MemWrite, len, 256);
        let serialize = LinkSpec::GEN2_X8.raw_rate().time_for(wire);
        assert!(a.arrive.since(now) >= serialize);
    });
}

/// Sequential transfers on one link never overlap: total time for two
/// streams is at least the sum of their serializations.
#[test]
fn serialization_additive() {
    check::check("serialization_additive", |g| {
        let a = g.u64(1, 1 << 18);
        let b = g.u64(1, 1 << 18);
        let (mut fabric, gpu, nic, _) = plx_platform();
        let r1 = fabric.send_stream(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, a, 256);
        let r2 = fabric.send_stream(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, b, 256);
        let wire = wire_bytes_for(TlpKind::MemWrite, a + b, 256);
        let serialize = LinkSpec::GEN2_X8.raw_rate().time_for(wire);
        assert!(r2.arrive.since(SimTime::ZERO) >= serialize);
        assert!(r2.arrive >= r1.arrive);
    });
}

/// The read completer conserves bytes and never reorders: completions
/// of back-to-back requests are non-overlapping and ordered.
#[test]
fn read_server_ordered() {
    check::check("read_server_ordered", |g| {
        let sizes = g.vec_of(1, 40, |g| g.u64(1, 100_000));
        let mut s = ReadServer::new(SimDuration::from_ns(1100), Bandwidth::from_mb_per_sec(1536));
        let mut prev_last = SimTime::ZERO;
        let mut total = 0u64;
        for (i, &n) in sizes.iter().enumerate() {
            let c = s.serve(SimTime::ZERO + SimDuration::from_ns(i as u64), n);
            assert!(c.first >= prev_last, "completions must not overlap");
            assert!(c.last >= c.first);
            prev_last = c.last;
            total += n;
        }
        assert_eq!(s.served(), total);
    });
}

#[test]
fn fabric_paths_are_symmetric_in_time() {
    // A -> B and B -> A of equal TLPs take equal time on an idle fabric.
    let mut f = Fabric::new();
    let root = f.add_root(0);
    let sw = f.add_switch(
        root,
        LinkSpec::GEN2_X16,
        SimDuration::from_ns(100),
        SimDuration::from_ns(150),
    );
    let a = f.add_endpoint(sw, "a", LinkSpec::GEN2_X8, SimDuration::from_ns(100));
    let b = f.add_endpoint(sw, "b", LinkSpec::GEN2_X8, SimDuration::from_ns(100));
    let t1 = f.send_tlp(SimTime::ZERO, a, b, TlpKind::MemWrite, 256);
    f.reset();
    let t2 = f.send_tlp(SimTime::ZERO, b, a, TlpKind::MemWrite, 256);
    assert_eq!(
        t1.arrive.since(SimTime::ZERO),
        t2.arrive.since(SimTime::ZERO)
    );
}
