//! Criterion benches for the hardware-model hot paths: PCIe streams,
//! page-table walks, BUF_LIST scans, torus routing and full two-node
//! transfers.

use apenet_cluster::harness::{two_node_bandwidth, BufSide, TwoNodeParams};
use apenet_cluster::presets::cluster_i_default;
use apenet_core::coord::{Coord, TorusDims};
use apenet_core::nios::{BufEntry, BufKind, BufList, GpuV2p, PageDesc};
use apenet_pcie::fabric::plx_platform;
use apenet_pcie::TlpKind;
use apenet_sim::SimTime;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("pcie");
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("stream_64k_over_plx", |b| {
        let (mut fabric, gpu, nic, _) = plx_platform();
        b.iter(|| {
            fabric.reset();
            fabric
                .send_stream(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, 64 * 1024, 256)
                .arrive
        })
    });
    g.finish();

    let mut g = c.benchmark_group("firmware");
    g.bench_function("gpu_v2p_walk", |b| {
        let mut pt = GpuV2p::new();
        for p in 0..1024u64 {
            pt.insert(p * 65536, PageDesc { phys: p * 65536, token: 1 });
        }
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 65536) % (1024 * 65536);
            pt.walk(addr).0
        })
    });
    g.bench_function("buflist_scan_64_entries", |b| {
        let mut bl = BufList::new();
        for i in 0..64u64 {
            bl.register(BufEntry {
                vaddr: i << 20,
                len: 1 << 20,
                kind: BufKind::Host,
                pid: 1,
            });
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            bl.lookup(i << 20, 64).0
        })
    });
    g.bench_function("torus_route_4x2", |b| {
        let dims = TorusDims::new(4, 2, 1);
        b.iter(|| {
            let mut hops = 0u32;
            for a in 0..8 {
                for z in 0..8 {
                    let (mut at, dst) = (dims.coord_of(a), dims.coord_of(z));
                    while let Some(h) = dims.next_hop(at, dst) {
                        at = dims.neighbor(at, h);
                        hops += 1;
                    }
                }
            }
            hops
        })
    });
    g.finish();

    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("two_node_gg_64k_x4", |b| {
        b.iter(|| {
            two_node_bandwidth(
                cluster_i_default(),
                TwoNodeParams {
                    src: BufSide::Gpu,
                    dst: BufSide::Gpu,
                    size: 64 * 1024,
                    count: 4,
                    staged: false,
                },
            )
            .bandwidth
        })
    });
    g.finish();
    let _ = Coord::new(0, 0, 0);
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
