//! Criterion benches for the application kernels (the real algorithm
//! code whose wall-clock cost dominates large reproduction runs).

use apenet_apps::bfs::csr::Csr;
use apenet_apps::bfs::dist::{Partition, RankState};
use apenet_apps::bfs::{rmat, seq};
use apenet_apps::hsg::lattice::Slab;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("hsg");
    let l = 32;
    g.throughput(Throughput::Elements((l * l * l / 2) as u64));
    g.bench_function("overrelax_sweep_32cubed", |b| {
        let mut lat = Slab::full(l, 1);
        lat.wrap_ghosts();
        b.iter(|| {
            lat.update_color(0, 1, l);
            lat.wrap_ghosts();
            lat.update_color(1, 1, l);
            lat.wrap_ghosts();
        })
    });
    g.bench_function("pack_plane_32", |b| {
        let lat = Slab::full(l, 1);
        b.iter(|| lat.pack_plane(1, 0))
    });
    g.bench_function("energy_32cubed", |b| {
        let lat = Slab::full(l, 1);
        b.iter(|| lat.owned_energy())
    });
    g.finish();

    let mut g = c.benchmark_group("bfs");
    g.sample_size(20);
    let edges = rmat::generate(14, 16, 3);
    let graph = Csr::build(1 << 14, &edges);
    g.bench_function("rmat_scale14_generate", |b| {
        b.iter(|| rmat::generate(14, 16, 3).len())
    });
    g.bench_function("csr_build_scale14", |b| b.iter(|| Csr::build(1 << 14, &edges).n()));
    g.bench_function("sequential_bfs_scale14", |b| b.iter(|| seq::bfs(&graph, 1).level[100]));
    g.bench_function("level_expand_scale14", |b| {
        b.iter(|| {
            let part = Partition { n: graph.n(), np: 4 };
            let mut r = RankState::new(0, part, 1);
            r.expand(&graph, 1).edges_scanned
        })
    });
    g.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
