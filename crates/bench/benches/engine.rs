//! Criterion benches for the DES engine and its primitive data types.

use apenet_sim::engine::{Actor, Ctx, Sim};
use apenet_sim::rng::Xoshiro256ss;
use apenet_sim::{Bandwidth, ByteFifo, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

struct Relay {
    peer: usize,
}

impl Actor<u64> for Relay {
    fn on_event(&mut self, ev: u64, ctx: &mut Ctx<'_, u64>) {
        if ev > 0 {
            ctx.send(self.peer, SimDuration::from_ns(10), ev - 1);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("dispatch_100k_events", |b| {
        b.iter_batched(
            || {
                let mut sim: Sim<u64> = Sim::new();
                let a = sim.add_actor(Box::new(Relay { peer: 1 }));
                let bb = sim.add_actor(Box::new(Relay { peer: a }));
                sim.send(bb, SimTime::ZERO, 100_000);
                sim
            },
            |mut sim| {
                sim.run();
                sim.events_processed()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();

    let mut g = c.benchmark_group("primitives");
    g.bench_function("bandwidth_time_for", |b| {
        let bw = Bandwidth::from_mb_per_sec(1536);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            bw.time_for(4096 + (n & 1023)).as_ps()
        })
    });
    g.bench_function("fifo_push_pop_64", |b| {
        let mut fifo: ByteFifo<u32> = ByteFifo::with_default_watermark(1 << 20);
        b.iter(|| {
            for i in 0..64u32 {
                fifo.push(4096, i).unwrap();
            }
            let mut acc = 0u64;
            while let Some((bytes, _)) = fifo.pop() {
                acc += bytes;
            }
            acc
        })
    });
    g.bench_function("xoshiro_next_u64", |b| {
        let mut rng = Xoshiro256ss::seed_from(7);
        b.iter(|| rng.next_u64())
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
