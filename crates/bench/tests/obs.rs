//! Observability-plane integration tests: the Perfetto export of a real
//! two-node ping-pong loads with correctly nested spans, the span-trace
//! latency breakdown agrees with Fig. 4's bandwidth values, and enabling
//! tracing never changes what a run measures.

use apenet_bench::count_for;
use apenet_bench::figs::latency_breakdown;
use apenet_cluster::harness::{
    flush_read_bandwidth, pingpong_instrumented, two_node_bandwidth, two_node_instrumented,
    BufSide, TwoNodeParams,
};
use apenet_cluster::presets::{cluster_i_default, plx_node};
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;
use apenet_obs::perfetto;
use apenet_sim::trace::kind;

#[test]
fn pingpong_perfetto_export_nests_and_parses() {
    let (half_rtt, records) = pingpong_instrumented(
        cluster_i_default(),
        BufSide::Gpu,
        BufSide::Gpu,
        4096,
        4,
        false,
    );
    assert!(half_rtt.as_ps() > 0);
    assert!(!records.is_empty(), "tracing captured the exchange");
    // Both directions of the exchange carry spans: rank 0's and rank 1's
    // messages each produce post → … → delivered chains.
    assert!(records.iter().any(|r| r.kind == kind::POST));
    assert!(records.iter().any(|r| r.kind == kind::FRAME_RX));
    assert!(records.iter().any(|r| r.kind == kind::DELIVERED));
    let spans: std::collections::BTreeSet<_> = records.iter().filter_map(|r| r.span).collect();
    assert!(spans.len() >= 2, "one span per PUT in the exchange");

    let events = perfetto::export(&records);
    let slices = perfetto::validate_nesting(&events).expect("slices nest");
    assert!(slices >= spans.len(), "a parent slice per span at least");
    let json = perfetto::to_json(&events);
    perfetto::json_sanity(&json).expect("export is valid JSON");
    assert!(json.contains("\"traceEvents\""));
}

#[test]
fn latency_breakdown_matches_fig04_bandwidth() {
    // The breakdown's GPU-read section runs the exact Fig. 4 "v2
    // window=32KB" configuration with tracing added; observation must
    // not move a single measured value.
    let sizes = [4096u64, 32 * 1024];
    let rows = latency_breakdown::read_stages(&sizes);
    for (row, &size) in rows.iter().zip(&sizes) {
        let cfg = plx_node(GpuArch::Fermi2050, GpuTxVersion::V2, 32 * 1024);
        let fig04 = flush_read_bandwidth(cfg, BufSide::Gpu, size, count_for(size));
        assert_eq!(
            row.mb_per_sec.to_bits(),
            fig04.bandwidth.mb_per_sec_f64().to_bits(),
            "size {size}: breakdown bandwidth must equal fig04's bit-exactly"
        );
        assert!(row.setup_us > 0.0 && row.head_us > 0.0, "size {size}");
    }
}

#[test]
fn gg_stage_partition_is_exact() {
    let rows = latency_breakdown::gg_stages(&[4096, 65_536]);
    for r in rows {
        let sum = r.tx_pipeline_us + r.link_us + r.rx_us;
        assert!(
            (sum - r.total_us).abs() < 1e-6,
            "size {}: phases must partition the span ({sum} vs {})",
            r.size,
            r.total_us
        );
        assert!(r.total_us > 0.0, "size {}", r.size);
        assert!(r.frames_per_msg >= 1.0, "size {}", r.size);
    }
}

#[test]
fn tracing_does_not_change_measurements() {
    let p = TwoNodeParams {
        src: BufSide::Gpu,
        dst: BufSide::Gpu,
        size: 32 * 1024,
        count: 8,
        staged: false,
    };
    let plain = two_node_bandwidth(cluster_i_default(), p);
    let (traced, records) = two_node_instrumented(cluster_i_default(), p);
    assert!(!records.is_empty());
    // BwResult is plain data: Debug formatting covers every field.
    assert_eq!(
        format!("{plain:?}"),
        format!("{traced:?}"),
        "trace-on and trace-off runs must measure identically"
    );
}

#[test]
fn registry_snapshot_is_valid_json() {
    // The global registry serializes to JSON that our own strict parser
    // accepts, whatever state previous tests left it in.
    apenet_obs::global().add("obs.test.counter", 3);
    let json = apenet_obs::global().snapshot_json();
    perfetto::json_sanity(&json).expect("registry snapshot parses");
    assert!(json.contains("\"obs.test.counter\": 3"));
}
