//! Observability-plane integration tests: the Perfetto export of a real
//! two-node ping-pong loads with correctly nested spans, the span-trace
//! latency breakdown agrees with Fig. 4's bandwidth values, and enabling
//! tracing never changes what a run measures.

use apenet_bench::count_for;
use apenet_bench::figs::latency_breakdown;
use apenet_cluster::harness::{
    chaos_run, chaos_run_sampled, flush_read_bandwidth, get_chaos_run, pingpong_instrumented,
    pingpong_sampled_instrumented, two_node_bandwidth, two_node_instrumented, two_node_profiled,
    BufSide, ChaosParams, TwoNodeParams,
};
use apenet_cluster::presets::{cluster_i_chaos, cluster_i_default, plx_node};
use apenet_cluster::OccupancySampler;
use apenet_core::config::GpuTxVersion;
use apenet_core::coord::{LinkDir, TorusDims};
use apenet_gpu::GpuArch;
use apenet_obs::perfetto;
use apenet_sim::fault::FaultSpec;
use apenet_sim::trace::kind;
use apenet_sim::{SimDuration, SimTime};

fn chaos_cfg() -> apenet_cluster::NodeConfig {
    // Soft chaos on every link *and* a hard cable kill mid-run, with
    // fault-aware routing so delivery still completes: together they
    // light up every metric family the cards and watchdog publish.
    let mut cfg = cluster_i_chaos(0x0B5E_7E57, FaultSpec::chaos(1.0 / 50.0));
    cfg.card.route_around_faults = true;
    cfg.faults = cfg
        .faults
        .kill_link(0, LinkDir::Xp, SimTime::from_ps(20_000_000));
    cfg
}

fn chaos_params() -> ChaosParams {
    ChaosParams {
        msgs_per_rank: 8,
        msg_len: 32 * 1024,
        watchdog_reissue: true,
    }
}

#[test]
fn pingpong_perfetto_export_nests_and_parses() {
    let (half_rtt, records) = pingpong_instrumented(
        cluster_i_default(),
        BufSide::Gpu,
        BufSide::Gpu,
        4096,
        4,
        false,
    );
    assert!(half_rtt.as_ps() > 0);
    assert!(!records.is_empty(), "tracing captured the exchange");
    // Both directions of the exchange carry spans: rank 0's and rank 1's
    // messages each produce post → … → delivered chains.
    assert!(records.iter().any(|r| r.kind == kind::POST));
    assert!(records.iter().any(|r| r.kind == kind::FRAME_RX));
    assert!(records.iter().any(|r| r.kind == kind::DELIVERED));
    let spans: std::collections::BTreeSet<_> = records.iter().filter_map(|r| r.span).collect();
    assert!(spans.len() >= 2, "one span per PUT in the exchange");

    let events = perfetto::export(&records);
    let slices = perfetto::validate_nesting(&events).expect("slices nest");
    assert!(slices >= spans.len(), "a parent slice per span at least");
    let json = perfetto::to_json(&events);
    perfetto::json_sanity(&json).expect("export is valid JSON");
    assert!(json.contains("\"traceEvents\""));
}

#[test]
fn latency_breakdown_matches_fig04_bandwidth() {
    // The breakdown's GPU-read section runs the exact Fig. 4 "v2
    // window=32KB" configuration with tracing added; observation must
    // not move a single measured value.
    let sizes = [4096u64, 32 * 1024];
    let rows = latency_breakdown::read_stages(&sizes);
    for (row, &size) in rows.iter().zip(&sizes) {
        let cfg = plx_node(GpuArch::Fermi2050, GpuTxVersion::V2, 32 * 1024);
        let fig04 = flush_read_bandwidth(cfg, BufSide::Gpu, size, count_for(size));
        assert_eq!(
            row.mb_per_sec.to_bits(),
            fig04.bandwidth.mb_per_sec_f64().to_bits(),
            "size {size}: breakdown bandwidth must equal fig04's bit-exactly"
        );
        assert!(row.setup_us > 0.0 && row.head_us > 0.0, "size {size}");
    }
}

#[test]
fn gg_stage_partition_is_exact() {
    let rows = latency_breakdown::gg_stages(&[4096, 65_536]);
    for r in rows {
        let sum = r.tx_pipeline_us + r.link_us + r.rx_us;
        assert!(
            (sum - r.total_us).abs() < 1e-6,
            "size {}: phases must partition the span ({sum} vs {})",
            r.size,
            r.total_us
        );
        assert!(r.total_us > 0.0, "size {}", r.size);
        assert!(r.frames_per_msg >= 1.0, "size {}", r.size);
    }
}

#[test]
fn tracing_does_not_change_measurements() {
    let p = TwoNodeParams {
        src: BufSide::Gpu,
        dst: BufSide::Gpu,
        size: 32 * 1024,
        count: 8,
        staged: false,
    };
    let plain = two_node_bandwidth(cluster_i_default(), p);
    let (traced, records) = two_node_instrumented(cluster_i_default(), p);
    assert!(!records.is_empty());
    // BwResult is plain data: Debug formatting covers every field.
    assert_eq!(
        format!("{plain:?}"),
        format!("{traced:?}"),
        "trace-on and trace-off runs must measure identically"
    );
}

#[test]
fn sampling_is_deterministic_and_never_perturbs() {
    let cfg = || cluster_i_chaos(0x5A3D_1E57, FaultSpec::chaos(1.0 / 50.0));
    let dims = TorusDims::new(2, 1, 1);
    let plain = chaos_run(dims, cfg(), chaos_params());
    let mut s1 = OccupancySampler::new(SimDuration::from_us(2));
    let sampled = chaos_run_sampled(dims, cfg(), chaos_params(), &mut s1);
    // The sampler observes between events and schedules nothing: the
    // sampled run's report — end time, deliveries, every fault counter —
    // is identical to the unsampled run's. ChaosReport is plain data,
    // so Debug formatting covers every field.
    assert_eq!(
        format!("{plain:?}"),
        format!("{sampled:?}"),
        "sampling must not change a single scheduled event"
    );
    assert!(s1.samples() > 0, "the run is long enough to tick");
    assert!(!s1.series().is_empty());
    // Same seed, same period: the recorded series are byte-identical.
    let mut s2 = OccupancySampler::new(SimDuration::from_us(2));
    let _ = chaos_run_sampled(dims, cfg(), chaos_params(), &mut s2);
    assert_eq!(
        s1.registry().snapshot_json(),
        s2.registry().snapshot_json(),
        "sampled time series must replay bit-exactly"
    );
    // The wire-byte series the heatmap differentiates is cumulative.
    let series = s1.series();
    let (_, wire) = series
        .iter()
        .find(|(id, _)| id == "card0.link.x+.wire_bytes")
        .expect("rank 0's x+ port carried the ring traffic");
    assert!(wire.windows(2).all(|w| w[0].1 <= w[1].1), "cumulative");
    assert!(wire.last().unwrap().1 > 0);
}

#[test]
fn profiler_partitions_a_real_run_exactly() {
    let p = TwoNodeParams {
        src: BufSide::Gpu,
        dst: BufSide::Gpu,
        size: 64 * 1024,
        count: 8,
        staged: false,
    };
    let plain = two_node_bandwidth(cluster_i_default(), p);
    let (profiled, prof) = two_node_profiled(cluster_i_default(), p);
    assert_eq!(
        format!("{plain:?}"),
        format!("{profiled:?}"),
        "profiling must not change what a run measures"
    );
    // The 100 % property on a real workload: buckets + idle == span.
    prof.assert_exact();
    assert!(prof.span_ps > 0);
    assert!(prof.total_events() > 0);
    assert_eq!(prof.idle_ps, 0, "run() never idles forward");
    // Both actor kinds of a cluster run show up as components.
    let comps = prof.by_component();
    assert!(comps.iter().any(|(c, _)| c == "apenet-card"));
    assert!(comps.iter().any(|(c, _)| c == "host"));
}

#[test]
fn sampled_pingpong_exports_valid_counter_tracks() {
    // The trace-export bin's exact recipe: spans and counter tracks from
    // one sampled ping-pong, merged into a single validated trace.
    let mut sampler = OccupancySampler::new(SimDuration::from_us(2));
    let (half_rtt, records) = pingpong_sampled_instrumented(
        cluster_i_default(),
        BufSide::Gpu,
        BufSide::Gpu,
        4096,
        4,
        false,
        &mut sampler,
    );
    assert!(half_rtt.as_ps() > 0);
    let mut events = perfetto::export(&records);
    let series: Vec<_> = sampler
        .series()
        .into_iter()
        .filter(|(_, pts)| pts.iter().any(|&(_, v)| v != 0))
        .collect();
    assert!(!series.is_empty(), "a live run leaves nonzero series");
    events.extend(perfetto::counter_events(&series));
    let checked = perfetto::validate_nesting(&events).expect("slices and counters validate");
    assert!(checked > 0);
    let json = perfetto::to_json(&events);
    perfetto::json_sanity(&json).expect("merged export is valid JSON");
    assert!(json.contains("\"ph\": \"C\""), "counter samples present");
}

#[test]
fn metrics_all_declares_every_published_id() {
    // A GET run under the same chaos-plus-cable-kill plan: one-sided
    // reads light up the `get.*` protocol counters and the send-queue
    // moderation ids on top of every family the PUT path publishes.
    let report = get_chaos_run(
        TorusDims::new(4, 2, 1),
        chaos_cfg(),
        chaos_params(),
        apenet_rdma::signal::SignalConfig::default(),
    );
    let declared: std::collections::BTreeSet<&str> = apenet_core::card::metrics::ALL
        .iter()
        .chain(apenet_rdma::driver::metrics::ALL.iter())
        .chain(apenet_rdma::signal::metrics::ALL.iter())
        .copied()
        .collect();
    for id in report.metrics.0.keys() {
        assert!(
            declared.contains(id.as_str()),
            "metric {id:?} was published but is missing from metrics::ALL \
             (add it so dashboards and the completeness check see it)"
        );
    }
    // The run must actually have exercised every publisher: soft-chaos
    // link counters from the cards, the GET protocol, and send-queue
    // moderation. (The watchdog registers its ids even while silent.)
    assert!(report.metrics.get(apenet_core::card::metrics::RETRANSMITS) > 0);
    assert!(report.metrics.get(apenet_core::card::metrics::LINK_DEAD) > 0);
    assert!(report.metrics.get(apenet_core::card::metrics::GET_REQUESTS) > 0);
    assert!(report.metrics.get(apenet_core::card::metrics::GET_SERVED) > 0);
    assert!(
        report
            .metrics
            .get(apenet_rdma::signal::metrics::CQ_SIGNALED)
            > 0
    );
    assert!(
        report
            .metrics
            .get(apenet_rdma::signal::metrics::DOORBELL_BATCHED)
            > 0,
        "default batch=8 must cover some doorbells"
    );
    assert!(
        report.metrics.0.keys().count() >= declared.len(),
        "every declared id is registered by attach/publish, even at zero"
    );
}

#[test]
fn registry_snapshot_is_valid_json() {
    // The global registry serializes to JSON that our own strict parser
    // accepts, whatever state previous tests left it in.
    apenet_obs::global().add("obs.test.counter", 3);
    let json = apenet_obs::global().snapshot_json();
    perfetto::json_sanity(&json).expect("registry snapshot parses");
    assert!(json.contains("\"obs.test.counter\": 3"));
}
