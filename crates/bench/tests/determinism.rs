//! The parallel sweep must be invisible in the output: running a figure
//! with one worker or many must produce byte-identical `results/*.txt`.
//! Covers a bandwidth sweep (fig06), an application table (table2), and
//! the fault-injected chaos sweep (chaos_sweep) — determinism must
//! survive seeded corruption, drops, stalls and go-back-N recovery.

use apenet_bench::{figs, sweep};

fn run_pass(dir: &std::path::Path, threads: usize) {
    std::fs::create_dir_all(dir).expect("results dir");
    std::env::set_var("APENET_RESULTS", dir);
    sweep::set_threads(threads);
    figs::fig06::run();
    figs::table2::run();
    figs::chaos_sweep::run();
    sweep::set_threads(0);
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let tmp = std::env::temp_dir().join(format!("apenet-det-{}", std::process::id()));
    let serial = tmp.join("serial");
    let parallel = tmp.join("parallel");
    run_pass(&serial, 1);
    run_pass(&parallel, 4);
    std::env::remove_var("APENET_RESULTS");
    for name in ["fig06.txt", "table2.txt", "chaos_sweep.txt"] {
        let a = std::fs::read(serial.join(name)).expect("serial output");
        let b = std::fs::read(parallel.join(name)).expect("parallel output");
        assert!(!a.is_empty());
        assert_eq!(a, b, "{name} differs between 1-thread and 4-thread sweeps");
    }
    let _ = std::fs::remove_dir_all(&tmp);
}
