//! Fault-free golden regression: with every injector disabled (the
//! default), the retransmission machinery must cost nothing — fig04,
//! fig06 and table1 regenerate byte-identical to the committed
//! `results/` files, pinned here as FNV-1a digests. A timing shift
//! anywhere in the TX/RX/link datapath shows up as a digest change.

use apenet_bench::figs;
use apenet_cluster::harness::{get_chaos_run, ChaosParams};
use apenet_cluster::presets::cluster_i_default;
use apenet_core::coord::TorusDims;
use apenet_rdma::signal::SignalConfig;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn clean_links_reproduce_golden_outputs() {
    // Digests of the committed pre-reliability-layer results/ files.
    let golden = [
        ("fig04.txt", 0x3cc1_5b14_0e58_09ad_u64),
        ("fig06.txt", 0xfebb_d2ba_7908_eca3),
        ("table1.txt", 0xd49b_2204_1a76_0189),
    ];
    // Two regenerations: once as shipped, once with fault-aware routing
    // enabled cluster-wide (`APENET_ROUTE_AROUND_FAULTS=1`). With no
    // faults scheduled the fault plane must be pure dead code — same
    // digests byte for byte. Both passes also run with span tracing
    // enabled-then-discarded: observation must never perturb scheduling.
    // The second pass additionally turns on occupancy sampling
    // (`APENET_SAMPLE`) and the sim-time profiler (`APENET_PROFILE`),
    // both enabled-then-discarded — the digests prove the whole
    // observability plane has zero scheduling effect.
    // Each pass also drives a clean GET (RDMA-Read) stream under the
    // same env knobs: the one-sided read path — request packets, remote
    // serves, reply assembly, send-queue moderation — must be equally
    // invisible to the observability plane. The full report (end time,
    // deliveries, every counter) must come out byte-identical between
    // the trace-only pass and the everything-on pass.
    let mut get_reports: Vec<String> = Vec::new();
    for fault_plane in [false, true] {
        let tmp = std::env::temp_dir().join(format!(
            "apenet-golden-{}-{}",
            std::process::id(),
            fault_plane as u8
        ));
        std::fs::create_dir_all(&tmp).expect("results dir");
        std::env::set_var("APENET_RESULTS", &tmp);
        std::env::set_var("APENET_TRACE", "ring:4096");
        if fault_plane {
            std::env::set_var("APENET_ROUTE_AROUND_FAULTS", "1");
            std::env::set_var("APENET_SAMPLE", "5us");
            std::env::set_var("APENET_PROFILE", "1");
        }
        figs::fig04::run();
        figs::fig06::run();
        figs::table1::run();
        let get = get_chaos_run(
            TorusDims::new(4, 2, 1),
            cluster_i_default(),
            ChaosParams {
                msgs_per_rank: 3,
                msg_len: 24 * 1024,
                watchdog_reissue: true,
            },
            SignalConfig::default(),
        );
        assert_eq!(get.delivered, get.expected);
        assert!(get.payload_ok && get.quiesced);
        get_reports.push(format!("{get:?}"));
        std::env::remove_var("APENET_TRACE");
        std::env::remove_var("APENET_RESULTS");
        std::env::remove_var("APENET_ROUTE_AROUND_FAULTS");
        std::env::remove_var("APENET_SAMPLE");
        std::env::remove_var("APENET_PROFILE");
        for (name, want) in golden {
            let bytes = std::fs::read(tmp.join(name)).expect("generated output");
            assert!(!bytes.is_empty());
            assert_eq!(
                fnv1a(&bytes),
                want,
                "{name} drifted from the committed golden output \
                 (route_around_faults={fault_plane})"
            );
        }
        let _ = std::fs::remove_dir_all(&tmp);
    }
    assert_eq!(
        get_reports[0], get_reports[1],
        "GET runs must be byte-identical with the whole observability \
         plane (trace + sample + profile + fault routing) switched on"
    );
}
