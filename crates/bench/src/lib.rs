//! # apenet-bench — the reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (§V):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig03` | PCIe bus-analyzer timing sketch |
//! | `table1` | low-level loop-back bandwidths |
//! | `fig04` | GPU read bandwidth vs message size (v1/v2/v3 × window) |
//! | `fig05` | the same sweep through the full loop-back path |
//! | `fig06` | two-node bandwidth, H/G × H/G |
//! | `fig07` | G-G bandwidth: P2P vs staging vs IB/MVAPICH2 |
//! | `fig08` | two-node latency, H/G × H/G |
//! | `fig09` | G-G latency: P2P vs staging vs IB |
//! | `fig10` | LogP host overhead |
//! | `table2` | HSG strong scaling (L = 256) |
//! | `table3` | HSG two-node P2P-mode break-down |
//! | `fig11` | HSG speed-up for L = 128/256/512 × P2P mode |
//! | `table4` | BFS TEPS strong scaling |
//! | `fig12` | BFS per-task compute/communication break-down |
//! | `latency-breakdown` | per-stage latency decomposition from span traces |
//! | `chaos-sweep` | effective bandwidth vs. injected per-frame fault rate |
//! | `degraded-route` | aggregate torus bandwidth vs. failed-link count |
//! | `trace-export` | Perfetto `trace_event` JSON of a 2-node ping-pong |
//! | `repro-all` | everything above, into `results/` |
//!
//! Every binary prints the paper's reference values alongside the
//! simulation's, so the comparison the prompt calls "paper-vs-measured"
//! is in the output itself.
//!
//! The sweeps inside each figure fan out across threads via [`sweep`]
//! (`APENET_SWEEP_THREADS` controls the width; output is byte-identical
//! at any width). The in-tree [`microbench`] harness
//! (`cargo run -p apenet-bench --release --bin microbench`) covers the
//! hot paths of the simulator and replaces the former Criterion benches.

pub mod figs;
pub mod microbench;
pub mod sweep;

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// The message-size grid of the bandwidth figures (32 B – 4 MB).
pub fn sizes_32b_4mb() -> Vec<u64> {
    (5..=22).map(|p| 1u64 << p).collect()
}

/// The message-size grid of Figs. 4/5 (4 KB – 4 MB).
pub fn sizes_4kb_4mb() -> Vec<u64> {
    (12..=22).map(|p| 1u64 << p).collect()
}

/// The message-size grid of the latency figures (32 B – 4 KB).
pub fn sizes_32b_4kb() -> Vec<u64> {
    (5..=12).map(|p| 1u64 << p).collect()
}

/// How many messages to stream per bandwidth point, scaled down for the
/// big sizes so sweeps stay fast.
pub fn count_for(size: u64) -> u32 {
    match size {
        0..=4096 => 40,
        4097..=262_144 => 24,
        _ => 10,
    }
}

/// Where figure outputs land (`results/` at the workspace root, or
/// `$APENET_RESULTS`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("APENET_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Print a report to stdout and mirror it into `results/<name>.txt`.
pub fn emit(name: &str, body: &str) {
    println!("{body}");
    let path = results_dir().join(format!("{name}.txt"));
    if let Ok(mut f) = fs::File::create(&path) {
        let _ = f.write_all(body.as_bytes());
    }
}

/// Format a `paper vs measured` table row.
pub fn cmp_row(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    format!("{label:<38} {paper:>10.1} {measured:>10.1} {unit:<6} (x{ratio:.2})")
}

/// Header for `cmp_row` tables.
pub fn cmp_header(title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    let _ = writeln!(s, "{:<38} {:>10} {:>10}", "quantity", "paper", "model");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_sane() {
        let s = sizes_32b_4mb();
        assert_eq!(*s.first().unwrap(), 32);
        assert_eq!(*s.last().unwrap(), 4 << 20);
        assert_eq!(sizes_32b_4kb().last(), Some(&4096));
        assert_eq!(sizes_4kb_4mb().first(), Some(&4096));
    }

    #[test]
    fn counts_shrink_with_size() {
        assert!(count_for(64) > count_for(1 << 20));
    }

    #[test]
    fn cmp_row_formats() {
        let r = cmp_row("latency H-H", 6.3, 6.4, "us");
        assert!(r.contains("6.3"));
        assert!(r.contains("x1.02"));
    }
}
