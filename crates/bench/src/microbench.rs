//! In-tree microbenchmark harness (no Criterion, no crates.io).
//!
//! Each benchmark is a closure run `warmup` times untimed, then `iters`
//! times with per-iteration wall-clock sampling; the report carries the
//! median and minimum sample plus — for benches that drive a [`Sim`] —
//! the simulator event throughput derived from the process-global event
//! counter. Results go to stdout and, as hand-rolled JSON, to
//! `BENCH_microbench.json`.
//!
//! Run with `cargo run -p apenet-bench --release --bin microbench`.
//! `APENET_BENCH_ITERS` overrides the sample count.
//!
//! [`Sim`]: apenet_sim::engine::Sim

use apenet_sim::engine;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One benchmark's summary statistics.
pub struct BenchResult {
    pub name: String,
    pub iters: u32,
    pub median_ns: f64,
    pub min_ns: f64,
    /// Simulator events retired per wall-clock second, when the bench
    /// stepped a `Sim` at all.
    pub events_per_sec: Option<f64>,
}

/// Collects [`BenchResult`]s and renders the JSON report.
pub struct Harness {
    pub warmup: u32,
    pub iters: u32,
    pub results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Harness {
    /// Build a harness from `APENET_BENCH_ITERS` (default 15 samples,
    /// 3 warmup rounds).
    pub fn from_env() -> Self {
        let iters = std::env::var("APENET_BENCH_ITERS")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(15);
        Harness {
            warmup: 3,
            iters,
            results: Vec::new(),
        }
    }

    /// Time `f`, recording median/min and — if the closure stepped any
    /// simulator — events per second over the timed window.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        let ev0 = engine::global_events();
        let wall = Instant::now();
        for _ in 0..self.iters {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed().as_nanos() as f64);
        }
        let total_s = wall.elapsed().as_secs_f64();
        let events = engine::global_events() - ev0;
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let events_per_sec = (events > 0 && total_s > 0.0).then(|| events as f64 / total_s);
        match events_per_sec {
            Some(eps) => println!(
                "{name:<28} median {:>12.0} ns  min {:>12.0} ns  {eps:>12.0} events/s",
                median, min
            ),
            None => println!(
                "{name:<28} median {:>12.0} ns  min {:>12.0} ns",
                median, min
            ),
        }
        self.results.push(BenchResult {
            name: name.to_string(),
            iters: self.iters,
            median_ns: median,
            min_ns: min,
            events_per_sec,
        });
    }

    /// The recorded result for `name`, if that bench has run.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Render the whole run as JSON (hand-rolled: the workspace has no
    /// serde and the schema is four fields deep).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"warmup\": {},", self.warmup);
        let _ = writeln!(s, "  \"iters\": {},", self.iters);
        s.push_str("  \"benches\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let eps = match r.events_per_sec {
                Some(v) => format!("{v:.1}"),
                None => "null".to_string(),
            };
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"events_per_sec\": {}}}",
                r.name, r.median_ns, r.min_ns, eps
            );
            s.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The benchmark suite: the hot paths the former Criterion benches
/// covered, plus a direct zero-copy vs memcpy fragmentation comparison.
pub fn run_all(h: &mut Harness) {
    engine_benches(h);
    fabric_benches(h);
    frag_benches(h);
    app_benches(h);
}

fn engine_benches(h: &mut Harness) {
    use apenet_sim::engine::{Actor, Ctx, Sim};
    use apenet_sim::rng::Xoshiro256ss;
    use apenet_sim::{Bandwidth, ByteFifo, SimDuration, SimTime};

    struct Relay {
        peer: usize,
    }
    impl Actor<u64> for Relay {
        fn on_event(&mut self, ev: u64, ctx: &mut Ctx<'_, u64>) {
            if ev > 0 {
                ctx.send(self.peer, SimDuration::from_ns(10), ev - 1);
            }
        }
    }
    h.bench("engine_dispatch_100k", || {
        let mut sim: Sim<u64> = Sim::new();
        let a = sim.add_actor(Box::new(Relay { peer: 1 }));
        let b = sim.add_actor(Box::new(Relay { peer: a }));
        sim.send(b, SimTime::ZERO, 100_000u64);
        sim.run();
        sim.events_processed()
    });
    // The calendar-depth counterpart of engine_dispatch_100k: the dense
    // bench spaces events 10 ns apart (every pop lands in the current or
    // next bucket), this one spaces them 1 µs – 1 ms apart under a
    // standing far-future backlog, so pops rotate whole calendar years
    // and the bucket-width adaptation has to chase the sparse horizon.
    // Pinning both shapes in the gate keeps a scheduler change honest on
    // dense *and* sparse calendars.
    struct WideRelay {
        peer: usize,
    }
    impl Actor<u64> for WideRelay {
        fn on_event(&mut self, ev: u64, ctx: &mut Ctx<'_, u64>) {
            if ev > 0 {
                let delay_ns = 1_000 + ev.wrapping_mul(7919) % 1_000_000;
                ctx.send(self.peer, SimDuration::from_ns(delay_ns), ev - 1);
            }
        }
    }
    struct Sink;
    impl Actor<u64> for Sink {
        fn on_event(&mut self, _ev: u64, _ctx: &mut Ctx<'_, u64>) {}
    }
    h.bench("engine_dispatch_wide_100k", || {
        let mut sim: Sim<u64> = Sim::new();
        let a = sim.add_actor(Box::new(WideRelay { peer: 1 }));
        let b = sim.add_actor(Box::new(WideRelay { peer: a }));
        let sink = sim.add_actor(Box::new(Sink));
        // A standing population spread over the whole ~50 s horizon keeps
        // far-future buckets occupied while the chain pops the near edge.
        for i in 0..1024u64 {
            sim.send(sink, SimTime::from_ps(i * 100_000_000_000), i);
        }
        sim.send(b, SimTime::ZERO, 100_000u64);
        sim.run();
        sim.events_processed()
    });
    h.bench("bandwidth_time_for_x64k", || {
        let bw = Bandwidth::from_mb_per_sec(1536);
        let mut acc = 0u64;
        for n in 0..65_536u64 {
            acc = acc.wrapping_add(bw.time_for(4096 + (n & 1023)).as_ps());
        }
        acc
    });
    h.bench("fifo_push_pop_64_x1k", || {
        let mut fifo: ByteFifo<u32> = ByteFifo::with_default_watermark(1 << 20);
        let mut acc = 0u64;
        for _ in 0..1024 {
            for i in 0..64u32 {
                fifo.push(4096, i).unwrap();
            }
            while let Some((bytes, _)) = fifo.pop() {
                acc += bytes;
            }
        }
        acc
    });
    h.bench("xoshiro_next_u64_x1m", || {
        let mut rng = Xoshiro256ss::seed_from(7);
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    });
}

fn fabric_benches(h: &mut Harness) {
    use apenet_cluster::harness::{two_node_bandwidth, BufSide, TwoNodeParams};
    use apenet_cluster::presets::cluster_i_default;
    use apenet_core::coord::TorusDims;
    use apenet_core::nios::{BufEntry, BufKind, BufList, GpuV2p, PageDesc};
    use apenet_pcie::fabric::plx_platform;
    use apenet_pcie::tlp::TlpKind;
    use apenet_sim::SimTime;

    h.bench("pcie_stream_64k_over_plx", || {
        let (mut fabric, gpu, nic, _) = plx_platform();
        fabric
            .send_stream(SimTime::ZERO, gpu, nic, TlpKind::MemWrite, 64 * 1024, 256)
            .arrive
    });
    h.bench("gpu_v2p_walk_x1k", || {
        let mut pt = GpuV2p::new();
        for p in 0..1024u64 {
            pt.insert(
                p * 65536,
                PageDesc {
                    phys: p * 65536,
                    token: 1,
                },
            );
        }
        let mut hits = 0u64;
        for p in 0..1024u64 {
            if pt.walk(p * 65536).0.is_some() {
                hits += 1;
            }
        }
        hits
    });
    h.bench("buflist_scan_64_entries", || {
        let mut bl = BufList::new();
        for i in 0..64u64 {
            bl.register(BufEntry {
                vaddr: i << 20,
                len: 1 << 20,
                kind: BufKind::Host,
                pid: 1,
            });
        }
        let mut cost = 0u64;
        for i in 0..64u64 {
            cost += bl.lookup(i << 20, 64).1.as_ps();
        }
        cost
    });
    h.bench("torus_route_4x2_all_pairs", || {
        let dims = TorusDims::new(4, 2, 1);
        let mut hops = 0u32;
        for a in 0..8 {
            for z in 0..8 {
                let (mut at, dst) = (dims.coord_of(a), dims.coord_of(z));
                while let Some(hop) = dims.next_hop(at, dst) {
                    at = dims.neighbor(at, hop);
                    hops += 1;
                }
            }
        }
        hops
    });
    h.bench("two_node_gg_64k_x4", || {
        two_node_bandwidth(
            cluster_i_default(),
            TwoNodeParams {
                src: BufSide::Gpu,
                dst: BufSide::Gpu,
                size: 64 * 1024,
                count: 4,
                staged: false,
            },
        )
        .bandwidth
    });
    h.bench("get_gg_4k_x16_batch8", || {
        use apenet_cluster::harness::{get_stream_bandwidth, GetStreamParams};
        use apenet_rdma::signal::SignalConfig;
        get_stream_bandwidth(
            cluster_i_default(),
            GetStreamParams {
                size: 4096,
                count: 16,
                window: 8,
                sig: SignalConfig::default(),
            },
        )
        .bandwidth
    });
}

/// Fragment a 4 MB message the fabric's way (refcounted slice views)
/// and the old way (one heap copy per fragment); the ratio is the
/// zero-copy payoff in isolation.
fn frag_benches(h: &mut Harness) {
    use apenet_core::packet::fragments;
    use apenet_sim::bytes::PayloadSlice;

    let msg: Vec<u8> = (0..4 << 20).map(|i| (i % 251) as u8).collect();
    let whole = PayloadSlice::from_vec(msg.clone());
    h.bench("frag_4mb_zero_copy", || {
        let mut total = 0u64;
        for (off, len) in fragments(whole.len() as u64) {
            let frag = whole.narrow(off as usize, len as usize);
            // black_box defeats dead-fragment elimination so both
            // variants pay for a materialized, observable fragment.
            total = total.wrapping_add(black_box(&frag)[0] as u64 + frag.len() as u64);
        }
        total
    });
    h.bench("frag_4mb_memcpy", || {
        let mut total = 0u64;
        for (off, len) in fragments(msg.len() as u64) {
            let frag: Vec<u8> = msg[off as usize..off as usize + len as usize].to_vec();
            total = total.wrapping_add(black_box(&frag)[0] as u64 + frag.len() as u64);
        }
        total
    });
    if let (Some(zc), Some(cp)) = (h.result("frag_4mb_zero_copy"), h.result("frag_4mb_memcpy")) {
        println!(
            "frag_4mb: zero-copy is x{:.1} faster than per-fragment memcpy (median)",
            cp.median_ns / zc.median_ns.max(1.0)
        );
    }
}

fn app_benches(h: &mut Harness) {
    use apenet_apps::bfs::csr::Csr;
    use apenet_apps::bfs::{rmat, seq};
    use apenet_apps::hsg::lattice::Slab;

    let l = 32;
    h.bench("hsg_overrelax_sweep_32cubed", move || {
        let mut lat = Slab::full(l, 1);
        lat.wrap_ghosts();
        lat.update_color(0, 1, l);
        lat.wrap_ghosts();
        lat.update_color(1, 1, l);
        lat.wrap_ghosts();
        lat.owned_energy()
    });
    let edges = rmat::generate(14, 16, 3);
    let graph = Csr::build(1 << 14, &edges);
    h.bench("bfs_seq_scale14", move || seq::bfs(&graph, 1).level[100]);
}
