//! Regenerates the GET doorbell-batch saturation sweep (see
//! `apenet_bench::figs::get_sweep`).

fn main() {
    apenet_bench::figs::get_sweep::run();
}
