//! Regenerates the paper's fig07 (see `apenet_bench::figs::fig07`).

fn main() {
    apenet_bench::figs::fig07::run();
}
