//! Capture a two-node G-G RDMA ping-pong with span tracing enabled and
//! export it as Chrome/Perfetto `trace_event` JSON
//! (`results/trace_pingpong.json`; open in <https://ui.perfetto.dev> or
//! `chrome://tracing`). The same run is occupancy-sampled, so the file
//! also carries counter tracks (queue depths, link wire bytes, firmware
//! busy time) under the message slices — one shared timeline. Exits
//! non-zero if the export fails to parse as JSON or its slices/counters
//! do not validate — this is the CI smoke test for the exporter.

use apenet_bench::results_dir;
use apenet_cluster::harness::{pingpong_sampled_instrumented, BufSide};
use apenet_cluster::presets::cluster_i_default;
use apenet_cluster::OccupancySampler;
use apenet_obs::perfetto;
use apenet_sim::SimDuration;

fn main() {
    let mut sampler = OccupancySampler::new(SimDuration::from_us(2));
    let (half_rtt, records) = pingpong_sampled_instrumented(
        cluster_i_default(),
        BufSide::Gpu,
        BufSide::Gpu,
        4096,
        4,
        false,
        &mut sampler,
    );
    let mut events = perfetto::export(&records);
    // Counter tracks: every sampled series that ever left zero (the
    // all-zero ones add bulk, not information).
    let series: Vec<_> = sampler
        .series()
        .into_iter()
        .filter(|(_, pts)| pts.iter().any(|&(_, v)| v != 0))
        .collect();
    let counters = perfetto::counter_events(&series);
    let n_counters = counters.len();
    events.extend(counters);
    let checked = match perfetto::validate_nesting(&events) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("[trace-export] FAIL: slices/counters do not validate: {e}");
            std::process::exit(1);
        }
    };
    let json = perfetto::to_json(&events);
    if let Err(e) = perfetto::json_sanity(&json) {
        eprintln!("[trace-export] FAIL: export is not valid JSON: {e}");
        std::process::exit(1);
    }
    let path = results_dir().join("trace_pingpong.json");
    std::fs::write(&path, &json).expect("write trace_pingpong.json");
    eprintln!(
        "[trace-export] {} trace records -> {} events ({checked} slices+counters validated, \
         {} counter tracks x {} samples), half RTT {half_rtt} -> {}",
        records.len(),
        events.len(),
        series.len(),
        n_counters,
        path.display()
    );
}
