//! Capture a two-node G-G RDMA ping-pong with span tracing enabled and
//! export it as Chrome/Perfetto `trace_event` JSON
//! (`results/trace_pingpong.json`; open in <https://ui.perfetto.dev> or
//! `chrome://tracing`). Exits non-zero if the export fails to parse as
//! JSON or its slices do not nest — this is the CI smoke test for the
//! exporter.

use apenet_bench::results_dir;
use apenet_cluster::harness::{pingpong_instrumented, BufSide};
use apenet_cluster::presets::cluster_i_default;
use apenet_obs::perfetto;

fn main() {
    let (half_rtt, records) = pingpong_instrumented(
        cluster_i_default(),
        BufSide::Gpu,
        BufSide::Gpu,
        4096,
        4,
        false,
    );
    let events = perfetto::export(&records);
    let slices = match perfetto::validate_nesting(&events) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("[trace-export] FAIL: slices do not nest: {e}");
            std::process::exit(1);
        }
    };
    let json = perfetto::to_json(&events);
    if let Err(e) = perfetto::json_sanity(&json) {
        eprintln!("[trace-export] FAIL: export is not valid JSON: {e}");
        std::process::exit(1);
    }
    let path = results_dir().join("trace_pingpong.json");
    std::fs::write(&path, &json).expect("write trace_pingpong.json");
    eprintln!(
        "[trace-export] {} trace records -> {} events ({slices} slices, nesting OK), \
         half RTT {half_rtt} -> {}",
        records.len(),
        events.len(),
        path.display()
    );
}
