//! Regenerate every table and figure into `results/`, running the
//! independent deterministic simulations on a thread per experiment.

use apenet_bench::figs;
use std::time::Instant;

fn main() {
    let jobs: Vec<(&str, fn())> = vec![
        ("fig03", figs::fig03::run),
        ("table1", figs::table1::run),
        ("fig04", figs::fig04::run),
        ("fig05", figs::fig05::run),
        ("fig06", figs::fig06::run),
        ("fig07", figs::fig07::run),
        ("fig08", figs::fig08::run),
        ("fig09", figs::fig09::run),
        ("fig10", figs::fig10::run),
        ("table2", figs::table2::run),
        ("table3", figs::table3::run),
        ("fig11", figs::fig11::run),
        ("table4", figs::table4::run),
        ("fig12", figs::fig12::run),
        ("bar1_ablation", figs::bar1_ablation::run),
        ("bidir", figs::bidir::run),
    ];
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (name, f) in jobs {
            scope.spawn(move || {
                let t = Instant::now();
                f();
                eprintln!("[repro-all] {name} done in {:.1}s", t.elapsed().as_secs_f64());
            });
        }
    });
    eprintln!(
        "[repro-all] all experiments regenerated in {:.1}s -> results/",
        start.elapsed().as_secs_f64()
    );
}
