//! Regenerate every table and figure into `results/`.
//!
//! Experiments fan out through [`apenet_bench::sweep`], so the driver
//! and the per-figure sweeps share one global thread budget
//! (`APENET_SWEEP_THREADS`). The run is repeated serially to record the
//! parallel payoff in `BENCH_repro_all.json`; set
//! `APENET_REPRO_NO_BASELINE=1` to skip the serial reference pass.

use apenet_bench::{figs, sweep};
use apenet_sim::engine;
use std::time::Instant;

fn jobs() -> Vec<(&'static str, fn())> {
    vec![
        ("fig03", figs::fig03::run),
        ("table1", figs::table1::run),
        ("fig04", figs::fig04::run),
        ("fig05", figs::fig05::run),
        ("fig06", figs::fig06::run),
        ("fig07", figs::fig07::run),
        ("fig08", figs::fig08::run),
        ("fig09", figs::fig09::run),
        ("fig10", figs::fig10::run),
        ("table2", figs::table2::run),
        ("table3", figs::table3::run),
        ("fig11", figs::fig11::run),
        ("table4", figs::table4::run),
        ("fig12", figs::fig12::run),
        ("bar1_ablation", figs::bar1_ablation::run),
        ("bidir", figs::bidir::run),
        ("chaos_sweep", figs::chaos_sweep::run),
        ("get_sweep", figs::get_sweep::run),
        ("latency_breakdown", figs::latency_breakdown::run),
        ("sim_profile", figs::sim_profile::run),
        ("congestion_heatmap", figs::congestion_heatmap::run),
    ]
}

/// Render one pass's per-worker accounting as a JSON array. Which
/// worker got which item is scheduling-dependent, so the gate skips
/// everything under a `threads_detail` key; the totals it sums to are
/// what the deterministic `events` field checks.
fn threads_json(stats: &[(usize, sweep::ThreadStat)]) -> String {
    let mut s = String::from("[");
    for (i, (w, st)) in stats.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"worker\": {w}, \"items\": {}, \"events\": {}, \"busy_ns\": {}}}",
            st.items, st.events, st.busy_ns
        ));
    }
    s.push(']');
    s
}

/// Render the link-reliability counters of a registry snapshot as a JSON
/// object. Every figure of the paper runs on clean links, so only the
/// chaos sweep contributes: with it excluded (or faults off) every field
/// is zero and absent ids read as zero.
fn link_json(t: &apenet_obs::CounterSnapshot) -> String {
    use apenet_core::card::metrics as lm;
    let clean = lm::ALL.iter().all(|id| t.get(id) == 0);
    format!(
        "{{\"retransmits\": {}, \"timeouts\": {}, \"naks\": {}, \"dup_frames\": {}, \
         \"crc_dropped\": {}, \"injected_corrupt\": {}, \"injected_drops\": {}, \
         \"injected_stalls\": {}, \"stall_ms\": {:.3}, \"clean\": {}}}",
        t.get(lm::RETRANSMITS),
        t.get(lm::TIMEOUTS),
        t.get(lm::NAKS_SENT),
        t.get(lm::DUP_FRAMES),
        t.get(lm::CRC_DROPPED),
        t.get(lm::INJECTED_CORRUPT),
        t.get(lm::INJECTED_DROPS),
        t.get(lm::INJECTED_STALLS),
        t.get(lm::STALL_PS) as f64 * 1e-9,
        clean,
    )
}

/// One full pass over every experiment; returns (wall seconds, events,
/// per-worker accounting for this pass).
fn run_all(tag: &str) -> (f64, u64, Vec<(usize, sweep::ThreadStat)>) {
    let start = Instant::now();
    let ev0 = engine::global_events();
    let _ = sweep::take_thread_stats();
    let jobs = jobs();
    sweep::map(&jobs, |(name, f)| {
        let t = Instant::now();
        f();
        eprintln!(
            "[repro-all/{tag}] {name} done in {:.1}s",
            t.elapsed().as_secs_f64()
        );
    });
    (
        start.elapsed().as_secs_f64(),
        engine::global_events() - ev0,
        sweep::take_thread_stats(),
    )
}

fn main() {
    let threads = sweep::threads();
    // Cards publish their lifetime link counters into the process-wide
    // registry on drop; the delta across the parallel pass is exactly
    // what this run contributed.
    let links0 = apenet_obs::global().counters();
    let (par_s, par_ev, par_workers) = run_all("parallel");
    let links = apenet_obs::global().counters().delta_since(&links0);
    let par_eps = par_ev as f64 / par_s.max(1e-9);
    eprintln!(
        "[repro-all] parallel ({threads} threads): {par_ev} events in {par_s:.1}s \
         ({par_eps:.0} events/s) -> results/"
    );

    let baseline = std::env::var_os("APENET_REPRO_NO_BASELINE").is_none();
    let serial = baseline.then(|| {
        sweep::set_threads(1);
        let (ser_s, ser_ev, ser_workers) = run_all("serial");
        sweep::set_threads(0);
        let ser_eps = ser_ev as f64 / ser_s.max(1e-9);
        eprintln!(
            "[repro-all] serial reference: {ser_ev} events in {ser_s:.1}s ({ser_eps:.0} events/s); \
             parallel speedup x{:.2}",
            ser_s / par_s.max(1e-9)
        );
        if threads == 1 {
            // With one worker both passes run the identical inline path in
            // sweep::map, so this ratio measures first-pass cold start
            // (heap growth, page faults), not parallelism. The gate skips
            // the speedup key; events/s is what it checks.
            eprintln!(
                "[repro-all] note: 1 sweep worker — both passes are serial, \
                 speedup is warm-up noise"
            );
        }
        (ser_s, ser_ev, ser_eps, ser_workers)
    });

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"link_reliability\": {},\n", link_json(&links)));
    json.push_str(&format!(
        "  \"parallel\": {{\"wall_s\": {par_s:.3}, \"events\": {par_ev}, \"events_per_sec\": {par_eps:.1}, \
         \"threads_detail\": {}}}",
        threads_json(&par_workers)
    ));
    if let Some((ser_s, ser_ev, ser_eps, ser_workers)) = serial {
        json.push_str(",\n");
        json.push_str(&format!(
            "  \"serial\": {{\"wall_s\": {ser_s:.3}, \"events\": {ser_ev}, \"events_per_sec\": {ser_eps:.1}, \
             \"threads_detail\": {}}},\n",
            threads_json(&ser_workers)
        ));
        json.push_str(&format!("  \"speedup\": {:.3}\n", ser_s / par_s.max(1e-9)));
    } else {
        json.push('\n');
    }
    json.push_str("}\n");
    std::fs::write("BENCH_repro_all.json", json).expect("write BENCH_repro_all.json");
    eprintln!("[repro-all] wrote BENCH_repro_all.json");
}
