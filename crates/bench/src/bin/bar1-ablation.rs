//! Extension ablation: P2P vs BAR1 GPU reads through the card.

fn main() {
    apenet_bench::figs::bar1_ablation::run();
}
