//! Regenerates the paper's fig10 (see `apenet_bench::figs::fig10`).

fn main() {
    apenet_bench::figs::fig10::run();
}
