//! ASCII congestion heatmaps of the 4×2 torus — clean, chaos, and
//! hard-fault regimes — into `results/congestion_heatmap.txt`.

fn main() {
    apenet_bench::figs::congestion_heatmap::run();
}
