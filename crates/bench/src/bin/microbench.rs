//! Run the in-tree microbenchmark suite and write `BENCH_microbench.json`.

use apenet_bench::microbench::{self, Harness};

fn main() {
    let mut h = Harness::from_env();
    println!(
        "# apenet microbench — {} samples after {} warmup rounds",
        h.iters, h.warmup
    );
    microbench::run_all(&mut h);
    let json = h.to_json();
    std::fs::write("BENCH_microbench.json", &json).expect("write BENCH_microbench.json");
    eprintln!(
        "[microbench] wrote BENCH_microbench.json ({} benches)",
        h.results.len()
    );
}
