//! Regenerates the paper's fig08 (see `apenet_bench::figs::fig08`).

fn main() {
    apenet_bench::figs::fig08::run();
}
