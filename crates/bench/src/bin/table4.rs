//! Regenerates the paper's table4 (see `apenet_bench::figs::table4`).

fn main() {
    apenet_bench::figs::table4::run();
}
