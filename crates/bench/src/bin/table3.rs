//! Regenerates the paper's table3 (see `apenet_bench::figs::table3`).

fn main() {
    apenet_bench::figs::table3::run();
}
