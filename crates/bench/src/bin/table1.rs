//! Regenerates the paper's table1 (see `apenet_bench::figs::table1`).

fn main() {
    apenet_bench::figs::table1::run();
}
