//! Extension: two-node bi-directional bandwidth.

fn main() {
    apenet_bench::figs::bidir::run();
}
