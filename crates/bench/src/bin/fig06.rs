//! Regenerates the paper's fig06 (see `apenet_bench::figs::fig06`).

fn main() {
    apenet_bench::figs::fig06::run();
}
