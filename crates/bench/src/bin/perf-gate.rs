//! Perf-regression gate: compare fresh bench JSON against a committed
//! baseline and fail (exit 1) on regression.
//!
//! Two modes:
//!
//! * `perf-gate check <baseline.json> <fresh.json>` — pure comparison of
//!   two existing reports (what a CI artifact diff uses);
//! * `perf-gate` — run the in-tree microbench suite fresh (respecting
//!   `APENET_BENCH_ITERS`) and gate it against the committed
//!   `BENCH_microbench.json`.
//!
//! Tolerance for wall-derived metrics comes from `APENET_GATE_TOL`
//! (default [`apenet_obs::gate::DEFAULT_TOL`]); deterministic event
//! counts are compared exactly regardless.

use apenet_bench::microbench::{self, Harness};
use apenet_obs::gate;

fn gate_docs(baseline_name: &str, baseline: &str, fresh: &str) -> i32 {
    let out = match gate::compare(baseline, fresh, gate::tol_from_env()) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("perf-gate: malformed JSON: {e}");
            return 2;
        }
    };
    print!("{}", out.render(baseline_name));
    i32::from(!out.passed())
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf-gate: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = match args.get(1).map(String::as_str) {
        Some("check") => match (args.get(2), args.get(3)) {
            (Some(b), Some(f)) => gate_docs(b, &read(b), &read(f)),
            _ => {
                eprintln!("usage: perf-gate check <baseline.json> <fresh.json>");
                2
            }
        },
        None => {
            let baseline_path = "BENCH_microbench.json";
            let baseline = read(baseline_path);
            let mut h = Harness::from_env();
            eprintln!(
                "[perf-gate] fresh microbench: {} samples after {} warmup rounds",
                h.iters, h.warmup
            );
            microbench::run_all(&mut h);
            gate_docs(baseline_path, &baseline, &h.to_json())
        }
        Some(other) => {
            eprintln!(
                "perf-gate: unknown mode {other:?}; usage: perf-gate [check <baseline> <fresh>]"
            );
            2
        }
    };
    std::process::exit(code);
}
