//! Regenerates the paper's fig12 (see `apenet_bench::figs::fig12`).

fn main() {
    apenet_bench::figs::fig12::run();
}
