//! Regenerates the paper's fig04 (see `apenet_bench::figs::fig04`).

fn main() {
    apenet_bench::figs::fig04::run();
}
