//! Regenerates the paper's fig05 (see `apenet_bench::figs::fig05`).

fn main() {
    apenet_bench::figs::fig05::run();
}
