//! Regenerates the per-stage latency decomposition from span traces
//! (see `apenet_bench::figs::latency_breakdown`).

fn main() {
    apenet_bench::figs::latency_breakdown::run();
}
