//! Exact sim-time partition of the headline two-node transfer
//! (`results/sim_profile.txt`); wall-clock companion on stderr.

fn main() {
    apenet_bench::figs::sim_profile::run();
}
