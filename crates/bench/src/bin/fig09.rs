//! Regenerates the paper's fig09 (see `apenet_bench::figs::fig09`).

fn main() {
    apenet_bench::figs::fig09::run();
}
