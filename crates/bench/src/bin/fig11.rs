//! Regenerates the paper's fig11 (see `apenet_bench::figs::fig11`).

fn main() {
    apenet_bench::figs::fig11::run();
}
