//! Regenerates the bandwidth-vs-failed-links sweep (see
//! `apenet_bench::figs::degraded_route`).

fn main() {
    apenet_bench::figs::degraded_route::run();
}
