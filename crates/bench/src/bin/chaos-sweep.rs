//! Regenerates the effective-bandwidth-vs-fault-rate sweep (see
//! `apenet_bench::figs::chaos_sweep`).

fn main() {
    apenet_bench::figs::chaos_sweep::run();
}
