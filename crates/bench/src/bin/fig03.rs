//! Regenerates the paper's fig03 (see `apenet_bench::figs::fig03`).

fn main() {
    apenet_bench::figs::fig03::run();
}
