//! Regenerates the paper's table2 (see `apenet_bench::figs::table2`).

fn main() {
    apenet_bench::figs::table2::run();
}
