//! Fig. 6 — two-node uni-directional bandwidth for every combination of
//! source and destination buffer type.

use crate::{count_for, emit, sizes_32b_4mb, sweep};
use apenet_cluster::harness::{two_node_bandwidth, BufSide, TwoNodeParams};
use apenet_cluster::presets::cluster_i_default;
use apenet_sim::stats::{render_table, Series};

/// Regenerate this experiment.
pub fn run() {
    let combos = [
        ("H-H", BufSide::Host, BufSide::Host),
        ("H-G", BufSide::Host, BufSide::Gpu),
        ("G-H", BufSide::Gpu, BufSide::Host),
        ("G-G", BufSide::Gpu, BufSide::Gpu),
    ];
    let sizes = sizes_32b_4mb();
    let points: Vec<(BufSide, BufSide, u64)> = combos
        .iter()
        .flat_map(|&(_, src, dst)| sizes.iter().map(move |&size| (src, dst, size)))
        .collect();
    let values = sweep::map(&points, |&(src, dst, size)| {
        let r = two_node_bandwidth(
            cluster_i_default(),
            TwoNodeParams {
                src,
                dst,
                size,
                count: count_for(size),
                staged: false,
            },
        );
        r.bandwidth.mb_per_sec_f64()
    });
    let mut series = Vec::new();
    let mut it = values.into_iter();
    for (label, _, _) in combos {
        let mut s = Series::new(label);
        for (&size, v) in sizes.iter().zip(it.by_ref()) {
            s.push(size as f64, v);
        }
        series.push(s);
    }
    let mut out = String::from(
        "# Fig. 6 — two-node uni-directional bandwidth (paper: H-H plateaus at 1.2 GB/s,\n\
         # GPU destinations pay ~10%, GPU sources are less steep and plateau beyond 32 KB;\n\
         # at 8 KB the G-G bandwidth is about half of H-H)\n",
    );
    out.push_str(&render_table(&series, "msg bytes", "MB/s"));
    emit("fig06", &out);
}
