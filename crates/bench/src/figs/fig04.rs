//! Fig. 4 — single-node GPU memory reading bandwidth vs message size,
//! with TX injection FIFOs flushed; one curve per GPU_P2P_TX generation
//! and prefetch window.

use crate::{count_for, emit, sizes_4kb_4mb, sweep};
use apenet_cluster::harness::{flush_read_bandwidth, BufSide};
use apenet_cluster::presets::plx_node;
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;
use apenet_sim::stats::{render_table, Series};

/// The figure's seven curves.
pub fn fig04_curves() -> Vec<(String, GpuTxVersion, u64)> {
    vec![
        ("v1".into(), GpuTxVersion::V1, 4 * 1024),
        ("v2 window=4KB".into(), GpuTxVersion::V2, 4 * 1024),
        ("v2 window=8KB".into(), GpuTxVersion::V2, 8 * 1024),
        ("v2 window=16KB".into(), GpuTxVersion::V2, 16 * 1024),
        ("v2 window=32KB".into(), GpuTxVersion::V2, 32 * 1024),
        ("v3 window=64KB".into(), GpuTxVersion::V3, 64 * 1024),
        ("v3 window=128KB".into(), GpuTxVersion::V3, 128 * 1024),
    ]
}

/// Regenerate this experiment.
pub fn run() {
    let sizes = sizes_4kb_4mb();
    let curves = fig04_curves();
    let points: Vec<(GpuTxVersion, u64, u64)> = curves
        .iter()
        .flat_map(|&(_, version, window)| sizes.iter().map(move |&size| (version, window, size)))
        .collect();
    let values = sweep::map(&points, |&(version, window, size)| {
        let cfg = plx_node(GpuArch::Fermi2050, version, window);
        let r = flush_read_bandwidth(cfg, BufSide::Gpu, size, count_for(size));
        r.bandwidth.mb_per_sec_f64()
    });
    let mut series = Vec::new();
    let mut it = values.into_iter();
    for (label, _, _) in curves {
        let mut s = Series::new(label);
        for (&size, v) in sizes.iter().zip(it.by_ref()) {
            s.push(size as f64, v);
        }
        series.push(s);
    }
    let mut out = String::from(
        "# Fig. 4 — GPU read bandwidth, flushed TX (paper: v1 ~600 MB/s; v2 +20% per window\n\
         # doubling, ~1.5 GB/s at 32 KB; v3 at the 1536 MB/s architectural cap)\n",
    );
    out.push_str(&render_table(&series, "msg bytes", "MB/s"));
    emit("fig04", &out);
}
