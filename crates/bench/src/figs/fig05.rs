//! Fig. 5 — the Fig. 4 sweep through the full single-node loop-back path
//! (G-G), where the Nios II serves both the GPU-TX control and the RX
//! processing; the v3 offload's headroom shows up here.

use crate::{count_for, emit, sizes_4kb_4mb, sweep};
use apenet_cluster::harness::{loopback_bandwidth, BufSide};
use apenet_cluster::presets::plx_node;
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;
use apenet_sim::stats::{render_table, Series};

/// Regenerate this experiment.
pub fn run() {
    let curves = [
        ("v1", GpuTxVersion::V1, 4 * 1024u64),
        ("v2 window=4KB", GpuTxVersion::V2, 4 * 1024),
        ("v2 window=8KB", GpuTxVersion::V2, 8 * 1024),
        ("v2 window=16KB", GpuTxVersion::V2, 16 * 1024),
        ("v2 window=32KB", GpuTxVersion::V2, 32 * 1024),
        ("v3 window=64KB", GpuTxVersion::V3, 64 * 1024),
        ("v3 window=128KB", GpuTxVersion::V3, 128 * 1024),
    ];
    let sizes = sizes_4kb_4mb();
    let points: Vec<(GpuTxVersion, u64, u64)> = curves
        .iter()
        .flat_map(|&(_, version, window)| sizes.iter().map(move |&size| (version, window, size)))
        .collect();
    let values = sweep::map(&points, |&(version, window, size)| {
        let cfg = plx_node(GpuArch::Fermi2050, version, window);
        let r = loopback_bandwidth(cfg, BufSide::Gpu, BufSide::Gpu, size, count_for(size));
        r.bandwidth.mb_per_sec_f64()
    });
    let mut series = Vec::new();
    let mut it = values.into_iter();
    for (label, _, _) in curves {
        let mut s = Series::new(label);
        for (&size, v) in sizes.iter().zip(it.by_ref()) {
            s.push(size as f64, v);
        }
        series.push(s);
    }
    let mut out = String::from(
        "# Fig. 5 — G-G loop-back bandwidth (paper: Nios II-limited ~1.1 GB/s peak;\n\
         # v3's lighter TX control frees RX time-slices and tops the chart)\n",
    );
    out.push_str(&render_table(&series, "msg bytes", "MB/s"));
    emit("fig05", &out);
}
