//! Per-stage latency decomposition from span-correlated traces — the
//! Fig. 3 / Fig. 4-style break-down the paper obtained from the PCIe
//! bus analyzer and the Nios II cycle counters, regenerated here from
//! the observability plane instead of ad-hoc instrumentation.
//!
//! Two sections:
//!
//! * **GPU read path** (the Fig. 3/4 setup: PLX node, v2 engine, 32 KB
//!   window, TX FIFO flushed) — setup, head latency and stream duration
//!   per message size from the virtual bus-analyzer capture, with the
//!   bandwidth column matching Fig. 4's "v2 window=32KB" curve exactly;
//! * **two-node G-G path** (Cluster I) — tx-pipeline / link / rx phase
//!   partition per message size from card span traces
//!   ([`apenet_obs::breakdown`]); the three phases sum to the total by
//!   construction.

use crate::{count_for, emit, sizes_4kb_4mb, sweep};
use apenet_cluster::harness::{
    flush_read_with_trace, two_node_instrumented, BufSide, TwoNodeParams,
};
use apenet_cluster::presets::{cluster_i_default, plx_node};
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;
use apenet_obs::breakdown;
use apenet_pcie::analyzer::summarize_p2p_read;
use apenet_sim::trace::SharedSink;
use std::fmt::Write;

/// One row of the GPU-read section.
#[derive(Debug, Clone, Copy)]
pub struct ReadStageRow {
    /// Message size in bytes.
    pub size: u64,
    /// PUT posted → first fabric read request, µs.
    pub setup_us: f64,
    /// First read request → first completion data, µs.
    pub head_us: f64,
    /// Completion stream duration, µs.
    pub stream_us: f64,
    /// Steady bandwidth — identical to Fig. 4's "v2 window=32KB" value.
    pub mb_per_sec: f64,
}

/// The GPU-read per-stage rows (Fig. 3/4 configuration) for `sizes`.
pub fn read_stages(sizes: &[u64]) -> Vec<ReadStageRow> {
    sweep::map(sizes, |&size| {
        let cfg = plx_node(GpuArch::Fermi2050, GpuTxVersion::V2, 32 * 1024);
        let sink = SharedSink::capturing();
        let (bw, records) =
            flush_read_with_trace(cfg, BufSide::Gpu, size, count_for(size), Some(sink));
        let s = summarize_p2p_read(&records, bw.first_submit).expect("read traffic captured");
        ReadStageRow {
            size,
            setup_us: s.setup.as_us_f64(),
            head_us: s.head_latency.as_us_f64(),
            stream_us: s.stream.as_us_f64(),
            mb_per_sec: bw.bandwidth.mb_per_sec_f64(),
        }
    })
}

/// One row of the two-node G-G section: mean per-message phase lengths.
#[derive(Debug, Clone, Copy)]
pub struct GgStageRow {
    /// Message size in bytes.
    pub size: u64,
    /// Post accepted → first frame on the wire, µs.
    pub tx_pipeline_us: f64,
    /// First frame TX → last in-order frame RX, µs.
    pub link_us: f64,
    /// Last frame RX → delivery notification, µs.
    pub rx_us: f64,
    /// Post → delivery, µs (= tx_pipeline + link + rx exactly).
    pub total_us: f64,
    /// Mean torus frames per message (retransmits included; 0 expected).
    pub frames_per_msg: f64,
}

/// The two-node G-G per-stage rows (Cluster I) for `sizes`.
pub fn gg_stages(sizes: &[u64]) -> Vec<GgStageRow> {
    sweep::map(sizes, |&size| {
        let (_bw, records) = two_node_instrumented(
            cluster_i_default(),
            TwoNodeParams {
                src: BufSide::Gpu,
                dst: BufSide::Gpu,
                size,
                count: count_for(size),
                staged: false,
            },
        );
        let spans: Vec<_> = breakdown::collect(&records)
            .into_iter()
            .filter(|sp| sp.delivered.is_some())
            .collect();
        assert!(!spans.is_empty(), "no delivered spans at size {size}");
        let n = spans.len() as f64;
        let sum_us = |f: &dyn Fn(&breakdown::SpanPhases) -> f64| -> f64 {
            spans.iter().map(f).sum::<f64>() / n
        };
        GgStageRow {
            size,
            tx_pipeline_us: sum_us(&|sp| sp.tx_pipeline().as_us_f64()),
            link_us: sum_us(&|sp| sp.link().as_us_f64()),
            rx_us: sum_us(&|sp| sp.rx().as_us_f64()),
            total_us: sum_us(&|sp| sp.total().as_us_f64()),
            frames_per_msg: sum_us(&|sp| sp.frames as f64),
        }
    })
}

/// Regenerate this experiment.
pub fn run() {
    let sizes = sizes_4kb_4mb();
    let mut out = String::from(
        "# Latency break-down from span traces (paper: Fig. 3 annotations and the\n\
         # per-stage decomposition behind Fig. 4/Table 1; stages are measured by the\n\
         # observability plane, not ad-hoc counters)\n\n\
         ## GPU read path — PLX node, v2, 32 KB window, TX flushed\n",
    );
    let _ = writeln!(
        out,
        "{:>9} {:>10} {:>10} {:>12} {:>10}",
        "msg bytes", "setup us", "head us", "stream us", "MB/s"
    );
    for r in read_stages(&sizes) {
        let _ = writeln!(
            out,
            "{:>9} {:>10.3} {:>10.3} {:>12.3} {:>10.1}",
            r.size, r.setup_us, r.head_us, r.stream_us, r.mb_per_sec
        );
    }
    out.push_str("\n## Two-node G-G path — Cluster I, mean per message\n");
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "msg bytes", "tx-pipe us", "link us", "rx us", "total us", "frames"
    );
    for r in gg_stages(&sizes) {
        let _ = writeln!(
            out,
            "{:>9} {:>12.3} {:>10.3} {:>10.3} {:>10.3} {:>10.1}",
            r.size, r.tx_pipeline_us, r.link_us, r.rx_us, r.total_us, r.frames_per_msg
        );
    }
    emit("latency_breakdown", &out);
}
