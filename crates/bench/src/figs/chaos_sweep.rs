//! Effective vs. nominal bandwidth under injected link faults.
//!
//! Not a figure of the source paper — it assumes clean cables — but the
//! companion APElink papers (arXiv:1102.3796, arXiv:1311.1741) describe
//! the link-level CRC/retransmission layer this models. The sweep runs
//! the chaos harness's two-node GPU-to-GPU stream at increasing per-frame
//! fault rates and reports how much bandwidth go-back-N recovery costs,
//! proving delivery stays exactly-once the whole way down.

use crate::{emit, sweep};
use apenet_cluster::harness::{chaos_run, ChaosParams, ChaosReport};
use apenet_cluster::presets::cluster_i_chaos;
use apenet_core::coord::TorusDims;
use apenet_sim::fault::FaultSpec;
use apenet_sim::SimTime;

/// Per-frame fault rates of the sweep (each rate applies independently
/// to corruption, drop, and stall injection).
pub const RATES: [(&str, f64); 6] = [
    ("0", 0.0),
    ("1/1000", 1.0 / 1000.0),
    ("1/200", 1.0 / 200.0),
    ("1/100", 1.0 / 100.0),
    ("1/50", 1.0 / 50.0),
    ("1/20", 1.0 / 20.0),
];

/// Fixed seed: the sweep is a regression artifact, not a sample.
const SEED: u64 = 0xC4A0_55EE_D000;

fn params() -> ChaosParams {
    ChaosParams {
        msgs_per_rank: 64,
        msg_len: 128 * 1024,
        watchdog_reissue: true,
    }
}

/// One sweep point: the chaos run plus its delivered goodput in MB/s.
pub fn point(rate: f64) -> (ChaosReport, f64) {
    let p = params();
    let r = chaos_run(
        TorusDims::new(2, 1, 1),
        cluster_i_chaos(SEED, FaultSpec::chaos(rate)),
        p,
    );
    let bytes = r.delivered * params().msg_len;
    let secs = r.last_delivery.since(SimTime::ZERO).as_ps() as f64 * 1e-12;
    let mb_s = bytes as f64 / secs.max(1e-12) / 1e6;
    (r, mb_s)
}

/// Regenerate this experiment.
pub fn run() {
    let rows = sweep::map(&RATES, |&(_, rate)| point(rate));
    let clean = rows[0].1;
    let mut out = String::from(
        "# Effective two-node G-G bandwidth vs. injected per-frame fault rate\n\
         # (corrupt + drop + stall each at the given rate; go-back-N link\n\
         # recovery on, exactly-once delivery asserted at every point).\n\
         # The first fault dominates: it desynchronizes the two directions'\n\
         # TX-fetch/RX-write overlap on each GPU's PCIe port, which costs far\n\
         # more than the replay traffic itself — further faults add little.\n\
         # rate      MB/s   %clean  retrans   naks  crc_drop  stall_us  inj(c/d/s)\n",
    );
    for ((label, _), (r, mb_s)) in RATES.iter().zip(&rows) {
        assert_eq!(r.delivered, r.expected, "chaos sweep must deliver");
        assert_eq!(r.duplicates, 0, "chaos sweep must be exactly-once");
        assert!(r.payload_ok && r.quiesced, "chaos sweep must verify");
        out.push_str(&format!(
            "{label:>7} {mb_s:>9.1} {:>7.1}% {:>8} {:>6} {:>9} {:>9.1}  {}/{}/{}\n",
            100.0 * mb_s / clean,
            r.retransmits,
            r.naks,
            r.crc_dropped,
            r.stall_ps as f64 * 1e-6,
            r.injected.0,
            r.injected.1,
            r.injected.2,
        ));
    }
    emit("chaos_sweep", &out);
}
