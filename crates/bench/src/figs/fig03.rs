//! Fig. 3 — "Sketch of the PCIe timings related to peer-to-peer
//! transactions": repeated transmission of a 4 MB GPU buffer through the
//! v2 engine with a 32 KB prefetch window, captured by a bus-analyzer
//! interposer on the card's slot.

use crate::{cmp_header, cmp_row, emit};
use apenet_cluster::harness::{flush_read_with_trace, BufSide};
use apenet_cluster::presets::plx_node;
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;
use apenet_pcie::analyzer::{render_trace, summarize_p2p_read};
use apenet_sim::trace::SharedSink;
use std::fmt::Write;

/// Regenerate this experiment.
pub fn run() {
    let cfg = plx_node(GpuArch::Fermi2050, GpuTxVersion::V2, 32 * 1024);
    let sink = SharedSink::capturing();
    let (bw, records) = flush_read_with_trace(cfg, BufSide::Gpu, 4 << 20, 2, Some(sink));
    // The analyzer trigger of Fig. 3 is the moment the PUT reaches the
    // card (transaction "1").
    let summary = summarize_p2p_read(&records, bw.first_submit).expect("read traffic captured");
    let mut out = cmp_header("Fig. 3 — PCIe bus-analyzer timings (v2, 32 KB window, 4 MB GPU TX)");
    out.push_str(&cmp_row(
        "GPU_P2P_TX setup (PUT -> first MRd)",
        3.0,
        summary.setup.as_us_f64(),
        "us",
    ));
    out.push('\n');
    out.push_str(&cmp_row(
        "GPU head read latency (MRd -> CplD)",
        1.8,
        summary.head_latency.as_us_f64(),
        "us",
    ));
    out.push('\n');
    out.push_str(&cmp_row(
        "sustained completion throughput",
        1536.0,
        summary.throughput.mb_per_sec_f64(),
        "MB/s",
    ));
    out.push('\n');
    out.push_str(&cmp_row(
        "time per 1 MB of completions",
        663.0,
        1e6 / summary.throughput.mb_per_sec_f64() * 1.048_576,
        "us",
    ));
    out.push('\n');
    let _ = writeln!(
        out,
        "\nread requests: {} ({} mean cadence; the model issues one fabric read\n\
         transaction per prefetch window — the real card emitted one 256 B request\n\
         every 80 ns inside each window)",
        summary.read_requests, summary.request_cadence
    );
    let _ = writeln!(out, "\nfirst analyzer records:");
    out.push_str(&render_trace(&records, 12));
    emit("fig03", &out);
}
