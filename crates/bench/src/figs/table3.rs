//! Table III — HSG two-node break-down by P2P mode, L = 256, plus the
//! OpenMPI-over-InfiniBand references.

use crate::{emit, sweep};
use apenet_apps::hsg::{run_apenet, run_ib, HsgConfig, P2pMode};
use apenet_ib::IbConfig;
use std::fmt::Write;

/// The OpenMPI releases of 2012 staged GPU buffers with *blocking*
/// copies (the pipelined G-G path was MVAPICH2's); model the references
/// accordingly.
fn ompi(mut cfg: IbConfig) -> IbConfig {
    cfg.gpu_pipeline_threshold = u64::MAX;
    cfg
}

/// Regenerate this experiment.
pub fn run() {
    let mut out = String::from("# Table III — HSG on two nodes, L = 256 (ps per spin update)\n");
    let _ = writeln!(
        out,
        "{:<26} | {:>8} {:>8} | {:>10} {:>10} | {:>8} {:>8}",
        "column", "Ttot(p)", "Ttot(m)", "Tb+Tn(p)", "Tb+Tn(m)", "Tnet(p)", "Tnet(m)"
    );
    type Job = (
        &'static str,
        f64,
        f64,
        f64,
        Box<dyn Fn() -> apenet_apps::hsg::HsgResult + Sync>,
    );
    let rows: Vec<Job> = vec![
        (
            "APEnet+ P2P=ON",
            416.0,
            108.0,
            97.0,
            Box::new(|| run_apenet(&HsgConfig::paper(256, 2, P2pMode::On))),
        ),
        (
            "APEnet+ P2P=RX",
            416.0,
            97.0,
            91.0,
            Box::new(|| run_apenet(&HsgConfig::paper(256, 2, P2pMode::Rx))),
        ),
        (
            "APEnet+ P2P=OFF",
            416.0,
            122.0,
            114.0,
            Box::new(|| run_apenet(&HsgConfig::paper(256, 2, P2pMode::Off))),
        ),
        (
            "OMPI/IB Cluster II (x8)",
            416.0,
            108.0,
            101.0,
            Box::new(|| {
                run_ib(
                    &HsgConfig::paper(256, 2, P2pMode::On),
                    ompi(IbConfig::cluster_ii()),
                )
            }),
        ),
        (
            "OMPI/IB Cluster I (x4)",
            416.0,
            108.0,
            101.0,
            Box::new(|| {
                run_ib(
                    &HsgConfig::paper(256, 2, P2pMode::On),
                    ompi(IbConfig::cluster_i()),
                )
            }),
        ),
    ];
    let results = sweep::map(&rows, |(_, _, _, _, job)| job());
    for ((label, p_ttot, p_bn, p_net, _), r) in rows.iter().zip(results) {
        let _ = writeln!(
            out,
            "{label:<26} | {p_ttot:>8.0} {:>8.0} | {p_bn:>10.0} {:>10.0} | {p_net:>8.0} {:>8.0}",
            r.ttot_ps, r.tbnd_net_ps, r.tnet_ps
        );
    }
    out.push_str(
        "\n(p) = paper, (m) = model. At L = 256 / NP = 2 the bulk hides the exchange\n\
         in every mode (Ttot identical); P2P beats staging on Tnet, with RX-only\n\
         staging competitive — the paper's 20-10% advantage statement.\n",
    );
    emit("table3", &out);
}
