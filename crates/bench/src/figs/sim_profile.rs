//! Exact sim-time partition of the headline two-node transfer.
//!
//! The paper's Figs. 3/4 decompose a transfer into stages by reading a
//! PCIe bus analyzer; the simulation can do better — every picosecond
//! of the run lies in exactly one (component, event-kind) bucket of the
//! whole-run profiler, so the decomposition is computed, not sampled.
//! The table is deterministic and committed under `results/`; the
//! wall-clock companion (host µs inside each actor) goes to stderr.

use crate::emit;
use apenet_cluster::harness::{two_node_profiled, BufSide, TwoNodeParams};
use apenet_cluster::presets::cluster_i_default;
use apenet_sim::profile::SimProfile;

/// The profiled workload: the headline G-G PUT stream at a mid-grid
/// message size (big enough to exercise fetch/frame/replay pipelines,
/// small enough to keep `repro-all` fast).
pub fn params() -> TwoNodeParams {
    TwoNodeParams {
        src: BufSide::Gpu,
        dst: BufSide::Gpu,
        size: 256 * 1024,
        count: 24,
        staged: false,
    }
}

/// Run the workload with the profiler attached; returns the measured
/// bandwidth (MB/s) and the exact profile. Panics unless the profile
/// partitions 100 % of the run span.
pub fn profile() -> (f64, SimProfile) {
    let (bw, prof) = two_node_profiled(cluster_i_default(), params());
    prof.assert_exact();
    (bw.bandwidth.mb_per_sec_f64(), prof)
}

/// Regenerate this experiment.
pub fn run() {
    let (mb_s, prof) = profile();
    let p = params();
    let title = format!(
        "Exact sim-time partition: two-node G-G PUT stream, {} KiB x {} ({mb_s:.1} MB/s)",
        p.size >> 10,
        p.count,
    );
    emit("sim_profile", &prof.render_table(&title));
    eprint!("{}", prof.render_wall(&title));
}
