//! One module per table/figure of the paper; each exposes `run()`.

pub mod bar1_ablation;
pub mod bidir;
pub mod chaos_sweep;
pub mod congestion_heatmap;
pub mod degraded_route;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod get_sweep;
pub mod latency_breakdown;
pub mod sim_profile;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
