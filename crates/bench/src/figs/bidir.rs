//! Extension — the bi-directional bandwidth the paper mentions but never
//! plots: "the APEnet+ bi-directional bandwidth, which is not reported
//! here, will reflect a similar behaviour [to the loop-back plot]" (§IV).

use crate::{count_for, emit, sizes_4kb_4mb, sweep};
use apenet_cluster::harness::{
    two_node_bandwidth, two_node_bidir_bandwidth, BufSide, TwoNodeParams,
};
use apenet_cluster::presets::cluster_i_node;
use apenet_core::config::GpuTxVersion;
use apenet_sim::stats::{render_table, Series};

/// Regenerate this experiment.
pub fn run() {
    let curves = [
        ("bidir v2 w=32KB", GpuTxVersion::V2, 32 * 1024u64, true),
        ("bidir v3 w=128KB", GpuTxVersion::V3, 128 * 1024, true),
        ("uni v3 (reference)", GpuTxVersion::V3, 128 * 1024, false),
    ];
    let sizes = sizes_4kb_4mb();
    let points: Vec<(GpuTxVersion, u64, bool, u64)> = curves
        .iter()
        .flat_map(|&(_, version, window, bidir)| {
            sizes
                .iter()
                .map(move |&size| (version, window, bidir, size))
        })
        .collect();
    let values = sweep::map(&points, |&(version, window, bidir, size)| {
        let r = if bidir {
            two_node_bidir_bandwidth(
                cluster_i_node(version, window),
                BufSide::Gpu,
                BufSide::Gpu,
                size,
                count_for(size),
            )
        } else {
            two_node_bandwidth(
                cluster_i_node(version, window),
                TwoNodeParams {
                    src: BufSide::Gpu,
                    dst: BufSide::Gpu,
                    size,
                    count: count_for(size),
                    staged: false,
                },
            )
        };
        r.bandwidth.mb_per_sec_f64()
    });
    let mut series = Vec::new();
    let mut it = values.into_iter();
    for (label, _, _, _) in curves {
        let mut s = Series::new(label);
        for (&size, v) in sizes.iter().zip(it.by_ref()) {
            s.push(size as f64, v);
        }
        series.push(s);
    }
    let mut out = String::from(
        "# Extension — two-node G-G bi-directional aggregate bandwidth.\n\
         # As the paper predicts, it mirrors the loop-back plot: both datapaths\n\
         # share each Nios II, so v3's lighter TX control pays off and the\n\
         # aggregate sits well below 2x the uni-directional rate.\n",
    );
    out.push_str(&render_table(&series, "msg bytes", "MB/s"));
    emit("bidir", &out);
}
