//! Table II — HSG strong scaling on APEnet+, L = 256, P2P = ON
//! (times in picoseconds per single-spin update).

use crate::{emit, sweep};
use apenet_apps::hsg::{run_apenet, HsgConfig, P2pMode};
use std::fmt::Write;

/// Regenerate this experiment.
pub fn run() {
    let paper = [
        (1usize, 921.0, 11.0, f64::NAN),
        (2, 416.0, 108.0, 97.0),
        (4, 202.0, 119.0, 113.0),
        (8, 148.0, 148.0, 141.0),
    ];
    let mut out = String::from(
        "# Table II — HSG single-spin update time (ps), strong scaling, L = 256, P2P=ON\n",
    );
    let _ = writeln!(
        out,
        "{:>3} | {:>8} {:>8} | {:>10} {:>10} | {:>8} {:>8}",
        "NP", "Ttot(p)", "Ttot(m)", "Tb+Tn(p)", "Tb+Tn(m)", "Tnet(p)", "Tnet(m)"
    );
    let results = sweep::map(&paper, |&(np, _, _, _)| {
        run_apenet(&HsgConfig::paper(256, np, P2pMode::On))
    });
    for ((np, p_ttot, p_bn, p_net), r) in paper.into_iter().zip(results) {
        let _ = writeln!(
            out,
            "{np:>3} | {p_ttot:>8.0} {:>8.0} | {p_bn:>10.0} {:>10.0} | {p_net:>8.0} {:>8.0}",
            r.ttot_ps, r.tbnd_net_ps, r.tnet_ps
        );
    }
    out.push_str("\n(p) = paper, (m) = model. NP=8 over-predicts Ttot: the naive ring-on-torus\n");
    out.push_str("embedding's convoy effect is stronger in the model — see the snake ablation\n");
    out.push_str("in fig11 and EXPERIMENTS.md.\n");
    emit("table2", &out);
}
