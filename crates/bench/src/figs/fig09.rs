//! Fig. 9 — G-G latency: APEnet+ peer-to-peer vs staging vs MVAPICH2 over
//! InfiniBand. "peer-to-peer has 50% less latency than staging."

use crate::{emit, sweep};
use apenet_cluster::harness::{pingpong_half_rtt, BufSide};
use apenet_cluster::presets::cluster_i_default;
use apenet_ib::osu::osu_latency_gg;
use apenet_ib::{CudaAwareMpi, IbConfig};
use apenet_sim::stats::{render_table, Series};
use std::fmt::Write;

/// Regenerate this experiment.
pub fn run() {
    let sizes: Vec<u64> = (5..=16).map(|p| 1u64 << p).collect(); // 32 B – 64 KB
    let mut p2p = Series::new("G-G APEnet+ P2P=ON");
    let mut ib = Series::new("G-G IB MVAPICH 1.9a2");
    let mut staged = Series::new("G-G APEnet+ P2P=OFF");
    let values = sweep::map(&sizes, |&size| {
        let on = pingpong_half_rtt(
            cluster_i_default(),
            BufSide::Gpu,
            BufSide::Gpu,
            size,
            10,
            false,
        );
        let off = pingpong_half_rtt(
            cluster_i_default(),
            BufSide::Gpu,
            BufSide::Gpu,
            size,
            10,
            true,
        );
        let mut mpi = CudaAwareMpi::new(2, IbConfig::cluster_ii());
        let lat = osu_latency_gg(&mut mpi, size, 10);
        (on.as_us_f64(), off.as_us_f64(), lat.as_us_f64())
    });
    for (&size, &(on, off, lat)) in sizes.iter().zip(&values) {
        p2p.push(size as f64, on);
        staged.push(size as f64, off);
        ib.push(size as f64, lat);
    }
    let mut out = String::from(
        "# Fig. 9 — G-G latency (paper at 32 B: P2P 8.2 us, staging 16.8 us, IB 17.4 us)\n",
    );
    out.push_str(&render_table(
        &[p2p.clone(), ib.clone(), staged.clone()],
        "msg bytes",
        "us",
    ));
    let _ = writeln!(
        out,
        "\nsmall-message anchors: P2P {:.1} us (paper 8.2), staging {:.1} us (16.8), IB {:.1} us (17.4)",
        p2p.points[0].1, staged.points[0].1, ib.points[0].1
    );
    emit("fig09", &out);
}
