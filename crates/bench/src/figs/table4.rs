//! Table IV — BFS traversed edges per second, strong scaling,
//! |V| = 2^20, APEnet+ (P2P=ON) vs MPI/InfiniBand.

use crate::{emit, sweep};
use apenet_apps::bfs::run::{run_apenet, run_ib};
use apenet_apps::bfs::BfsConfig;
use apenet_ib::IbConfig;
use std::fmt::Write;

/// Regenerate this experiment.
pub fn run() {
    let paper_ape = [6.7e7, 9.8e7, 1.3e8, 1.7e8];
    let paper_ib = [6.2e7, 7.8e7, 8.2e7, 2.0e8];
    let mut out =
        String::from("# Table IV — BFS TEPS, strong scaling, |V| = 2^20, edgefactor 16\n");
    let _ = writeln!(
        out,
        "{:>3} | {:>10} {:>10} | {:>10} {:>10}",
        "NP", "APE(p)", "APE(m)", "IB(p)", "IB(m)"
    );
    let nps = [1usize, 2, 4, 8];
    let results = sweep::map(&nps, |&np| {
        (
            run_apenet(&BfsConfig::paper(np)),
            run_ib(&BfsConfig::paper(np), IbConfig::cluster_ii()),
        )
    });
    for (i, (np, (a, b))) in nps.into_iter().zip(results).enumerate() {
        let _ = writeln!(
            out,
            "{np:>3} | {:>10.2e} {:>10.2e} | {:>10.2e} {:>10.2e}",
            paper_ape[i], a.teps, paper_ib[i], b.teps
        );
    }
    out.push_str(
        "\n(p) = paper, (m) = model. APEnet+ leads at 2 and 4 GPUs; at 8 the torus\n\
         all-to-all erodes its edge. The paper's anomalous IB jump to 2.0e8 at NP=8\n\
         is not reproduced (see EXPERIMENTS.md).\n",
    );
    emit("table4", &out);
}
