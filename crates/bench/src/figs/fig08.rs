//! Fig. 8 — APEnet+ latency (half round-trip) for every combination of
//! source and destination buffer type.

use crate::{emit, sizes_32b_4kb, sweep};
use apenet_cluster::harness::{pingpong_half_rtt, BufSide};
use apenet_cluster::presets::cluster_i_default;
use apenet_sim::stats::{render_table, Series};

/// Regenerate this experiment.
pub fn run() {
    let combos = [
        ("H-H", BufSide::Host, BufSide::Host),
        ("H-G", BufSide::Host, BufSide::Gpu),
        ("G-H", BufSide::Gpu, BufSide::Host),
        ("G-G", BufSide::Gpu, BufSide::Gpu),
    ];
    let sizes = sizes_32b_4kb();
    let points: Vec<(BufSide, BufSide, u64)> = combos
        .iter()
        .flat_map(|&(_, src, dst)| sizes.iter().map(move |&size| (src, dst, size)))
        .collect();
    let values = sweep::map(&points, |&(src, dst, size)| {
        pingpong_half_rtt(cluster_i_default(), src, dst, size, 12, false).as_us_f64()
    });
    let mut series = Vec::new();
    let mut it = values.into_iter();
    for (label, _, _) in combos {
        let mut s = Series::new(label);
        for (&size, v) in sizes.iter().zip(it.by_ref()) {
            s.push(size as f64, v);
        }
        series.push(s);
    }
    let mut out = String::from(
        "# Fig. 8 — APEnet+ half-round-trip latency (paper: H-H 6.3 us, G-G 8.2 us at\n\
         # small sizes, H-G / G-H in between)\n",
    );
    out.push_str(&render_table(&series, "msg bytes", "us"));
    emit("fig08", &out);
}
