//! Fig. 8 — APEnet+ latency (half round-trip) for every combination of
//! source and destination buffer type.

use crate::{emit, sizes_32b_4kb};
use apenet_cluster::harness::{pingpong_half_rtt, BufSide};
use apenet_cluster::presets::cluster_i_default;
use apenet_sim::stats::{render_table, Series};

/// Regenerate this experiment.
pub fn run() {
    let combos = [
        ("H-H", BufSide::Host, BufSide::Host),
        ("H-G", BufSide::Host, BufSide::Gpu),
        ("G-H", BufSide::Gpu, BufSide::Host),
        ("G-G", BufSide::Gpu, BufSide::Gpu),
    ];
    let mut series = Vec::new();
    for (label, src, dst) in combos {
        let mut s = Series::new(label);
        for size in sizes_32b_4kb() {
            let lat = pingpong_half_rtt(cluster_i_default(), src, dst, size, 12, false);
            s.push(size as f64, lat.as_us_f64());
        }
        series.push(s);
    }
    let mut out = String::from(
        "# Fig. 8 — APEnet+ half-round-trip latency (paper: H-H 6.3 us, G-G 8.2 us at\n\
         # small sizes, H-G / G-H in between)\n",
    );
    out.push_str(&render_table(&series, "msg bytes", "us"));
    emit("fig08", &out);
}
