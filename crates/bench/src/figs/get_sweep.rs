//! GET throughput vs. doorbell batch size: selective signaling and
//! doorbell batching amortise the per-post host cost.
//!
//! Not a figure of the source paper — its RDMA evaluation is PUT-only —
//! but the one-sided READ the APEnet+ programming model also specifies
//! (§III.B) exposes the classic verbs trade-off this sweep measures:
//! every work request costs the host a descriptor build plus a doorbell
//! MMIO write (the LogP *o* of Fig. 10). With one doorbell per
//! descriptor (batch = 1) that per-post cost holds small-message GET
//! throughput below the card pipeline's ceiling; ringing once per N
//! descriptors (and signaling only batch-closing WQEs) shrinks the host
//! share until the card — not the host — is the limit. The sweep
//! reports the saturation point per message size.

use crate::{emit, sweep};
use apenet_cluster::harness::{get_stream_bandwidth, BwResult, GetStreamParams};
use apenet_cluster::presets::cluster_i_default;
use apenet_rdma::signal::SignalConfig;

/// Doorbell batch sizes swept (1 = ring per descriptor, the unbatched
/// baseline).
pub const BATCHES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Message sizes swept: small enough that per-post host cost matters,
/// up to sizes where the wire dominates regardless.
pub const SIZES: [u64; 4] = [1024, 4096, 32 * 1024, 256 * 1024];

/// GETs per point and the pipeline depth keeping the card busy.
const COUNT: u32 = 64;
const WINDOW: u32 = 32;

/// One sweep point.
pub fn point(size: u64, batch: usize) -> BwResult {
    get_stream_bandwidth(
        cluster_i_default(),
        GetStreamParams {
            size,
            count: COUNT,
            window: WINDOW,
            sig: SignalConfig {
                doorbell_batch: batch,
                ..SignalConfig::default()
            },
        },
    )
}

/// Regenerate this experiment.
pub fn run() {
    let grid: Vec<(u64, usize)> = SIZES
        .iter()
        .flat_map(|&s| BATCHES.iter().map(move |&b| (s, b)))
        .collect();
    let rows = sweep::map(&grid, |&(s, b)| point(s, b));
    let mut out = String::from(
        "# One-sided GET throughput vs. doorbell batch size (two nodes, G-G,\n\
         # 64 reads, window 32, selective signaling on). batch = descriptors\n\
         # per doorbell; submit_ns = mean host-side inter-post interval. With\n\
         # one doorbell per descriptor the host's per-post cost (the LogP o of\n\
         # Fig. 10) stalls the card after every completion burst, costing ~10%\n\
         # at small message sizes; from batch 4 up the host leaves the\n\
         # critical path and each size saturates at its ceiling (%best = 100).\n\
         # Large messages are wire-limited at any batch size.\n\
         #   bytes  batch      MB/s   %best  submit_ns\n",
    );
    for (sz, chunk) in SIZES.iter().zip(rows.chunks(BATCHES.len())) {
        let best = chunk
            .iter()
            .map(|r| r.bandwidth.mb_per_sec_f64())
            .fold(0.0f64, f64::max);
        for (b, r) in BATCHES.iter().zip(chunk) {
            let mb = r.bandwidth.mb_per_sec_f64();
            out.push_str(&format!(
                "{sz:>8} {b:>6} {mb:>9.1} {:>6.1}% {:>10.0}\n",
                100.0 * mb / best,
                r.submit_interval.as_ns_f64(),
            ));
        }
    }
    emit("get_sweep", &out);
}
