//! Aggregate torus bandwidth vs. number of failed links.
//!
//! Not a figure of the source paper — it assumes intact cables — but the
//! natural companion to the chaos sweep once the fault plane can survive
//! *hard* failures: kill 0..3 cables of the Cluster I 4×2 torus
//! mid-transfer and measure what the detour routes cost. Delivery must
//! stay exactly-once and byte-exact at every point; only the bandwidth
//! is allowed to degrade.

use crate::{emit, sweep};
use apenet_cluster::harness::{chaos_run, ChaosParams, ChaosReport};
use apenet_cluster::node::FaultPlan;
use apenet_cluster::presets::cluster_i_hard_fault;
use apenet_core::coord::{LinkDir, TorusDims};
use apenet_sim::SimTime;

/// The cables killed at each sweep point, cumulatively: point K kills
/// the first K entries, all 20 µs into the run (mid-transfer).
pub const KILLS: [(u32, LinkDir); 3] = [(0, LinkDir::Xp), (4, LinkDir::Xp), (0, LinkDir::Yp)];

/// Failed-link counts of the sweep.
pub const POINTS: [usize; 4] = [0, 1, 2, 3];

fn kill_time() -> SimTime {
    SimTime::from_ps(20_000_000) // 20 us
}

fn params() -> ChaosParams {
    ChaosParams {
        msgs_per_rank: 16,
        msg_len: 128 * 1024,
        watchdog_reissue: true,
    }
}

/// One sweep point: the ring-workload chaos run with the first `k`
/// cables killed, plus its aggregate delivered goodput in MB/s.
pub fn point(k: usize) -> (ChaosReport, f64) {
    let mut cfg = cluster_i_hard_fault();
    let mut plan = FaultPlan::none();
    for &(rank, dir) in &KILLS[..k] {
        plan = plan.kill_link(rank, dir, kill_time());
    }
    cfg.faults = plan;
    let p = params();
    let r = chaos_run(TorusDims::new(4, 2, 1), cfg, p);
    let bytes = r.delivered * params().msg_len;
    let secs = r.last_delivery.since(SimTime::ZERO).as_ps() as f64 * 1e-12;
    let mb_s = bytes as f64 / secs.max(1e-12) / 1e6;
    (r, mb_s)
}

/// Regenerate this experiment.
pub fn run() {
    let rows = sweep::map(&POINTS, |&k| point(k));
    let clean = rows[0].1;
    let mut out = String::from(
        "# Aggregate 4x2-torus ring bandwidth vs. failed-link count\n\
         # (cables killed 20 us into the run; keepalive escalation retires\n\
         # each dead port, in-flight frames requeue onto the detour arc, and\n\
         # delivery stays exactly-once and byte-exact at every point).\n\
         # Detoured traffic shares serialization slots with the surviving\n\
         # ring arc, so each kill costs roughly the detour path's extra hops.\n\
         # links_down      MB/s   %clean  dead  detours  requeued  retrans\n",
    );
    for (&k, (r, mb_s)) in POINTS.iter().zip(&rows) {
        assert_eq!(r.delivered, r.expected, "degraded route must deliver");
        assert_eq!(r.duplicates, 0, "degraded route must be exactly-once");
        assert!(r.payload_ok && r.quiesced, "degraded route must verify");
        assert_eq!(r.dead_links, 2 * k as u64, "both ends of each cable");
        out.push_str(&format!(
            "{k:>10} {mb_s:>9.1} {:>7.1}% {:>5} {:>8} {:>9} {:>8}\n",
            100.0 * mb_s / clean,
            r.dead_links,
            r.detours,
            r.requeued,
            r.retransmits,
        ));
    }
    emit("degraded_route", &out);
}
