//! Extension ablation (paper §VI, "On Kepler, the BAR1 technique seems
//! more promising"): the card's GPU-read transport — GPUDirect P2P vs
//! BAR1 aperture reads — across architectures and message sizes.

use crate::{count_for, emit, sizes_4kb_4mb, sweep};
use apenet_cluster::harness::{flush_read_bandwidth, BufSide};
use apenet_cluster::presets::{plx_node, plx_node_bar1};
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;
use apenet_sim::stats::{render_table, Series};

/// Regenerate this experiment.
pub fn run() {
    let curves = [
        ("Fermi P2P", GpuArch::Fermi2050, false),
        ("Fermi BAR1", GpuArch::Fermi2050, true),
        ("Kepler P2P", GpuArch::KeplerK20, false),
        ("Kepler BAR1", GpuArch::KeplerK20, true),
    ];
    let sizes = sizes_4kb_4mb();
    let points: Vec<(GpuArch, bool, u64)> = curves
        .iter()
        .flat_map(|&(_, arch, bar1)| sizes.iter().map(move |&size| (arch, bar1, size)))
        .collect();
    let values = sweep::map(&points, |&(arch, bar1, size)| {
        let cfg = if bar1 {
            plx_node_bar1(arch, 128 * 1024)
        } else {
            plx_node(arch, GpuTxVersion::V3, 128 * 1024)
        };
        let r = flush_read_bandwidth(cfg, BufSide::Gpu, size, count_for(size));
        r.bandwidth.mb_per_sec_f64()
    });
    let mut series = Vec::new();
    let mut it = values.into_iter();
    for (label, _, _) in curves {
        let mut s = Series::new(label);
        for (&size, v) in sizes.iter().zip(it.by_ref()) {
            s.push(size as f64, v);
        }
        series.push(s);
    }
    let mut out = String::from(
        "# Ablation — GPU read transport through the card: P2P vs BAR1 aperture\n\
         # (paper §VI: BAR1 is hopeless on Fermi, matches P2P on Kepler and needs\n\
         #  only standard PCIe reads; the expensive one-time aperture mapping is\n\
         #  amortized in these streams)\n",
    );
    out.push_str(&render_table(&series, "msg bytes", "MB/s"));
    emit("bar1_ablation", &out);
}
