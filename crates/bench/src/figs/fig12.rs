//! Fig. 12 — break-down of the BFS execution time per task, APEnet+ vs
//! InfiniBand, four GPUs.

use crate::emit;
use apenet_apps::bfs::run::{run_apenet, run_ib};
use apenet_apps::bfs::BfsConfig;
use apenet_ib::IbConfig;
use std::fmt::Write;

/// Regenerate this experiment.
pub fn run() {
    let cfg = BfsConfig::paper(4);
    let ape = run_apenet(&cfg);
    let ib = run_ib(&cfg, IbConfig::cluster_ii());
    let mut out = String::from(
        "# Fig. 12 — BFS execution-time break-down per task, 4 GPUs, |V| = 2^20\n\
         # (paper: computation identical; communication ~50% lower on APEnet+)\n",
    );
    let _ = writeln!(
        out,
        "{:>5} | {:>12} {:>12} | {:>12} {:>12}",
        "task", "APE comp ms", "APE comm ms", "IB comp ms", "IB comm ms"
    );
    for r in 0..4 {
        let _ = writeln!(
            out,
            "{r:>5} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1}",
            ape.breakdown[r].0.as_secs_f64() * 1e3,
            ape.breakdown[r].1.as_secs_f64() * 1e3,
            ib.breakdown[r].0.as_secs_f64() * 1e3,
            ib.breakdown[r].1.as_secs_f64() * 1e3,
        );
    }
    let ape_comm: f64 = ape.breakdown.iter().map(|(_, c)| c.as_secs_f64()).sum();
    let ib_comm: f64 = ib.breakdown.iter().map(|(_, c)| c.as_secs_f64()).sum();
    let _ = writeln!(
        out,
        "\ntotal communication: APEnet+ {:.1} ms vs IB {:.1} ms ({:.0}% of IB)\n\
         (the model's margin is thinner than the paper's 50%: waiting on the\n\
         hub-heavy rank dominates both transports — see EXPERIMENTS.md)",
        ape_comm * 1e3,
        ib_comm * 1e3,
        100.0 * ape_comm / ib_comm
    );
    emit("fig12", &out);
}
