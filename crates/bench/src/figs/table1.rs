//! Table I — APEnet+ low-level bandwidths, single-board loop-back tests.

use crate::{cmp_header, cmp_row, emit, sweep};
use apenet_cluster::harness::{flush_read_bandwidth, loopback_bandwidth, BufSide};
use apenet_cluster::presets::{cluster_i_default, plx_node, plx_node_bar1};
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;

/// One measurement job: row label, the paper's value, the model runner.
type Job = (&'static str, f64, Box<dyn Fn() -> f64 + Sync>);

/// Regenerate this experiment.
pub fn run() {
    let mb = 1u64 << 20;
    let jobs: Vec<Job> = vec![
        (
            "Host mem read",
            2400.0,
            Box::new(move || {
                flush_read_bandwidth(cluster_i_default(), BufSide::Host, mb, 16)
                    .bandwidth
                    .mb_per_sec_f64()
            }),
        ),
        (
            "GPU mem read (Fermi / P2P)",
            1500.0,
            Box::new(move || {
                flush_read_bandwidth(
                    plx_node(GpuArch::Fermi2050, GpuTxVersion::V3, 128 * 1024),
                    BufSide::Gpu,
                    mb,
                    16,
                )
                .bandwidth
                .mb_per_sec_f64()
            }),
        ),
        (
            "GPU mem read (Fermi / BAR1)",
            150.0,
            Box::new(move || {
                flush_read_bandwidth(
                    plx_node_bar1(GpuArch::Fermi2050, 128 * 1024),
                    BufSide::Gpu,
                    mb,
                    8,
                )
                .bandwidth
                .mb_per_sec_f64()
            }),
        ),
        (
            "GPU mem read (Kepler / P2P)",
            1600.0,
            Box::new(move || {
                flush_read_bandwidth(
                    plx_node(GpuArch::KeplerK20, GpuTxVersion::V3, 128 * 1024),
                    BufSide::Gpu,
                    mb,
                    16,
                )
                .bandwidth
                .mb_per_sec_f64()
            }),
        ),
        (
            "GPU mem read (Kepler / BAR1)",
            1600.0,
            Box::new(move || {
                flush_read_bandwidth(
                    plx_node_bar1(GpuArch::KeplerK20, 128 * 1024),
                    BufSide::Gpu,
                    mb,
                    8,
                )
                .bandwidth
                .mb_per_sec_f64()
            }),
        ),
        (
            "GPU-to-GPU loop-back",
            1100.0,
            Box::new(move || {
                loopback_bandwidth(cluster_i_default(), BufSide::Gpu, BufSide::Gpu, mb, 16)
                    .bandwidth
                    .mb_per_sec_f64()
            }),
        ),
        (
            "Host-to-Host loop-back",
            1200.0,
            Box::new(move || {
                loopback_bandwidth(cluster_i_default(), BufSide::Host, BufSide::Host, mb, 16)
                    .bandwidth
                    .mb_per_sec_f64()
            }),
        ),
    ];
    let values = sweep::map(&jobs, |(_, _, job)| job());
    let mut out = cmp_header("Table I — APEnet+ low-level bandwidths (MB/s)");
    for ((label, paper, _), model) in jobs.iter().zip(values) {
        out.push_str(&cmp_row(label, *paper, model, "MB/s"));
        out.push('\n');
    }
    emit("table1", &out);
}
