//! Table I — APEnet+ low-level bandwidths, single-board loop-back tests.

use crate::{cmp_header, cmp_row, emit};
use apenet_cluster::harness::{flush_read_bandwidth, loopback_bandwidth, BufSide};
use apenet_cluster::presets::{cluster_i_default, plx_node, plx_node_bar1};
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;

/// Regenerate this experiment.
pub fn run() {
    let mb = 1u64 << 20;
    let mut out = cmp_header("Table I — APEnet+ low-level bandwidths (MB/s)");
    let host = flush_read_bandwidth(cluster_i_default(), BufSide::Host, mb, 16);
    out.push_str(&cmp_row("Host mem read", 2400.0, host.bandwidth.mb_per_sec_f64(), "MB/s"));
    out.push('\n');
    let fermi = flush_read_bandwidth(
        plx_node(GpuArch::Fermi2050, GpuTxVersion::V3, 128 * 1024),
        BufSide::Gpu,
        mb,
        16,
    );
    out.push_str(&cmp_row(
        "GPU mem read (Fermi / P2P)",
        1500.0,
        fermi.bandwidth.mb_per_sec_f64(),
        "MB/s",
    ));
    out.push('\n');
    let fermi_bar1 = flush_read_bandwidth(
        plx_node_bar1(GpuArch::Fermi2050, 128 * 1024),
        BufSide::Gpu,
        mb,
        8,
    );
    out.push_str(&cmp_row(
        "GPU mem read (Fermi / BAR1)",
        150.0,
        fermi_bar1.bandwidth.mb_per_sec_f64(),
        "MB/s",
    ));
    out.push('\n');
    let k20 = flush_read_bandwidth(
        plx_node(GpuArch::KeplerK20, GpuTxVersion::V3, 128 * 1024),
        BufSide::Gpu,
        mb,
        16,
    );
    out.push_str(&cmp_row(
        "GPU mem read (Kepler / P2P)",
        1600.0,
        k20.bandwidth.mb_per_sec_f64(),
        "MB/s",
    ));
    out.push('\n');
    let k20_bar1 = flush_read_bandwidth(
        plx_node_bar1(GpuArch::KeplerK20, 128 * 1024),
        BufSide::Gpu,
        mb,
        8,
    );
    out.push_str(&cmp_row(
        "GPU mem read (Kepler / BAR1)",
        1600.0,
        k20_bar1.bandwidth.mb_per_sec_f64(),
        "MB/s",
    ));
    out.push('\n');
    let gg = loopback_bandwidth(cluster_i_default(), BufSide::Gpu, BufSide::Gpu, mb, 16);
    out.push_str(&cmp_row(
        "GPU-to-GPU loop-back",
        1100.0,
        gg.bandwidth.mb_per_sec_f64(),
        "MB/s",
    ));
    out.push('\n');
    let hh = loopback_bandwidth(cluster_i_default(), BufSide::Host, BufSide::Host, mb, 16);
    out.push_str(&cmp_row(
        "Host-to-Host loop-back",
        1200.0,
        hh.bandwidth.mb_per_sec_f64(),
        "MB/s",
    ));
    out.push('\n');
    emit("table1", &out);
}
