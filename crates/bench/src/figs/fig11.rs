//! Fig. 11 — HSG strong-scaling speed-up for L = 128/256/512 and the
//! three P2P modes, plus the snake-embedding ablation.

use crate::emit;
use apenet_apps::hsg::{run_apenet, HsgConfig, P2pMode};
use apenet_sim::stats::{render_table, Series};
use std::fmt::Write;

/// Regenerate this experiment.
pub fn run() {
    let mut out = String::from(
        "# Fig. 11 — HSG speed-up vs GPUs (paper: L=128 scales to 2, L=256 to 4-8,\n\
         # L=512 super-linear at 8 thanks to GPU cache effects)\n",
    );
    let mut series = Vec::new();
    for l in [128usize, 256, 512] {
        for mode in [P2pMode::Off, P2pMode::Rx, P2pMode::On] {
            let base = run_apenet(&HsgConfig::paper(l, 1, mode)).ttot_ps;
            let mut s = Series::new(format!("L={l} P2P={mode:?}"));
            for np in [1usize, 2, 4, 8] {
                if l / np < 2 {
                    continue;
                }
                let r = run_apenet(&HsgConfig::paper(l, np, mode));
                s.push(np as f64, base / r.ttot_ps);
            }
            series.push(s);
        }
    }
    out.push_str(&render_table(&series, "GPUs", "speed-up"));
    // Ablation: the Hamiltonian (snake) ring embedding at NP = 8.
    let naive = run_apenet(&HsgConfig::paper(256, 8, P2pMode::On));
    let mut snake_cfg = HsgConfig::paper(256, 8, P2pMode::On);
    snake_cfg.snake = true;
    let snake = run_apenet(&snake_cfg);
    let _ = writeln!(
        out,
        "\nablation, L=256 NP=8: naive embedding Ttot {:.0} ps vs snake {:.0} ps\n\
         (every ring hop torus-adjacent removes the convoy; the paper's 148 ps sits between)",
        naive.ttot_ps, snake.ttot_ps
    );
    emit("fig11", &out);
}
