//! Fig. 10 — the LogP host overhead: per-message run time of the
//! bandwidth test at short sizes ("the fraction of the whole message
//! send-to-receive time which does not overlap with subsequent
//! transmissions").

use crate::{emit, sizes_32b_4kb, sweep};
use apenet_cluster::harness::{two_node_bandwidth, BufSide, TwoNodeParams};
use apenet_cluster::presets::cluster_i_default;
use apenet_sim::stats::{render_table, Series};
use std::fmt::Write;

fn overhead_us(src: BufSide, dst: BufSide, size: u64, staged: bool) -> f64 {
    let r = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src,
            dst,
            size,
            count: 24,
            staged,
        },
    );
    // Per-message steady interval = 1 / message rate.
    size as f64 / r.bandwidth.bytes_per_sec() as f64 * 1e6
}

/// Regenerate this experiment.
pub fn run() {
    let mut hh = Series::new("H-H APEnet+");
    let mut gg_on = Series::new("G-G APEnet+ P2P=ON");
    let mut gg_off = Series::new("G-G APEnet+ P2P=OFF");
    let sizes = sizes_32b_4kb();
    let values = sweep::map(&sizes, |&size| {
        (
            overhead_us(BufSide::Host, BufSide::Host, size, false),
            overhead_us(BufSide::Gpu, BufSide::Gpu, size, false),
            overhead_us(BufSide::Gpu, BufSide::Gpu, size, true),
        )
    });
    for (&size, &(h, on, off)) in sizes.iter().zip(&values) {
        hh.push(size as f64, h);
        gg_on.push(size as f64, on);
        gg_off.push(size as f64, off);
    }
    let mut out = String::from(
        "# Fig. 10 — host overhead via bandwidth test (paper at small sizes: H-H ~5 us,\n\
         # G-G P2P ~8 us, G-G staged ~17 us — the blocking cudaMemcpy D2H does not overlap)\n",
    );
    out.push_str(&render_table(
        &[hh.clone(), gg_on.clone(), gg_off.clone()],
        "msg bytes",
        "us",
    ));
    let _ = writeln!(
        out,
        "\n32 B anchors: H-H {:.1} us (paper ~5), P2P {:.1} us (~8), staged {:.1} us (~17)",
        hh.points[0].1, gg_on.points[0].1, gg_off.points[0].1
    );
    emit("fig10", &out);
}
