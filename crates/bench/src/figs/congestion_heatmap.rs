//! ASCII congestion heatmaps of the 4×2 torus under three regimes.
//!
//! One map per scenario — clean links, seeded soft chaos, and a
//! mid-run double cable kill — with one row per active torus port and
//! one column per time slice. Cells are per-mille link utilization
//! computed from the occupancy sampler's cumulative wire-byte series
//! (replays included), so a hot retransmitting port and a hot detour
//! port are visibly different stories. Deterministic end to end: the
//! rendered maps are committed under `results/`.

use crate::emit;
use apenet_cluster::harness::{chaos_run_sampled, ChaosParams, ChaosReport};
use apenet_cluster::node::FaultPlan;
use apenet_cluster::presets::{cluster_i_chaos, cluster_i_default, cluster_i_hard_fault};
use apenet_cluster::sampling::{OccupancySampler, PORT_LABELS};
use apenet_cluster::NodeConfig;
use apenet_core::coord::{LinkDir, TorusDims};
use apenet_obs::heatmap::{utilization_row, Heatmap};
use apenet_sim::fault::FaultSpec;
use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// Fixed seed of the chaos scenario (a regression artifact, not a sample).
const SEED: u64 = 0x4EA7_3A9C_0DE0;

/// Target column count; the column width rounds up to a whole µs.
const TARGET_COLS: u64 = 64;

fn dims() -> TorusDims {
    TorusDims::new(4, 2, 1)
}

fn params() -> ChaosParams {
    ChaosParams {
        msgs_per_rank: 16,
        msg_len: 128 * 1024,
        watchdog_reissue: true,
    }
}

/// Run one scenario with the sampler ticking every 2 µs and render its
/// map. Exactly-once delivery is asserted — the heatmap may only show
/// congestion, never data loss.
fn scenario(name: &str, cfg: NodeConfig) -> (ChaosReport, String) {
    let gbps = cfg.card.link_gbps;
    let mut sampler = OccupancySampler::new(SimDuration::from_us(2));
    let r = chaos_run_sampled(dims(), cfg, params(), &mut sampler);
    assert_eq!(r.delivered, r.expected, "heatmap run must deliver");
    assert_eq!(r.duplicates, 0, "heatmap run must be exactly-once");
    assert!(r.payload_ok, "heatmap run must verify payloads");

    let end_ps = r.end.as_ps();
    let col_ps = (end_ps / TARGET_COLS).max(1).div_ceil(1_000_000) * 1_000_000;
    let bytes_per_col = (Bandwidth::from_gbit_per_sec(gbps).bytes_per_sec() as u128
        * col_ps as u128
        / 1_000_000_000_000u128) as u64;

    let mut rows = Vec::new();
    for rank in 0..dims().nodes() {
        for label in &PORT_LABELS[..6] {
            let id = format!("card{rank}.link.{label}.wire_bytes");
            let pts = sampler.registry().series(&id).points();
            // Only ports that carried traffic get a row; the ring
            // workload leaves most of the 48 torus ports dark.
            if pts.last().is_none_or(|&(_, cum)| cum == 0) {
                continue;
            }
            rows.push((
                format!("c{rank} {label}"),
                utilization_row(&pts, col_ps, bytes_per_col),
            ));
        }
    }
    let map = Heatmap {
        title: format!(
            "{name}: {}x{} KiB per rank, {gbps} Gbps links, end = {} us",
            params().msgs_per_rank,
            params().msg_len >> 10,
            end_ps / 1_000_000,
        ),
        col_ps,
        rows,
    };
    (r, map.render())
}

/// Regenerate this experiment.
pub fn run() {
    let clean = scenario("clean", cluster_i_default());
    let chaos = scenario(
        "chaos 1/100",
        cluster_i_chaos(SEED, FaultSpec::chaos(1.0 / 100.0)),
    );
    let mut hard_cfg = cluster_i_hard_fault();
    hard_cfg.faults = FaultPlan::none()
        .kill_link(0, LinkDir::Xp, SimTime::from_ps(20_000_000))
        .kill_link(4, LinkDir::Xp, SimTime::from_ps(20_000_000));
    let hard = scenario("hard fault (2 cables cut at 20 us)", hard_cfg);
    assert_eq!(hard.0.dead_links, 4, "both ends of each cut cable");

    let out = format!(
        "# Per-port wire utilization of the 4x2 torus ring workload\n\
         # (rows: cards' torus ports that carried traffic; cells: per-mille\n\
         # of link capacity over one column, from sampled cumulative\n\
         # wire-byte deltas — replays included, so chaos shows up as heat).\n\
         \n{}\n{}\n{}",
        clean.1, chaos.1, hard.1,
    );
    emit("congestion_heatmap", &out);
}
