//! Fig. 7 — two-node G-G bandwidth: APEnet+ peer-to-peer vs APEnet+
//! staging vs MVAPICH2 over InfiniBand. The paper's crossovers: P2P wins
//! below ~32 KB, staging beyond it, IB overtakes both for large messages.

use crate::{count_for, emit, sizes_32b_4mb, sweep};
use apenet_cluster::harness::{two_node_bandwidth, BufSide, TwoNodeParams};
use apenet_cluster::presets::cluster_i_default;
use apenet_ib::osu::osu_bw_gg;
use apenet_ib::{CudaAwareMpi, IbConfig};
use apenet_sim::stats::{render_table, Series};
use std::fmt::Write;

/// Regenerate this experiment.
pub fn run() {
    let mut p2p = Series::new("G-G APEnet+ P2P=ON");
    let mut ib = Series::new("G-G IB MVAPICH 1.9a2");
    let mut staged = Series::new("G-G APEnet+ P2P=OFF");
    let sizes = sizes_32b_4mb();
    let values = sweep::map(&sizes, |&size| {
        let on = two_node_bandwidth(
            cluster_i_default(),
            TwoNodeParams {
                src: BufSide::Gpu,
                dst: BufSide::Gpu,
                size,
                count: count_for(size),
                staged: false,
            },
        );
        let off = two_node_bandwidth(
            cluster_i_default(),
            TwoNodeParams {
                src: BufSide::Gpu,
                dst: BufSide::Gpu,
                size,
                count: count_for(size),
                staged: true,
            },
        );
        let mut mpi = CudaAwareMpi::new(2, IbConfig::cluster_ii());
        let b = osu_bw_gg(&mut mpi, size, count_for(size).max(4));
        (
            on.bandwidth.mb_per_sec_f64(),
            off.bandwidth.mb_per_sec_f64(),
            b.mb_per_sec_f64(),
        )
    });
    for (&size, &(on, off, b)) in sizes.iter().zip(&values) {
        p2p.push(size as f64, on);
        staged.push(size as f64, off);
        ib.push(size as f64, b);
    }
    let mut out = String::from(
        "# Fig. 7 — APEnet+ vs InfiniBand, G-G bandwidth (paper: P2P best up to 32 KB,\n\
         # then staging; MVAPICH2 pipelining wins the multi-MB regime)\n",
    );
    out.push_str(&render_table(
        &[p2p.clone(), ib, staged.clone()],
        "msg bytes",
        "MB/s",
    ));
    if let Some(x) = p2p.crossover_below(&staged) {
        let _ = writeln!(out, "\nP2P/staging crossover near {x:.0} B (paper: ~32 KB)");
    }
    emit("fig07", &out);
}
