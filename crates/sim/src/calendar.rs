//! Pooled calendar-queue scheduler for the event engine.
//!
//! A classic calendar queue (Brown 1988): buckets partition time into
//! windows of `width` picoseconds, an event at time `t` lives in bucket
//! `(t / width) mod nbuckets`, and buckets are revisited year after year
//! (`year = nbuckets * width`). Within a bucket events sit in a singly
//! linked list sorted by `(at, seq)`, so the head of the first bucket
//! whose head falls inside its current-year window is the global
//! minimum — dispatch order is *identical* to the binary heap this
//! replaced, including the FIFO sequence-number tie-break at equal
//! times (`tests/calendar_equiv.rs` pins this property against a heap
//! model on seeded random schedules).
//!
//! Two properties make it faster than the heap on the engine's hot
//! path:
//!
//! * **Arena envelopes.** Every event lives in a slot of one pooled
//!   `Vec`, recycled through an intrusive free list; after warm-up a
//!   push/pop cycle allocates nothing. This extends the zero-copy
//!   payload discipline to the event envelope itself.
//! * **O(1) steady-state operations.** Pushes append at the bucket tail
//!   (event generation is overwhelmingly time-ordered), pops unlink the
//!   cached minimum head; neither needs the `log n` sift of a heap.
//!
//! The bucket width adapts to the observed event spacing (the torus
//! link latency, in real runs): when pops scan too many empty buckets
//! the width doubles, when sorted inserts walk too far it halves, and
//! the bucket count doubles/halves with occupancy. Retuning only moves
//! events between buckets — never reorders them — so determinism is
//! untouched by the heuristics.

use crate::time::SimTime;

/// Null link / "no cached minimum" sentinel.
const NIL: u32 = u32::MAX;
/// Smallest bucket-count (power of two).
const MIN_BUCKETS: usize = 16;
/// Starting bucket width: 16 ns, the order of the torus link latency
/// that spaces the dominant event streams of real runs.
const INITIAL_WIDTH_PS: u64 = 16_384;
/// Pops between width-adaptation checks.
const ADAPT_PERIOD: u64 = 1024;

/// One pooled event envelope.
struct Node<M> {
    at: u64,
    seq: u64,
    to: u32,
    next: u32,
    /// `None` only while the node sits on the free list.
    msg: Option<M>,
}

/// An event popped from the calendar.
pub struct PoppedEvent<M> {
    /// Scheduled time.
    pub at: SimTime,
    /// Target actor index.
    pub to: usize,
    /// The message.
    pub msg: M,
}

/// The pooled calendar queue. Orders events by `(at, seq)` exactly like
/// a min-heap of `(SimTime, u64)` keys.
pub struct CalendarQueue<M> {
    pool: Vec<Node<M>>,
    /// Free-list head into `pool`.
    free: u32,
    /// Per-bucket sorted-list heads/tails (`NIL` when empty).
    heads: Vec<u32>,
    tails: Vec<u32>,
    /// Bucket width in ps (≥ 1, power-of-two not required).
    width: u64,
    len: usize,
    /// Lower bound on every live event's time (the last popped time);
    /// scans for the minimum start at its bucket.
    floor: u64,
    /// Pool index of the known global minimum, or `NIL` when stale.
    cached_min: u32,
    // Adaptation counters since the last retune.
    pops: u64,
    scanned: u64,
    inserts: u64,
    insert_steps: u64,
}

impl<M> Default for CalendarQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> CalendarQueue<M> {
    /// An empty calendar.
    pub fn new() -> Self {
        CalendarQueue {
            pool: Vec::new(),
            free: NIL,
            heads: vec![NIL; MIN_BUCKETS],
            tails: vec![NIL; MIN_BUCKETS],
            width: INITIAL_WIDTH_PS,
            len: 0,
            floor: 0,
            cached_min: NIL,
            pops: 0,
            scanned: 0,
            inserts: 0,
            insert_steps: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket count (test/telemetry hook).
    pub fn buckets(&self) -> usize {
        self.heads.len()
    }

    /// Current bucket width in ps (test/telemetry hook).
    pub fn width_ps(&self) -> u64 {
        self.width
    }

    #[inline]
    fn key(&self, idx: u32) -> (u64, u64) {
        let n = &self.pool[idx as usize];
        (n.at, n.seq)
    }

    #[inline]
    fn bucket_of(&self, at: u64) -> usize {
        ((at / self.width) as usize) & (self.heads.len() - 1)
    }

    fn alloc(&mut self, at: u64, seq: u64, to: u32, msg: M) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.pool[idx as usize];
            self.free = n.next;
            n.at = at;
            n.seq = seq;
            n.to = to;
            n.next = NIL;
            n.msg = Some(msg);
            idx
        } else {
            let idx = u32::try_from(self.pool.len()).expect("calendar pool exceeds u32 slots");
            assert_ne!(idx, NIL, "calendar pool full");
            self.pool.push(Node {
                at,
                seq,
                to,
                next: NIL,
                msg: Some(msg),
            });
            idx
        }
    }

    /// Sorted insert of pool node `idx` into its bucket.
    fn link(&mut self, idx: u32) {
        let (at, seq) = self.key(idx);
        let b = self.bucket_of(at);
        let tail = self.tails[b];
        if tail == NIL {
            self.heads[b] = idx;
            self.tails[b] = idx;
            return;
        }
        // Fast path: events are generated in mostly non-decreasing order,
        // so appending at the tail is the common case.
        if self.key(tail) <= (at, seq) {
            self.pool[tail as usize].next = idx;
            self.tails[b] = idx;
            return;
        }
        // Sorted walk from the head; FIFO ties resolve by seq, which is
        // strictly increasing, so `<=` can never see an equal key.
        let mut prev = NIL;
        let mut cur = self.heads[b];
        while cur != NIL && self.key(cur) <= (at, seq) {
            self.insert_steps += 1;
            prev = cur;
            cur = self.pool[cur as usize].next;
        }
        self.pool[idx as usize].next = cur;
        if prev == NIL {
            self.heads[b] = idx;
        } else {
            self.pool[prev as usize].next = idx;
        }
        debug_assert_ne!(cur, NIL, "tail append above covers end-insertion");
    }

    /// Schedule `msg` for actor `to` at `(at, seq)`.
    pub fn push(&mut self, at: SimTime, seq: u64, to: usize, msg: M) {
        let at = at.as_ps();
        debug_assert!(at >= self.floor, "cannot schedule before the last pop");
        let to = u32::try_from(to).expect("actor id fits u32");
        let idx = self.alloc(at, seq, to, msg);
        self.link(idx);
        self.len += 1;
        self.inserts += 1;
        // A push below the cached minimum becomes the new minimum (and is
        // its bucket's head); pushes at/after it leave the cache valid.
        // The sole event of a previously-empty calendar is trivially min.
        if self.len == 1 || (self.cached_min != NIL && (at, seq) < self.key(self.cached_min)) {
            self.cached_min = idx;
        }
        if self.len > 4 * self.heads.len() {
            let n = self.heads.len() * 2;
            self.rebuild(n, self.width);
        }
    }

    /// Locate the global minimum and cache it. `None` when empty.
    fn ensure_min(&mut self) -> Option<u32> {
        if self.cached_min != NIL {
            return Some(self.cached_min);
        }
        if self.len == 0 {
            return None;
        }
        let n = self.heads.len();
        let base = self.floor / self.width;
        // One year, starting at the floor's bucket: the first head inside
        // its current-year window is the unique global minimum (events in
        // skipped buckets belong to later years; later buckets of this
        // year start after this window ends; same-time events share a
        // bucket).
        for k in 0..n as u64 {
            let num = base + k;
            let b = (num as usize) & (n - 1);
            let h = self.heads[b];
            self.scanned += 1;
            if h != NIL && self.pool[h as usize].at < (num + 1).saturating_mul(self.width) {
                self.cached_min = h;
                return Some(h);
            }
        }
        // Sparse calendar: nothing within a year of the floor. Direct
        // search over the bucket heads (each is its bucket's minimum).
        let mut best = NIL;
        for b in 0..n {
            let h = self.heads[b];
            if h != NIL && (best == NIL || self.key(h) < self.key(best)) {
                best = h;
            }
        }
        debug_assert_ne!(best, NIL, "len > 0 implies a head exists");
        self.cached_min = best;
        Some(best)
    }

    /// Time of the earliest event, if any. Never reorders or consumes
    /// anything; repeated peeks are O(1) via the cached minimum.
    pub fn peek_at(&mut self) -> Option<SimTime> {
        let idx = self.ensure_min()?;
        Some(SimTime::from_ps(self.pool[idx as usize].at))
    }

    /// Read-only [`CalendarQueue::peek_at`]: same answer, but performs a
    /// fresh scan instead of committing to the minimum cache when the
    /// cache is stale. Lets `&self` call sites (external dispatch loops)
    /// peek without mutable access.
    pub fn peek_at_ref(&self) -> Option<SimTime> {
        if self.cached_min != NIL {
            return Some(SimTime::from_ps(self.pool[self.cached_min as usize].at));
        }
        if self.len == 0 {
            return None;
        }
        let n = self.heads.len();
        let base = self.floor / self.width;
        for k in 0..n as u64 {
            let num = base + k;
            let h = self.heads[(num as usize) & (n - 1)];
            if h != NIL && self.pool[h as usize].at < (num + 1).saturating_mul(self.width) {
                return Some(SimTime::from_ps(self.pool[h as usize].at));
            }
        }
        let mut best = NIL;
        for b in 0..n {
            let h = self.heads[b];
            if h != NIL && (best == NIL || self.key(h) < self.key(best)) {
                best = h;
            }
        }
        debug_assert_ne!(best, NIL);
        Some(SimTime::from_ps(self.pool[best as usize].at))
    }

    /// Pop the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<PoppedEvent<M>> {
        let idx = self.ensure_min()?;
        let b = self.bucket_of(self.pool[idx as usize].at);
        debug_assert_eq!(self.heads[b], idx, "the minimum is its bucket's head");
        self.heads[b] = self.pool[idx as usize].next;
        if self.heads[b] == NIL {
            self.tails[b] = NIL;
        }
        self.cached_min = NIL;
        self.len -= 1;
        self.pops += 1;
        let node = &mut self.pool[idx as usize];
        let at = node.at;
        let to = node.to as usize;
        let msg = node.msg.take().expect("live node has a message");
        node.next = self.free;
        self.free = idx;
        self.floor = at;
        if self.len < self.heads.len() / 4 && self.heads.len() > MIN_BUCKETS {
            let n = self.heads.len() / 2;
            self.rebuild(n, self.width);
        } else if self.pops >= ADAPT_PERIOD {
            self.adapt();
        }
        Some(PoppedEvent {
            at: SimTime::from_ps(at),
            to,
            msg,
        })
    }

    /// Width adaptation: widen when pops scan mostly empty buckets
    /// (events sparser than the windows), narrow when sorted inserts
    /// walk long chains (events denser than the windows).
    fn adapt(&mut self) {
        let scanned = std::mem::take(&mut self.scanned);
        let pops = std::mem::take(&mut self.pops);
        let steps = std::mem::take(&mut self.insert_steps);
        let inserts = std::mem::take(&mut self.inserts);
        if pops > 0 && scanned > 2 * pops {
            let w = self.width.saturating_mul(4);
            let n = self.heads.len();
            self.rebuild(n, w);
        } else if inserts > 0 && steps > 4 * inserts && self.width > 1 {
            let w = (self.width / 4).max(1);
            let n = self.heads.len();
            self.rebuild(n, w);
        }
    }

    /// Re-bucket every live node for a new geometry. Relinking preserves
    /// each node's `(at, seq)` key, so dispatch order is unchanged.
    fn rebuild(&mut self, nbuckets: usize, width: u64) {
        debug_assert!(nbuckets.is_power_of_two());
        let mut live = Vec::with_capacity(self.len);
        for b in 0..self.heads.len() {
            let mut cur = self.heads[b];
            while cur != NIL {
                live.push(cur);
                cur = self.pool[cur as usize].next;
            }
        }
        self.heads.clear();
        self.heads.resize(nbuckets, NIL);
        self.tails.clear();
        self.tails.resize(nbuckets, NIL);
        self.width = width.max(1);
        let min = self.cached_min;
        self.cached_min = NIL;
        for idx in live {
            self.pool[idx as usize].next = NIL;
            self.link(idx);
        }
        self.cached_min = min; // still the same minimum node, head of its new bucket
        self.insert_steps = 0;
        self.inserts = self.inserts.min(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            out.push((ev.at.as_ps(), ev.msg));
        }
        out
    }

    #[test]
    fn orders_by_time_then_seq() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_ps(50), 0, 0, 0u32);
        q.push(SimTime::from_ps(10), 1, 0, 1);
        q.push(SimTime::from_ps(50), 2, 0, 2);
        q.push(SimTime::from_ps(10), 3, 0, 3);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_at(), Some(SimTime::from_ps(10)));
        assert_eq!(drain(&mut q), vec![(10, 1), (10, 3), (50, 0), (50, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_pop_after_year_jump() {
        let mut q = CalendarQueue::new();
        // Far beyond one year of the initial geometry.
        q.push(SimTime::from_ps(10_000_000_000), 0, 0, 0u32);
        q.push(SimTime::from_ps(5), 1, 0, 1);
        assert_eq!(drain(&mut q), vec![(5, 1), (10_000_000_000, 0)]);
    }

    #[test]
    fn interleaved_push_pop_recycles_envelopes() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut t = 0u64;
        q.push(SimTime::from_ps(t), seq, 0, 0u32);
        for _ in 0..10_000 {
            let ev = q.pop().unwrap();
            t = ev.at.as_ps() + 10_000;
            seq += 1;
            q.push(SimTime::from_ps(t), seq, 0, ev.msg + 1);
        }
        // One event in flight the whole time: the pool never grew past
        // the two slots the initial push/repush pair touched.
        assert!(q.pool.len() <= 2, "pool grew to {}", q.pool.len());
    }

    #[test]
    fn grows_and_shrinks_buckets_with_occupancy() {
        let mut q = CalendarQueue::new();
        for i in 0..4096u64 {
            q.push(SimTime::from_ps(i * 7), i, 0, i as u32);
        }
        assert!(q.buckets() > MIN_BUCKETS);
        let got = drain(&mut q);
        assert_eq!(got.len(), 4096);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(q.buckets(), MIN_BUCKETS);
    }

    #[test]
    fn same_instant_burst_is_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u64 {
            q.push(SimTime::from_ps(42), i, 0, i as u32);
        }
        let got = drain(&mut q);
        assert_eq!(got, (0..1000).map(|i| (42, i as u32)).collect::<Vec<_>>());
    }
}
