//! Byte-accounted bounded FIFO with almost-full watermarks.
//!
//! The APEnet+ datapath is a chain of on-chip FIFOs (TX data FIFO, TX header
//! FIFO, peer-to-peer request FIFO, …) whose *almost-full* signals drive the
//! GPU_P2P_TX v3 flow control (arrow 3 of the paper's Fig. 2). This type
//! models exactly that: occupancy in bytes, a capacity, and a configurable
//! watermark.

use std::collections::VecDeque;

/// A bounded FIFO whose occupancy is measured in bytes.
#[derive(Debug, Clone)]
pub struct ByteFifo<T> {
    items: VecDeque<(u64, T)>,
    capacity: u64,
    occupied: u64,
    almost_full_at: u64,
}

impl<T> ByteFifo<T> {
    /// Create a FIFO of `capacity` bytes with an almost-full watermark at
    /// `almost_full_at` bytes (must be ≤ capacity).
    pub fn new(capacity: u64, almost_full_at: u64) -> Self {
        assert!(almost_full_at <= capacity);
        ByteFifo {
            items: VecDeque::new(),
            capacity,
            occupied: 0,
            almost_full_at,
        }
    }

    /// Create with the watermark at 7/8 of capacity (a common RTL choice).
    pub fn with_default_watermark(capacity: u64) -> Self {
        Self::new(capacity, capacity - capacity / 8)
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Occupied bytes.
    pub fn occupied(&self) -> u64 {
        self.occupied
    }

    /// Free bytes.
    pub fn free(&self) -> u64 {
        self.capacity - self.occupied
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when occupancy has reached the almost-full watermark.
    pub fn almost_full(&self) -> bool {
        self.occupied >= self.almost_full_at
    }

    /// True if an entry of `bytes` would fit right now.
    pub fn fits(&self, bytes: u64) -> bool {
        self.occupied + bytes <= self.capacity
    }

    /// Push an entry of `bytes`; returns `Err(item)` if it does not fit.
    pub fn push(&mut self, bytes: u64, item: T) -> Result<(), T> {
        if !self.fits(bytes) {
            return Err(item);
        }
        self.occupied += bytes;
        self.items.push_back((bytes, item));
        Ok(())
    }

    /// Pop the oldest entry, returning `(bytes, item)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let (bytes, item) = self.items.pop_front()?;
        self.occupied -= bytes;
        Some((bytes, item))
    }

    /// Peek at the oldest entry.
    pub fn peek(&self) -> Option<(u64, &T)> {
        self.items.front().map(|(b, t)| (*b, t))
    }

    /// Drop everything (e.g. the "flush TX FIFOs" test mode of Fig. 4).
    pub fn clear(&mut self) {
        self.items.clear();
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_accounting() {
        let mut f: ByteFifo<&str> = ByteFifo::new(100, 80);
        assert!(f.push(40, "a").is_ok());
        assert!(f.push(40, "b").is_ok());
        assert_eq!(f.occupied(), 80);
        assert!(f.almost_full());
        assert_eq!(f.push(40, "c"), Err("c"), "over capacity");
        assert_eq!(f.pop(), Some((40, "a")));
        assert!(!f.almost_full());
        assert_eq!(f.free(), 60);
        assert!(f.push(40, "c").is_ok());
        assert_eq!(f.pop(), Some((40, "b")));
        assert_eq!(f.pop(), Some((40, "c")));
        assert_eq!(f.pop(), None);
        assert_eq!(f.occupied(), 0);
    }

    #[test]
    fn watermark_default() {
        let f: ByteFifo<u8> = ByteFifo::with_default_watermark(32 * 1024);
        assert_eq!(f.capacity(), 32 * 1024);
        assert!(!f.almost_full());
    }

    #[test]
    fn zero_sized_entries_allowed() {
        let mut f: ByteFifo<u8> = ByteFifo::new(4, 4);
        for i in 0..10 {
            assert!(f.push(0, i).is_ok());
        }
        assert_eq!(f.len(), 10);
        assert_eq!(f.occupied(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut f: ByteFifo<u8> = ByteFifo::new(10, 10);
        f.push(5, 1).unwrap();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.occupied(), 0);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f: ByteFifo<&str> = ByteFifo::new(10, 10);
        f.push(3, "x").unwrap();
        assert_eq!(f.peek(), Some((3, &"x")));
        assert_eq!(f.len(), 1);
    }
}
