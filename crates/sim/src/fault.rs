//! Composable, seeded fault injection for channel models.
//!
//! A [`FaultInjector`] sits on the transmit side of one channel (a torus
//! link direction, the loop-back path, …) and decides, per frame, whether
//! to corrupt it (a random bit at a random payload position), drop it
//! outright, or stall the channel for a window before it goes out. All
//! decisions come from an in-tree [`Xoshiro256ss`] stream, so a given
//! `(spec, seed)` pair produces the same fault schedule forever — chaos
//! tests replay exactly, and parallel sweeps stay byte-identical.
//!
//! The injector is deliberately engine-agnostic: it draws verdicts, the
//! owning channel model applies them (flips the bit, eats the frame,
//! delays the ready time) and accounts the damage in its own stats.

use crate::rng::{SplitMix64, Xoshiro256ss};
use crate::SimDuration;

/// Fault rates and magnitudes of one channel.
///
/// Rates are per-frame probabilities in `[0, 1]`; a zeroed spec injects
/// nothing (see [`FaultSpec::is_noop`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a data frame has one payload bit flipped in flight.
    pub corrupt_rate: f64,
    /// Probability a frame (data or control symbol) is lost entirely.
    pub drop_rate: f64,
    /// Probability a data frame first hits a channel stall window.
    pub stall_rate: f64,
    /// Shortest stall window.
    pub stall_min: SimDuration,
    /// Longest stall window.
    pub stall_max: SimDuration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            corrupt_rate: 0.0,
            drop_rate: 0.0,
            stall_rate: 0.0,
            stall_min: SimDuration::from_us(1),
            stall_max: SimDuration::from_us(20),
        }
    }
}

impl FaultSpec {
    /// Corruption only, at the given per-frame rate.
    pub fn corrupt(rate: f64) -> Self {
        FaultSpec {
            corrupt_rate: rate,
            ..Self::default()
        }
    }

    /// Whole-frame loss only, at the given per-frame rate.
    pub fn drop(rate: f64) -> Self {
        FaultSpec {
            drop_rate: rate,
            ..Self::default()
        }
    }

    /// The full chaos menu: corruption + drop + stalls, each at `rate`.
    pub fn chaos(rate: f64) -> Self {
        FaultSpec {
            corrupt_rate: rate,
            drop_rate: rate,
            stall_rate: rate,
            ..Self::default()
        }
    }

    /// True when this spec can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.corrupt_rate <= 0.0 && self.drop_rate <= 0.0 && self.stall_rate <= 0.0
    }
}

/// A single-bit payload corruption: flip `1 << bit` at byte
/// `pos % payload_len` (the caller reduces `pos`, since the injector does
/// not know the frame length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    /// Unreduced byte position; take it modulo the payload length.
    pub pos: u64,
    /// The flipped bit, always non-zero.
    pub mask: u8,
}

/// The injector's verdict for one data frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameFate {
    /// Stall the channel this long before the frame may start.
    pub stall: Option<SimDuration>,
    /// Flip a payload bit.
    pub corrupt: Option<Corruption>,
    /// Lose the frame entirely (it still burns its wire slot).
    pub drop: bool,
}

/// Running totals of injected damage on one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Data frames corrupted.
    pub corrupted: u64,
    /// Frames dropped (data and control).
    pub dropped: u64,
    /// Stall windows inserted.
    pub stalls: u64,
    /// Total stalled time in picoseconds.
    pub stall_ps: u64,
}

/// A seeded per-channel fault source.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: Xoshiro256ss,
    /// Damage injected so far.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// An injector following `spec`, drawing from stream `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultInjector {
            spec,
            rng: Xoshiro256ss::seed_from(seed),
            stats: FaultStats::default(),
        }
    }

    /// The configured spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Judge one data frame. Draw order is fixed (stall, drop, corrupt)
    /// so schedules are stable under replay.
    pub fn data_frame(&mut self) -> FrameFate {
        let mut fate = FrameFate::default();
        if self.spec.stall_rate > 0.0 && self.rng.chance(self.spec.stall_rate) {
            let lo = self.spec.stall_min.as_ps();
            let hi = self.spec.stall_max.as_ps().max(lo);
            let d = SimDuration::from_ps(self.rng.range_u64(lo, hi));
            self.stats.stalls += 1;
            self.stats.stall_ps += d.as_ps();
            fate.stall = Some(d);
        }
        if self.spec.drop_rate > 0.0 && self.rng.chance(self.spec.drop_rate) {
            self.stats.dropped += 1;
            fate.drop = true;
            return fate;
        }
        if self.spec.corrupt_rate > 0.0 && self.rng.chance(self.spec.corrupt_rate) {
            let pos = self.rng.next_u64();
            let mask = 1u8 << self.rng.next_below(8);
            self.stats.corrupted += 1;
            fate.corrupt = Some(Corruption { pos, mask });
        }
        fate
    }

    /// Judge one control symbol (ACK/NAK): control channels only lose
    /// frames — corruption of a control symbol is modelled as a loss.
    pub fn control_frame(&mut self) -> bool {
        if self.spec.drop_rate > 0.0 && self.rng.chance(self.spec.drop_rate) {
            self.stats.dropped += 1;
            return true;
        }
        false
    }
}

/// Derive an independent child seed from `(base, salt)` — used to give
/// every (card, port) pair its own stream from one cluster-level seed.
pub fn derive_seed(base: u64, salt: u64) -> u64 {
    let mut sm = SplitMix64::new(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_spec_injects_nothing() {
        let mut inj = FaultInjector::new(FaultSpec::default(), 7);
        for _ in 0..1000 {
            assert_eq!(inj.data_frame(), FrameFate::default());
            assert!(!inj.control_frame());
        }
        assert_eq!(inj.stats, FaultStats::default());
    }

    #[test]
    fn schedules_replay_exactly() {
        let spec = FaultSpec::chaos(0.2);
        let mut a = FaultInjector::new(spec, 42);
        let mut b = FaultInjector::new(spec, 42);
        for _ in 0..500 {
            assert_eq!(a.data_frame(), b.data_frame());
            assert_eq!(a.control_frame(), b.control_frame());
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec::chaos(0.2);
        let mut a = FaultInjector::new(spec, 1);
        let mut b = FaultInjector::new(spec, 2);
        let fa: Vec<FrameFate> = (0..200).map(|_| a.data_frame()).collect();
        let fb: Vec<FrameFate> = (0..200).map(|_| b.data_frame()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultSpec::chaos(0.05), 9);
        for _ in 0..20_000 {
            inj.data_frame();
        }
        // 5% of 20k, loose bounds (drop draws happen after stall draws,
        // corrupt draws only on undropped frames).
        assert!((600..1400).contains(&inj.stats.stalls), "{:?}", inj.stats);
        assert!((600..1400).contains(&inj.stats.dropped), "{:?}", inj.stats);
        assert!(inj.stats.corrupted > 500, "{:?}", inj.stats);
    }

    #[test]
    fn corruption_masks_are_single_nonzero_bits() {
        let mut inj = FaultInjector::new(FaultSpec::corrupt(1.0), 3);
        for _ in 0..200 {
            let fate = inj.data_frame();
            let c = fate.corrupt.expect("rate 1.0 always corrupts");
            assert_eq!(c.mask.count_ones(), 1);
        }
    }

    #[test]
    fn stall_durations_stay_in_range() {
        let spec = FaultSpec {
            stall_rate: 1.0,
            stall_min: SimDuration::from_us(2),
            stall_max: SimDuration::from_us(5),
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(spec, 11);
        for _ in 0..200 {
            let d = inj.data_frame().stall.expect("rate 1.0 always stalls");
            assert!(d >= SimDuration::from_us(2) && d <= SimDuration::from_us(5));
        }
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s = derive_seed(123, 0);
        let t = derive_seed(123, 1);
        assert_ne!(s, t);
        assert_eq!(s, derive_seed(123, 0));
    }
}
