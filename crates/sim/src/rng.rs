//! Deterministic pseudo-random number generation.
//!
//! The engine ships its own SplitMix64 and xoshiro256** implementations so
//! that random streams are bit-stable across crate-version upgrades — a
//! reproduction harness must produce the same workload from the same seed
//! forever. (Application-level code may still use the `rand` crate where
//! stream stability is not load-bearing.)

/// SplitMix64: tiny, fast, and the recommended seeder for xoshiro.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator (Blackman–Vigna).
#[derive(Debug, Clone)]
pub struct Xoshiro256ss {
    s: [u64; 4],
}

impl Xoshiro256ss {
    /// Seed via SplitMix64 as the authors recommend.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next_u64();
        }
        // All-zero state is invalid; SplitMix64 cannot produce four zero
        // outputs in a row from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256ss { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift (unbiased enough
    /// for workload generation; bound must be non-zero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Random boolean with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct() {
        let mut a = Xoshiro256ss::seed_from(42);
        let mut b = Xoshiro256ss::seed_from(42);
        let mut c = Xoshiro256ss::seed_from(43);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn next_below_in_bounds() {
        let mut r = Xoshiro256ss::seed_from(7);
        for _ in 0..10_000 {
            assert!(r.next_below(37) < 37);
        }
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut r = Xoshiro256ss::seed_from(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256ss::seed_from(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn range_inclusive() {
        let mut r = Xoshiro256ss::seed_from(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..5_000 {
            let x = r.range_u64(3, 6);
            assert!((3..=6).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 6;
        }
        assert!(seen_lo && seen_hi);
    }
}
