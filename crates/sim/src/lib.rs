//! # apenet-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the APEnet+ reproduction: a small,
//! allocation-conscious discrete-event simulation (DES) kernel with
//!
//! * integer **picosecond** time ([`SimTime`], [`SimDuration`]) — every
//!   timing computation in the workspace is exact integer math, so a given
//!   seed reproduces bit-identical event streams on every platform;
//! * a generic actor **engine** ([`Sim`]) over a pooled **calendar
//!   queue** ([`calendar::CalendarQueue`]) with stable FIFO tie-breaking,
//!   arena-recycled event envelopes, and an [`engine::ActorSlab`] that
//!   dispatches either boxed actors (the default) or a concrete enum
//!   (static dispatch on the hot path);
//! * exact **bandwidth** arithmetic ([`Bandwidth`]);
//! * an in-tree **RNG** ([`rng::Xoshiro256ss`], [`rng::SplitMix64`]) so
//!   deterministic streams do not depend on external crate versions;
//! * online **statistics** and plot-series helpers used by the benchmark
//!   harness ([`stats`]);
//! * a byte-accounted bounded **FIFO** with almost-full watermarks
//!   ([`fifo::ByteFifo`]) — the building block of the APEnet+ flow control;
//! * lightweight **tracing** ([`trace`]) used by the PCIe bus-analyzer model.
//!
//! The hardware crates (`apenet-pcie`, `apenet-gpu`, `apenet-core`, …) are
//! written "sans-engine": they expose state machines implementing
//! [`Device`], and `apenet-cluster` wires those into a [`Sim`] instance.
//!
//! ```
//! use apenet_sim::engine::{Actor, Ctx, Sim};
//! use apenet_sim::{SimDuration, SimTime};
//!
//! struct Echo;
//! impl Actor<u32> for Echo {
//!     fn on_event(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
//!         if ev > 0 {
//!             ctx.send_self(SimDuration::from_ns(100), ev - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new();
//! let a = sim.add_actor(Box::new(Echo));
//! sim.send(a, SimTime::ZERO, 5);
//! let end = sim.run();
//! assert_eq!(end, SimTime::ZERO + SimDuration::from_ns(500));
//! assert_eq!(sim.events_processed(), 6);
//! ```

pub mod bytes;
pub mod calendar;
pub mod check;
pub mod engine;
pub mod fault;
pub mod fifo;
pub mod profile;
pub mod rate;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Actor, ActorId, Ctx, Sim};
pub use fifo::ByteFifo;
pub use rate::Bandwidth;
pub use time::{SimDuration, SimTime};

/// A sans-engine hardware component: consumes one input event and emits
/// zero or more delayed outputs into an [`Outbox`].
///
/// Components written against this trait know nothing about the simulation
/// engine or about who their peers are; the cluster assembly layer routes
/// each output to the right actor. This keeps every hardware model unit
/// testable with nothing but a clock value and an outbox.
pub trait Device {
    /// Input event type.
    type In;
    /// Output event type.
    type Out;
    /// Handle `ev` at simulated time `now`, pushing any produced events
    /// (with their relative delays) into `out`.
    fn handle(&mut self, now: SimTime, ev: Self::In, out: &mut Outbox<Self::Out>);
}

/// Collector for the delayed outputs of a [`Device`] step.
#[derive(Debug)]
pub struct Outbox<T> {
    items: Vec<(SimDuration, T)>,
}

impl<T> Default for Outbox<T> {
    fn default() -> Self {
        Self { items: Vec::new() }
    }
}

impl<T> Outbox<T> {
    /// Create an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit `ev` after `delay`.
    pub fn push(&mut self, delay: SimDuration, ev: T) {
        self.items.push((delay, ev));
    }

    /// Emit `ev` immediately (zero delay).
    pub fn push_now(&mut self, ev: T) {
        self.push(SimDuration::ZERO, ev);
    }

    /// Number of pending outputs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no outputs are pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drain all collected outputs.
    pub fn drain(&mut self) -> impl Iterator<Item = (SimDuration, T)> + '_ {
        self.items.drain(..)
    }

    /// Consume the outbox, returning the collected outputs.
    pub fn into_vec(self) -> Vec<(SimDuration, T)> {
        self.items
    }
}
