//! Online statistics and figure series used by the reproduction harness.

use std::fmt;

/// Welford online mean/variance plus min/max.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, `None` when empty (never `±INFINITY`,
    /// which would serialize as invalid JSON).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A logarithmically-bucketed histogram of non-negative integers
/// (bucket k holds values in `[2^k, 2^(k+1))`; bucket 0 holds 0 and 1).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    total: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            total: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = 63 - (v | 1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.total += v as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile (0 ≤ q ≤ 1).
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if k >= 63 { u64::MAX } else { (2u64 << k) - 1 };
            }
        }
        u64::MAX
    }

    /// Iterate non-empty buckets as `(lower_bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (if k == 0 { 0 } else { 1u64 << k }, n))
    }
}

/// One (x, y) series of a figure, e.g. "bandwidth vs message size".
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, matching the paper's curve names.
    pub label: String,
    /// The data points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Linear interpolation of y at `x` (requires sorted x, ≥ 1 point).
    pub fn interpolate(&self, x: f64) -> f64 {
        assert!(!self.points.is_empty());
        if x <= self.points[0].0 {
            return self.points[0].1;
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x <= x1 {
                let f = (x - x0) / (x1 - x0);
                return y0 + f * (y1 - y0);
            }
        }
        self.points.last().unwrap().1
    }

    /// Maximum y value.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max)
    }

    /// The first x at which this series' y falls at or below `other`'s
    /// (both evaluated on this series' x grid) — crossover detection.
    pub fn crossover_below(&self, other: &Series) -> Option<f64> {
        for &(x, y) in &self.points {
            if y <= other.interpolate(x) {
                return Some(x);
            }
        }
        None
    }
}

/// An ASCII rendering of a set of series: one row per x on a shared grid.
/// Used by the figure binaries to print gnuplot-ready columns.
pub fn render_table(series: &[Series], x_name: &str, y_name: &str) -> String {
    use fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "# {x_name:>12}");
    for s in series {
        let _ = write!(out, " {:>24}", s.label);
    }
    let _ = writeln!(out, "   ({y_name})");
    if series.is_empty() {
        return out;
    }
    for (i, &(x, _)) in series[0].points.iter().enumerate() {
        let _ = write!(out, "{x:>14.0}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => {
                    let _ = write!(out, " {y:>24.1}");
                }
                None => {
                    let _ = write!(out, " {:>24}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_online_stats_have_no_min_max() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None, "empty min must not be +INFINITY");
        assert_eq!(s.max(), None, "empty max must not be -INFINITY");
        assert_eq!(s.mean(), 0.0);
        // One observation makes min == max == the observation.
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - (1 + 2 + 3 + 4 + 1024) as f64 / 6.0).abs() < 1e-12);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 1), (1024, 1)]);
        assert!(h.quantile_bound(0.5) >= 2);
        assert!(h.quantile_bound(1.0) >= 1024);
    }

    #[test]
    fn quantile_bound_edge_cases() {
        // Empty histogram: every quantile bound is 0.
        let h = LogHistogram::new();
        assert_eq!(h.quantile_bound(0.0), 0);
        assert_eq!(h.quantile_bound(0.5), 0);
        assert_eq!(h.quantile_bound(1.0), 0);

        // Single value: every quantile lands in its bucket. 5 lives in
        // bucket k=2 ([4, 8)), whose upper bound is 7.
        let mut h = LogHistogram::new();
        h.record(5);
        assert_eq!(h.quantile_bound(0.0), 7, "q=0 still reports a bucket");
        assert_eq!(h.quantile_bound(0.5), 7);
        assert_eq!(h.quantile_bound(1.0), 7);

        // q=0.0 with many buckets: target rounds up to the first
        // non-empty bucket, not below it.
        let mut h = LogHistogram::new();
        h.record(100);
        h.record(100_000);
        assert_eq!(h.quantile_bound(0.0), 127);

        // Top bucket k=63: `(2u64 << 63)` would overflow; the bound
        // saturates to u64::MAX instead.
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile_bound(0.5), u64::MAX);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
        let mut h = LogHistogram::new();
        h.record(1u64 << 63);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
    }

    #[test]
    fn crossover_with_non_overlapping_grids() {
        // a's grid [1, 4] sits entirely left of b's [10, 20]:
        // interpolate clamps to b's first point, so the comparison is
        // well-defined instead of extrapolating garbage.
        let mut a = Series::new("a");
        a.push(1.0, 5.0);
        a.push(4.0, 3.0);
        let mut b = Series::new("b");
        b.push(10.0, 4.0);
        b.push(20.0, 8.0);
        // b clamps to y=4 on a's grid; a first dips to/below 4 at x=4.
        assert_eq!(a.crossover_below(&b), Some(4.0));
        // b (y >= 4) never falls below a's clamped tail (y=3).
        assert_eq!(b.crossover_below(&a), None);

        // Disjoint the other way round: a entirely right of b.
        let mut right = Series::new("right");
        right.push(100.0, 1.0);
        assert_eq!(right.crossover_below(&b), Some(100.0), "b clamps to 8");
    }

    #[test]
    fn series_interpolation_and_crossover() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        for x in [1.0, 2.0, 4.0, 8.0] {
            a.push(x, 10.0 - x); // falling
            b.push(x, x); // rising
        }
        assert!((a.interpolate(3.0) - 7.0).abs() < 1e-12);
        assert!((a.interpolate(0.5) - 9.0).abs() < 1e-12);
        assert!((a.interpolate(99.0) - 2.0).abs() < 1e-12);
        // a falls below b somewhere after x=4 (a(8)=2 <= b(8)=8 → first grid x is 8)
        assert_eq!(a.crossover_below(&b), Some(8.0));
        assert_eq!(b.crossover_below(&a), Some(1.0));
        assert_eq!(a.peak(), 9.0);
    }

    #[test]
    fn table_rendering_has_all_columns() {
        let mut a = Series::new("H-H");
        a.push(32.0, 100.0);
        a.push(64.0, 200.0);
        let t = render_table(&[a], "size", "MB/s");
        assert!(t.contains("H-H"));
        assert!(t.contains("size"));
        assert_eq!(t.lines().count(), 3);
    }
}
