//! Refcounted payload slices — the zero-copy byte fabric.
//!
//! The simulator is *functional*: RDMA PUTs move real bytes. The naive
//! representation (one `Vec<u8>` per ≤4 KB packet fragment) makes every
//! TX read-out, fault injection and RX hand-off a byte copy, which
//! dominates the wall-clock of large bandwidth sweeps. [`PayloadSlice`]
//! replaces it: an `Arc`-backed buffer plus a byte range, so
//!
//! * fragmentation is a refcount bump + range narrowing,
//! * CRC and RX delivery read the borrowed slice in place,
//! * mutation (fault injection, writes to a shared memory page) is
//!   copy-on-write of only the aliased bytes.
//!
//! The module keeps a global [`copied_bytes`] counter so tests can assert
//! that a clean datapath really performs zero payload copies.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes copied by copy-on-write and gather fall-backs, process-wide.
static COPIED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Record `n` payload bytes copied (slow path). Public so memory models
/// outside this crate can account their own gather copies.
pub fn note_copy(n: u64) {
    COPIED_BYTES.fetch_add(n, Ordering::Relaxed);
}

/// Total payload bytes copied on slow paths since process start.
/// Monotone; compare before/after a region to measure its copy traffic.
pub fn copied_bytes() -> u64 {
    COPIED_BYTES.load(Ordering::Relaxed)
}

/// An immutable, cheaply clonable view of a byte range inside a shared
/// buffer. Cloning and narrowing never copy; [`PayloadSlice::make_mut`]
/// copies only when the bytes are actually shared.
#[derive(Clone)]
pub struct PayloadSlice {
    buf: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl PayloadSlice {
    /// The empty slice (no backing allocation).
    pub fn empty() -> Self {
        static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
        let buf = EMPTY.get_or_init(|| Arc::from(&[][..])).clone();
        PayloadSlice {
            buf,
            start: 0,
            len: 0,
        }
    }

    /// Take ownership of a vector (no copy).
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        PayloadSlice {
            buf: v.into(),
            start: 0,
            len,
        }
    }

    /// Share an existing buffer (refcount bump).
    pub fn from_arc(buf: Arc<[u8]>) -> Self {
        let len = buf.len();
        PayloadSlice { buf, start: 0, len }
    }

    /// A sub-range of this slice, relative to its start. Zero-copy.
    ///
    /// Panics when `offset + len` exceeds the slice.
    pub fn narrow(&self, offset: usize, len: usize) -> Self {
        assert!(
            offset + len <= self.len,
            "narrow({offset}, {len}) out of range for slice of {}",
            self.len
        );
        PayloadSlice {
            buf: self.buf.clone(),
            start: self.start + offset,
            len,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when this slice is the sole owner of its backing buffer and
    /// views all of it (mutation would be free).
    pub fn is_unique(&self) -> bool {
        self.start == 0 && self.len == self.buf.len() && Arc::strong_count(&self.buf) == 1
    }

    /// Mutable access, copy-on-write: when the backing buffer is shared
    /// (or only partially viewed), the viewed range — and nothing more —
    /// is copied into a fresh buffer first.
    pub fn make_mut(&mut self) -> &mut [u8] {
        if !self.is_unique() {
            note_copy(self.len as u64);
            let owned: Arc<[u8]> = Arc::from(self.as_slice());
            self.buf = owned;
            self.start = 0;
        }
        // self.start == 0 and len == buf.len() now hold.
        Arc::get_mut(&mut self.buf).expect("sole owner after copy-on-write")
    }
}

impl Deref for PayloadSlice {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for PayloadSlice {
    fn from(v: Vec<u8>) -> Self {
        PayloadSlice::from_vec(v)
    }
}

impl PartialEq for PayloadSlice {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadSlice {}

impl std::fmt::Debug for PayloadSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PayloadSlice({} B", self.len)?;
        if !self.is_unique() {
            write!(f, ", shared")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_is_zero_copy() {
        let base = copied_bytes();
        let p = PayloadSlice::from_vec((0..=255u8).cycle().take(8192).collect());
        let a = p.narrow(0, 4096);
        let b = p.narrow(4096, 4096);
        assert_eq!(a.len(), 4096);
        assert_eq!(b.as_slice()[0], (4096 % 256) as u8);
        assert_eq!(copied_bytes(), base, "no bytes copied by narrowing");
    }

    #[test]
    fn make_mut_copies_only_when_shared() {
        let mut sole = PayloadSlice::from_vec(vec![1u8; 64]);
        let base = copied_bytes();
        sole.make_mut()[0] = 9;
        assert_eq!(copied_bytes(), base, "unique slice mutates in place");

        let whole = PayloadSlice::from_vec(vec![2u8; 64]);
        let mut shared = whole.clone();
        shared.make_mut()[0] = 9;
        assert_eq!(copied_bytes(), base + 64, "shared slice copied 64 B");
        assert_eq!(whole.as_slice()[0], 2, "original untouched");
        assert_eq!(shared.as_slice()[0], 9);
    }

    #[test]
    fn make_mut_on_narrow_copies_only_the_view() {
        let whole = PayloadSlice::from_vec(vec![7u8; 4096]);
        let mut frag = whole.narrow(1024, 16);
        let base = copied_bytes();
        frag.make_mut()[15] ^= 0x10;
        assert_eq!(copied_bytes(), base + 16, "only the fragment copied");
        assert_eq!(frag.len(), 16);
        assert_eq!(whole.as_slice()[1024 + 15], 7);
    }

    #[test]
    fn empty_and_eq() {
        let e = PayloadSlice::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let a = PayloadSlice::from_vec(vec![1, 2, 3]);
        let b = PayloadSlice::from_vec(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.narrow(1, 2), b.narrow(1, 2));
        assert_ne!(a, e);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn narrow_out_of_range_panics() {
        PayloadSlice::from_vec(vec![0; 8]).narrow(4, 8);
    }

    #[test]
    fn deref_works() {
        let p = PayloadSlice::from_vec(vec![5u8; 10]);
        assert_eq!(p[3], 5);
        assert_eq!(p.iter().copied().sum::<u8>(), 50);
    }
}
