//! Exact whole-run sim-time profile.
//!
//! A discrete-event simulation makes time attribution *exact*, not
//! statistical: every picosecond of the run span lies between two
//! consecutive dispatches, and the gap before an event is the time the
//! simulation "spent waiting" for that event. Attributing each gap to
//! the (component, event-kind) pair that ends it telescopes to the full
//! span — the buckets plus any idle-forward residual (from
//! [`Sim::run_until`](crate::Sim::run_until) advancing a drained
//! calendar to its deadline) partition 100 % of simulated time.
//!
//! Alongside the exact sim-time partition each bucket carries wall-clock
//! nanoseconds spent inside the actor's `on_event`, which is what makes
//! host-side hot spots (and parallel-sweep load imbalance) diagnosable.
//! Wall columns are *not* deterministic and are rendered separately.

use std::collections::BTreeMap;

/// Accumulator for one (actor, event-kind) cell.
#[derive(Debug, Default, Clone, Copy)]
pub struct Bucket {
    /// Events dispatched into this cell.
    pub events: u64,
    /// Simulated picoseconds attributed to this cell (gap before each
    /// event, i.e. `ev.at - prev_now`).
    pub sim_ps: u64,
    /// Wall-clock nanoseconds spent inside `on_event` for this cell.
    pub wall_ns: u64,
}

/// One aggregated row of the profile: a (component, kind) pair.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Actor name (components with equal names aggregate).
    pub component: String,
    /// Event kind, as reported by the classifier.
    pub kind: &'static str,
    /// Merged bucket.
    pub bucket: Bucket,
}

/// The exact partition of a run's simulated time, extracted with
/// [`Sim::take_profile`](crate::Sim::take_profile).
#[derive(Debug, Clone, Default)]
pub struct SimProfile {
    /// Aggregated rows, sorted by (component, kind) — byte-stable.
    pub rows: Vec<ProfileRow>,
    /// Simulated picoseconds idled forward by `run_until` on a drained
    /// calendar (no event ends these gaps, so no bucket owns them).
    pub idle_ps: u64,
    /// Exact run span in picoseconds: final now − now at attach.
    pub span_ps: u64,
}

impl SimProfile {
    /// Sum of all bucket sim-time plus the idle residual. Equals
    /// [`span_ps`](Self::span_ps) exactly — asserted by callers.
    pub fn accounted_ps(&self) -> u64 {
        self.rows.iter().map(|r| r.bucket.sim_ps).sum::<u64>() + self.idle_ps
    }

    /// Total events across all rows.
    pub fn total_events(&self) -> u64 {
        self.rows.iter().map(|r| r.bucket.events).sum()
    }

    /// Panic unless buckets + idle == span (the 100 % property).
    pub fn assert_exact(&self) {
        assert_eq!(
            self.accounted_ps(),
            self.span_ps,
            "sim-time profile does not partition the run span exactly"
        );
    }

    /// Merge rows that share a component name across actors and drop
    /// the kind dimension: per-component totals, sorted by name.
    pub fn by_component(&self) -> Vec<(String, Bucket)> {
        let mut map: BTreeMap<&str, Bucket> = BTreeMap::new();
        for r in &self.rows {
            let b = map.entry(&r.component).or_default();
            b.events += r.bucket.events;
            b.sim_ps += r.bucket.sim_ps;
            b.wall_ns += r.bucket.wall_ns;
        }
        map.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    /// Deterministic Fig. 3/4-style table: component, kind, events,
    /// sim-time and exact share of the run span. No wall-clock columns
    /// (those are nondeterministic; see [`render_wall`](Self::render_wall)).
    pub fn render_table(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {title}\n"));
        out.push_str(&format!(
            "# span = {} ps, events = {}, idle = {} ps\n",
            self.span_ps,
            self.total_events(),
            self.idle_ps
        ));
        out.push_str(&format!(
            "{:<22} {:<12} {:>10} {:>16} {:>9}\n",
            "component", "kind", "events", "sim_ps", "share"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<22} {:<12} {:>10} {:>16} {:>8}%\n",
                r.component,
                r.kind,
                r.bucket.events,
                r.bucket.sim_ps,
                share_str(r.bucket.sim_ps, self.span_ps),
            ));
        }
        if self.idle_ps > 0 {
            out.push_str(&format!(
                "{:<22} {:<12} {:>10} {:>16} {:>8}%\n",
                "(idle)",
                "-",
                0,
                self.idle_ps,
                share_str(self.idle_ps, self.span_ps),
            ));
        }
        out.push_str(&format!(
            "{:<22} {:<12} {:>10} {:>16} {:>8}%\n",
            "total",
            "-",
            self.total_events(),
            self.accounted_ps(),
            share_str(self.accounted_ps(), self.span_ps),
        ));
        out
    }

    /// Wall-clock table (host µs inside `on_event` per component/kind).
    /// Nondeterministic — print to stderr, never into golden artifacts.
    pub fn render_wall(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {title} (wall-clock, nondeterministic)\n"));
        out.push_str(&format!(
            "{:<22} {:<12} {:>10} {:>12}\n",
            "component", "kind", "events", "wall_us"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<22} {:<12} {:>10} {:>12.1}\n",
                r.component,
                r.kind,
                r.bucket.events,
                r.bucket.wall_ns as f64 / 1_000.0,
            ));
        }
        out
    }
}

/// Exact per-mille share rendered as a fixed-point percentage string
/// (`"12.3"`); integer math only, so byte-stable across platforms.
fn share_str(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "0.0".to_string();
    }
    // Round-half-up in per-mille, then print as xx.y.
    let permille = (part as u128 * 1000 + whole as u128 / 2) / whole as u128;
    format!("{}.{}", permille / 10, permille % 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Actor, Ctx, Sim};
    use crate::{SimDuration, SimTime};

    enum Msg {
        Tick(u32),
        Tock,
    }

    fn classify(m: &Msg) -> &'static str {
        match m {
            Msg::Tick(_) => "tick",
            Msg::Tock => "tock",
        }
    }

    struct Clock;
    impl Actor<Msg> for Clock {
        fn on_event(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Tick(n) = ev {
                if n > 0 {
                    ctx.send_self(SimDuration::from_ns(7), Msg::Tick(n - 1));
                    ctx.send_self(SimDuration::from_ns(3), Msg::Tock);
                }
            }
        }
        fn name(&self) -> &str {
            "clock"
        }
    }

    #[test]
    fn profile_partitions_span_exactly() {
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Clock));
        sim.attach_profiler(classify);
        sim.send(a, SimTime::from_ps(500), Msg::Tick(10));
        sim.run();
        let p = sim.take_profile().expect("profiler attached");
        p.assert_exact();
        assert_eq!(p.span_ps, sim.now().as_ps());
        assert_eq!(p.total_events(), sim.events_processed());
        let kinds: Vec<&str> = p.rows.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, ["tick", "tock"], "rows sorted by (component, kind)");
        assert!(p.rows.iter().all(|r| r.component == "clock"));
        assert_eq!(p.idle_ps, 0);
    }

    #[test]
    fn run_until_idle_residual_is_accounted() {
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Clock));
        sim.attach_profiler(classify);
        sim.send(a, SimTime::from_ps(100), Msg::Tock);
        // Calendar drains at 100 ps; the clock idles forward to 1 µs.
        sim.run_until(SimTime::from_ps(1_000_000));
        let p = sim.take_profile().expect("profiler attached");
        p.assert_exact();
        assert_eq!(p.span_ps, 1_000_000);
        assert_eq!(p.idle_ps, 1_000_000 - 100);
    }

    #[test]
    fn table_is_deterministic_and_sums_to_100() {
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Clock));
        sim.attach_profiler(classify);
        sim.send(a, SimTime::ZERO, Msg::Tick(4));
        sim.run();
        let p = sim.take_profile().unwrap();
        let t1 = p.render_table("t");
        let t2 = p.render_table("t");
        assert_eq!(t1, t2);
        assert!(t1.ends_with("100.0%\n"), "total row shows 100.0%:\n{t1}");
    }

    #[test]
    fn share_str_rounds_exactly() {
        assert_eq!(share_str(0, 10), "0.0");
        assert_eq!(share_str(10, 10), "100.0");
        assert_eq!(share_str(1, 3), "33.3");
        assert_eq!(share_str(2, 3), "66.7");
        assert_eq!(share_str(5, 0), "0.0");
    }
}
