//! Simulated time in integer picoseconds.
//!
//! The paper quotes quantities spanning nine orders of magnitude — from
//! per-spin update times in *picoseconds* (Table II) to PCIe transactions in
//! *microseconds* (Fig. 3) and whole traversals in *milliseconds* — so the
//! base unit is the picosecond held in a `u64`, which covers ~213 days of
//! simulated time: far more than any experiment here needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant of simulated time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picoseconds since the epoch.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Microseconds since the epoch as a float (for reporting only).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }

    /// Construct from a float number of microseconds (rounds to nearest ps).
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Microseconds as a float (for reporting only).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Nanoseconds as a float (for reporting only).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Integer-exact multiply by a count.
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps >= PS_PER_S {
        write!(f, "{:.3}s", ps as f64 / PS_PER_S as f64)
    } else if ps >= PS_PER_MS {
        write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        write!(f, "{ps}ps")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1), SimDuration::from_ns(1_000));
        assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_ms(1_000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_us(5);
        let u = t + SimDuration::from_ns(250);
        assert_eq!(u - t, SimDuration::from_ns(250));
        assert_eq!(u.since(t), SimDuration::from_ns(250));
        assert_eq!(t.since(u), SimDuration::ZERO, "since saturates");
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_ps(10);
        let b = SimTime::from_ps(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn float_views() {
        let d = SimDuration::from_us(2) + SimDuration::from_ns(500);
        assert!((d.as_us_f64() - 2.5).abs() < 1e-12);
        assert!((d.as_ns_f64() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimDuration::from_ns(3)), "3.000ns");
        assert_eq!(format!("{}", SimDuration::from_us(7)), "7.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(9)), "9.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_and_scale() {
        let parts = [SimDuration::from_ns(1), SimDuration::from_ns(2)];
        let s: SimDuration = parts.iter().copied().sum();
        assert_eq!(s, SimDuration::from_ns(3));
        assert_eq!(s * 2, SimDuration::from_ns(6));
        assert_eq!(s / 3, SimDuration::from_ns(1));
        assert_eq!(SimDuration::from_ns(5).times(4), SimDuration::from_ns(20));
    }
}
