//! Lightweight event tracing.
//!
//! The PCIe bus-analyzer model (paper §V.A, Fig. 3) is a trace sink attached
//! between two link endpoints. The null sink costs nothing on hot paths;
//! `enabled()` lets callers skip even the formatting of detail strings.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// Which component produced it.
    pub source: &'static str,
    /// Event kind (e.g. "MRd", "CplD", "pkt-rx").
    pub kind: &'static str,
    /// Free-form detail (sizes, addresses).
    pub detail: String,
}

#[derive(Clone)]
enum SinkImpl {
    Null,
    Vec(Rc<RefCell<Vec<TraceRecord>>>),
}

/// A cheaply clonable, shareable trace sink — components of a
/// single-threaded simulation share one capture buffer through this handle.
#[derive(Clone)]
pub struct SharedSink {
    inner: SinkImpl,
}

impl SharedSink {
    /// A disabled sink: records are discarded without formatting cost.
    pub fn null() -> Self {
        SharedSink {
            inner: SinkImpl::Null,
        }
    }

    /// A capturing sink; read it back with [`SharedSink::snapshot`].
    pub fn capturing() -> Self {
        SharedSink {
            inner: SinkImpl::Vec(Rc::new(RefCell::new(Vec::new()))),
        }
    }

    /// True when records are kept. Check before building costly `detail`
    /// strings.
    pub fn enabled(&self) -> bool {
        matches!(self.inner, SinkImpl::Vec(_))
    }

    /// Record one event (no-op when disabled).
    pub fn record(&self, at: SimTime, source: &'static str, kind: &'static str, detail: String) {
        if let SinkImpl::Vec(v) = &self.inner {
            v.borrow_mut().push(TraceRecord {
                at,
                source,
                kind,
                detail,
            });
        }
    }

    /// Clone out the captured records (`None` for a null sink).
    pub fn snapshot(&self) -> Option<Vec<TraceRecord>> {
        match &self.inner {
            SinkImpl::Null => None,
            SinkImpl::Vec(v) => Some(v.borrow().clone()),
        }
    }

    /// Number of captured records (0 for a null sink).
    pub fn len(&self) -> usize {
        match &self.inner {
            SinkImpl::Null => 0,
            SinkImpl::Vec(v) => v.borrow().len(),
        }
    }

    /// True when no records have been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_discards() {
        let s = SharedSink::null();
        assert!(!s.enabled());
        s.record(SimTime::ZERO, "x", "y", String::new());
        assert_eq!(s.snapshot(), None);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn capturing_sink_keeps_order() {
        let s = SharedSink::capturing();
        assert!(s.enabled());
        let s2 = s.clone();
        s.record(SimTime::from_ps(1), "a", "MRd", "tag=1".into());
        s2.record(SimTime::from_ps(2), "b", "CplD", "tag=1".into());
        let recs = s.snapshot().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, "MRd");
        assert_eq!(recs[1].source, "b");
        assert!(recs[0].at < recs[1].at);
        assert!(!s.is_empty());
    }
}
