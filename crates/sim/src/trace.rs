//! Lightweight span-correlated event tracing.
//!
//! The PCIe bus-analyzer model (paper §V.A, Fig. 3) is a trace sink attached
//! between two link endpoints. The null sink costs nothing on hot paths;
//! `enabled()` lets callers skip even the construction of payloads.
//!
//! Every record optionally carries a [`SpanId`] — a deterministic id derived
//! from the RDMA message identity — so the observability plane can stitch the
//! full lifecycle of one message (post → fetch → TLP stream → torus frames →
//! RX write → completion) back together from a flat capture. Payloads are a
//! typed enum, not free-form strings, so consumers match on fields instead of
//! string-parsing; the `Display` impls reproduce the legacy text for human
//! renderings.

use crate::time::SimTime;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Deterministic id correlating every trace record of one RDMA message.
///
/// Packs the message identity — `(src_rank, seq)` — into one u64:
/// the source rank in the top 24 bits, the per-rank sequence number in
/// the low 40. Derived, not allocated, so replays of the same schedule
/// produce the same ids with no shared counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    const SEQ_BITS: u32 = 40;
    const SEQ_MASK: u64 = (1u64 << Self::SEQ_BITS) - 1;

    /// Span for the message `(src_rank, seq)`.
    pub fn from_msg(src_rank: u32, seq: u64) -> Self {
        SpanId(((src_rank as u64) << Self::SEQ_BITS) | (seq & Self::SEQ_MASK))
    }

    /// Rank that posted the message.
    pub fn src_rank(self) -> u32 {
        (self.0 >> Self::SEQ_BITS) as u32
    }

    /// Per-rank message sequence number.
    pub fn seq(self) -> u64 {
        self.0 & Self::SEQ_MASK
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}#{}", self.src_rank(), self.seq())
    }
}

/// Typed record payload. Variants cover the observation points of the
/// reproduction; `Display` renders the historical detail-string format
/// so committed trace renderings stay byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TracePayload {
    /// Marker events with no data.
    None,
    /// One PCIe TLP as seen by the virtual interposer: `len` payload
    /// bytes, `wire` bytes including headers/DLL framing, direction
    /// relative to the analyzed link (`up` = toward the root complex).
    Tlp { len: u64, wire: u64, up: bool },
    /// One torus link frame: go-back-N sequence number, wire bytes,
    /// and whether this transmission is a retransmit.
    Frame { seq: u64, wire: u64, retrans: bool },
    /// A byte quantity (fetched, staged, written).
    Bytes { len: u64 },
    /// A whole-message event (post, delivery, completion).
    Msg { len: u64 },
}

impl TracePayload {
    /// Data bytes this record accounts for (0 for markers and frames,
    /// whose `wire` field is overhead-inclusive).
    pub fn data_len(&self) -> u64 {
        match *self {
            TracePayload::Tlp { len, .. }
            | TracePayload::Bytes { len }
            | TracePayload::Msg { len } => len,
            TracePayload::None | TracePayload::Frame { .. } => 0,
        }
    }
}

impl fmt::Display for TracePayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TracePayload::None => Ok(()),
            TracePayload::Tlp { len, wire, up } => {
                let dir = if up { "Up" } else { "Down" };
                write!(f, "len={len} wire={wire} dir={dir}")
            }
            TracePayload::Frame { seq, wire, retrans } => {
                write!(f, "seq={seq} wire={wire} retrans={retrans}")
            }
            TracePayload::Bytes { len } | TracePayload::Msg { len } => write!(f, "len={len}"),
        }
    }
}

/// Well-known record kinds emitted by the card along a message span, in
/// lifecycle order. The interposer's TLP mnemonics ("MRd", "CplD",
/// "MWr32"...) come from the PCIe layer and are not listed here.
pub mod kind {
    /// Host posted a TX descriptor (span birth).
    pub const POST: &str = "post";
    /// Payload bytes arrived from the GPU/host fetch engine.
    pub const FETCH: &str = "fetch";
    /// A packet was staged into a link TX queue.
    pub const STAGE: &str = "stage";
    /// A frame started serializing onto a torus/loopback wire.
    pub const FRAME_TX: &str = "frame-tx";
    /// A frame was accepted in-order by the receiving link layer.
    pub const FRAME_RX: &str = "frame-rx";
    /// Payload write toward the destination buffer began.
    pub const RX_WRITE: &str = "rx-write";
    /// Destination host was notified of the delivery.
    pub const DELIVERED: &str = "delivered";
    /// Source host reaped the TX completion (span end).
    pub const TX_DONE: &str = "tx-done";
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// Which component produced it.
    pub source: &'static str,
    /// Event kind (e.g. "MRd", "CplD", [`kind::FRAME_TX`]).
    pub kind: &'static str,
    /// The message span this record belongs to, when known.
    pub span: Option<SpanId>,
    /// Typed payload.
    pub payload: TracePayload,
}

#[derive(Clone)]
enum SinkImpl {
    Null,
    Vec(Rc<RefCell<Vec<TraceRecord>>>),
    Ring {
        buf: Rc<RefCell<VecDeque<TraceRecord>>>,
        cap: usize,
        dropped: Rc<Cell<u64>>,
    },
}

/// A cheaply clonable, shareable trace sink — components of a
/// single-threaded simulation share one capture buffer through this handle.
///
/// Three flavours: [`SharedSink::null`] discards, [`SharedSink::capturing`]
/// keeps everything, [`SharedSink::ring`] keeps the most recent `cap`
/// records in bounded memory (the virtual bus-analyzer's capture buffer),
/// counting evictions in [`SharedSink::dropped`].
#[derive(Clone)]
pub struct SharedSink {
    inner: SinkImpl,
}

impl SharedSink {
    /// A disabled sink: records are discarded without construction cost.
    pub fn null() -> Self {
        SharedSink {
            inner: SinkImpl::Null,
        }
    }

    /// A capturing sink; read it back with [`SharedSink::take`] or
    /// [`SharedSink::snapshot`].
    pub fn capturing() -> Self {
        SharedSink {
            inner: SinkImpl::Vec(Rc::new(RefCell::new(Vec::new()))),
        }
    }

    /// A bounded ring sink keeping the most recent `cap` records; older
    /// records are evicted and counted in [`SharedSink::dropped`].
    pub fn ring(cap: usize) -> Self {
        SharedSink {
            inner: SinkImpl::Ring {
                buf: Rc::new(RefCell::new(VecDeque::with_capacity(cap.max(1)))),
                cap: cap.max(1),
                dropped: Rc::new(Cell::new(0)),
            },
        }
    }

    /// True when records are kept. Check before constructing payloads on
    /// hot paths.
    pub fn enabled(&self) -> bool {
        !matches!(self.inner, SinkImpl::Null)
    }

    /// Record one event (no-op when disabled).
    pub fn record(
        &self,
        at: SimTime,
        source: &'static str,
        kind: &'static str,
        span: Option<SpanId>,
        payload: TracePayload,
    ) {
        let rec = |at, source, kind| TraceRecord {
            at,
            source,
            kind,
            span,
            payload,
        };
        match &self.inner {
            SinkImpl::Null => {}
            SinkImpl::Vec(v) => v.borrow_mut().push(rec(at, source, kind)),
            SinkImpl::Ring { buf, cap, dropped } => {
                let mut buf = buf.borrow_mut();
                if buf.len() == *cap {
                    buf.pop_front();
                    dropped.set(dropped.get() + 1);
                }
                buf.push_back(rec(at, source, kind));
            }
        }
    }

    /// Clone out the captured records (`None` for a null sink). Prefer
    /// [`SharedSink::take`] when the capture is consumed once.
    pub fn snapshot(&self) -> Option<Vec<TraceRecord>> {
        match &self.inner {
            SinkImpl::Null => None,
            SinkImpl::Vec(v) => Some(v.borrow().clone()),
            SinkImpl::Ring { buf, .. } => Some(buf.borrow().iter().cloned().collect()),
        }
    }

    /// Drain the captured records without cloning them, leaving the sink
    /// empty (and reusable). Returns an empty vec for a null sink.
    pub fn take(&self) -> Vec<TraceRecord> {
        match &self.inner {
            SinkImpl::Null => Vec::new(),
            SinkImpl::Vec(v) => std::mem::take(&mut *v.borrow_mut()),
            SinkImpl::Ring { buf, .. } => buf.borrow_mut().drain(..).collect(),
        }
    }

    /// Records evicted from a ring sink because it was full (0 for the
    /// other flavours).
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            SinkImpl::Ring { dropped, .. } => dropped.get(),
            _ => 0,
        }
    }

    /// Number of captured records (0 for a null sink).
    pub fn len(&self) -> usize {
        match &self.inner {
            SinkImpl::Null => 0,
            SinkImpl::Vec(v) => v.borrow().len(),
            SinkImpl::Ring { buf, .. } => buf.borrow().len(),
        }
    }

    /// True when no records have been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_discards() {
        let s = SharedSink::null();
        assert!(!s.enabled());
        s.record(SimTime::ZERO, "x", "y", None, TracePayload::None);
        assert_eq!(s.snapshot(), None);
        assert_eq!(s.len(), 0);
        assert!(s.take().is_empty());
    }

    #[test]
    fn capturing_sink_keeps_order() {
        let s = SharedSink::capturing();
        assert!(s.enabled());
        let s2 = s.clone();
        s.record(
            SimTime::from_ps(1),
            "a",
            "MRd",
            None,
            TracePayload::Tlp {
                len: 0,
                wire: 24,
                up: true,
            },
        );
        s2.record(
            SimTime::from_ps(2),
            "b",
            "CplD",
            None,
            TracePayload::Tlp {
                len: 256,
                wire: 280,
                up: false,
            },
        );
        let recs = s.snapshot().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, "MRd");
        assert_eq!(recs[1].source, "b");
        assert!(recs[0].at < recs[1].at);
        assert!(!s.is_empty());
    }

    #[test]
    fn take_drains_without_cloning() {
        let s = SharedSink::capturing();
        for i in 0..4 {
            s.record(
                SimTime::from_ps(i),
                "c",
                kind::POST,
                Some(SpanId::from_msg(0, i)),
                TracePayload::Msg { len: 64 },
            );
        }
        let taken = s.take();
        assert_eq!(taken.len(), 4);
        assert!(s.is_empty(), "take leaves the sink empty");
        assert!(s.take().is_empty());
        // The sink stays usable after draining.
        s.record(SimTime::ZERO, "c", kind::POST, None, TracePayload::None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ring_sink_bounds_memory_and_counts_evictions() {
        let s = SharedSink::ring(3);
        assert!(s.enabled());
        for i in 0..5u64 {
            s.record(
                SimTime::from_ps(i),
                "r",
                kind::FRAME_TX,
                None,
                TracePayload::Frame {
                    seq: i,
                    wire: 100,
                    retrans: false,
                },
            );
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let recs = s.take();
        assert_eq!(recs.len(), 3);
        // Oldest two were evicted; the newest three survive in order.
        assert_eq!(recs[0].at, SimTime::from_ps(2));
        assert_eq!(recs[2].at, SimTime::from_ps(4));
    }

    #[test]
    fn span_id_round_trips_and_orders() {
        let a = SpanId::from_msg(3, 41);
        assert_eq!(a.src_rank(), 3);
        assert_eq!(a.seq(), 41);
        assert_eq!(a.to_string(), "r3#41");
        assert_eq!(a, SpanId::from_msg(3, 41));
        assert!(SpanId::from_msg(0, u64::MAX >> 24) < SpanId::from_msg(1, 0));
    }

    #[test]
    fn payload_display_matches_legacy_detail_format() {
        let tlp = TracePayload::Tlp {
            len: 256,
            wire: 280,
            up: true,
        };
        assert_eq!(tlp.to_string(), "len=256 wire=280 dir=Up");
        let down = TracePayload::Tlp {
            len: 0,
            wire: 24,
            up: false,
        };
        assert_eq!(down.to_string(), "len=0 wire=24 dir=Down");
        assert_eq!(TracePayload::Msg { len: 7 }.to_string(), "len=7");
        assert_eq!(
            TracePayload::Frame {
                seq: 9,
                wire: 128,
                retrans: true
            }
            .to_string(),
            "seq=9 wire=128 retrans=true"
        );
        assert_eq!(TracePayload::None.to_string(), "");
        assert_eq!(tlp.data_len(), 256);
        assert_eq!(
            TracePayload::Frame {
                seq: 0,
                wire: 1,
                retrans: false
            }
            .data_len(),
            0
        );
    }
}
