//! The discrete-event engine: actor slab, calendar queue, dispatch loop.
//!
//! The engine is generic over the message type `M` *and* the registered
//! actor type `A`, so each assembly (the APEnet+ cluster, the InfiniBand
//! cluster, unit-test rigs) defines its own closed event enum and — on
//! the hot path — a closed actor enum dispatched by a single match
//! instead of a vtable call. `A` defaults to `Box<dyn Actor<M>>`, which
//! keeps every pre-slab caller and test compiling unchanged (a blanket
//! [`Actor`] impl for boxes forwards through the pointer).
//!
//! Events live in a pooled [`CalendarQueue`]: the envelope of a
//! scheduled message is a recycled arena slot, not a per-push heap
//! allocation, and pop/push are O(1) in the steady state instead of the
//! binary heap's O(log n). Events scheduled for the same instant are
//! delivered in FIFO order of scheduling (a monotonically increasing
//! sequence number breaks ties), which makes every run fully
//! deterministic — the calendar swap preserves the `(at, seq)` total
//! order bit-for-bit (see `tests/calendar_equiv.rs`).

use crate::calendar::CalendarQueue;
use crate::profile::{Bucket, ProfileRow, SimProfile};
use crate::time::{SimDuration, SimTime};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Events dispatched by every [`Sim`] in this process, across threads.
/// Feeds the events/sec figures of the benchmark harness; per-instance
/// counts are on [`Sim::events_processed`].
static GLOBAL_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Batch size for publishing locally-counted events to [`GLOBAL_EVENTS`].
/// A relaxed `fetch_add` per dispatched event was measurable contention
/// when sweep workers run concurrently; each thread now accumulates into
/// a plain `Cell` and publishes in batches (plus a flush at every run-loop
/// exit, `Sim` drop, and [`global_events`] read, so same-thread readers
/// always observe exact totals).
const GLOBAL_FLUSH_BATCH: u64 = 1024;

thread_local! {
    /// Events dispatched by [`Sim`] instances on *this* thread. The
    /// global counter is cross-polluted when sweep workers run
    /// concurrently; per-thread deltas isolate each worker's share.
    /// Always exact — never batched.
    static THREAD_EVENTS: Cell<u64> = const { Cell::new(0) };
    /// Events counted on this thread but not yet published to
    /// [`GLOBAL_EVENTS`].
    static GLOBAL_PENDING: Cell<u64> = const { Cell::new(0) };
}

/// Count one dispatched event on the calling thread.
#[inline]
fn count_event() {
    THREAD_EVENTS.with(|c| c.set(c.get() + 1));
    GLOBAL_PENDING.with(|c| {
        let n = c.get() + 1;
        if n >= GLOBAL_FLUSH_BATCH {
            GLOBAL_EVENTS.fetch_add(n, Ordering::Relaxed);
            c.set(0);
        } else {
            c.set(n);
        }
    });
}

/// Publish this thread's pending event count to the global counter.
/// Called automatically at run-loop exits and by [`global_events`]; only
/// needed directly when reading [`global_events`] from a *different*
/// thread while this one is mid-run.
pub fn flush_thread_events() {
    GLOBAL_PENDING.with(|c| {
        let n = c.get();
        if n > 0 {
            GLOBAL_EVENTS.fetch_add(n, Ordering::Relaxed);
            c.set(0);
        }
    });
}

/// Total events dispatched process-wide since start. Monotone; take a
/// delta around a region to measure its event throughput. Flushes the
/// calling thread's pending batch first, so single-threaded deltas are
/// exact; counts from other still-running threads may lag by up to one
/// batch until their run loops exit.
pub fn global_events() -> u64 {
    flush_thread_events();
    GLOBAL_EVENTS.load(Ordering::Relaxed)
}

/// Total events dispatched on the calling thread since it started.
/// Monotone and exact (never batched); take a delta around a region to
/// attribute events to one sweep worker without interference from its
/// siblings.
pub fn thread_events() -> u64 {
    THREAD_EVENTS.with(|c| c.get())
}

/// Index of an actor registered with a [`Sim`].
pub type ActorId = usize;

/// A simulation participant. Actors receive the events addressed to them,
/// mutate their own state, and schedule new events through the [`Ctx`].
pub trait Actor<M> {
    /// Deliver one event.
    fn on_event(&mut self, ev: M, ctx: &mut Ctx<'_, M>);
    /// Human-readable name used in panics and traces.
    fn name(&self) -> &str {
        "actor"
    }
    /// Optional downcast hook so assemblies can read concrete actor state
    /// back after a run.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
    /// Mutable counterpart of [`Actor::as_any`] so assemblies can re-wire
    /// actor state (e.g. peers) after registration.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Compatibility shim: a boxed actor (including `Box<dyn Actor<M>>`) is
/// itself an actor, forwarding through the pointer. This is what lets
/// `Sim<M>` default to boxed dynamic dispatch while assemblies register
/// concrete enum variants for static dispatch.
impl<M, T: Actor<M> + ?Sized> Actor<M> for Box<T> {
    fn on_event(&mut self, ev: M, ctx: &mut Ctx<'_, M>) {
        (**self).on_event(ev, ctx)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
}

/// The registry of actors in a [`Sim`]: a slab of slots indexed by
/// [`ActorId`]. During dispatch the target actor is checked out of its
/// slot so it can borrow the calendar through [`Ctx`] without aliasing
/// itself.
pub struct ActorSlab<A> {
    slots: Vec<Option<A>>,
}

impl<A> Default for ActorSlab<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A> ActorSlab<A> {
    /// An empty slab.
    pub fn new() -> Self {
        ActorSlab { slots: Vec::new() }
    }

    /// Register an actor, returning its id.
    pub fn insert(&mut self, actor: A) -> ActorId {
        let id = self.slots.len();
        self.slots.push(Some(actor));
        id
    }

    /// Number of registered actors (including any checked out).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no actors are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Borrow the actor in slot `id`; `None` if out of range or checked
    /// out.
    pub fn get(&self, id: ActorId) -> Option<&A> {
        self.slots.get(id).and_then(|s| s.as_ref())
    }

    /// Mutable counterpart of [`ActorSlab::get`].
    pub fn get_mut(&mut self, id: ActorId) -> Option<&mut A> {
        self.slots.get_mut(id).and_then(|s| s.as_mut())
    }

    fn take(&mut self, id: ActorId) -> Option<A> {
        self.slots.get_mut(id).and_then(|s| s.take())
    }

    fn put(&mut self, id: ActorId, actor: A) {
        self.slots[id] = Some(actor);
    }
}

/// Scheduling context handed to an actor during dispatch.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ActorId,
    seq: &'a mut u64,
    queue: &'a mut CalendarQueue<M>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently being dispatched.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedule `msg` for actor `to`, `delay` from now.
    pub fn send(&mut self, to: ActorId, delay: SimDuration, msg: M) {
        self.send_at(to, self.now + delay, msg);
    }

    /// Schedule `msg` for actor `to` at absolute time `at` (must be ≥ now).
    pub fn send_at(&mut self, to: ActorId, at: SimTime, msg: M) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(at, seq, to, msg);
    }

    /// Schedule `msg` back to the current actor, `delay` from now.
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        self.send(self.self_id, delay, msg);
    }
}

/// Passive per-run profiler state. Attached with
/// [`Sim::attach_profiler`]; reads the event stream, never touches the
/// calendar, so scheduling is bit-identical with it on or off.
struct Profiler<M> {
    /// Maps an event to its kind label. A plain fn pointer: no capture,
    /// no allocation per event.
    classify: fn(&M) -> &'static str,
    /// `now` at attach time — the profile spans attach → extraction.
    start: SimTime,
    /// Picoseconds idled forward by `run_until` on a drained calendar.
    idle_ps: u64,
    /// Buckets indexed by [`ActorId`], keyed by event kind.
    buckets: Vec<BTreeMap<&'static str, Bucket>>,
}

/// The simulation: an [`ActorSlab`] plus a pooled [`CalendarQueue`].
///
/// `A` is the registered actor type. The default, `Box<dyn Actor<M>>`,
/// gives the classic open-world dynamic dispatch; assemblies that know
/// their full actor set (the APEnet+ cluster, the IB model) register a
/// concrete enum instead and every dispatch is a direct match.
pub struct Sim<M, A: Actor<M> = Box<dyn Actor<M>>> {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<M>,
    actors: ActorSlab<A>,
    events_processed: u64,
    profiler: Option<Profiler<M>>,
    /// Hard cap on processed events; exceeding it panics (runaway guard).
    pub max_events: u64,
}

impl<M, A: Actor<M>> Default for Sim<M, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, A: Actor<M>> Drop for Sim<M, A> {
    fn drop(&mut self) {
        // A sweep worker's results are read after its sims are gone;
        // publish any batched counts so cross-thread totals converge.
        flush_thread_events();
    }
}

impl<M, A: Actor<M>> Sim<M, A> {
    /// Create an empty simulation at t = 0.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            actors: ActorSlab::new(),
            events_processed: 0,
            profiler: None,
            max_events: u64::MAX,
        }
    }

    /// Register an actor, returning its id.
    pub fn add_actor(&mut self, actor: A) -> ActorId {
        self.actors.insert(actor)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending in the calendar.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Time of the next calendar entry, if any. External dispatch loops
    /// (e.g. the occupancy sampler) use this to fire read-only probes
    /// *between* events without ever touching the calendar — no seq
    /// numbers are consumed and `run()`-style draining still terminates.
    pub fn peek_next_at(&self) -> Option<SimTime> {
        self.queue.peek_at_ref()
    }

    /// Attach the passive sim-time profiler. From this point every
    /// dispatched event is attributed: the simulated-time gap it ends
    /// (to its target actor and kind), plus wall-clock time spent in
    /// `on_event`. Purely observational — the calendar, seq numbers and
    /// event order are untouched, so a profiled run is bit-identical to
    /// an unprofiled one.
    pub fn attach_profiler(&mut self, classify: fn(&M) -> &'static str) {
        self.profiler = Some(Profiler {
            classify,
            start: self.now,
            idle_ps: 0,
            buckets: Vec::new(),
        });
    }

    /// Detach the profiler and fold its buckets into a [`SimProfile`]
    /// whose rows aggregate by (actor name, kind). Returns `None` when
    /// no profiler was attached.
    pub fn take_profile(&mut self) -> Option<SimProfile> {
        let p = self.profiler.take()?;
        let mut rows: BTreeMap<(String, &'static str), Bucket> = BTreeMap::new();
        for (id, kinds) in p.buckets.iter().enumerate() {
            let name = self
                .actors
                .get(id)
                .map_or_else(|| format!("actor#{id}"), |a| a.name().to_string());
            for (kind, b) in kinds {
                let row = rows.entry((name.clone(), kind)).or_default();
                row.events += b.events;
                row.sim_ps += b.sim_ps;
                row.wall_ns += b.wall_ns;
            }
        }
        Some(SimProfile {
            rows: rows
                .into_iter()
                .map(|((component, kind), bucket)| ProfileRow {
                    component,
                    kind,
                    bucket,
                })
                .collect(),
            idle_ps: p.idle_ps,
            span_ps: self.now.as_ps() - p.start.as_ps(),
        })
    }

    /// Inject an event from outside the simulation (e.g. test setup).
    pub fn send(&mut self, to: ActorId, at: SimTime, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, to, msg);
    }

    /// Borrow a registered actor (e.g. to read results after a run).
    ///
    /// Panics if the actor is currently being dispatched.
    pub fn actor(&self, id: ActorId) -> &A {
        self.actors.get(id).expect("actor checked out")
    }

    /// Mutably borrow a registered actor.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        self.actors.get_mut(id).expect("actor checked out")
    }

    /// Dispatch the next event, if any. Returns `false` when the calendar is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "calendar went backwards");
        // Attribute the simulated-time gap this event ends, before the
        // clock advances; the per-step gaps telescope to the exact span.
        let profiled = self.profiler.as_mut().map(|p| {
            let kind = (p.classify)(&ev.msg);
            let gap_ps = ev.at.as_ps() - self.now.as_ps();
            (kind, gap_ps, std::time::Instant::now())
        });
        self.now = ev.at;
        self.events_processed += 1;
        count_event();
        assert!(
            self.events_processed <= self.max_events,
            "simulation exceeded max_events = {} (runaway?)",
            self.max_events
        );
        // Check the actor out of the slab so it can borrow the queue through
        // Ctx without aliasing itself.
        let mut actor = self
            .actors
            .take(ev.to)
            .unwrap_or_else(|| panic!("event for missing actor #{}", ev.to));
        let mut ctx = Ctx {
            now: self.now,
            self_id: ev.to,
            seq: &mut self.seq,
            queue: &mut self.queue,
        };
        actor.on_event(ev.msg, &mut ctx);
        self.actors.put(ev.to, actor);
        if let Some((kind, gap_ps, t0)) = profiled {
            let p = self.profiler.as_mut().expect("profiler still attached");
            if p.buckets.len() <= ev.to {
                p.buckets.resize_with(ev.to + 1, BTreeMap::new);
            }
            let b = p.buckets[ev.to].entry(kind).or_default();
            b.events += 1;
            b.sim_ps += gap_ps;
            b.wall_ns += t0.elapsed().as_nanos() as u64;
        }
        true
    }

    /// Run until the calendar is empty. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        flush_thread_events();
        self.now
    }

    /// Run until the calendar is empty or the next event would be after
    /// `deadline`; the clock never advances past `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(head_at) = self.queue.peek_at() {
            if head_at > deadline {
                if let Some(p) = self.profiler.as_mut() {
                    p.idle_ps += deadline.as_ps().saturating_sub(self.now.as_ps());
                }
                self.now = deadline;
                flush_thread_events();
                return self.now;
            }
            self.step();
        }
        // Calendar drained before the deadline: idle forward to it, so
        // repeated run_until calls observe monotone time.
        if let Some(p) = self.profiler.as_mut() {
            p.idle_ps += deadline.as_ps().saturating_sub(self.now.as_ps());
        }
        self.now = self.now.max(deadline);
        flush_thread_events();
        self.now
    }

    /// Run while `pred` (called on the sim before each step) returns true
    /// and events remain.
    pub fn run_while(&mut self, mut pred: impl FnMut(&Sim<M, A>) -> bool) -> SimTime {
        while pred(self) && self.step() {}
        flush_thread_events();
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, PartialEq, Clone)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Recorder {
        log: Rc<RefCell<Vec<(u64, Msg)>>>,
        peer: Option<ActorId>,
    }

    impl Actor<Msg> for Recorder {
        fn on_event(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            self.log.borrow_mut().push((ctx.now().as_ps(), ev.clone()));
            if let Msg::Ping(n) = &ev {
                if let (Some(peer), true) = (self.peer, *n > 0) {
                    ctx.send(peer, SimDuration::from_ns(10), Msg::Ping(n - 1));
                }
                ctx.send_self(SimDuration::from_ns(1), Msg::Pong(*n));
            }
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: None,
        }));
        let b = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: Some(a),
        }));
        // Wire a's peer now that b exists, via the downcast hook.
        sim.actor_mut(a)
            .as_any_mut()
            .and_then(|x| x.downcast_mut::<Recorder>())
            .expect("recorder at a")
            .peer = Some(b);
        sim.send(b, SimTime::ZERO, Msg::Ping(2));
        sim.run();
        let log = log.borrow();
        // b: Ping(2) @0, Pong(2) @1ns; a: Ping(1) @10ns, Pong(1) @11ns;
        // b again: Ping(0) @20ns (n == 0, no forward), Pong(0) @21ns.
        assert_eq!(log[0], (0, Msg::Ping(2)));
        assert_eq!(log[1], (1_000, Msg::Pong(2)));
        assert_eq!(log[2], (10_000, Msg::Ping(1)));
        assert_eq!(log[3], (11_000, Msg::Pong(1)));
        assert_eq!(log[4], (20_000, Msg::Ping(0)));
        assert_eq!(log[5], (21_000, Msg::Pong(0)));
        assert_eq!(log.len(), 6, "ping bounced a → b and stopped at 0");
    }

    #[test]
    fn same_time_events_fifo() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: None,
        }));
        for i in 0..16 {
            sim.send(a, SimTime::from_ps(42), Msg::Pong(i));
        }
        sim.run();
        let seen: Vec<u32> = log
            .borrow()
            .iter()
            .map(|(_, m)| match m {
                Msg::Pong(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seen, (0..16).collect::<Vec<_>>(), "FIFO at equal times");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: None,
        }));
        sim.send(a, SimTime::from_ps(100), Msg::Pong(0));
        sim.send(a, SimTime::from_ps(200), Msg::Pong(1));
        sim.run_until(SimTime::from_ps(150));
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(sim.now(), SimTime::from_ps(150));
        sim.run();
        assert_eq!(log.borrow().len(), 2);
        assert_eq!(sim.now(), SimTime::from_ps(200));
    }

    #[test]
    fn run_until_advances_to_deadline_when_drained() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: None,
        }));
        sim.send(a, SimTime::from_ps(100), Msg::Pong(0));
        // The calendar drains at t = 100 ps, well before the deadline; the
        // clock must still idle forward to the deadline.
        let end = sim.run_until(SimTime::from_ps(5_000));
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(end, SimTime::from_ps(5_000));
        assert_eq!(sim.now(), SimTime::from_ps(5_000));
        // And never move backwards on an already-passed deadline.
        let end = sim.run_until(SimTime::from_ps(1_000));
        assert_eq!(end, SimTime::from_ps(5_000));
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn runaway_guard_fires() {
        struct Looper;
        impl Actor<Msg> for Looper {
            fn on_event(&mut self, _ev: Msg, ctx: &mut Ctx<'_, Msg>) {
                ctx.send_self(SimDuration::from_ps(1), Msg::Ping(0));
            }
        }
        let mut sim = Sim::new();
        sim.max_events = 100;
        let a = sim.add_actor(Box::new(Looper));
        sim.send(a, SimTime::ZERO, Msg::Ping(0));
        sim.run();
    }

    #[test]
    fn events_processed_counts() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder { log, peer: None }));
        for i in 0..5 {
            sim.send(a, SimTime::from_ps(i), Msg::Pong(i as u32));
        }
        sim.run();
        assert_eq!(sim.events_processed(), 5);
        assert_eq!(sim.pending(), 0);
    }

    /// A statically-dispatched rig: the slab holds a concrete enum, no
    /// boxing anywhere.
    #[test]
    fn enum_actor_slab_dispatches_statically() {
        enum Rig {
            Counter(u32),
            Forwarder { to: ActorId },
        }
        impl Actor<u32> for Rig {
            fn on_event(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
                match self {
                    Rig::Counter(n) => *n += ev,
                    Rig::Forwarder { to } => ctx.send(*to, SimDuration::from_ns(1), ev),
                }
            }
            fn name(&self) -> &str {
                match self {
                    Rig::Counter(_) => "counter",
                    Rig::Forwarder { .. } => "forwarder",
                }
            }
        }
        let mut sim: Sim<u32, Rig> = Sim::new();
        let counter = sim.add_actor(Rig::Counter(0));
        let fwd = sim.add_actor(Rig::Forwarder { to: counter });
        for i in 1..=4 {
            sim.send(fwd, SimTime::ZERO, i);
        }
        sim.run();
        match sim.actor(counter) {
            Rig::Counter(n) => assert_eq!(*n, 10),
            _ => panic!("wrong actor in slot"),
        }
        assert_eq!(sim.events_processed(), 8, "4 forwards + 4 deliveries");
    }

    #[test]
    fn thread_and_global_counters_advance() {
        let t0 = thread_events();
        let g0 = global_events();
        let mut sim: Sim<u32> = Sim::new();
        struct Sink;
        impl Actor<u32> for Sink {
            fn on_event(&mut self, _ev: u32, _ctx: &mut Ctx<'_, u32>) {}
        }
        let a = sim.add_actor(Box::new(Sink));
        for i in 0..10 {
            sim.send(a, SimTime::from_ps(i), 0);
        }
        sim.run();
        assert_eq!(thread_events() - t0, 10);
        // global_events flushes this thread's batch, so the delta is
        // exact even though 10 < GLOBAL_FLUSH_BATCH.
        assert!(global_events() - g0 >= 10);
    }
}
