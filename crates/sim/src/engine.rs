//! The discrete-event engine: actors, calendar, dispatch loop.
//!
//! The engine is generic over the message type `M`, so each assembly (the
//! APEnet+ cluster, the InfiniBand cluster, unit-test rigs) defines its own
//! closed event enum. Events scheduled for the same instant are delivered in
//! FIFO order of scheduling (a monotonically increasing sequence number
//! breaks heap ties), which makes every run fully deterministic.

use crate::profile::{Bucket, ProfileRow, SimProfile};
use crate::time::{SimDuration, SimTime};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Events dispatched by every [`Sim`] in this process, across threads.
/// Feeds the events/sec figures of the benchmark harness; per-instance
/// counts are on [`Sim::events_processed`].
static GLOBAL_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Events dispatched by [`Sim`] instances on *this* thread. The
    /// global counter is cross-polluted when sweep workers run
    /// concurrently; per-thread deltas isolate each worker's share.
    static THREAD_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Total events dispatched process-wide since start. Monotone; take a
/// delta around a region to measure its event throughput.
pub fn global_events() -> u64 {
    GLOBAL_EVENTS.load(Ordering::Relaxed)
}

/// Total events dispatched on the calling thread since it started.
/// Monotone; take a delta around a region to attribute events to one
/// sweep worker without interference from its siblings.
pub fn thread_events() -> u64 {
    THREAD_EVENTS.with(|c| c.get())
}

/// Index of an actor registered with a [`Sim`].
pub type ActorId = usize;

/// A simulation participant. Actors receive the events addressed to them,
/// mutate their own state, and schedule new events through the [`Ctx`].
pub trait Actor<M> {
    /// Deliver one event.
    fn on_event(&mut self, ev: M, ctx: &mut Ctx<'_, M>);
    /// Human-readable name used in panics and traces.
    fn name(&self) -> &str {
        "actor"
    }
    /// Optional downcast hook so assemblies can read concrete actor state
    /// back after a run.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
    /// Mutable counterpart of [`Actor::as_any`] so assemblies can re-wire
    /// actor state (e.g. peers) after registration.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    to: ActorId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Scheduling context handed to an actor during dispatch.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ActorId,
    seq: &'a mut u64,
    queue: &'a mut BinaryHeap<Reverse<Scheduled<M>>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently being dispatched.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedule `msg` for actor `to`, `delay` from now.
    pub fn send(&mut self, to: ActorId, delay: SimDuration, msg: M) {
        self.send_at(to, self.now + delay, msg);
    }

    /// Schedule `msg` for actor `to` at absolute time `at` (must be ≥ now).
    pub fn send_at(&mut self, to: ActorId, at: SimTime, msg: M) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, to, msg }));
    }

    /// Schedule `msg` back to the current actor, `delay` from now.
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        self.send(self.self_id, delay, msg);
    }
}

/// Passive per-run profiler state. Attached with
/// [`Sim::attach_profiler`]; reads the event stream, never touches the
/// calendar, so scheduling is bit-identical with it on or off.
struct Profiler<M> {
    /// Maps an event to its kind label. A plain fn pointer: no capture,
    /// no allocation per event.
    classify: fn(&M) -> &'static str,
    /// `now` at attach time — the profile spans attach → extraction.
    start: SimTime,
    /// Picoseconds idled forward by `run_until` on a drained calendar.
    idle_ps: u64,
    /// Buckets indexed by [`ActorId`], keyed by event kind.
    buckets: Vec<BTreeMap<&'static str, Bucket>>,
}

/// The simulation: an actor slab plus an event calendar.
pub struct Sim<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    events_processed: u64,
    profiler: Option<Profiler<M>>,
    /// Hard cap on processed events; exceeding it panics (runaway guard).
    pub max_events: u64,
}

impl<M> Default for Sim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Sim<M> {
    /// Create an empty simulation at t = 0.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            actors: Vec::new(),
            events_processed: 0,
            profiler: None,
            max_events: u64::MAX,
        }
    }

    /// Register an actor, returning its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = self.actors.len();
        self.actors.push(Some(actor));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending in the calendar.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Time of the next calendar entry, if any. External dispatch loops
    /// (e.g. the occupancy sampler) use this to fire read-only probes
    /// *between* events without ever touching the calendar — no seq
    /// numbers are consumed and `run()`-style draining still terminates.
    pub fn peek_next_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Attach the passive sim-time profiler. From this point every
    /// dispatched event is attributed: the simulated-time gap it ends
    /// (to its target actor and kind), plus wall-clock time spent in
    /// `on_event`. Purely observational — the calendar, seq numbers and
    /// event order are untouched, so a profiled run is bit-identical to
    /// an unprofiled one.
    pub fn attach_profiler(&mut self, classify: fn(&M) -> &'static str) {
        self.profiler = Some(Profiler {
            classify,
            start: self.now,
            idle_ps: 0,
            buckets: Vec::new(),
        });
    }

    /// Detach the profiler and fold its buckets into a [`SimProfile`]
    /// whose rows aggregate by (actor name, kind). Returns `None` when
    /// no profiler was attached.
    pub fn take_profile(&mut self) -> Option<SimProfile> {
        let p = self.profiler.take()?;
        let mut rows: BTreeMap<(String, &'static str), Bucket> = BTreeMap::new();
        for (id, kinds) in p.buckets.iter().enumerate() {
            let name = self
                .actors
                .get(id)
                .and_then(|a| a.as_deref())
                .map_or_else(|| format!("actor#{id}"), |a| a.name().to_string());
            for (kind, b) in kinds {
                let row = rows.entry((name.clone(), kind)).or_default();
                row.events += b.events;
                row.sim_ps += b.sim_ps;
                row.wall_ns += b.wall_ns;
            }
        }
        Some(SimProfile {
            rows: rows
                .into_iter()
                .map(|((component, kind), bucket)| ProfileRow {
                    component,
                    kind,
                    bucket,
                })
                .collect(),
            idle_ps: p.idle_ps,
            span_ps: self.now.as_ps() - p.start.as_ps(),
        })
    }

    /// Inject an event from outside the simulation (e.g. test setup).
    pub fn send(&mut self, to: ActorId, at: SimTime, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, to, msg }));
    }

    /// Borrow a registered actor (e.g. to read results after a run).
    ///
    /// Panics if the actor is currently being dispatched.
    pub fn actor(&self, id: ActorId) -> &dyn Actor<M> {
        self.actors[id].as_deref().expect("actor checked out")
    }

    /// Mutably borrow a registered actor.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut (dyn Actor<M> + 'static) {
        self.actors[id].as_deref_mut().expect("actor checked out")
    }

    /// Dispatch the next event, if any. Returns `false` when the calendar is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "calendar went backwards");
        // Attribute the simulated-time gap this event ends, before the
        // clock advances; the per-step gaps telescope to the exact span.
        let profiled = self.profiler.as_mut().map(|p| {
            let kind = (p.classify)(&ev.msg);
            let gap_ps = ev.at.as_ps() - self.now.as_ps();
            (kind, gap_ps, std::time::Instant::now())
        });
        self.now = ev.at;
        self.events_processed += 1;
        GLOBAL_EVENTS.fetch_add(1, Ordering::Relaxed);
        THREAD_EVENTS.with(|c| c.set(c.get() + 1));
        assert!(
            self.events_processed <= self.max_events,
            "simulation exceeded max_events = {} (runaway?)",
            self.max_events
        );
        // Check the actor out of the slab so it can borrow the queue through
        // Ctx without aliasing itself.
        let mut actor = self.actors[ev.to]
            .take()
            .unwrap_or_else(|| panic!("event for missing actor #{}", ev.to));
        let mut ctx = Ctx {
            now: self.now,
            self_id: ev.to,
            seq: &mut self.seq,
            queue: &mut self.queue,
        };
        actor.on_event(ev.msg, &mut ctx);
        self.actors[ev.to] = Some(actor);
        if let Some((kind, gap_ps, t0)) = profiled {
            let p = self.profiler.as_mut().expect("profiler still attached");
            if p.buckets.len() <= ev.to {
                p.buckets.resize_with(ev.to + 1, BTreeMap::new);
            }
            let b = p.buckets[ev.to].entry(kind).or_default();
            b.events += 1;
            b.sim_ps += gap_ps;
            b.wall_ns += t0.elapsed().as_nanos() as u64;
        }
        true
    }

    /// Run until the calendar is empty. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the calendar is empty or the next event would be after
    /// `deadline`; the clock never advances past `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                if let Some(p) = self.profiler.as_mut() {
                    p.idle_ps += deadline.as_ps().saturating_sub(self.now.as_ps());
                }
                self.now = deadline;
                return self.now;
            }
            self.step();
        }
        // Calendar drained before the deadline: idle forward to it, so
        // repeated run_until calls observe monotone time.
        if let Some(p) = self.profiler.as_mut() {
            p.idle_ps += deadline.as_ps().saturating_sub(self.now.as_ps());
        }
        self.now = self.now.max(deadline);
        self.now
    }

    /// Run while `pred` (called on the sim before each step) returns true
    /// and events remain.
    pub fn run_while(&mut self, mut pred: impl FnMut(&Sim<M>) -> bool) -> SimTime {
        while pred(self) && self.step() {}
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, PartialEq, Clone)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Recorder {
        log: Rc<RefCell<Vec<(u64, Msg)>>>,
        peer: Option<ActorId>,
    }

    impl Actor<Msg> for Recorder {
        fn on_event(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            self.log.borrow_mut().push((ctx.now().as_ps(), ev.clone()));
            if let Msg::Ping(n) = &ev {
                if let (Some(peer), true) = (self.peer, *n > 0) {
                    ctx.send(peer, SimDuration::from_ns(10), Msg::Ping(n - 1));
                }
                ctx.send_self(SimDuration::from_ns(1), Msg::Pong(*n));
            }
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: None,
        }));
        let b = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: Some(a),
        }));
        // Wire a's peer now that b exists, via the downcast hook.
        sim.actor_mut(a)
            .as_any_mut()
            .and_then(|x| x.downcast_mut::<Recorder>())
            .expect("recorder at a")
            .peer = Some(b);
        sim.send(b, SimTime::ZERO, Msg::Ping(2));
        sim.run();
        let log = log.borrow();
        // b: Ping(2) @0, Pong(2) @1ns; a: Ping(1) @10ns, Pong(1) @11ns;
        // b again: Ping(0) @20ns (n == 0, no forward), Pong(0) @21ns.
        assert_eq!(log[0], (0, Msg::Ping(2)));
        assert_eq!(log[1], (1_000, Msg::Pong(2)));
        assert_eq!(log[2], (10_000, Msg::Ping(1)));
        assert_eq!(log[3], (11_000, Msg::Pong(1)));
        assert_eq!(log[4], (20_000, Msg::Ping(0)));
        assert_eq!(log[5], (21_000, Msg::Pong(0)));
        assert_eq!(log.len(), 6, "ping bounced a → b and stopped at 0");
    }

    #[test]
    fn same_time_events_fifo() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: None,
        }));
        for i in 0..16 {
            sim.send(a, SimTime::from_ps(42), Msg::Pong(i));
        }
        sim.run();
        let seen: Vec<u32> = log
            .borrow()
            .iter()
            .map(|(_, m)| match m {
                Msg::Pong(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seen, (0..16).collect::<Vec<_>>(), "FIFO at equal times");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: None,
        }));
        sim.send(a, SimTime::from_ps(100), Msg::Pong(0));
        sim.send(a, SimTime::from_ps(200), Msg::Pong(1));
        sim.run_until(SimTime::from_ps(150));
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(sim.now(), SimTime::from_ps(150));
        sim.run();
        assert_eq!(log.borrow().len(), 2);
        assert_eq!(sim.now(), SimTime::from_ps(200));
    }

    #[test]
    fn run_until_advances_to_deadline_when_drained() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder {
            log: log.clone(),
            peer: None,
        }));
        sim.send(a, SimTime::from_ps(100), Msg::Pong(0));
        // The calendar drains at t = 100 ps, well before the deadline; the
        // clock must still idle forward to the deadline.
        let end = sim.run_until(SimTime::from_ps(5_000));
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(end, SimTime::from_ps(5_000));
        assert_eq!(sim.now(), SimTime::from_ps(5_000));
        // And never move backwards on an already-passed deadline.
        let end = sim.run_until(SimTime::from_ps(1_000));
        assert_eq!(end, SimTime::from_ps(5_000));
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn runaway_guard_fires() {
        struct Looper;
        impl Actor<Msg> for Looper {
            fn on_event(&mut self, _ev: Msg, ctx: &mut Ctx<'_, Msg>) {
                ctx.send_self(SimDuration::from_ps(1), Msg::Ping(0));
            }
        }
        let mut sim = Sim::new();
        sim.max_events = 100;
        let a = sim.add_actor(Box::new(Looper));
        sim.send(a, SimTime::ZERO, Msg::Ping(0));
        sim.run();
    }

    #[test]
    fn events_processed_counts() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let a = sim.add_actor(Box::new(Recorder { log, peer: None }));
        for i in 0..5 {
            sim.send(a, SimTime::from_ps(i), Msg::Pong(i as u32));
        }
        sim.run();
        assert_eq!(sim.events_processed(), 5);
        assert_eq!(sim.pending(), 0);
    }
}
