//! A small deterministic property-testing loop.
//!
//! Stand-in for `proptest` in the offline build: each property runs a
//! fixed number of cases, every case drawing its inputs from a [`Gen`]
//! seeded as `splitmix(base_seed + case_index)`. There is no shrinking;
//! on failure the harness reports the property name, case index and the
//! per-case seed so the failing case can be replayed exactly with
//! `APENET_PROP_SEED=<seed> APENET_PROP_CASES=1`.
//!
//! ```
//! apenet_sim::check::cases("addition commutes", 64, |g| {
//!     let a = g.u64(0, 1 << 32);
//!     let b = g.u64(0, 1 << 32);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::Xoshiro256ss;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default base seed for case generation. Fixed so test runs are
/// reproducible across machines; override with `APENET_PROP_SEED`.
pub const DEFAULT_SEED: u64 = 0xA9E7_2013;

/// Default number of cases per property; override with
/// `APENET_PROP_CASES`.
pub const DEFAULT_CASES: u32 = 64;

/// A source of random test inputs for one case.
pub struct Gen {
    rng: Xoshiro256ss,
}

impl Gen {
    /// A generator seeded for one case.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: Xoshiro256ss::seed_from(seed),
        }
    }

    /// Uniform `u64` in the half-open range `[lo, hi)`. Panics if empty.
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.rng.next_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64(lo as u64, hi as u64) as u32
    }

    /// A uniformly random byte.
    pub fn byte(&mut self) -> u8 {
        (self.rng.next_u64() & 0xFF) as u8
    }

    /// A coin flip with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// A random byte vector with length in `[min_len, max_len]`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let n = self.usize(min_len, max_len + 1);
        (0..n).map(|_| self.byte()).collect()
    }

    /// A vector of `[min_len, max_len]` items drawn by `f`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(min_len, max_len + 1);
        (0..n).map(|_| f(self)).collect()
    }

    /// A uniformly random element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize(0, items.len())]
    }

    /// Raw access to the underlying stream for ad-hoc draws.
    pub fn rng(&mut self) -> &mut Xoshiro256ss {
        &mut self.rng
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Base seed for this process (`APENET_PROP_SEED` or [`DEFAULT_SEED`]).
pub fn base_seed() -> u64 {
    env_u64("APENET_PROP_SEED").unwrap_or(DEFAULT_SEED)
}

/// Case count for this process (`APENET_PROP_CASES` or [`DEFAULT_CASES`]).
pub fn case_count() -> u32 {
    env_u64("APENET_PROP_CASES")
        .map(|n| n as u32)
        .unwrap_or(DEFAULT_CASES)
}

/// Run `property` for `n` seeded cases (capped/overridden by
/// `APENET_PROP_CASES`). On panic, reports the property name, case index
/// and per-case seed, then re-raises the panic so the test fails.
pub fn cases(name: &str, n: u32, mut property: impl FnMut(&mut Gen)) {
    let n = env_u64("APENET_PROP_CASES").map(|v| v as u32).unwrap_or(n);
    let base = base_seed();
    for i in 0..n {
        let seed = base.wrapping_add(i as u64);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::new(seed);
            property(&mut g);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {i}/{n} (seed {seed}); \
                 replay with APENET_PROP_SEED={seed} APENET_PROP_CASES=1"
            );
            resume_unwind(payload);
        }
    }
}

/// [`cases`] with the default case count.
pub fn check(name: &str, property: impl FnMut(&mut Gen)) {
    cases(name, DEFAULT_CASES, property);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        cases("collect", 8, |g| first.push(g.u64(0, 1000)));
        let mut second: Vec<u64> = Vec::new();
        cases("collect again", 8, |g| second.push(g.u64(0, 1000)));
        assert_eq!(first, second);
        assert_eq!(first.len(), 8);
    }

    #[test]
    fn ranges_respected() {
        cases("ranges", 128, |g| {
            let v = g.u64(10, 20);
            assert!((10..20).contains(&v));
            let u = g.usize(0, 1);
            assert_eq!(u, 0);
            let b = g.bytes(3, 7);
            assert!((3..=7).contains(&b.len()));
            let item = *g.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&item));
        });
    }

    #[test]
    fn failure_is_reported_and_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            cases("always fails", 4, |_g| panic!("boom"));
        }));
        assert!(result.is_err(), "panic must propagate out of the case loop");
    }
}
