//! Exact bandwidth arithmetic.
//!
//! Rates are stored in bytes per second; transfer times are computed with
//! `u128` intermediates and ceiling division, so the simulation never loses
//! bytes to rounding and two transfers of `n` bytes always cost exactly the
//! same.

use crate::time::{SimDuration, PS_PER_S};
use std::fmt;

/// A data rate in bytes per second.
///
/// ```
/// use apenet_sim::Bandwidth;
///
/// // The Fermi P2P read cap from the paper's Fig. 3:
/// let bw = Bandwidth::from_mb_per_sec(1536);
/// let t = bw.time_for(1 << 20);
/// assert!((t.as_us_f64() - 682.7).abs() < 0.1); // ~683 us per MiB
/// // Measuring the transfer recovers the rate (ceil rounding costs <1 ppm):
/// let m = Bandwidth::measured(1 << 20, t);
/// assert!(bw.bytes_per_sec() - m.bytes_per_sec() < 1000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Construct from bytes per second.
    pub const fn from_bytes_per_sec(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Construct from megabytes (1e6 bytes) per second — the unit the
    /// paper's figures use.
    pub const fn from_mb_per_sec(mb: u64) -> Self {
        Bandwidth(mb * 1_000_000)
    }

    /// Construct from gigabytes (1e9 bytes) per second.
    pub const fn from_gb_per_sec(gb: u64) -> Self {
        Bandwidth(gb * 1_000_000_000)
    }

    /// Construct from a link signalling rate in gigabits per second
    /// (1e9 bits), e.g. the APEnet+ "28 Gbps" torus links.
    pub const fn from_gbit_per_sec(gbit: u64) -> Self {
        Bandwidth(gbit * 1_000_000_000 / 8)
    }

    /// Raw bytes per second.
    pub const fn bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Megabytes (1e6) per second as float — for reporting.
    pub fn mb_per_sec_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Exact time to move `bytes` at this rate (ceiling; ≥ 1 ps for any
    /// non-zero transfer so events always make progress).
    pub fn time_for(self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        assert!(self.0 > 0, "transfer over a zero-bandwidth link");
        let ps = (bytes as u128 * PS_PER_S as u128).div_ceil(self.0 as u128);
        SimDuration::from_ps(ps.try_into().expect("transfer time overflow"))
    }

    /// The measured rate implied by moving `bytes` in `elapsed`.
    pub fn measured(bytes: u64, elapsed: SimDuration) -> Bandwidth {
        if elapsed == SimDuration::ZERO {
            return Bandwidth(u64::MAX);
        }
        let bps = bytes as u128 * PS_PER_S as u128 / elapsed.as_ps() as u128;
        Bandwidth(bps.try_into().unwrap_or(u64::MAX))
    }

    /// Scale the rate by `num/den` (e.g. ECC de-rating).
    pub const fn scaled(self, num: u64, den: u64) -> Bandwidth {
        Bandwidth(self.0 * num / den)
    }

    /// The smaller of two rates (bottleneck composition).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}MB/s", self.mb_per_sec_f64())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}GB/s", self.0 as f64 / 1e9)
        } else {
            write!(f, "{:.1}MB/s", self.mb_per_sec_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(Bandwidth::from_mb_per_sec(1).bytes_per_sec(), 1_000_000);
        assert_eq!(Bandwidth::from_gb_per_sec(4).bytes_per_sec(), 4_000_000_000);
        // 28 Gbps torus link = 3.5 GB/s of raw symbols
        assert_eq!(
            Bandwidth::from_gbit_per_sec(28).bytes_per_sec(),
            3_500_000_000
        );
    }

    #[test]
    fn time_for_exact() {
        let bw = Bandwidth::from_gb_per_sec(1); // 1 byte per ns
        assert_eq!(bw.time_for(1), SimDuration::from_ns(1));
        assert_eq!(bw.time_for(4096), SimDuration::from_ns(4096));
        assert_eq!(bw.time_for(0), SimDuration::ZERO);
    }

    #[test]
    fn time_for_rounds_up() {
        let bw = Bandwidth::from_bytes_per_sec(3); // 1 byte each ~333.33.. ns
        let t = bw.time_for(1);
        assert_eq!(t.as_ps(), 333_333_333_334); // ceil(1e12/3)
    }

    #[test]
    fn measured_inverts_time_for() {
        let bw = Bandwidth::from_mb_per_sec(1536); // Fermi P2P read cap
        let t = bw.time_for(1 << 20);
        let m = Bandwidth::measured(1 << 20, t);
        let rel = (m.bytes_per_sec() as f64 - bw.bytes_per_sec() as f64).abs()
            / bw.bytes_per_sec() as f64;
        assert!(rel < 1e-6, "measured {m} vs {bw}");
    }

    #[test]
    fn bottleneck_min() {
        let a = Bandwidth::from_mb_per_sec(1500);
        let b = Bandwidth::from_mb_per_sec(2400);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn scaled_derating() {
        let k20 = Bandwidth::from_mb_per_sec(1600);
        assert_eq!(k20.scaled(9, 10).bytes_per_sec(), 1_440_000_000);
    }
}
