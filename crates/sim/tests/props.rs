//! Property tests for the simulation primitives.

use apenet_sim::check;
use apenet_sim::rng::Xoshiro256ss;
use apenet_sim::{Bandwidth, ByteFifo, SimDuration, SimTime};

/// Transfer-time arithmetic: time is exact enough that measuring the
/// implied rate recovers the configured rate within 1 ppm.
#[test]
fn bandwidth_roundtrip() {
    check::check("bandwidth_roundtrip", |g| {
        let rate_mb = g.u64(1, 10_000);
        let bytes = g.u64(1, 1 << 30);
        let bw = Bandwidth::from_mb_per_sec(rate_mb);
        let t = bw.time_for(bytes);
        assert!(t > SimDuration::ZERO);
        let m = Bandwidth::measured(bytes, t);
        let rel = (m.bytes_per_sec() as f64 - bw.bytes_per_sec() as f64).abs()
            / bw.bytes_per_sec() as f64;
        assert!(rel < 1e-6, "rel error {rel}");
    });
}

/// Transfer time is monotone and superadditive-exact in byte count.
#[test]
fn bandwidth_monotone() {
    check::check("bandwidth_monotone", |g| {
        let bw = Bandwidth::from_mb_per_sec(g.u64(1, 10_000));
        let a = g.u64(0, 1 << 24);
        let b = g.u64(0, 1 << 24);
        assert!(bw.time_for(a + b) >= bw.time_for(a).max(bw.time_for(b)));
        // Ceil rounding can only add, never lose, time when splitting.
        assert!(bw.time_for(a) + bw.time_for(b) >= bw.time_for(a + b));
    });
}

/// The byte FIFO never exceeds capacity nor loses entries, for any
/// operation sequence.
#[test]
fn fifo_invariants() {
    check::check("fifo_invariants", |g| {
        let ops = g.vec_of(1, 200, |g| (g.u64(0, 9000), g.chance(0.5)));
        let mut fifo: ByteFifo<u64> = ByteFifo::with_default_watermark(32 * 1024);
        let mut model: std::collections::VecDeque<(u64, u64)> = Default::default();
        let mut next_id = 0u64;
        for (bytes, is_push) in ops {
            if is_push {
                match fifo.push(bytes, next_id) {
                    Ok(()) => {
                        model.push_back((bytes, next_id));
                    }
                    Err(id) => {
                        assert_eq!(id, next_id);
                        // Push may only fail when it genuinely does not fit.
                        let occupied: u64 = model.iter().map(|(b, _)| *b).sum();
                        assert!(occupied + bytes > 32 * 1024);
                    }
                }
                next_id += 1;
            } else {
                assert_eq!(fifo.pop(), model.pop_front());
            }
            let occupied: u64 = model.iter().map(|(b, _)| *b).sum();
            assert_eq!(fifo.occupied(), occupied);
            assert!(fifo.occupied() <= fifo.capacity());
            assert_eq!(fifo.len(), model.len());
        }
    });
}

/// RNG range helpers always stay in bounds.
#[test]
fn rng_bounds() {
    check::check("rng_bounds", |g| {
        let seed = g.u64(0, u64::MAX);
        let lo = g.u64(0, 1000);
        let span = g.u64(0, 1000);
        let mut r = Xoshiro256ss::seed_from(seed);
        let hi = lo + span;
        for _ in 0..64 {
            let x = r.range_u64(lo, hi);
            assert!((lo..=hi).contains(&x));
        }
    });
}

/// Time arithmetic is associative with durations.
#[test]
fn time_assoc() {
    check::check("time_assoc", |g| {
        let t = SimTime::from_ps(g.u64(0, 1 << 40));
        let d1 = SimDuration::from_ps(g.u64(0, 1 << 40));
        let d2 = SimDuration::from_ps(g.u64(0, 1 << 40));
        assert_eq!((t + d1) + d2, t + (d1 + d2));
        assert_eq!(((t + d1) + d2) - t, d1 + d2);
    });
}
