//! Property tests for the simulation primitives.

use apenet_sim::rng::Xoshiro256ss;
use apenet_sim::{Bandwidth, ByteFifo, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Transfer-time arithmetic: time is exact enough that measuring the
    /// implied rate recovers the configured rate within 1 ppm.
    #[test]
    fn bandwidth_roundtrip(rate_mb in 1u64..10_000, bytes in 1u64..(1 << 30)) {
        let bw = Bandwidth::from_mb_per_sec(rate_mb);
        let t = bw.time_for(bytes);
        prop_assert!(t > SimDuration::ZERO);
        let m = Bandwidth::measured(bytes, t);
        let rel = (m.bytes_per_sec() as f64 - bw.bytes_per_sec() as f64).abs()
            / bw.bytes_per_sec() as f64;
        prop_assert!(rel < 1e-6, "rel error {rel}");
    }

    /// Transfer time is monotone and superadditive-exact in byte count.
    #[test]
    fn bandwidth_monotone(rate_mb in 1u64..10_000, a in 0u64..(1 << 24), b in 0u64..(1 << 24)) {
        let bw = Bandwidth::from_mb_per_sec(rate_mb);
        prop_assert!(bw.time_for(a + b) >= bw.time_for(a).max(bw.time_for(b)));
        // Ceil rounding can only add, never lose, time when splitting.
        prop_assert!(bw.time_for(a) + bw.time_for(b) >= bw.time_for(a + b));
    }

    /// The byte FIFO never exceeds capacity nor loses entries, for any
    /// operation sequence.
    #[test]
    fn fifo_invariants(ops in prop::collection::vec((0u64..9000, prop::bool::ANY), 1..200)) {
        let mut fifo: ByteFifo<u64> = ByteFifo::with_default_watermark(32 * 1024);
        let mut model: std::collections::VecDeque<(u64, u64)> = Default::default();
        let mut next_id = 0u64;
        for (bytes, is_push) in ops {
            if is_push {
                match fifo.push(bytes, next_id) {
                    Ok(()) => {
                        model.push_back((bytes, next_id));
                    }
                    Err(id) => {
                        prop_assert_eq!(id, next_id);
                        // Push may only fail when it genuinely does not fit.
                        let occupied: u64 = model.iter().map(|(b, _)| *b).sum();
                        prop_assert!(occupied + bytes > 32 * 1024);
                    }
                }
                next_id += 1;
            } else {
                prop_assert_eq!(fifo.pop(), model.pop_front());
            }
            let occupied: u64 = model.iter().map(|(b, _)| *b).sum();
            prop_assert_eq!(fifo.occupied(), occupied);
            prop_assert!(fifo.occupied() <= fifo.capacity());
            prop_assert_eq!(fifo.len(), model.len());
        }
    }

    /// RNG range helpers always stay in bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut r = Xoshiro256ss::seed_from(seed);
        let hi = lo + span;
        for _ in 0..64 {
            let x = r.range_u64(lo, hi);
            prop_assert!((lo..=hi).contains(&x));
        }
    }

    /// Time arithmetic is associative with durations.
    #[test]
    fn time_assoc(a in 0u64..(1 << 40), b in 0u64..(1 << 40), c in 0u64..(1 << 40)) {
        let t = SimTime::from_ps(a);
        let d1 = SimDuration::from_ps(b);
        let d2 = SimDuration::from_ps(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert_eq!(((t + d1) + d2) - t, d1 + d2);
    }
}
