//! Scheduler equivalence: the pooled calendar queue must dispatch in
//! *exactly* the order of the binary heap it replaced — `(at, seq)`
//! ascending, FIFO among equal times — on seeded random schedules that
//! stress same-instant bursts, near-future chatter, and far-future
//! sends that leap whole calendar years.
//!
//! The heap model here is the engine's previous implementation verbatim:
//! a `BinaryHeap<Reverse<(at, seq, to, msg)>>`. Any divergence in pop
//! order, peeked times, or lengths fails the property; the harness
//! prints the per-case seed for exact replay.

use apenet_sim::calendar::CalendarQueue;
use apenet_sim::check;
use apenet_sim::engine::{Actor, Ctx, Sim};
use apenet_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// The previous scheduler, as a reference model.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
}

impl HeapModel {
    fn push(&mut self, at: u64, seq: u64, to: usize, msg: u64) {
        self.heap.push(Reverse((at, seq, to, msg)));
    }
    fn peek_at(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, ..))| *at)
    }
    fn pop(&mut self) -> Option<(u64, usize, u64)> {
        self.heap
            .pop()
            .map(|Reverse((at, _, to, msg))| (at, to, msg))
    }
}

#[test]
fn calendar_matches_heap_on_random_schedules() {
    check::cases("calendar queue ≡ binary heap", 96, |g| {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut model = HeapModel::default();
        let mut seq = 0u64;
        let mut now = 0u64; // last popped time: pushes never go below it
        let ops = g.usize(10, 300);
        for _ in 0..ops {
            match g.u32(0, 10) {
                // Same-instant burst: FIFO order among equal times is
                // the property golden digests depend on.
                0..=2 => {
                    let at = now + g.u64(0, 5_000);
                    for _ in 0..g.usize(1, 24) {
                        cal.push(SimTime::from_ps(at), seq, g.usize(0, 8), seq);
                        model.push(at, seq, 0, seq);
                        seq += 1;
                    }
                }
                // Near-future chatter at link-latency-ish spacing.
                3..=5 => {
                    let at = now + g.u64(0, 200_000);
                    cal.push(SimTime::from_ps(at), seq, g.usize(0, 8), seq);
                    model.push(at, seq, 0, seq);
                    seq += 1;
                }
                // Far-future send: thousands of calendar years ahead of
                // the initial geometry (timeouts, keepalives).
                6 => {
                    let at = now + g.u64(1_000_000, 50_000_000_000_000);
                    cal.push(SimTime::from_ps(at), seq, g.usize(0, 8), seq);
                    model.push(at, seq, 0, seq);
                    seq += 1;
                }
                // Pop a few, checking order; interleave peeks.
                _ => {
                    for _ in 0..g.usize(1, 8) {
                        assert_eq!(
                            cal.peek_at().map(|t| t.as_ps()),
                            model.peek_at(),
                            "peek diverged"
                        );
                        assert_eq!(cal.peek_at_ref().map(|t| t.as_ps()), model.peek_at());
                        let got = cal.pop();
                        let want = model.pop();
                        match (got, want) {
                            (None, None) => break,
                            (Some(ev), Some((at, _, msg))) => {
                                // msg == seq is unique, so equality here
                                // proves the exact total order, ties
                                // included.
                                assert_eq!(ev.at.as_ps(), at, "pop time diverged");
                                assert_eq!(ev.msg, msg, "pop order diverged");
                                now = at;
                            }
                            (got, want) => {
                                panic!(
                                    "length diverged: calendar {got:?} vs heap {want:?}",
                                    got = got.map(|e| (e.at.as_ps(), e.msg)),
                                    want = want.map(|(at, _, msg)| (at, msg))
                                );
                            }
                        }
                    }
                }
            }
            assert_eq!(cal.len(), model.heap.len(), "pending count diverged");
        }
        // Drain to empty: the tail must agree too.
        loop {
            let got = cal.pop();
            let want = model.pop();
            match (got, want) {
                (None, None) => break,
                (Some(ev), Some((at, _, msg))) => {
                    assert_eq!((ev.at.as_ps(), ev.msg), (at, msg), "drain diverged");
                }
                _ => panic!("drain length diverged"),
            }
        }
    });
}

/// Engine-level two-pass digest: run the same seeded actor workload
/// twice through a fresh `Sim` and fold every delivery (time, actor,
/// message) into an FNV-1a digest. The passes must agree bit-for-bit —
/// the engine has no hidden state that survives a run.
#[test]
fn two_pass_dispatch_digest_is_identical() {
    fn digest_pass(case_seed: u64) -> u64 {
        struct Scatter {
            peers: Vec<usize>,
            rng: apenet_sim::rng::SplitMix64,
            log: Rc<RefCell<u64>>,
        }
        impl Actor<u64> for Scatter {
            fn on_event(&mut self, ev: u64, ctx: &mut Ctx<'_, u64>) {
                let h = self.log.borrow_mut();
                let mut d = *h;
                drop(h);
                for &b in &[ctx.now().as_ps(), ctx.self_id() as u64, ev] {
                    d = (d ^ b).wrapping_mul(0x0000_0100_0000_01B3);
                }
                *self.log.borrow_mut() = d;
                if ev > 0 {
                    // Deterministic fan-out: bursts at equal times plus
                    // occasional far-future hops.
                    let r = self.rng.next_u64();
                    let to = self.peers[(r % self.peers.len() as u64) as usize];
                    let delay = match r % 7 {
                        0 => SimDuration::ZERO,
                        1..=4 => SimDuration::from_ns(10 + (r >> 8) % 1_000),
                        _ => SimDuration::from_us(1 + (r >> 8) % 10_000),
                    };
                    ctx.send(to, delay, ev - 1);
                    if r.is_multiple_of(5) {
                        ctx.send_self(SimDuration::ZERO, ev / 2);
                    }
                }
            }
        }
        let log = Rc::new(RefCell::new(0xCBF2_9CE4_8422_2325u64));
        let mut sim: Sim<u64> = Sim::new();
        let n = 6;
        for i in 0..n {
            sim.add_actor(Box::new(Scatter {
                peers: (0..n).filter(|&p| p != i).collect(),
                rng: apenet_sim::rng::SplitMix64::new(case_seed ^ i as u64),
                log: log.clone(),
            }));
        }
        sim.send(0, SimTime::ZERO, 64);
        sim.send(1, SimTime::ZERO, 64);
        sim.run();
        let events = sim.events_processed();
        let d = *log.borrow();
        (d ^ events).wrapping_mul(0x0000_0100_0000_01B3) ^ sim.now().as_ps()
    }

    check::cases("two-pass dispatch digest", 16, |g| {
        let seed = g.u64(0, u64::MAX - 1);
        assert_eq!(
            digest_pass(seed),
            digest_pass(seed),
            "same seed must produce a bit-identical run"
        );
    });
}
