//! Property tests for the GPU memory model: a model-based check of the
//! allocator and data integrity across page boundaries.

use apenet_gpu::mem::Memory;
use apenet_gpu::{GPU_PAGE_SIZE, HOST_PAGE_SIZE};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
    Write { nth: usize, off: u64, len: u64, seed: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..300_000).prop_map(Op::Alloc),
        (0usize..16).prop_map(Op::FreeNth),
        ((0usize..16), 0u64..100_000, 1u64..50_000, any::<u8>())
            .prop_map(|(nth, off, len, seed)| Op::Write { nth, off, len, seed }),
    ]
}

fn pattern(len: u64, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(13) ^ seed).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The allocator never double-allocates, never loses capacity, and
    /// every write reads back exactly — across any interleaving of
    /// allocs, frees and cross-page writes.
    #[test]
    fn memory_model_based(ops in prop::collection::vec(op_strategy(), 1..60), gpu_pages in prop::bool::ANY) {
        let page = if gpu_pages { GPU_PAGE_SIZE } else { HOST_PAGE_SIZE };
        let mut mem = Memory::new(0x9000_0000, 8 << 20, page);
        // model: addr -> (len, last written (off, data))
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut contents: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(addr) = mem.alloc(len) {
                        prop_assert_eq!(addr % page, 0, "page-aligned");
                        // No overlap with any live allocation.
                        let rounded = len.next_multiple_of(page);
                        for &(a, l) in &live {
                            let lr = l.next_multiple_of(page);
                            prop_assert!(addr + rounded <= a || a + lr <= addr,
                                "overlap: new [{addr},{}) vs [{a},{})", addr + rounded, a + lr);
                        }
                        live.push((addr, len));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (addr, _) = live.remove(n % live.len());
                        prop_assert!(mem.free(addr).is_ok());
                        contents.remove(&addr);
                    }
                }
                Op::Write { nth, off, len, seed } => {
                    if !live.is_empty() {
                        let (addr, alen) = live[nth % live.len()];
                        if off + len <= alen {
                            let data = pattern(len, seed);
                            mem.write(addr + off, &data).unwrap();
                            let back = mem.read_vec(addr + off, len).unwrap();
                            prop_assert_eq!(back, data.clone());
                            contents.insert(addr, data); // last write per buffer
                        }
                    }
                }
            }
        }
        let live_total: u64 = live.iter().map(|&(_, l)| l.next_multiple_of(page)).sum();
        prop_assert_eq!(mem.allocated(), live_total);
    }

    /// Page spans cover exactly the pages a range touches.
    #[test]
    fn page_span_exact(off in 0u64..(1 << 20), len in 1u64..(1 << 18)) {
        let mem = Memory::new(0, 4 << 20, GPU_PAGE_SIZE);
        prop_assume!(off + len <= 4 << 20);
        let span = mem.page_span(off, len).unwrap();
        let first = off / GPU_PAGE_SIZE;
        let last = (off + len - 1) / GPU_PAGE_SIZE;
        prop_assert_eq!(span.len() as u64, last - first + 1);
        prop_assert_eq!(span[0], first * GPU_PAGE_SIZE);
        for w in span.windows(2) {
            prop_assert_eq!(w[1] - w[0], GPU_PAGE_SIZE);
        }
    }
}
