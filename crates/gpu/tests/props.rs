//! Property tests for the GPU memory model: a model-based check of the
//! allocator and data integrity across page boundaries.

use apenet_gpu::mem::Memory;
use apenet_gpu::{GPU_PAGE_SIZE, HOST_PAGE_SIZE};
use apenet_sim::check::{self, Gen};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
    Write {
        nth: usize,
        off: u64,
        len: u64,
        seed: u8,
    },
}

fn gen_op(g: &mut Gen) -> Op {
    match g.u32(0, 3) {
        0 => Op::Alloc(g.u64(1, 300_000)),
        1 => Op::FreeNth(g.usize(0, 16)),
        _ => Op::Write {
            nth: g.usize(0, 16),
            off: g.u64(0, 100_000),
            len: g.u64(1, 50_000),
            seed: g.byte(),
        },
    }
}

fn pattern(len: u64, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13) ^ seed)
        .collect()
}

/// The allocator never double-allocates, never loses capacity, and
/// every write reads back exactly — across any interleaving of
/// allocs, frees and cross-page writes.
#[test]
fn memory_model_based() {
    check::cases("memory_model_based", 64, |g| {
        let ops = g.vec_of(1, 60, gen_op);
        let page = if g.chance(0.5) {
            GPU_PAGE_SIZE
        } else {
            HOST_PAGE_SIZE
        };
        let mut mem = Memory::new(0x9000_0000, 8 << 20, page);
        // model: addr -> (len, last written (off, data))
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut contents: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(addr) = mem.alloc(len) {
                        assert_eq!(addr % page, 0, "page-aligned");
                        // No overlap with any live allocation.
                        let rounded = len.next_multiple_of(page);
                        for &(a, l) in &live {
                            let lr = l.next_multiple_of(page);
                            assert!(
                                addr + rounded <= a || a + lr <= addr,
                                "overlap: new [{addr},{}) vs [{a},{})",
                                addr + rounded,
                                a + lr
                            );
                        }
                        live.push((addr, len));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (addr, _) = live.remove(n % live.len());
                        assert!(mem.free(addr).is_ok());
                        contents.remove(&addr);
                    }
                }
                Op::Write {
                    nth,
                    off,
                    len,
                    seed,
                } => {
                    if !live.is_empty() {
                        let (addr, alen) = live[nth % live.len()];
                        if off + len <= alen {
                            let data = pattern(len, seed);
                            mem.write(addr + off, &data).unwrap();
                            let back = mem.read_vec(addr + off, len).unwrap();
                            assert_eq!(back, data);
                            // The refcounted read path agrees byte-for-byte
                            // with the copying one.
                            let payload = mem.read_payload(addr + off, len).unwrap();
                            assert_eq!(payload.as_slice(), &data[..]);
                            contents.insert(addr, data); // last write per buffer
                        }
                    }
                }
            }
        }
        let live_total: u64 = live.iter().map(|&(_, l)| l.next_multiple_of(page)).sum();
        assert_eq!(mem.allocated(), live_total);
    });
}

/// Page spans cover exactly the pages a range touches.
#[test]
fn page_span_exact() {
    check::check("page_span_exact", |g| {
        let off = g.u64(0, 1 << 20);
        let len = g.u64(1, 1 << 18);
        if off + len > 4 << 20 {
            return; // out of the memory's range: skip the case
        }
        let mem = Memory::new(0, 4 << 20, GPU_PAGE_SIZE);
        let span = mem.page_span(off, len).unwrap();
        let first = off / GPU_PAGE_SIZE;
        let last = (off + len - 1) / GPU_PAGE_SIZE;
        assert_eq!(span.len() as u64, last - first + 1);
        assert_eq!(span[0], first * GPU_PAGE_SIZE);
        for w in span.windows(2) {
            assert_eq!(w[1] - w[0], GPU_PAGE_SIZE);
        }
    });
}
