//! Page-backed memory with a first-fit allocator.
//!
//! Used for both host memory (4 KB pages) and GPU device memory (64 KB
//! pages). Backing pages materialize lazily and zero-filled on first
//! touch, so simulating a 6 GB Tesla costs nothing until data is written.
//!
//! Pages are `Arc`-backed so the packet datapath can borrow them
//! zero-copy: [`Memory::read_payload`] hands out a [`PayloadSlice`] that
//! shares the page, and writes copy-on-write any page still aliased by an
//! in-flight payload.

use apenet_sim::bytes::{self, PayloadSlice};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors from allocation and access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Not enough contiguous free space.
    OutOfMemory,
    /// Access outside the memory's address range.
    OutOfRange,
    /// Freeing an address that was never allocated.
    BadFree,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "out of memory"),
            MemError::OutOfRange => write!(f, "address out of range"),
            MemError::BadFree => write!(f, "free of unallocated address"),
        }
    }
}

impl std::error::Error for MemError {}

/// A page-backed memory region living at a fixed base address of the
/// 64-bit unified virtual address (UVA) space.
pub struct Memory {
    base: u64,
    capacity: u64,
    page_size: u64,
    pages: Vec<Option<Arc<[u8]>>>,
    /// Free ranges as offset → length, coalesced.
    free: BTreeMap<u64, u64>,
    /// Allocations as offset → length.
    allocs: BTreeMap<u64, u64>,
}

impl Memory {
    /// Create a memory of `capacity` bytes at UVA `base`, with the given
    /// page size (capacity must be page-aligned).
    pub fn new(base: u64, capacity: u64, page_size: u64) -> Self {
        assert!(page_size.is_power_of_two());
        assert_eq!(capacity % page_size, 0, "capacity must be page aligned");
        let mut free = BTreeMap::new();
        free.insert(0, capacity);
        Memory {
            base,
            capacity,
            page_size,
            // The page table itself grows on first touch: a 6 GB device
            // memory has ~100k page slots, and zero-initializing them per
            // Memory was measurable in harnesses that build nodes per
            // benchmark repetition.
            pages: Vec::new(),
            free,
            allocs: BTreeMap::new(),
        }
    }

    /// Base UVA address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// True when `addr..addr+len` lies inside this memory.
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.saturating_add(len) <= self.base + self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocs.values().sum()
    }

    /// Allocate `len` bytes aligned to the page size; returns a UVA address.
    pub fn alloc(&mut self, len: u64) -> Result<u64, MemError> {
        if len == 0 {
            return Err(MemError::OutOfMemory);
        }
        let want = len.next_multiple_of(self.page_size);
        // First fit.
        let slot = self
            .free
            .iter()
            .find(|(_, &flen)| flen >= want)
            .map(|(&off, &flen)| (off, flen));
        let Some((off, flen)) = slot else {
            return Err(MemError::OutOfMemory);
        };
        self.free.remove(&off);
        if flen > want {
            self.free.insert(off + want, flen - want);
        }
        self.allocs.insert(off, want);
        Ok(self.base + off)
    }

    /// Free an allocation made by [`Memory::alloc`].
    pub fn free(&mut self, addr: u64) -> Result<(), MemError> {
        if addr < self.base {
            return Err(MemError::BadFree);
        }
        let off = addr - self.base;
        let Some(len) = self.allocs.remove(&off) else {
            return Err(MemError::BadFree);
        };
        // Insert and coalesce with neighbours.
        let mut start = off;
        let mut end = off + len;
        if let Some((&poff, &plen)) = self.free.range(..off).next_back() {
            if poff + plen == off {
                self.free.remove(&poff);
                start = poff;
            }
        }
        if let Some(&nlen) = self.free.get(&end) {
            self.free.remove(&end);
            end += nlen;
        }
        self.free.insert(start, end - start);
        Ok(())
    }

    /// The (shared, lazily zero-filled) page covering offset `off`.
    fn page_arc(&mut self, off: u64) -> &Arc<[u8]> {
        let idx = (off / self.page_size) as usize;
        if self.pages.len() <= idx {
            self.pages.resize(idx + 1, None);
        }
        let ps = self.page_size as usize;
        self.pages[idx].get_or_insert_with(|| vec![0u8; ps].into())
    }

    /// Mutable view of the page covering `off`; copy-on-write when the
    /// page is still aliased by an in-flight [`PayloadSlice`].
    fn page_of(&mut self, off: u64) -> &mut [u8] {
        let ps = self.page_size as usize;
        self.page_arc(off);
        let idx = (off / self.page_size) as usize;
        let arc = self.pages[idx].as_mut().expect("page materialized above");
        if Arc::get_mut(arc).is_none() {
            bytes::note_copy(ps as u64);
            let copy: Arc<[u8]> = Arc::from(&arc[..]);
            *arc = copy;
        }
        Arc::get_mut(arc).expect("sole owner after copy-on-write")
    }

    /// Write `data` at UVA `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        if !self.contains(addr, data.len() as u64) {
            return Err(MemError::OutOfRange);
        }
        let mut off = addr - self.base;
        let mut src = data;
        while !src.is_empty() {
            let in_page = (off % self.page_size) as usize;
            let room = self.page_size as usize - in_page;
            let n = room.min(src.len());
            let page = self.page_of(off);
            page[in_page..in_page + n].copy_from_slice(&src[..n]);
            src = &src[n..];
            off += n as u64;
        }
        Ok(())
    }

    /// Read into `out` from UVA `addr`.
    pub fn read(&mut self, addr: u64, out: &mut [u8]) -> Result<(), MemError> {
        if !self.contains(addr, out.len() as u64) {
            return Err(MemError::OutOfRange);
        }
        let mut off = addr - self.base;
        let mut dst = &mut out[..];
        while !dst.is_empty() {
            let in_page = (off % self.page_size) as usize;
            let room = self.page_size as usize - in_page;
            let n = room.min(dst.len());
            let page = self.page_of(off);
            dst[..n].copy_from_slice(&page[in_page..in_page + n]);
            dst = &mut dst[n..];
            off += n as u64;
        }
        Ok(())
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_vec(&mut self, addr: u64, len: u64) -> Result<Vec<u8>, MemError> {
        let mut v = vec![0u8; len as usize];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Read `len` bytes as a refcounted [`PayloadSlice`].
    ///
    /// When the range lies within a single page — always true for the
    /// card's ≤ 4 KB packet fragments, because allocations are
    /// page-aligned — this shares the page and copies nothing. A range
    /// crossing pages falls back to a gather copy (accounted via
    /// [`bytes::note_copy`]).
    pub fn read_payload(&mut self, addr: u64, len: u64) -> Result<PayloadSlice, MemError> {
        if !self.contains(addr, len) {
            return Err(MemError::OutOfRange);
        }
        if len == 0 {
            return Ok(PayloadSlice::empty());
        }
        let off = addr - self.base;
        let in_page = off % self.page_size;
        if in_page + len <= self.page_size {
            let page = self.page_arc(off).clone();
            Ok(PayloadSlice::from_arc(page).narrow(in_page as usize, len as usize))
        } else {
            bytes::note_copy(len);
            Ok(PayloadSlice::from_vec(self.read_vec(addr, len)?))
        }
    }

    /// The page-aligned physical page addresses covering `addr..addr+len`
    /// — what a V2P table resolves a registered buffer into. The model's
    /// "physical" address of a page is simply its device-local offset.
    pub fn page_span(&self, addr: u64, len: u64) -> Result<Vec<u64>, MemError> {
        if !self.contains(addr, len) {
            return Err(MemError::OutOfRange);
        }
        let first = (addr - self.base) / self.page_size;
        let last = (addr - self.base + len.max(1) - 1) / self.page_size;
        Ok((first..=last).map(|p| p * self.page_size).collect())
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Memory(base={:#x}, cap={}MiB, page={}KiB, alloc={}KiB)",
            self.base,
            self.capacity >> 20,
            self.page_size >> 10,
            self.allocated() >> 10
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(0x7000_0000_0000, 1 << 20, 64 * 1024)
    }

    #[test]
    fn alloc_is_page_aligned_and_in_range() {
        let mut m = mem();
        let a = m.alloc(100).unwrap();
        assert_eq!(a % m.page_size(), 0);
        assert!(m.contains(a, 100));
        assert_eq!(m.allocated(), 64 * 1024, "rounded to page");
    }

    #[test]
    fn alloc_free_coalesce_reuse() {
        let mut m = mem();
        let a = m.alloc(64 * 1024).unwrap();
        let b = m.alloc(64 * 1024).unwrap();
        let c = m.alloc(64 * 1024).unwrap();
        assert_ne!(a, b);
        m.free(b).unwrap();
        m.free(a).unwrap();
        // a+b coalesced: a 128 KiB alloc fits at the start again.
        let d = m.alloc(128 * 1024).unwrap();
        assert_eq!(d, a);
        m.free(c).unwrap();
        m.free(d).unwrap();
        assert_eq!(m.allocated(), 0);
        // Whole capacity available again.
        let e = m.alloc(1 << 20).unwrap();
        assert_eq!(e, m.base());
    }

    #[test]
    fn oom_and_bad_free() {
        let mut m = mem();
        assert_eq!(m.alloc(2 << 20), Err(MemError::OutOfMemory));
        assert_eq!(m.alloc(0), Err(MemError::OutOfMemory));
        assert_eq!(m.free(m.base() + 64 * 1024), Err(MemError::BadFree));
        assert_eq!(m.free(0), Err(MemError::BadFree));
    }

    #[test]
    fn write_read_roundtrip_cross_page() {
        let mut m = mem();
        let a = m.alloc(256 * 1024).unwrap();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        // Start mid-page to cross several page boundaries.
        m.write(a + 1000, &data).unwrap();
        let back = m.read_vec(a + 1000, data.len() as u64).unwrap();
        assert_eq!(back, data);
        // Untouched bytes read back zero.
        assert_eq!(m.read_vec(a, 1000).unwrap(), vec![0u8; 1000]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = mem();
        let end = m.base() + m.capacity();
        assert_eq!(m.write(end - 4, &[0u8; 8]), Err(MemError::OutOfRange));
        let mut buf = [0u8; 8];
        assert_eq!(m.read(end, &mut buf), Err(MemError::OutOfRange));
    }

    #[test]
    fn read_payload_single_page_is_zero_copy() {
        let mut m = mem();
        let a = m.alloc(128 * 1024).unwrap();
        m.write(a, &vec![0xAB; 64 * 1024]).unwrap();
        let before = bytes::copied_bytes();
        let p = m.read_payload(a + 4096, 4096).unwrap();
        assert_eq!(
            bytes::copied_bytes(),
            before,
            "single-page read shares the page"
        );
        assert_eq!(p.len(), 4096);
        assert!(p.iter().all(|&b| b == 0xAB));
        // Crossing a page boundary gathers (and accounts the copy).
        let q = m.read_payload(a + 64 * 1024 - 8, 16).unwrap();
        assert_eq!(q.len(), 16);
        assert!(bytes::copied_bytes() > before);
    }

    #[test]
    fn write_to_shared_page_copies_on_write() {
        let mut m = mem();
        let a = m.alloc(64 * 1024).unwrap();
        m.write(a, &[1, 2, 3, 4]).unwrap();
        let p = m.read_payload(a, 4).unwrap();
        // Writing while `p` aliases the page must not change what p sees.
        m.write(a, &[9, 9, 9, 9]).unwrap();
        assert_eq!(p.as_slice(), &[1, 2, 3, 4], "in-flight payload is stable");
        assert_eq!(m.read_vec(a, 4).unwrap(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn page_span_covers_range() {
        let m = mem();
        let base = m.base();
        let span = m.page_span(base + 10, 64 * 1024).unwrap();
        assert_eq!(span, vec![0, 64 * 1024]);
        let span = m.page_span(base, 64 * 1024).unwrap();
        assert_eq!(span, vec![0]);
        let span = m.page_span(base + 130_000, 1).unwrap();
        assert_eq!(span, vec![64 * 1024]);
    }
}
