//! Per-architecture constants.
//!
//! Every number here is taken from the paper (Table I, §V.A, §V.B) or from
//! the public datasheets of the boards the test clusters used.

use apenet_sim::{Bandwidth, SimDuration};

/// The GPU models appearing in the paper's two clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuArch {
    /// Tesla C2050 (Fermi, 3 GB) — seven of the eight Cluster I nodes.
    Fermi2050,
    /// Tesla C2070 (Fermi, 6 GB) — the eighth Cluster I node.
    Fermi2070,
    /// Tesla S2075 module GPU (Fermi, 6 GB) — Cluster II, two per node.
    Fermi2075,
    /// Tesla K10 (Kepler GK104) — early-result preview in Table I.
    KeplerK10,
    /// Pre-release K20 (Kepler GK110, ECC on in the paper's test).
    KeplerK20,
}

/// The externally observable performance envelope of one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchSpec {
    /// Marketing/model name.
    pub name: &'static str,
    /// Device memory size in bytes.
    pub mem_bytes: u64,
    /// Sustained completion rate of the P2P read protocol as measured from
    /// a third-party device (1536 MB/s on Fermi — "seems architectural").
    pub p2p_read_rate: Bandwidth,
    /// First-data latency of a P2P read at the GPU. The paper's 1.8 µs
    /// (Fig. 3) is what the *bus analyzer on the NIC slot* sees — i.e.
    /// this value plus the request/completion transit across the fabric.
    pub p2p_head_latency: SimDuration,
    /// Sustained read rate through the BAR1 aperture (150 MB/s on Fermi,
    /// 1.6 GB/s on Kepler — "a more impressive factor 10").
    pub bar1_read_rate: Bandwidth,
    /// First-data latency of BAR1 reads (ordinary MMIO round trip).
    pub bar1_head_latency: SimDuration,
    /// Absorption rate for inbound P2P writes ("the GPU has no problem
    /// sustaining the PCIe X8 Gen2 traffic").
    pub p2p_write_rate: Bandwidth,
    /// GPU DMA-engine rate for `cudaMemcpy` D2H/H2D (~5.5 GB/s, §V.B).
    pub dma_rate: Bandwidth,
    /// BAR1 aperture size (32-bit BIOS constraint: "a few hundreds of
    /// megabytes, so it is a scarce resource").
    pub bar1_aperture: u64,
    /// Whether ECC was enabled in the paper's measurement of this part.
    pub ecc: bool,
    /// Per-spin over-relaxation kernel throughput class (see
    /// `apenet-apps::hsg::cost`): relative speed factor, 1.0 = C2050.
    pub compute_factor: f64,
}

impl GpuArch {
    /// The constants table.
    pub const fn spec(self) -> ArchSpec {
        match self {
            GpuArch::Fermi2050 => ArchSpec {
                name: "Tesla C2050 (Fermi)",
                mem_bytes: 3 * (1 << 30),
                p2p_read_rate: Bandwidth::from_mb_per_sec(1536),
                p2p_head_latency: SimDuration::from_ns(1100),
                bar1_read_rate: Bandwidth::from_mb_per_sec(150),
                bar1_head_latency: SimDuration::from_ns(900),
                p2p_write_rate: Bandwidth::from_mb_per_sec(5500),
                dma_rate: Bandwidth::from_mb_per_sec(5500),
                bar1_aperture: 256 * (1 << 20),
                ecc: false,
                compute_factor: 1.0,
            },
            GpuArch::Fermi2070 => ArchSpec {
                name: "Tesla C2070 (Fermi)",
                mem_bytes: 6 * (1 << 30),
                ..GpuArch::Fermi2050.spec()
            },
            GpuArch::Fermi2075 => ArchSpec {
                name: "Tesla S2075 (Fermi)",
                mem_bytes: 6 * (1 << 30),
                ..GpuArch::Fermi2050.spec()
            },
            GpuArch::KeplerK10 => ArchSpec {
                name: "Tesla K10 (Kepler GK104)",
                mem_bytes: 4 * (1 << 30),
                p2p_read_rate: Bandwidth::from_mb_per_sec(1600),
                p2p_head_latency: SimDuration::from_ns(1000),
                bar1_read_rate: Bandwidth::from_mb_per_sec(1600),
                bar1_head_latency: SimDuration::from_ns(800),
                p2p_write_rate: Bandwidth::from_mb_per_sec(6000),
                dma_rate: Bandwidth::from_mb_per_sec(6000),
                bar1_aperture: 256 * (1 << 20),
                ecc: false,
                compute_factor: 1.3,
            },
            GpuArch::KeplerK20 => ArchSpec {
                name: "K20 pre-release (Kepler GK110)",
                mem_bytes: 5 * (1 << 30),
                p2p_read_rate: Bandwidth::from_mb_per_sec(1600),
                p2p_head_latency: SimDuration::from_ns(1000),
                bar1_read_rate: Bandwidth::from_mb_per_sec(1600),
                bar1_head_latency: SimDuration::from_ns(800),
                p2p_write_rate: Bandwidth::from_mb_per_sec(6000),
                dma_rate: Bandwidth::from_mb_per_sec(6000),
                bar1_aperture: 256 * (1 << 20),
                ecc: true,
                compute_factor: 1.8,
            },
        }
    }

    /// True for the Kepler generation (public BAR1 API since CUDA 5.0).
    pub const fn is_kepler(self) -> bool {
        matches!(self, GpuArch::KeplerK10 | GpuArch::KeplerK20)
    }
}

impl ArchSpec {
    /// The spec with ECC toggled. Enabling ECC on GDDR5 costs 1/8 of the
    /// capacity (the syndrome is carved out of data memory on these
    /// parts) and ~10% of every memory-path rate; Table I's footnotes
    /// ("ECC is off on both clusters", "Kepler results … with ECC
    /// enabled") make the states explicit, and the K20 row already bakes
    /// ECC-on in. This lets experiments flip the switch.
    pub fn with_ecc(mut self, ecc: bool) -> ArchSpec {
        if ecc == self.ecc {
            return self;
        }
        if ecc {
            self.mem_bytes -= self.mem_bytes / 8;
            self.p2p_read_rate = self.p2p_read_rate.scaled(9, 10);
            self.bar1_read_rate = self.bar1_read_rate.scaled(9, 10);
            self.p2p_write_rate = self.p2p_write_rate.scaled(9, 10);
            self.dma_rate = self.dma_rate.scaled(9, 10);
        } else {
            self.mem_bytes = self.mem_bytes / 7 * 8;
            self.p2p_read_rate = self.p2p_read_rate.scaled(10, 9);
            self.bar1_read_rate = self.bar1_read_rate.scaled(10, 9);
            self.p2p_write_rate = self.p2p_write_rate.scaled(10, 9);
            self.dma_rate = self.dma_rate.scaled(10, 9);
        }
        self.ecc = ecc;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rates() {
        let fermi = GpuArch::Fermi2050.spec();
        assert_eq!(fermi.p2p_read_rate.mb_per_sec_f64(), 1536.0);
        assert_eq!(fermi.bar1_read_rate.mb_per_sec_f64(), 150.0);
        let k20 = GpuArch::KeplerK20.spec();
        assert_eq!(k20.p2p_read_rate.mb_per_sec_f64(), 1600.0);
        assert_eq!(k20.bar1_read_rate.mb_per_sec_f64(), 1600.0);
        // "a more impressive factor 10" Fermi BAR1 vs Kepler BAR1
        assert!(k20.bar1_read_rate.bytes_per_sec() / fermi.bar1_read_rate.bytes_per_sec() >= 10);
    }

    #[test]
    fn memory_sizes_match_boards() {
        assert_eq!(GpuArch::Fermi2050.spec().mem_bytes, 3 << 30);
        assert_eq!(GpuArch::Fermi2070.spec().mem_bytes, 6 << 30);
        assert_eq!(GpuArch::Fermi2075.spec().mem_bytes, 6 << 30);
    }

    #[test]
    fn kepler_flag() {
        assert!(!GpuArch::Fermi2070.is_kepler());
        assert!(GpuArch::KeplerK20.is_kepler());
    }

    #[test]
    fn ecc_toggle_derates_and_costs_capacity() {
        let off = GpuArch::Fermi2050.spec();
        let on = off.with_ecc(true);
        assert!(on.mem_bytes < off.mem_bytes);
        assert!(on.p2p_read_rate < off.p2p_read_rate);
        assert!(on.dma_rate < off.dma_rate);
        assert!(on.ecc);
        // Toggling is idempotent at fixed state.
        assert_eq!(on.with_ecc(true), on);
        // K20 ships with ECC on in the paper; turning it off frees rate.
        let k20 = GpuArch::KeplerK20.spec();
        let k20_off = k20.with_ecc(false);
        assert!(k20_off.p2p_read_rate > k20.p2p_read_rate);
        assert!(!k20_off.ecc);
    }

    #[test]
    fn head_latency_fermi() {
        // 1.1 us at the GPU; ~1.8 us as seen from the NIC slot (Fig. 3).
        assert_eq!(
            GpuArch::Fermi2075.spec().p2p_head_latency,
            SimDuration::from_ns(1100)
        );
        assert!(
            GpuArch::KeplerK20.spec().p2p_head_latency < GpuArch::Fermi2075.spec().p2p_head_latency
        );
    }
}
