//! The BAR1 aperture: the alternative access method for third-party
//! devices (§III, public API since CUDA 5.0 on Kepler).
//!
//! "With BAR1 it is possible to expose … a region of device memory on the
//! second PCIe memory-mapped address space of the GPU … this address space
//! is limited to a few hundreds of megabytes, so it is a scarce resource.
//! Additionally, mapping a GPU memory buffer is an expensive operation,
//! which requires a full reconfiguration of the GPU."

use crate::arch::ArchSpec;
use apenet_pcie::server::{Completion, ReadServer};
use apenet_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Errors from BAR1 aperture management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bar1Error {
    /// The mapping would exceed the aperture budget.
    ApertureExhausted,
    /// The access touches device memory not currently mapped.
    NotMapped,
    /// Unmapping a range that is not mapped.
    BadUnmap,
}

/// The BAR1 window of one GPU.
#[derive(Debug, Clone)]
pub struct Bar1 {
    aperture: u64,
    mapped: BTreeMap<u64, u64>, // device addr -> len
    in_use: u64,
    read: ReadServer,
    map_cost: SimDuration,
}

impl Bar1 {
    /// Build from an architecture spec.
    pub fn new(spec: &ArchSpec) -> Self {
        Bar1 {
            aperture: spec.bar1_aperture,
            mapped: BTreeMap::new(),
            in_use: 0,
            read: ReadServer::new(spec.bar1_head_latency, spec.bar1_read_rate),
            // "an expensive operation, which requires a full
            // reconfiguration of the GPU": order-of-milliseconds.
            map_cost: SimDuration::from_ms(2),
        }
    }

    /// Aperture budget in bytes.
    pub fn aperture(&self) -> u64 {
        self.aperture
    }

    /// Bytes currently mapped.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Map `len` bytes of device memory at `dev_addr` into BAR1; returns
    /// the (large) time cost of the reconfiguration.
    pub fn map(&mut self, dev_addr: u64, len: u64) -> Result<SimDuration, Bar1Error> {
        if self.in_use + len > self.aperture {
            return Err(Bar1Error::ApertureExhausted);
        }
        self.mapped.insert(dev_addr, len);
        self.in_use += len;
        Ok(self.map_cost)
    }

    /// Remove a mapping created by [`Bar1::map`].
    pub fn unmap(&mut self, dev_addr: u64) -> Result<(), Bar1Error> {
        match self.mapped.remove(&dev_addr) {
            Some(len) => {
                self.in_use -= len;
                Ok(())
            }
            None => Err(Bar1Error::BadUnmap),
        }
    }

    /// True when `addr..addr+len` is covered by one mapping.
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        self.mapped
            .range(..=addr)
            .next_back()
            .is_some_and(|(&base, &mlen)| addr + len <= base + mlen)
    }

    /// Serve a PCIe read of `bytes` at device address `addr`.
    pub fn serve_read(
        &mut self,
        arrive: SimTime,
        addr: u64,
        bytes: u64,
    ) -> Result<Completion, Bar1Error> {
        if !self.is_mapped(addr, bytes) {
            return Err(Bar1Error::NotMapped);
        }
        Ok(self.read.serve(arrive, bytes))
    }

    /// Forget read-engine occupancy but keep mappings.
    pub fn reset_timing(&mut self) {
        self.read.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;
    use apenet_sim::Bandwidth;

    #[test]
    fn fermi_bar1_is_slow_kepler_is_fast() {
        let mut fermi = Bar1::new(&GpuArch::Fermi2050.spec());
        let mut k20 = Bar1::new(&GpuArch::KeplerK20.spec());
        fermi.map(0, 1 << 20).unwrap();
        k20.map(0, 1 << 20).unwrap();
        let cf = fermi.serve_read(SimTime::ZERO, 0, 1 << 20).unwrap();
        let ck = k20.serve_read(SimTime::ZERO, 0, 1 << 20).unwrap();
        let bf = Bandwidth::measured(1 << 20, cf.last.since(cf.first));
        let bk = Bandwidth::measured(1 << 20, ck.last.since(ck.first));
        assert!((bf.mb_per_sec_f64() - 150.0).abs() < 1.0);
        assert!((bk.mb_per_sec_f64() - 1600.0).abs() < 10.0);
    }

    #[test]
    fn aperture_budget_enforced() {
        let mut b = Bar1::new(&GpuArch::KeplerK20.spec());
        assert_eq!(b.aperture(), 256 << 20);
        b.map(0, 200 << 20).unwrap();
        assert_eq!(b.map(1 << 30, 100 << 20), Err(Bar1Error::ApertureExhausted));
        b.unmap(0).unwrap();
        assert_eq!(b.in_use(), 0);
        b.map(1 << 30, 100 << 20).unwrap();
    }

    #[test]
    fn unmapped_access_rejected() {
        let mut b = Bar1::new(&GpuArch::KeplerK20.spec());
        b.map(4096, 8192).unwrap();
        assert!(b.is_mapped(4096, 8192));
        assert!(b.is_mapped(8192, 4096));
        assert!(!b.is_mapped(0, 1));
        assert!(!b.is_mapped(4096, 8193));
        assert_eq!(
            b.serve_read(SimTime::ZERO, 0, 64).unwrap_err(),
            Bar1Error::NotMapped
        );
        assert_eq!(b.unmap(0), Err(Bar1Error::BadUnmap));
    }

    #[test]
    fn mapping_is_expensive() {
        let mut b = Bar1::new(&GpuArch::KeplerK20.spec());
        let cost = b.map(0, 4096).unwrap();
        assert!(cost >= SimDuration::from_ms(1), "full GPU reconfiguration");
    }
}
