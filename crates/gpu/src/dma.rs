//! GPU DMA copy engines — the machinery behind `cudaMemcpy`.
//!
//! Fermi-class Teslas have two copy engines (one per direction); the paper
//! measures "about 5.5 GB/s on the same platform" for GPU-to-host reads
//! through them, and ~10 µs of host-synchronous overhead per blocking
//! `cudaMemcpy` (§V.C).

use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// One DMA copy engine with serialized transfers.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    rate: Bandwidth,
    busy_until: SimTime,
    copied: u64,
}

/// Timing of one DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    /// When the engine starts moving data.
    pub start: SimTime,
    /// When the last byte has been copied.
    pub end: SimTime,
}

impl DmaEngine {
    /// New idle engine at `rate`.
    pub fn new(rate: Bandwidth) -> Self {
        DmaEngine {
            rate,
            busy_until: SimTime::ZERO,
            copied: 0,
        }
    }

    /// Enqueue a transfer of `bytes` submitted at `now`.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> DmaTransfer {
        let start = now.max(self.busy_until);
        let end = start + self.rate.time_for(bytes);
        self.busy_until = end;
        self.copied += bytes;
        DmaTransfer { start, end }
    }

    /// When the engine next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes copied.
    pub fn copied(&self) -> u64 {
        self.copied
    }

    /// Forget occupancy.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.copied = 0;
    }
}

/// Host-synchronous overhead of a blocking `cudaMemcpy` device-to-host.
/// "the single cudaMemcpy overhead can be estimated around 10 µs, which
/// was confirmed by doing simple CUDA tests on the same hosts" (§V.C).
pub const SYNC_D2H_OVERHEAD: SimDuration = SimDuration::from_us(10);

/// Host-synchronous overhead of a blocking `cudaMemcpy` host-to-device —
/// posted writes retire quickly, making H2D far cheaper than D2H.
pub const SYNC_H2D_OVERHEAD: SimDuration = SimDuration::from_ns(500);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_transfers() {
        let mut e = DmaEngine::new(Bandwidth::from_mb_per_sec(5500));
        let a = e.transfer(SimTime::ZERO, 1 << 20);
        let b = e.transfer(SimTime::ZERO, 1 << 20);
        assert_eq!(b.start, a.end);
        assert_eq!(e.copied(), 2 << 20);
        // 1 MiB at 5.5 GB/s ≈ 190.7 us
        let us = a.end.since(a.start).as_us_f64();
        assert!((us - 190.65).abs() < 0.1, "{us}");
    }

    #[test]
    fn idle_engine_starts_immediately() {
        let mut e = DmaEngine::new(Bandwidth::from_mb_per_sec(5500));
        let late = SimTime::ZERO + SimDuration::from_ms(1);
        let t = e.transfer(late, 64);
        assert_eq!(t.start, late);
    }

    #[test]
    fn overheads_reflect_paper() {
        assert_eq!(SYNC_D2H_OVERHEAD, SimDuration::from_us(10));
        assert!(SYNC_H2D_OVERHEAD < SimDuration::from_us(1));
    }
}
