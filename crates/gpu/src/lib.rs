//! # apenet-gpu — the GPU device model
//!
//! NVIDIA Fermi- and Kepler-class GPUs as the paper's interconnect sees
//! them: a device-memory space organised in 64 KB pages behind the
//! GPUDirect **peer-to-peer** protocol (a two-way read protocol with a
//! measured 1.8 µs head latency and an architectural sustained-read cap),
//! a **BAR1** memory-mapped aperture, DMA copy engines (`cudaMemcpy`), and
//! a minimal CUDA-flavoured host API (contexts, streams, events, UVA
//! pointer queries) sufficient to write the paper's applications against.
//!
//! Data is *real*: device memory has lazily-allocated backing pages, so a
//! remote PUT that flows through the simulated fabric lands actual bytes.

pub mod arch;
pub mod bar1;
pub mod cuda;
pub mod dma;
pub mod mem;
pub mod p2p;
pub mod uva;

pub use arch::{ArchSpec, GpuArch};
pub use cuda::{CudaDevice, EventId, StreamId};
pub use mem::{MemError, Memory};
pub use uva::{MemKind, PtrAttr, Uva};

/// Index of a GPU within one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuId(pub u8);

/// The GPU page size used by the peer-to-peer protocol: "one page
/// descriptor for each 64 KB page" (paper §III.A).
pub const GPU_PAGE_SIZE: u64 = 64 * 1024;

/// The host page size used by HOST_V2P translation.
pub const HOST_PAGE_SIZE: u64 = 4 * 1024;
