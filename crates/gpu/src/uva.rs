//! Unified Virtual Addressing.
//!
//! With UVA "GPU buffers are assigned unique 64-bit addresses, and they can
//! be distinguished from plain host memory pointers by using the
//! `cuPointerGetAttribute()` call" (§IV.A). The [`Uva`] registry owns the
//! address-space layout of one host: host memory in the low range, each
//! GPU's device memory in its own 1 TB window.

use crate::mem::Memory;
use crate::GpuId;

/// Base of the host-memory UVA range.
pub const HOST_BASE: u64 = 0x0000_1000_0000;
/// Base of the first GPU's device-memory UVA range.
pub const GPU_BASE: u64 = 0x7000_0000_0000;
/// UVA window reserved per GPU.
pub const GPU_STRIDE: u64 = 0x0100_0000_0000;

/// What kind of memory a UVA pointer refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Plain host memory.
    Host,
    /// Device memory of the given GPU.
    Gpu(GpuId),
}

/// The result of `cuPointerGetAttribute(CU_POINTER_ATTRIBUTE_P2P_TOKENS)`:
/// enough information for a third-party device to map the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtrAttr {
    /// Host or which-GPU classification.
    pub kind: MemKind,
    /// The opaque P2P token pair the kernel driver needs (modelled as the
    /// UVA address-space id).
    pub p2p_token: u64,
    /// Secondary per-VA-space token.
    pub va_space_token: u64,
}

/// The UVA layout of one host: where host memory and each GPU live.
#[derive(Debug, Clone, Default)]
pub struct Uva {
    gpus: Vec<(GpuId, u64, u64)>, // (id, base, capacity)
    host: Option<(u64, u64)>,
}

impl Uva {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The UVA base for GPU `idx`.
    pub fn gpu_base(idx: u8) -> u64 {
        GPU_BASE + idx as u64 * GPU_STRIDE
    }

    /// Register the host memory range.
    pub fn set_host(&mut self, mem: &Memory) {
        self.host = Some((mem.base(), mem.capacity()));
    }

    /// Register a GPU's device memory range.
    pub fn add_gpu(&mut self, id: GpuId, mem: &Memory) {
        self.gpus.push((id, mem.base(), mem.capacity()));
    }

    /// Classify a pointer — the model's `cuPointerGetAttribute`.
    /// Returns `None` for addresses outside every registered range
    /// (CUDA would return `CUDA_ERROR_INVALID_VALUE`).
    pub fn pointer_get_attribute(&self, addr: u64) -> Option<PtrAttr> {
        for &(id, base, cap) in &self.gpus {
            if addr >= base && addr < base + cap {
                return Some(PtrAttr {
                    kind: MemKind::Gpu(id),
                    p2p_token: 0xA9E0_0000_0000 | id.0 as u64,
                    va_space_token: base >> 40,
                });
            }
        }
        if let Some((base, cap)) = self.host {
            if addr >= base && addr < base + cap {
                return Some(PtrAttr {
                    kind: MemKind::Host,
                    p2p_token: 0,
                    va_space_token: 0,
                });
            }
        }
        None
    }

    /// Convenience: is this a device pointer?
    pub fn is_gpu_ptr(&self, addr: u64) -> bool {
        matches!(
            self.pointer_get_attribute(addr),
            Some(PtrAttr {
                kind: MemKind::Gpu(_),
                ..
            })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GPU_PAGE_SIZE, HOST_PAGE_SIZE};

    #[test]
    fn classification() {
        let host = Memory::new(HOST_BASE, 1 << 20, HOST_PAGE_SIZE);
        let g0 = Memory::new(Uva::gpu_base(0), 1 << 20, GPU_PAGE_SIZE);
        let g1 = Memory::new(Uva::gpu_base(1), 1 << 20, GPU_PAGE_SIZE);
        let mut uva = Uva::new();
        uva.set_host(&host);
        uva.add_gpu(GpuId(0), &g0);
        uva.add_gpu(GpuId(1), &g1);

        assert_eq!(
            uva.pointer_get_attribute(HOST_BASE + 100).unwrap().kind,
            MemKind::Host
        );
        assert_eq!(
            uva.pointer_get_attribute(Uva::gpu_base(0)).unwrap().kind,
            MemKind::Gpu(GpuId(0))
        );
        assert_eq!(
            uva.pointer_get_attribute(Uva::gpu_base(1) + 512)
                .unwrap()
                .kind,
            MemKind::Gpu(GpuId(1))
        );
        assert!(uva.pointer_get_attribute(0xDEAD).is_none());
        assert!(uva.is_gpu_ptr(Uva::gpu_base(0) + 1));
        assert!(!uva.is_gpu_ptr(HOST_BASE + 1));
    }

    #[test]
    fn tokens_distinguish_gpus() {
        let g0 = Memory::new(Uva::gpu_base(0), 1 << 20, GPU_PAGE_SIZE);
        let g1 = Memory::new(Uva::gpu_base(1), 1 << 20, GPU_PAGE_SIZE);
        let mut uva = Uva::new();
        uva.add_gpu(GpuId(0), &g0);
        uva.add_gpu(GpuId(1), &g1);
        let t0 = uva.pointer_get_attribute(Uva::gpu_base(0)).unwrap();
        let t1 = uva.pointer_get_attribute(Uva::gpu_base(1)).unwrap();
        assert_ne!(t0.p2p_token, t1.p2p_token);
    }

    #[test]
    fn gpu_windows_do_not_overlap() {
        assert!(Uva::gpu_base(0) + GPU_STRIDE <= Uva::gpu_base(1));
        assert!(Uva::gpu_base(7) > Uva::gpu_base(6));
    }
}
