//! The GPUDirect peer-to-peer engine: the GPU-side half of the protocol.
//!
//! Reading GPU memory from a third-party device "is designed around a
//! two-way protocol between the initiator and the target" (§III.A): the
//! initiator posts read requests into the GPU's request queue; the GPU
//! answers with completion data after a head latency, at a sustained rate
//! the paper found to be architectural (~1536 MB/s on Fermi).
//!
//! Writing is "only slightly more difficult than host memory writing, the
//! only difference being the managing of a sliding window to access
//! different pages" — modelled as a per-64 KB-page window-switch cost.

use crate::arch::ArchSpec;
use crate::GPU_PAGE_SIZE;
use apenet_pcie::server::{Completion, ReadServer};
use apenet_sim::{SimDuration, SimTime};

/// Depth of the GPU's multiple-outstanding read request queue (§IV Fig. 2,
/// arrow 1). Initiators must not exceed it; the APEnet+ flow-control block
/// tracks this credit.
pub const READ_REQUEST_QUEUE_DEPTH: usize = 32;

/// Granularity of one P2P read request issued by the initiator's hardware.
pub const READ_REQUEST_BYTES: u64 = 256;

/// The GPU-resident peer-to-peer engine.
#[derive(Debug, Clone)]
pub struct P2pEngine {
    read: ReadServer,
    write_busy_until: SimTime,
    write_rate: apenet_sim::Bandwidth,
    window_switch: SimDuration,
    last_write_page: Option<u64>,
    writes_absorbed: u64,
}

impl P2pEngine {
    /// Build from an architecture spec.
    pub fn new(spec: &ArchSpec) -> Self {
        P2pEngine {
            read: ReadServer::new(spec.p2p_head_latency, spec.p2p_read_rate),
            write_busy_until: SimTime::ZERO,
            write_rate: spec.p2p_write_rate,
            // Switching the inbound sliding window to another 64 KB page
            // costs a mailbox round on the bus; this is the source of the
            // "10% penalty … switching GPU peer-to-peer window before
            // writing to it" (§V.C).
            window_switch: SimDuration::from_ns(280),
            last_write_page: None,
            writes_absorbed: 0,
        }
    }

    /// Serve a read request of `bytes` arriving at `arrive`; returns the
    /// completion window.
    pub fn serve_read(&mut self, arrive: SimTime, bytes: u64) -> Completion {
        self.read.serve(arrive, bytes)
    }

    /// Bytes served by the read engine so far.
    pub fn read_served(&self) -> u64 {
        self.read.served()
    }

    /// Absorb an inbound P2P write of `bytes` at device address `addr`
    /// starting at `now`; returns when the write has retired.
    pub fn absorb_write(&mut self, now: SimTime, addr: u64, bytes: u64) -> SimTime {
        let page = addr / GPU_PAGE_SIZE;
        let mut start = now.max(self.write_busy_until);
        if self.last_write_page != Some(page) {
            start += self.window_switch;
            self.last_write_page = Some(page);
        }
        let end = start + self.write_rate.time_for(bytes);
        self.write_busy_until = end;
        self.writes_absorbed += bytes;
        end
    }

    /// Bytes absorbed by the write path so far.
    pub fn writes_absorbed(&self) -> u64 {
        self.writes_absorbed
    }

    /// Forget all occupancy (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.read.reset();
        self.write_busy_until = SimTime::ZERO;
        self.last_write_page = None;
        self.writes_absorbed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;
    use apenet_sim::Bandwidth;

    fn engine() -> P2pEngine {
        P2pEngine::new(&GpuArch::Fermi2050.spec())
    }

    #[test]
    fn read_head_latency_and_rate() {
        let mut e = engine();
        let c = e.serve_read(SimTime::ZERO, READ_REQUEST_BYTES);
        assert_eq!(c.first, SimTime::ZERO + SimDuration::from_ns(1100));
        let dur = c.last.since(c.first);
        let bw = Bandwidth::measured(READ_REQUEST_BYTES, dur);
        assert!((bw.mb_per_sec_f64() - 1536.0).abs() < 1.0);
        assert_eq!(e.read_served(), 256);
    }

    #[test]
    fn same_page_writes_stream_without_switch() {
        let mut e = engine();
        let base = 0u64;
        let t1 = e.absorb_write(SimTime::ZERO, base, 4096);
        let t2 = e.absorb_write(t1, base + 4096, 4096);
        // Only the first write pays the window switch.
        let per_write = GpuArch::Fermi2050.spec().p2p_write_rate.time_for(4096);
        assert_eq!(
            t1.since(SimTime::ZERO),
            SimDuration::from_ns(280) + per_write
        );
        assert_eq!(t2.since(t1), per_write);
    }

    #[test]
    fn page_crossing_pays_switch() {
        let mut e = engine();
        let t1 = e.absorb_write(SimTime::ZERO, 0, 4096);
        let t2 = e.absorb_write(t1, GPU_PAGE_SIZE, 4096);
        let per_write = GpuArch::Fermi2050.spec().p2p_write_rate.time_for(4096);
        assert_eq!(t2.since(t1), SimDuration::from_ns(280) + per_write);
        assert_eq!(e.writes_absorbed(), 8192);
    }

    #[test]
    fn reset_restores_idle() {
        let mut e = engine();
        e.absorb_write(SimTime::ZERO, 0, 100);
        e.serve_read(SimTime::ZERO, 100);
        e.reset();
        assert_eq!(e.writes_absorbed(), 0);
        assert_eq!(e.read_served(), 0);
        let c = e.serve_read(SimTime::ZERO, 1);
        assert_eq!(c.first, SimTime::ZERO + SimDuration::from_ns(1100));
    }
}
