//! A minimal CUDA-flavoured host API over the device model.
//!
//! Provides exactly what the paper's applications and middleware need:
//! device-memory allocation, ordered streams with timed kernel launches,
//! events, and synchronous/asynchronous `cudaMemcpy` between host and
//! device memory (real bytes move; simulated time advances at the DMA
//! engine rate plus the measured host-synchronous overheads).

use crate::arch::{ArchSpec, GpuArch};
use crate::bar1::Bar1;
use crate::dma::{DmaEngine, DmaTransfer, SYNC_D2H_OVERHEAD, SYNC_H2D_OVERHEAD};
use crate::mem::{MemError, Memory};
use crate::p2p::P2pEngine;
use crate::uva::Uva;
use crate::{GpuId, GPU_PAGE_SIZE};
use apenet_sim::{SimDuration, SimTime};

/// Handle to a CUDA stream of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(usize);

/// Handle to a recorded CUDA event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(usize);

/// One simulated GPU: memory, engines and the stream machinery.
///
/// ```
/// use apenet_gpu::cuda::CudaDevice;
/// use apenet_gpu::{GpuArch, GpuId};
/// use apenet_sim::{SimDuration, SimTime};
///
/// let mut dev = CudaDevice::new(GpuId(0), GpuArch::Fermi2050);
/// let buf = dev.malloc(4096).unwrap();
/// dev.mem.write(buf, &[7u8; 4096]).unwrap();
///
/// // Two streams overlap; one stream serializes.
/// let s1 = CudaDevice::default_stream();
/// let s2 = dev.create_stream();
/// let a = dev.launch(SimTime::ZERO, s1, SimDuration::from_us(100));
/// let b = dev.launch(SimTime::ZERO, s2, SimDuration::from_us(40));
/// assert!(b < a);
/// assert_eq!(dev.device_sync(SimTime::ZERO), a);
/// ```
#[derive(Debug)]
pub struct CudaDevice {
    /// Device index within its host.
    pub id: GpuId,
    /// Which part this is.
    pub arch: GpuArch,
    /// Device (global) memory.
    pub mem: Memory,
    /// The peer-to-peer engine third-party devices talk to.
    pub p2p: P2pEngine,
    /// The BAR1 aperture.
    pub bar1: Bar1,
    dma_d2h: DmaEngine,
    dma_h2d: DmaEngine,
    streams: Vec<SimTime>,
    events: Vec<SimTime>,
}

/// The result of a memcpy: when the host regains control and when the data
/// transfer itself completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemcpyDone {
    /// Host-release time (for a synchronous copy this equals `data_done`
    /// plus the host-side overhead; for async it is the submission time).
    pub host_free: SimTime,
    /// When the last byte landed.
    pub data_done: SimTime,
}

impl CudaDevice {
    /// Create device `id` of the given architecture, with its device
    /// memory placed in the UVA window for `id`.
    pub fn new(id: GpuId, arch: GpuArch) -> Self {
        let spec: ArchSpec = arch.spec();
        let mem = Memory::new(Uva::gpu_base(id.0), spec.mem_bytes, GPU_PAGE_SIZE);
        CudaDevice {
            id,
            arch,
            mem,
            p2p: P2pEngine::new(&spec),
            bar1: Bar1::new(&spec),
            dma_d2h: DmaEngine::new(spec.dma_rate),
            dma_h2d: DmaEngine::new(spec.dma_rate),
            streams: vec![SimTime::ZERO], // the default stream
            events: Vec::new(),
        }
    }

    /// The default stream.
    pub fn default_stream() -> StreamId {
        StreamId(0)
    }

    /// Create an independent stream.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(SimTime::ZERO);
        StreamId(self.streams.len() - 1)
    }

    /// `cudaMalloc`.
    pub fn malloc(&mut self, len: u64) -> Result<u64, MemError> {
        self.mem.alloc(len)
    }

    /// `cudaFree`.
    pub fn free(&mut self, addr: u64) -> Result<(), MemError> {
        self.mem.free(addr)
    }

    /// Launch a kernel of duration `dur` on `stream` at `now`; returns the
    /// completion time. Launches on one stream execute in order; distinct
    /// streams overlap freely (the paper's boundary/bulk overlap relies on
    /// this).
    pub fn launch(&mut self, now: SimTime, stream: StreamId, dur: SimDuration) -> SimTime {
        let tail = &mut self.streams[stream.0];
        let start = now.max(*tail);
        *tail = start + dur;
        *tail
    }

    /// The time at which all work queued on `stream` completes.
    pub fn stream_tail(&self, stream: StreamId) -> SimTime {
        self.streams[stream.0]
    }

    /// `cudaStreamSynchronize`: host blocks until the stream drains.
    pub fn stream_sync(&self, now: SimTime, stream: StreamId) -> SimTime {
        now.max(self.streams[stream.0])
    }

    /// `cudaDeviceSynchronize`: host blocks until every stream drains.
    pub fn device_sync(&self, now: SimTime) -> SimTime {
        self.streams.iter().fold(now, |acc, &t| acc.max(t))
    }

    /// `cudaEventRecord` on `stream`.
    pub fn record_event(&mut self, now: SimTime, stream: StreamId) -> EventId {
        let at = now.max(self.streams[stream.0]);
        self.events.push(at);
        EventId(self.events.len() - 1)
    }

    /// The simulated time an event fired.
    pub fn event_time(&self, ev: EventId) -> SimTime {
        self.events[ev.0]
    }

    /// Make `stream` wait for `ev` (`cudaStreamWaitEvent`).
    pub fn stream_wait_event(&mut self, ev: EventId, stream: StreamId) {
        let at = self.events[ev.0];
        let tail = &mut self.streams[stream.0];
        *tail = (*tail).max(at);
    }

    /// Synchronous `cudaMemcpy` device-to-host: copies real bytes and
    /// blocks the host for the transfer plus the measured ~10 µs overhead.
    pub fn memcpy_d2h_sync(
        &mut self,
        now: SimTime,
        host: &mut Memory,
        dst_host: u64,
        src_dev: u64,
        len: u64,
    ) -> Result<MemcpyDone, MemError> {
        let data = self.mem.read_payload(src_dev, len)?;
        host.write(dst_host, &data)?;
        let t: DmaTransfer = self.dma_d2h.transfer(now, len);
        let host_free = t.end + SYNC_D2H_OVERHEAD;
        Ok(MemcpyDone {
            host_free,
            data_done: t.end,
        })
    }

    /// Synchronous `cudaMemcpy` host-to-device.
    pub fn memcpy_h2d_sync(
        &mut self,
        now: SimTime,
        host: &mut Memory,
        dst_dev: u64,
        src_host: u64,
        len: u64,
    ) -> Result<MemcpyDone, MemError> {
        let data = host.read_payload(src_host, len)?;
        self.mem.write(dst_dev, &data)?;
        let t = self.dma_h2d.transfer(now, len);
        let host_free = t.end + SYNC_H2D_OVERHEAD;
        Ok(MemcpyDone {
            host_free,
            data_done: t.end,
        })
    }

    /// `cudaMemcpyAsync` device-to-host on `stream`: the host returns
    /// immediately; the copy is ordered after prior work on the stream.
    pub fn memcpy_d2h_async(
        &mut self,
        now: SimTime,
        stream: StreamId,
        host: &mut Memory,
        dst_host: u64,
        src_dev: u64,
        len: u64,
    ) -> Result<MemcpyDone, MemError> {
        let data = self.mem.read_payload(src_dev, len)?;
        host.write(dst_host, &data)?;
        let ready = now.max(self.streams[stream.0]);
        let t = self.dma_d2h.transfer(ready, len);
        self.streams[stream.0] = t.end;
        Ok(MemcpyDone {
            host_free: now,
            data_done: t.end,
        })
    }

    /// `cudaMemcpyAsync` host-to-device on `stream`.
    pub fn memcpy_h2d_async(
        &mut self,
        now: SimTime,
        stream: StreamId,
        host: &mut Memory,
        dst_dev: u64,
        src_host: u64,
        len: u64,
    ) -> Result<MemcpyDone, MemError> {
        let data = host.read_payload(src_host, len)?;
        self.mem.write(dst_dev, &data)?;
        let ready = now.max(self.streams[stream.0]);
        let t = self.dma_h2d.transfer(ready, len);
        self.streams[stream.0] = t.end;
        Ok(MemcpyDone {
            host_free: now,
            data_done: t.end,
        })
    }

    /// `cudaMemcpyPeer`: copy between two devices over the PCIe fabric
    /// using the P2P protocol — the single-box technique §I credits with
    /// "a 50% performance gain on capability problems". The source's DMA
    /// engine pushes; the destination's P2P write path absorbs.
    pub fn memcpy_peer(
        now: SimTime,
        dst: &mut CudaDevice,
        dst_addr: u64,
        src: &mut CudaDevice,
        src_addr: u64,
        len: u64,
    ) -> Result<MemcpyDone, MemError> {
        let data = src.mem.read_payload(src_addr, len)?;
        dst.mem.write(dst_addr, &data)?;
        let push = src.dma_d2h.transfer(now, len);
        let absorbed = dst.p2p.absorb_write(push.start, dst_addr, len);
        let done = push.end.max(absorbed);
        Ok(MemcpyDone {
            host_free: now + SYNC_H2D_OVERHEAD,
            data_done: done,
        })
    }

    /// Reset all timing state (between benchmark repetitions); memory
    /// contents and allocations survive.
    pub fn reset_timing(&mut self) {
        self.p2p.reset();
        self.bar1.reset_timing();
        self.dma_d2h.reset();
        self.dma_h2d.reset();
        for s in &mut self.streams {
            *s = SimTime::ZERO;
        }
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uva::HOST_BASE;
    use crate::HOST_PAGE_SIZE;

    fn setup() -> (CudaDevice, Memory) {
        let dev = CudaDevice::new(GpuId(0), GpuArch::Fermi2050);
        let host = Memory::new(HOST_BASE, 16 << 20, HOST_PAGE_SIZE);
        (dev, host)
    }

    #[test]
    fn streams_order_and_overlap() {
        let (mut dev, _) = setup();
        let s0 = CudaDevice::default_stream();
        let s1 = dev.create_stream();
        let t0 = SimTime::ZERO;
        let k1 = dev.launch(t0, s0, SimDuration::from_us(100));
        let k2 = dev.launch(t0, s0, SimDuration::from_us(50));
        let k3 = dev.launch(t0, s1, SimDuration::from_us(30));
        assert_eq!(k1, t0 + SimDuration::from_us(100));
        assert_eq!(k2, t0 + SimDuration::from_us(150), "same stream serializes");
        assert_eq!(k3, t0 + SimDuration::from_us(30), "streams overlap");
        assert_eq!(dev.device_sync(t0), k2);
        assert_eq!(dev.stream_sync(t0, s1), k3);
    }

    #[test]
    fn events_and_cross_stream_wait() {
        let (mut dev, _) = setup();
        let s0 = CudaDevice::default_stream();
        let s1 = dev.create_stream();
        dev.launch(SimTime::ZERO, s0, SimDuration::from_us(10));
        let ev = dev.record_event(SimTime::ZERO, s0);
        assert_eq!(dev.event_time(ev), SimTime::ZERO + SimDuration::from_us(10));
        dev.stream_wait_event(ev, s1);
        let k = dev.launch(SimTime::ZERO, s1, SimDuration::from_us(5));
        assert_eq!(k, SimTime::ZERO + SimDuration::from_us(15));
    }

    #[test]
    fn sync_memcpy_moves_real_bytes_with_overhead() {
        let (mut dev, mut host) = setup();
        let d = dev.malloc(8192).unwrap();
        let h = host.alloc(8192).unwrap();
        let payload: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 256) as u8).collect();
        dev.mem.write(d, &payload).unwrap();
        let done = dev
            .memcpy_d2h_sync(SimTime::ZERO, &mut host, h, d, 8192)
            .unwrap();
        assert_eq!(host.read_vec(h, 8192).unwrap(), payload);
        // 8192 B at 5.5 GB/s ≈ 1.49 us, + 10 us sync overhead.
        let us = done.host_free.as_us_f64();
        assert!((11.3..11.7).contains(&us), "{us}");
        // And back up with fresh data.
        let payload2: Vec<u8> = payload.iter().map(|b| b ^ 0xFF).collect();
        host.write(h, &payload2).unwrap();
        let done2 = dev
            .memcpy_h2d_sync(done.host_free, &mut host, d, h, 8192)
            .unwrap();
        assert_eq!(dev.mem.read_vec(d, 8192).unwrap(), payload2);
        assert!(done2.host_free > done.host_free);
    }

    #[test]
    fn async_memcpy_returns_immediately_and_orders_on_stream() {
        let (mut dev, mut host) = setup();
        let d = dev.malloc(4096).unwrap();
        let h = host.alloc(4096).unwrap();
        let s = dev.create_stream();
        dev.launch(SimTime::ZERO, s, SimDuration::from_us(100));
        let done = dev
            .memcpy_d2h_async(SimTime::ZERO, s, &mut host, h, d, 4096)
            .unwrap();
        assert_eq!(done.host_free, SimTime::ZERO, "async returns at once");
        assert!(
            done.data_done > SimTime::ZERO + SimDuration::from_us(100),
            "copy waits for the kernel on the same stream"
        );
        assert_eq!(dev.stream_tail(s), done.data_done);
    }

    #[test]
    fn memcpy_peer_moves_bytes_between_devices() {
        let mut a = CudaDevice::new(GpuId(0), GpuArch::Fermi2050);
        let mut b = CudaDevice::new(GpuId(1), GpuArch::Fermi2050);
        let src = a.malloc(16384).unwrap();
        let dst = b.malloc(16384).unwrap();
        let payload: Vec<u8> = (0..16384u32).map(|i| (i % 256) as u8).collect();
        a.mem.write(src, &payload).unwrap();
        let done = CudaDevice::memcpy_peer(SimTime::ZERO, &mut b, dst, &mut a, src, 16384).unwrap();
        assert_eq!(b.mem.read_vec(dst, 16384).unwrap(), payload);
        // Faster than a staged D2H+H2D round trip (no 10 us sync stall).
        let mut c = CudaDevice::new(GpuId(2), GpuArch::Fermi2050);
        let mut host = Memory::new(crate::uva::HOST_BASE, 1 << 20, crate::HOST_PAGE_SIZE);
        let h = host.alloc(16384).unwrap();
        let c_src = c.malloc(16384).unwrap();
        let d2h = c
            .memcpy_d2h_sync(SimTime::ZERO, &mut host, h, c_src, 16384)
            .unwrap();
        let staged_total = d2h.host_free.since(SimTime::ZERO) * 2;
        assert!(done.data_done.since(SimTime::ZERO) < staged_total);
    }

    #[test]
    fn memcpy_peer_range_checked() {
        let mut a = CudaDevice::new(GpuId(0), GpuArch::Fermi2050);
        let mut b = CudaDevice::new(GpuId(1), GpuArch::Fermi2050);
        let src = a.malloc(4096).unwrap();
        assert!(CudaDevice::memcpy_peer(SimTime::ZERO, &mut b, 0xbad, &mut a, src, 4096).is_err());
    }

    #[test]
    fn reset_timing_preserves_memory() {
        let (mut dev, _) = setup();
        let d = dev.malloc(64).unwrap();
        dev.mem.write(d, &[9u8; 64]).unwrap();
        dev.launch(
            SimTime::ZERO,
            CudaDevice::default_stream(),
            SimDuration::from_us(1),
        );
        dev.reset_timing();
        assert_eq!(dev.stream_tail(CudaDevice::default_stream()), SimTime::ZERO);
        assert_eq!(dev.mem.read_vec(d, 64).unwrap(), vec![9u8; 64]);
    }
}
