//! # apenet-apps — the paper's two multi-GPU applications
//!
//! * [`hsg`] — over-relaxation in the 3D Heisenberg spin glass (§V.D):
//!   a real lattice simulation (checkerboard over-relaxation conserves
//!   energy exactly — the model's strongest correctness invariant) with
//!   1-D slab decomposition, boundary/bulk overlap on two CUDA streams,
//!   and halo exchange over APEnet+ (P2P = OFF / RX / ON) or the
//!   InfiniBand/MPI baseline;
//! * [`bfs`] — distributed level-synchronous BFS on graph500-style R-MAT
//!   graphs (§V.E): real traversal with 1-D vertex partitioning and
//!   all-to-all frontier exchange, validated against a sequential
//!   reference, reported in TEPS.
//!
//! Both applications run their *algorithms* for real — bytes cross the
//! simulated fabric and land in simulated GPU memory — while their GPU
//! *kernel durations* come from cost models calibrated against the
//! paper's single-GPU numbers (DESIGN.md documents every constant).

pub mod bfs;
pub mod hsg;
