//! Sequential reference BFS and the result validator.

use crate::bfs::csr::Csr;
use std::collections::VecDeque;

/// BFS output: level (−1 = unreached) and parent (−1 = unreached/root’s
/// parent is itself, graph500 style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsTree {
    /// Per-vertex level.
    pub level: Vec<i32>,
    /// Per-vertex parent.
    pub parent: Vec<i64>,
}

/// Textbook queue BFS.
pub fn bfs(g: &Csr, root: u32) -> BfsTree {
    let n = g.n();
    let mut level = vec![-1i32; n];
    let mut parent = vec![-1i64; n];
    level[root as usize] = 0;
    parent[root as usize] = root as i64;
    let mut q = VecDeque::new();
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        for &v in g.neighbors(u) {
            if level[v as usize] < 0 {
                level[v as usize] = level[u as usize] + 1;
                parent[v as usize] = u as i64;
                q.push_back(v);
            }
        }
    }
    BfsTree { level, parent }
}

/// Validate a BFS tree against the graph (graph500-style checks):
/// * root has level 0 and itself as parent;
/// * every reached vertex has a reached parent one level shallower and an
///   actual edge to it;
/// * reachability matches `reference` exactly.
pub fn validate(g: &Csr, root: u32, tree: &BfsTree, reference: &BfsTree) -> Result<(), String> {
    let n = g.n();
    if tree.level.len() != n || tree.parent.len() != n {
        return Err("wrong output size".into());
    }
    if tree.level[root as usize] != 0 || tree.parent[root as usize] != root as i64 {
        return Err("bad root".into());
    }
    for v in 0..n as u32 {
        let lv = tree.level[v as usize];
        if lv != reference.level[v as usize] {
            return Err(format!(
                "vertex {v}: level {lv} != reference {}",
                reference.level[v as usize]
            ));
        }
        if lv < 0 {
            continue;
        }
        if v == root {
            continue;
        }
        let p = tree.parent[v as usize];
        if p < 0 {
            return Err(format!("reached vertex {v} has no parent"));
        }
        let p = p as u32;
        if tree.level[p as usize] != lv - 1 {
            return Err(format!("vertex {v}: parent {p} not one level up"));
        }
        if !g.has_edge(v, p) {
            return Err(format!("vertex {v}: no edge to parent {p}"));
        }
    }
    Ok(())
}

/// Edges in the traversed component, the TEPS numerator: the graph500
/// metric counts each undirected input edge whose endpoints were reached.
pub fn traversed_edges(g: &Csr, tree: &BfsTree) -> u64 {
    let mut scanned = 0u64;
    for v in 0..g.n() as u32 {
        if tree.level[v as usize] >= 0 {
            scanned += g.degree(v);
        }
    }
    scanned / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::rmat;

    #[test]
    fn line_graph_levels() {
        let g = Csr::build(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let t = bfs(&g, 0);
        assert_eq!(t.level, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.parent[4], 3);
        validate(&g, 0, &t, &t).unwrap();
        assert_eq!(traversed_edges(&g, &t), 4);
    }

    #[test]
    fn disconnected_component_unreached() {
        let g = Csr::build(4, &[(0, 1), (2, 3)]);
        let t = bfs(&g, 0);
        assert_eq!(t.level[2], -1);
        assert_eq!(t.parent[3], -1);
        assert_eq!(traversed_edges(&g, &t), 1);
        validate(&g, 0, &t, &t).unwrap();
    }

    #[test]
    fn validator_catches_corruption() {
        let g = Csr::build(4, &[(0, 1), (1, 2), (2, 3)]);
        let good = bfs(&g, 0);
        let mut bad = good.clone();
        bad.level[3] = 1;
        assert!(validate(&g, 0, &bad, &good).is_err());
        let mut bad2 = good.clone();
        bad2.parent[2] = 0; // not an edge... (0,2) absent
        assert!(validate(&g, 0, &bad2, &good).is_err());
    }

    #[test]
    fn rmat_bfs_validates() {
        let edges = rmat::generate(10, 16, 42);
        let g = Csr::build(1 << 10, &edges);
        let t = bfs(&g, 0);
        validate(&g, 0, &t, &t).unwrap();
        assert!(traversed_edges(&g, &t) > 1000);
    }
}
