//! Distributed BFS runs: APEnet+ (event-driven, GPU peer-to-peer) and the
//! MPI/InfiniBand baseline of Table IV.
//!
//! Every rank owns a contiguous vertex range; each level it scans its
//! frontier on the GPU, then exchanges newly discovered remote vertices
//! all-to-all — "the typical traffic among nodes can be hardly predicted
//! and, depending on the graph partitioning, easily shows an all-to-all
//! pattern. The messages size varies as well during the different stages
//! of the traversal" (§V.E).

use crate::bfs::cost::BfsCost;
use crate::bfs::csr::Csr;
use crate::bfs::dist::{decode, encode, Expansion, Partition, RankState};
use crate::bfs::seq::{self, BfsTree};
use crate::hsg::run::{coord_for, dims_for};
use apenet_cluster::cluster::ClusterBuilder;
use apenet_cluster::msg::{HostApi, HostIn, HostProgram, NodeCtx};
use apenet_cluster::node::NodeConfig;
use apenet_cluster::presets::cluster_i_default;
use apenet_ib::{CudaAwareMpi, IbConfig};
use apenet_rdma::api::SrcHint;
use apenet_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Run parameters.
#[derive(Debug, Clone)]
pub struct BfsConfig {
    /// Graph scale (2^scale vertices).
    pub scale: u32,
    /// Edges per vertex.
    pub edgefactor: u32,
    /// Ranks.
    pub np: usize,
    /// BFS root.
    pub root: u32,
    /// Graph seed.
    pub seed: u64,
    /// Kernel cost model.
    pub cost: BfsCost,
    /// GPUs per node for the IB baseline (Cluster II has two; pairs on
    /// one node exchange over the local PCIe instead of the network).
    pub ib_gpus_per_node: usize,
    /// Apply the graph500 vertex relabelling (ablation; the paper's runs
    /// behave like the raw R-MAT labelling, see DESIGN.md).
    pub permute: bool,
}

impl BfsConfig {
    /// The paper's Table IV configuration (|V| = 2^20, edgefactor 16).
    pub fn paper(np: usize) -> Self {
        BfsConfig {
            scale: 20,
            edgefactor: 16,
            np,
            root: 1,
            seed: 500,
            cost: BfsCost::default(),
            ib_gpus_per_node: 1,
            permute: false,
        }
    }

    /// A small configuration for tests.
    pub fn small(scale: u32, np: usize) -> Self {
        BfsConfig {
            scale,
            edgefactor: 16,
            np,
            root: 1,
            seed: 500,
            cost: BfsCost::default(),
            ib_gpus_per_node: 1,
            permute: false,
        }
    }
}

/// Aggregated result.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Traversed edges per second (the graph500 metric).
    pub teps: f64,
    /// Undirected edges of the traversed component.
    pub traversed_edges: u64,
    /// Total traversal wall time.
    pub wall: SimDuration,
    /// BFS levels run (including the final empty round).
    pub levels: u32,
    /// Per-rank `(compute, comm)` time split (Fig. 12).
    pub breakdown: Vec<(SimDuration, SimDuration)>,
    /// The merged BFS tree (validated by the test-suite).
    pub tree: BfsTree,
}

#[derive(Default)]
struct RankDone {
    wall_end: SimTime,
    comp: SimDuration,
    comm: SimDuration,
    level: Vec<i32>,
    parent: Vec<i64>,
    levels: u32,
}

struct BfsRank {
    cfg: BfsConfig,
    g: Rc<Csr>,
    state: RankState,
    rank: usize,
    // GPU buffer layout: send and recv slots by peer *position*
    // (0..np-1, senders ordered by rank skipping self), double-buffered
    // by level parity. Identical layout on every rank.
    send_slots: Vec<[u64; 2]>,
    recv_slots: Vec<[u64; 2]>,
    slot_bytes: u64,
    // Level machinery.
    level: i32,
    my_frontier_len: u32,
    kernel_done: bool,
    kernel_end: SimTime,
    expansion: Option<Expansion>,
    msgs_in: [u8; 2],
    frontier_global: [u64; 2],
    pending_pairs: [Vec<(u32, u32)>; 2],
    pairs_in_prev: u64,
    tx_expect_total: u32,
    tx_seen_total: u32,
    tx_barrier: u32,
    comp_acc: SimDuration,
    comm_acc: SimDuration,
    done: Rc<RefCell<Vec<RankDone>>>,
}

const WAKE_KERNEL: u64 = 1;

impl BfsRank {
    fn np(&self) -> usize {
        self.cfg.np
    }

    /// Peer rank at position `pos` of my table.
    fn rank_at(&self, pos: usize) -> usize {
        if pos < self.rank {
            pos
        } else {
            pos + 1
        }
    }

    /// Address of *peer `p`'s* recv slot for messages from me: layouts
    /// are identical on every rank, so it is my own recv address at my
    /// position within p's table.
    fn peer_recv_addr(&self, p: usize, parity: usize) -> u64 {
        let my_pos_at_p = if self.rank < p {
            self.rank
        } else {
            self.rank - 1
        };
        self.recv_slots[my_pos_at_p][parity]
    }

    /// Start level `self.level`: expand the frontier and charge the
    /// kernel.
    fn start_level(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        self.tx_barrier = self.tx_expect_total;
        self.kernel_done = false;
        self.my_frontier_len = self.state.frontier.len() as u32;
        let expansion = self.state.expand(&self.g, self.level + 1);
        let dur = self
            .cfg
            .cost
            .level_kernel(expansion.edges_scanned, self.pairs_in_prev);
        self.expansion = Some(expansion);
        let stream = apenet_gpu::cuda::CudaDevice::default_stream();
        let end = node.cuda[0].borrow_mut().launch(api.now, stream, dur);
        self.kernel_end = end;
        self.comp_acc += dur;
        api.wake(end.since(api.now), WAKE_KERNEL);
    }

    /// Kernel finished: emit the all-to-all exchange.
    fn on_kernel_done(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        self.kernel_done = true;
        let parity = (self.level & 1) as usize;
        let expansion = self.expansion.take().expect("expansion planned");
        if self.np() > 1 {
            for pos in 0..self.np() - 1 {
                let p = self.rank_at(pos);
                let bytes = encode(self.my_frontier_len, &expansion.to_rank[p]);
                assert!(bytes.len() as u64 <= self.slot_bytes, "slot overflow");
                let src = self.send_slots[pos][parity];
                node.cuda[0].borrow_mut().mem.write(src, &bytes).unwrap();
                let dst = self.peer_recv_addr(p, parity);
                let out = node
                    .ep
                    .put(
                        src,
                        bytes.len() as u64,
                        coord_for(self.np(), p, false),
                        dst,
                        SrcHint::Gpu,
                    )
                    .expect("frontier put");
                self.tx_expect_total += 1;
                api.submit(out.host_cost, out.desc);
            }
        }
        self.try_advance(node, api);
    }

    fn on_delivery(
        &mut self,
        node: &mut NodeCtx,
        api: &mut HostApi<'_, '_>,
        dst_vaddr: u64,
        len: u64,
    ) {
        // Identify (position, parity) by address.
        let mut found = None;
        for (pos, slots) in self.recv_slots.iter().enumerate() {
            for (parity, &addr) in slots.iter().enumerate() {
                if dst_vaddr == addr {
                    found = Some((pos, parity));
                }
            }
        }
        let (_pos, parity) = found.expect("delivery into a known slot");
        let bytes = node.cuda[0]
            .borrow_mut()
            .mem
            .read_vec(dst_vaddr, len)
            .unwrap();
        let (header, pairs) = decode(&bytes);
        self.frontier_global[parity] += header as u64;
        self.pending_pairs[parity].extend(pairs);
        self.msgs_in[parity] += 1;
        self.try_advance(node, api);
    }

    fn try_advance(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let parity = (self.level & 1) as usize;
        let all_in = self.np() == 1 || self.msgs_in[parity] as usize == self.np() - 1;
        if !(self.kernel_done && all_in && self.tx_seen_total >= self.tx_barrier) {
            return;
        }
        // Integrate and account.
        let pairs = std::mem::take(&mut self.pending_pairs[parity]);
        let fresh = self.state.apply(&pairs, self.level + 1);
        let _ = fresh;
        self.pairs_in_prev = pairs.len() as u64;
        let total_frontier = self.my_frontier_len as u64 + self.frontier_global[parity];
        self.msgs_in[parity] = 0;
        self.frontier_global[parity] = 0;
        self.comm_acc += api.now.since(self.kernel_end);
        if total_frontier == 0 {
            // Global termination: the round just exchanged was empty.
            let mut done = self.done.borrow_mut();
            let slot = &mut done[self.rank];
            slot.wall_end = api.now;
            slot.comp = self.comp_acc;
            slot.comm = self.comm_acc;
            slot.level = std::mem::take(&mut self.state.level);
            slot.parent = std::mem::take(&mut self.state.parent);
            slot.levels = self.level as u32 + 1;
            return;
        }
        self.level += 1;
        self.start_level(node, api);
    }
}

impl HostProgram for BfsRank {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let np = self.np();
        if np > 1 {
            let mut dev = node.cuda[0].borrow_mut();
            for _pos in 0..np - 1 {
                let s0 = dev.malloc(self.slot_bytes).unwrap();
                let s1 = dev.malloc(self.slot_bytes).unwrap();
                self.send_slots.push([s0, s1]);
            }
            for _pos in 0..np - 1 {
                let r0 = dev.malloc(self.slot_bytes).unwrap();
                let r1 = dev.malloc(self.slot_bytes).unwrap();
                self.recv_slots.push([r0, r1]);
            }
            drop(dev);
            // Hot RX buffers first in the BUF_LIST.
            for slots in &self.recv_slots {
                for &a in slots {
                    node.ep.register(a, self.slot_bytes).unwrap();
                }
            }
            for slots in &self.send_slots {
                for &a in slots {
                    node.ep.register(a, self.slot_bytes).unwrap();
                }
            }
        }
        self.start_level(node, api);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        match ev {
            HostIn::Wake(WAKE_KERNEL) => self.on_kernel_done(node, api),
            HostIn::Wake(_) => {}
            HostIn::Delivered { dst_vaddr, len, .. } => self.on_delivery(node, api, dst_vaddr, len),
            HostIn::TxDone { .. } => {
                self.tx_seen_total += 1;
                self.try_advance(node, api);
            }
            HostIn::Fault(_) => {} // apps run on healthy clusters
            HostIn::Start => unreachable!(),
        }
    }
}

/// Run the APEnet+ version (GPU peer-to-peer, Table IV left column).
pub fn run_apenet(cfg: &BfsConfig) -> BfsResult {
    run_apenet_on(cfg, cluster_i_default())
}

/// Run the APEnet+ version on a custom node configuration.
pub fn run_apenet_on(cfg: &BfsConfig, node_cfg: NodeConfig) -> BfsResult {
    let n = 1usize << cfg.scale;
    let edges = crate::bfs::rmat::generate_with(cfg.scale, cfg.edgefactor, cfg.seed, cfg.permute);
    let g = Rc::new(Csr::build(n, &edges));
    let part = Partition { n, np: cfg.np };
    let slot_bytes = 4 + 8 * max_message_pairs(&g, part, cfg.root);
    let done = Rc::new(RefCell::new(
        (0..cfg.np).map(|_| RankDone::default()).collect::<Vec<_>>(),
    ));
    let dims = dims_for(cfg.np);
    let programs: Vec<Box<dyn HostProgram>> = (0..cfg.np)
        .map(|rank| {
            Box::new(BfsRank {
                cfg: cfg.clone(),
                g: g.clone(),
                state: RankState::new(rank, part, cfg.root),
                rank,
                send_slots: Vec::new(),
                recv_slots: Vec::new(),
                slot_bytes,
                level: 0,
                my_frontier_len: 0,
                kernel_done: false,
                kernel_end: SimTime::ZERO,
                expansion: None,
                msgs_in: [0; 2],
                frontier_global: [0; 2],
                pending_pairs: [Vec::new(), Vec::new()],
                pairs_in_prev: 0,
                tx_expect_total: 0,
                tx_seen_total: 0,
                tx_barrier: 0,
                comp_acc: SimDuration::ZERO,
                comm_acc: SimDuration::ZERO,
                done: done.clone(),
            }) as Box<dyn HostProgram>
        })
        .collect();
    let mut cluster = ClusterBuilder::new(dims, node_cfg).build(programs);
    cluster.run();
    let ranks = done.borrow();
    finish(cfg, &g, part, &ranks)
}

/// Dry-run the distributed algorithm (perfect transport) to size the
/// exchange buffers: the largest per-(src,dst) candidate list of any
/// level.
fn max_message_pairs(g: &Csr, part: Partition, root: u32) -> u64 {
    let mut ranks: Vec<RankState> = (0..part.np)
        .map(|r| RankState::new(r, part, root))
        .collect();
    let mut level = 0i32;
    let mut max_pairs = 1u64;
    loop {
        let total: usize = ranks.iter().map(|r| r.frontier.len()).sum();
        if total == 0 {
            return max_pairs;
        }
        let exps: Vec<Expansion> = ranks.iter_mut().map(|r| r.expand(g, level + 1)).collect();
        for e in &exps {
            for pairs in &e.to_rank {
                max_pairs = max_pairs.max(pairs.len() as u64);
            }
        }
        for (dst, r) in ranks.iter_mut().enumerate() {
            for e in &exps {
                r.apply(&e.to_rank[dst], level + 1);
            }
        }
        level += 1;
        assert!(level < 1000);
    }
}

fn finish(_cfg: &BfsConfig, g: &Csr, part: Partition, ranks: &[RankDone]) -> BfsResult {
    let mut tree = BfsTree {
        level: vec![-1; g.n()],
        parent: vec![-1; g.n()],
    };
    for (r, d) in ranks.iter().enumerate() {
        assert!(!d.level.is_empty(), "rank {r} never finished");
        let (lo, hi) = part.range(r);
        for v in lo..hi {
            tree.level[v as usize] = d.level[v as usize];
            tree.parent[v as usize] = d.parent[v as usize];
        }
    }
    let wall = ranks
        .iter()
        .map(|d| d.wall_end)
        .fold(SimTime::ZERO, SimTime::max)
        .since(SimTime::ZERO);
    let m = seq::traversed_edges(g, &tree);
    BfsResult {
        teps: m as f64 / wall.as_secs_f64(),
        traversed_edges: m,
        wall,
        levels: ranks.iter().map(|d| d.levels).max().unwrap_or(0),
        breakdown: ranks.iter().map(|d| (d.comp, d.comm)).collect(),
        tree,
    }
}

/// Run the MPI/InfiniBand baseline analytically (Table IV right column):
/// ranks are packed `ib_gpus_per_node` per node; same-node pairs exchange
/// over the local PCIe (device-to-device copy) instead of the wire.
pub fn run_ib(cfg: &BfsConfig, ib: IbConfig) -> BfsResult {
    let n = 1usize << cfg.scale;
    let edges = crate::bfs::rmat::generate_with(cfg.scale, cfg.edgefactor, cfg.seed, cfg.permute);
    let g = Csr::build(n, &edges);
    let part = Partition { n, np: cfg.np };
    let cost = BfsCost {
        derate: BfsCost::cluster_ii().derate,
        ..cfg.cost.clone()
    };
    let mut states: Vec<RankState> = (0..cfg.np)
        .map(|r| RankState::new(r, part, cfg.root))
        .collect();
    let mut mpi = CudaAwareMpi::new(cfg.np.max(2), ib.clone());
    // Device-to-device rate for same-node pairs (cudaMemcpyPeer class).
    let d2d = apenet_sim::Bandwidth::from_mb_per_sec(5000);
    let d2d_overhead = SimDuration::from_us(12);
    let mut clocks = vec![SimTime::ZERO; cfg.np];
    let mut pairs_in_prev = vec![0u64; cfg.np];
    let mut comp = vec![SimDuration::ZERO; cfg.np];
    let mut comm = vec![SimDuration::ZERO; cfg.np];
    let mut level = 0i32;
    loop {
        let frontier_total: u64 = states.iter().map(|s| s.frontier.len() as u64).sum();
        let mut kernel_end = vec![SimTime::ZERO; cfg.np];
        let mut expansions: Vec<Expansion> = Vec::with_capacity(cfg.np);
        for (r, s) in states.iter_mut().enumerate() {
            let e = s.expand(&g, level + 1);
            let dur = cost.level_kernel(e.edges_scanned, pairs_in_prev[r]);
            comp[r] += dur;
            kernel_end[r] = clocks[r] + dur;
            expansions.push(e);
        }
        // Exchange.
        let mut arrive = kernel_end.clone();
        if cfg.np > 1 {
            for src in 0..cfg.np {
                for pos in 0..cfg.np - 1 {
                    let dst = if pos < src { pos } else { pos + 1 };
                    let bytes = 4 + 8 * expansions[src].to_rank[dst].len() as u64;
                    let same_node = src / cfg.ib_gpus_per_node == dst / cfg.ib_gpus_per_node;
                    let t = if same_node {
                        kernel_end[src] + d2d_overhead + d2d.time_for(bytes)
                    } else {
                        mpi.send_gg(kernel_end[src], src, dst, bytes).complete
                    };
                    arrive[dst] = arrive[dst].max(t);
                }
            }
        }
        for (src, e) in expansions.iter().enumerate() {
            for dstr in 0..cfg.np {
                if src != dstr {
                    pairs_in_prev[dstr] += e.to_rank[dstr].len() as u64;
                    states[dstr].apply(&e.to_rank[dstr], level + 1);
                }
            }
        }
        for r in 0..cfg.np {
            comm[r] += arrive[r].since(kernel_end[r]);
            clocks[r] = arrive[r];
            pairs_in_prev[r] = states[r].frontier.len() as u64; // approx: integration cost next level
        }
        if frontier_total == 0 {
            break;
        }
        level += 1;
        assert!(level < 1000);
    }
    let mut tree = BfsTree {
        level: vec![-1; n],
        parent: vec![-1; n],
    };
    for (r, s) in states.iter().enumerate() {
        let (lo, hi) = part.range(r);
        for v in lo..hi {
            tree.level[v as usize] = s.level[v as usize];
            tree.parent[v as usize] = s.parent[v as usize];
        }
    }
    let wall = clocks
        .iter()
        .fold(SimTime::ZERO, |a, &t| a.max(t))
        .since(SimTime::ZERO);
    let m = seq::traversed_edges(&g, &tree);
    BfsResult {
        teps: m as f64 / wall.as_secs_f64(),
        traversed_edges: m,
        wall,
        levels: level as u32 + 1,
        breakdown: comp.into_iter().zip(comm).collect(),
        tree,
    }
}
