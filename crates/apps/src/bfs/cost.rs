//! The BFS GPU-kernel time model.
//!
//! Calibrated so that the single-GPU traversal of a scale-20, edgefactor
//! 16 R-MAT graph lands on Table IV's 6.7 × 10⁷ TEPS (Cluster I Fermi
//! C2050). The level-synchronous kernel cost is linear in the edges
//! scanned, plus a per-level launch/sync overhead and a small per-pair
//! cost for integrating remotely discovered vertices.

use apenet_sim::SimDuration;

/// BFS kernel cost model.
#[derive(Debug, Clone)]
pub struct BfsCost {
    /// Cost per directed edge scanned, picoseconds.
    pub per_edge_ps: u64,
    /// Per-level fixed cost (kernel launches, frontier compaction, sync).
    pub per_level: SimDuration,
    /// Per received candidate pair (dedup + frontier insert), picoseconds.
    pub per_pair_ps: u64,
    /// Relative GPU speed (1.0 = Cluster I C2050).
    pub derate: f64,
}

impl Default for BfsCost {
    fn default() -> Self {
        BfsCost {
            per_edge_ps: 7200,
            per_level: SimDuration::from_us(35),
            per_pair_ps: 3200,
            derate: 1.0,
        }
    }
}

impl BfsCost {
    /// The Cluster II flavour used by the paper's InfiniBand runs (the
    /// S2075 modules clock slightly lower than the C2050 cards, matching
    /// the 6.2 vs 6.7 × 10⁷ single-GPU TEPS of Table IV).
    pub fn cluster_ii() -> Self {
        BfsCost {
            derate: 6.2 / 6.7,
            ..Self::default()
        }
    }

    /// Kernel duration for one level.
    pub fn level_kernel(&self, edges_scanned: u64, pairs_in: u64) -> SimDuration {
        let ps = (edges_scanned as f64 * self.per_edge_ps as f64
            + pairs_in as f64 * self.per_pair_ps as f64)
            / self.derate;
        self.per_level + SimDuration::from_ps(ps.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_edges() {
        let c = BfsCost::default();
        let a = c.level_kernel(1000, 0);
        let b = c.level_kernel(2000, 0);
        assert!(b > a);
        assert_eq!((b - c.per_level).as_ps(), 2 * (a - c.per_level).as_ps());
    }

    #[test]
    fn derate_slows() {
        let fast = BfsCost::default();
        let slow = BfsCost::cluster_ii();
        assert!(slow.level_kernel(1 << 20, 0) > fast.level_kernel(1 << 20, 0));
    }

    #[test]
    fn single_gpu_teps_anchor() {
        // Scale-20/ef-16 R-MAT: ≈ 2 × 15.9M directed scans over ≈ 8
        // levels; the model must land near 6.7e7 TEPS.
        let c = BfsCost::default();
        let undirected = 15_900_000u64;
        let scans = 2 * undirected;
        let levels = 8;
        let total = c.level_kernel(scans, 0).as_ps() + (levels - 1) * c.per_level.as_ps();
        let teps = undirected as f64 / (total as f64 * 1e-12);
        assert!((6.2e7..7.2e7).contains(&teps), "{teps:.3e}");
    }
}
