//! R-MAT edge generation, graph500-flavoured.
//!
//! The paper's BFS study uses graphs "according to the specs of the
//! graph500 benchmark" (§V.E): R-MAT with (A, B, C, D) =
//! (0.57, 0.19, 0.19, 0.05), `2^scale` vertices and `edgefactor`
//! edges per vertex, with a random vertex relabelling so that contiguous
//! 1-D partitions are load balanced.

use apenet_sim::rng::Xoshiro256ss;

/// Graph500 R-MAT parameters.
pub const RMAT_A: f64 = 0.57;
/// Quadrant B.
pub const RMAT_B: f64 = 0.19;
/// Quadrant C.
pub const RMAT_C: f64 = 0.19;

/// Generate `edgefactor * 2^scale` R-MAT edges over `2^scale` vertices,
/// deterministically from `seed`, optionally permuting vertex labels.
///
/// Without the permutation the heavy R-MAT quadrant concentrates in the
/// low vertex ids — rank 0 of a contiguous 1-D partition then carries a
/// disproportionate share of every frontier, which is what throttles the
/// paper's strong scaling (Table IV); the full graph500 relabelling is
/// kept as an ablation.
pub fn generate_with(scale: u32, edgefactor: u32, seed: u64, permute: bool) -> Vec<(u32, u32)> {
    assert!(scale <= 30, "u32 vertex ids");
    let n = 1u64 << scale;
    let m = n * edgefactor as u64;
    let mut rng = Xoshiro256ss::seed_from(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    if permute {
        rng.shuffle(&mut perm);
    }
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            let r = rng.next_f64();
            let (ub, vb) = if r < RMAT_A {
                (0, 0)
            } else if r < RMAT_A + RMAT_B {
                (0, 1)
            } else if r < RMAT_A + RMAT_B + RMAT_C {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | ub;
            v = (v << 1) | vb;
        }
        edges.push((perm[u as usize], perm[v as usize]));
    }
    edges
}

/// [`generate_with`] with the graph500 relabelling enabled.
pub fn generate(scale: u32, edgefactor: u32, seed: u64) -> Vec<(u32, u32)> {
    generate_with(scale, edgefactor, seed, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(10, 16, 7);
        let b = generate(10, 16, 7);
        let c = generate(10, 16, 8);
        assert_eq!(a.len(), 16 << 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vertices_in_range() {
        let edges = generate(8, 16, 1);
        for &(u, v) in &edges {
            assert!(u < 256 && v < 256);
        }
    }

    #[test]
    fn skewed_degree_distribution() {
        // R-MAT graphs are heavy-tailed: the maximum degree should far
        // exceed the mean.
        let edges = generate(12, 16, 3);
        let mut deg = vec![0u32; 1 << 12];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mean = 2.0 * edges.len() as f64 / deg.len() as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > 8.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn permutation_balances_partitions() {
        // With relabelling, a contiguous 4-way split should see roughly
        // comparable edge endpoint counts (within 3x of each other).
        let edges = generate(12, 16, 3);
        let n = 1usize << 12;
        let mut per_part = [0u64; 4];
        for &(u, v) in &edges {
            per_part[(u as usize) * 4 / n] += 1;
            per_part[(v as usize) * 4 / n] += 1;
        }
        let max = *per_part.iter().max().unwrap() as f64;
        let min = *per_part.iter().min().unwrap() as f64;
        assert!(max / min < 3.0, "{per_part:?}");
    }
}
