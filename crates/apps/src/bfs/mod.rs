//! GPU-accelerated BFS traversal on distributed systems (paper §V.E).

pub mod cost;
pub mod csr;
pub mod dist;
pub mod rmat;
pub mod run;
pub mod seq;

pub use cost::BfsCost;
pub use csr::Csr;
pub use run::{run_apenet, run_ib, BfsConfig, BfsResult};
