//! Distributed level-synchronous BFS: partitioning and the pure per-level
//! expansion/apply steps (the transport-independent algorithm core).

use crate::bfs::csr::Csr;

/// 1-D contiguous vertex partition over `np` ranks.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    /// Total vertices.
    pub n: usize,
    /// Ranks.
    pub np: usize,
}

impl Partition {
    /// Vertices per rank (last rank may own fewer).
    pub fn chunk(&self) -> usize {
        self.n.div_ceil(self.np)
    }

    /// The rank owning vertex `v`.
    pub fn owner(&self, v: u32) -> usize {
        (v as usize / self.chunk()).min(self.np - 1)
    }

    /// The vertex range `[lo, hi)` owned by `rank`.
    pub fn range(&self, rank: usize) -> (u32, u32) {
        let lo = (rank * self.chunk()).min(self.n);
        let hi = ((rank + 1) * self.chunk()).min(self.n);
        (lo as u32, hi as u32)
    }

    /// Number of vertices owned by `rank`.
    pub fn owned(&self, rank: usize) -> usize {
        let (lo, hi) = self.range(rank);
        (hi - lo) as usize
    }
}

/// Per-rank BFS state.
#[derive(Debug, Clone)]
pub struct RankState {
    /// This rank.
    pub rank: usize,
    /// The partition.
    pub part: Partition,
    /// Global level array restricted to owned vertices (indexed globally
    /// for simplicity; foreign entries stay −1).
    pub level: Vec<i32>,
    /// Parents of owned vertices.
    pub parent: Vec<i64>,
    /// Current frontier (owned vertices discovered last level).
    pub frontier: Vec<u32>,
    /// Per-level dedup bitmap for remote candidates.
    sent: Vec<u64>,
}

/// One level's expansion output.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Candidate `(vertex, parent)` pairs per destination rank.
    pub to_rank: Vec<Vec<(u32, u32)>>,
    /// Directed edges scanned (the kernel-cost driver).
    pub edges_scanned: u64,
}

impl RankState {
    /// Fresh state; seeds the frontier with `root` if owned.
    pub fn new(rank: usize, part: Partition, root: u32) -> Self {
        let mut s = RankState {
            rank,
            part,
            level: vec![-1; part.n],
            parent: vec![-1; part.n],
            frontier: Vec::new(),
            sent: vec![0; part.n.div_ceil(64)],
        };
        if part.owner(root) == rank {
            s.level[root as usize] = 0;
            s.parent[root as usize] = root as i64;
            s.frontier.push(root);
        }
        s
    }

    fn sent_test_set(&mut self, v: u32) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        let was = self.sent[w] & (1 << b) != 0;
        self.sent[w] |= 1 << b;
        was
    }

    /// Scan the current frontier: local discoveries are applied on the
    /// spot (they join the *next* frontier later via `apply`), remote
    /// candidates are binned per owner rank, deduplicated per level (the
    /// sort-unique pass of the paper's multi-GPU BFS [15]).
    pub fn expand(&mut self, g: &Csr, next_level: i32) -> Expansion {
        let np = self.part.np;
        let mut to_rank: Vec<Vec<(u32, u32)>> = (0..np).map(|_| Vec::new()).collect();
        let mut edges = 0u64;
        for w in self.sent.iter_mut() {
            *w = 0;
        }
        let frontier = std::mem::take(&mut self.frontier);
        let mut local_new = Vec::new();
        for &u in &frontier {
            edges += g.degree(u);
            for &v in g.neighbors(u) {
                let owner = self.part.owner(v);
                if owner == self.rank {
                    if self.level[v as usize] < 0 {
                        self.level[v as usize] = next_level;
                        self.parent[v as usize] = u as i64;
                        local_new.push(v);
                    }
                } else if !self.sent_test_set(v) {
                    to_rank[owner].push((v, u));
                }
            }
        }
        // Local discoveries seed the next frontier immediately.
        self.frontier = local_new;
        Expansion {
            to_rank,
            edges_scanned: edges,
        }
    }

    /// Apply candidates received from other ranks for `next_level`;
    /// returns how many were fresh (they join the next frontier).
    pub fn apply(&mut self, pairs: &[(u32, u32)], next_level: i32) -> usize {
        let mut fresh = 0;
        for &(v, p) in pairs {
            debug_assert_eq!(self.part.owner(v), self.rank);
            if self.level[v as usize] < 0 {
                self.level[v as usize] = next_level;
                self.parent[v as usize] = p as i64;
                self.frontier.push(v);
                fresh += 1;
            }
        }
        fresh
    }
}

/// Serialize candidates with the frontier-size header (wire format:
/// `[u32 own_frontier_len][(u32 v)(u32 parent)]*`).
pub fn encode(own_frontier: u32, pairs: &[(u32, u32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + pairs.len() * 8);
    out.extend_from_slice(&own_frontier.to_le_bytes());
    for &(v, p) in pairs {
        out.extend_from_slice(&v.to_le_bytes());
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// Inverse of [`encode`].
pub fn decode(bytes: &[u8]) -> (u32, Vec<(u32, u32)>) {
    assert!(bytes.len() >= 4 && (bytes.len() - 4).is_multiple_of(8));
    let header = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let pairs = bytes[4..]
        .chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..8].try_into().unwrap()),
            )
        })
        .collect();
    (header, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::rmat;
    use crate::bfs::seq;

    #[test]
    fn partition_covers_all() {
        let p = Partition { n: 1000, np: 3 };
        let mut seen = 0;
        for r in 0..3 {
            let (lo, hi) = p.range(r);
            for v in lo..hi {
                assert_eq!(p.owner(v), r);
                seen += 1;
            }
        }
        assert_eq!(seen, 1000);
        assert_eq!(p.owned(0) + p.owned(1) + p.owned(2), 1000);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let pairs = vec![(1u32, 2u32), (300, 400), (u32::MAX, 0)];
        let bytes = encode(77, &pairs);
        let (h, back) = decode(&bytes);
        assert_eq!(h, 77);
        assert_eq!(back, pairs);
        assert_eq!(decode(&encode(5, &[])), (5, vec![]));
    }

    /// Run the whole distributed algorithm in-process (perfect transport)
    /// and compare against the sequential reference.
    fn run_inprocess(g: &Csr, np: usize, root: u32) -> seq::BfsTree {
        let part = Partition { n: g.n(), np };
        let mut ranks: Vec<RankState> = (0..np).map(|r| RankState::new(r, part, root)).collect();
        let mut level = 0i32;
        loop {
            let frontier_total: usize = ranks.iter().map(|r| r.frontier.len()).sum();
            if frontier_total == 0 {
                break;
            }
            let expansions: Vec<Expansion> =
                ranks.iter_mut().map(|r| r.expand(g, level + 1)).collect();
            for (src, e) in expansions.iter().enumerate() {
                let _ = src;
                for (dst, pairs) in e.to_rank.iter().enumerate() {
                    ranks[dst].apply(pairs, level + 1);
                }
            }
            level += 1;
            assert!(level < 1000, "runaway");
        }
        // Merge.
        let mut out = seq::BfsTree {
            level: vec![-1; g.n()],
            parent: vec![-1; g.n()],
        };
        for r in &ranks {
            let (lo, hi) = part.range(r.rank);
            for v in lo..hi {
                out.level[v as usize] = r.level[v as usize];
                out.parent[v as usize] = r.parent[v as usize];
            }
        }
        out
    }

    #[test]
    fn distributed_equals_sequential_reference() {
        let edges = rmat::generate(10, 16, 9);
        let g = Csr::build(1 << 10, &edges);
        let reference = seq::bfs(&g, 3);
        for np in [1, 2, 4, 7] {
            let tree = run_inprocess(&g, np, 3);
            seq::validate(&g, 3, &tree, &reference).unwrap_or_else(|e| panic!("np={np}: {e}"));
        }
    }
}
