//! Compressed sparse row adjacency.

/// An undirected graph in CSR form: every input edge is stored in both
//  directions; self-loops dropped; parallel edges deduplicated.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<u64>,
    adjacency: Vec<u32>,
    undirected_edges: u64,
}

impl Csr {
    /// Build from an edge list over `n` vertices.
    pub fn build(n: usize, edges: &[(u32, u32)]) -> Self {
        // Counting sort into rows, both directions.
        let mut deg = vec![0u64; n];
        for &(u, v) in edges {
            if u != v {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut adjacency = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            if u != v {
                adjacency[cursor[u as usize] as usize] = v;
                cursor[u as usize] += 1;
                adjacency[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }
        // Sort and dedup each row in place, then compact.
        let mut out_adj = Vec::with_capacity(adjacency.len());
        let mut out_off = vec![0u64; n + 1];
        for i in 0..n {
            let row = &mut adjacency[offsets[i] as usize..offsets[i + 1] as usize];
            row.sort_unstable();
            let before = out_adj.len();
            let mut last = None;
            for &x in row.iter() {
                if Some(x) != last {
                    out_adj.push(x);
                    last = Some(x);
                }
            }
            out_off[i + 1] = out_off[i] + (out_adj.len() - before) as u64;
        }
        let undirected_edges = out_off[n] / 2;
        Csr {
            offsets: out_off,
            adjacency: out_adj,
            undirected_edges,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct undirected edges (after cleanup).
    pub fn undirected_edges(&self) -> u64 {
        self.undirected_edges
    }

    /// Neighbours of `v`, sorted ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjacency[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// True when `(u, v)` is an edge (binary search).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_undirected_deduped() {
        let edges = vec![(0, 1), (1, 0), (1, 2), (2, 2), (3, 1)];
        let g = Csr::build(4, &edges);
        assert_eq!(g.n(), 4);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1], "self-loop dropped");
        assert_eq!(g.undirected_edges(), 3);
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    fn symmetry() {
        let edges = crate::bfs::rmat::generate(8, 8, 5);
        let g = Csr::build(256, &edges);
        for u in 0..256u32 {
            for &v in g.neighbors(u) {
                assert!(g.has_edge(v, u), "asymmetric {u}-{v}");
            }
        }
    }

    #[test]
    fn isolated_vertices_ok() {
        let g = Csr::build(10, &[(0, 1)]);
        assert_eq!(g.degree(5), 0);
        assert!(g.neighbors(5).is_empty());
    }
}
