//! Over-relaxation in the 3D Heisenberg spin glass.

pub mod cost;
pub mod lattice;
pub mod run;

pub use cost::HsgCost;
pub use lattice::{Slab, SpinLattice};
pub use run::{run_apenet, run_ib, HsgConfig, HsgResult, P2pMode};
