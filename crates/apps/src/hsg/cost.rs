//! The HSG GPU-kernel time model.
//!
//! Calibrated against the paper's single-GPU anchors (§V.D):
//! * L = 256 on one C2050: 921 ps per spin update;
//! * L = 512 on one C2070 (barely fits its 6 GB): 1471 ps per spin —
//!   "though in this case with low efficiency";
//! * the strong-scaling rows of Table II imply mild cache gains as the
//!   resident sub-lattice shrinks (416 ps/global-spin at NP = 2 instead
//!   of the ideal 460).
//!
//! The model is a piecewise-linear per-spin cost in the *resident* site
//! count — the "strong GPU cache effects" that give the super-linear
//! L = 512 speed-up of Fig. 11.

use apenet_sim::SimDuration;

/// Per-spin-update kernel cost model.
#[derive(Debug, Clone)]
pub struct HsgCost {
    /// `(resident_sites, ps_per_spin)` anchors, ascending.
    pub anchors: Vec<(f64, f64)>,
    /// Kernel launch overhead.
    pub launch: SimDuration,
    /// Relative speed of the GPU (1.0 = C2050).
    pub compute_factor: f64,
}

impl Default for HsgCost {
    fn default() -> Self {
        HsgCost {
            anchors: vec![
                (1.0e6, 790.0),
                (4.2e6, 808.0),
                (8.4e6, 830.0),
                (16.8e6, 921.0), // 256^3 resident: the 921 ps anchor
                (33.6e6, 1030.0),
                (67.1e6, 1220.0),
                (134.2e6, 1471.0), // 512^3 resident: the 1471 ps anchor
            ],
            launch: SimDuration::from_us(6),
            compute_factor: 1.0,
        }
    }
}

impl HsgCost {
    /// Per-spin cost in picoseconds for a rank holding `resident` sites.
    pub fn ps_per_spin(&self, resident: u64) -> f64 {
        let r = resident as f64;
        let a = &self.anchors;
        if r <= a[0].0 {
            return a[0].1 / self.compute_factor;
        }
        for w in a.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if r <= x1 {
                let f = (r - x0) / (x1 - x0);
                return (y0 + f * (y1 - y0)) / self.compute_factor;
            }
        }
        a.last().unwrap().1 / self.compute_factor
    }

    /// Kernel duration for updating `spins` sites on a rank holding
    /// `resident` sites.
    pub fn kernel(&self, spins: u64, resident: u64) -> SimDuration {
        let ps = (spins as f64 * self.ps_per_spin(resident)).round() as u64;
        self.launch + SimDuration::from_ps(ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_paper_numbers() {
        let c = HsgCost::default();
        assert!((c.ps_per_spin(16_800_000) - 921.0).abs() < 1.0);
        assert!((c.ps_per_spin(134_200_000) - 1471.0).abs() < 1.0);
    }

    #[test]
    fn np2_resident_cost_matches_table2() {
        // NP = 2 at L = 256: resident 8.4M sites; Ttot = 416 ps/global
        // spin implies 832 ps per local spin.
        let c = HsgCost::default();
        let got = c.ps_per_spin(256 * 256 * 128);
        assert!((820.0..845.0).contains(&got), "{got}");
    }

    #[test]
    fn monotone_in_resident_size() {
        let c = HsgCost::default();
        let mut prev = 0.0;
        for r in [1u64 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 27] {
            let v = c.ps_per_spin(r);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn kernel_scales_with_spins() {
        let c = HsgCost::default();
        let k1 = c.kernel(1 << 20, 1 << 24);
        let k2 = c.kernel(1 << 21, 1 << 24);
        assert!(k2 > k1);
        assert!(k1 >= c.launch);
    }

    #[test]
    fn faster_gpu_shrinks_kernels() {
        let slow = HsgCost::default();
        let fast = HsgCost {
            compute_factor: 1.8,
            ..HsgCost::default()
        };
        assert!(fast.ps_per_spin(1 << 24) < slow.ps_per_spin(1 << 24));
    }
}
