//! Distributed HSG runs: APEnet+ (event-driven, P2P = OFF / RX / ON) and
//! the OpenMPI-over-InfiniBand reference of Table III.
//!
//! The schedule per over-relaxation step follows §V.D exactly: for each
//! checkerboard colour, "first compute the local lattice boundary, then
//! exchange it with the remote nodes, while computing the bulk".

use crate::hsg::cost::HsgCost;
use crate::hsg::lattice::Slab;
use apenet_cluster::cluster::ClusterBuilder;
use apenet_cluster::msg::{HostApi, HostIn, HostProgram, NodeCtx};
use apenet_cluster::node::NodeConfig;
use apenet_cluster::presets::cluster_i_hsg;
use apenet_core::coord::{Coord, TorusDims};
use apenet_ib::{CudaAwareMpi, IbConfig};
use apenet_rdma::api::SrcHint;
use apenet_rdma::staging::{staged_put, staged_recv_finish};
use apenet_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Which datapaths use GPU peer-to-peer (Table III columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P2pMode {
    /// Staging for both TX and RX.
    Off,
    /// Staging for TX, peer-to-peer for RX only.
    Rx,
    /// Peer-to-peer for both.
    On,
}

/// Run parameters.
#[derive(Debug, Clone)]
pub struct HsgConfig {
    /// Lattice side L.
    pub l: usize,
    /// Number of ranks (1-D slab decomposition along z; must divide L).
    pub np: usize,
    /// Over-relaxation sweeps.
    pub steps: u32,
    /// P2P mode for the APEnet+ run.
    pub p2p: P2pMode,
    /// Disorder seed.
    pub seed: u64,
    /// Run the real physics (energy/checksum validation). Turn off for
    /// large timing-only sweeps (e.g. L = 512).
    pub compute: bool,
    /// Kernel cost model.
    pub cost: HsgCost,
    /// Embed the rank ring as a Hamiltonian cycle on the torus (every
    /// ring hop = one torus hop) instead of the naive linear mapping,
    /// whose 2-hop seams on the 4×2 torus trigger a convoy oscillation at
    /// NP = 8 (an ablation the paper's own NP = 8 degradation hints at).
    pub snake: bool,
}

impl HsgConfig {
    /// A small, fully-validated configuration for tests.
    pub fn small(l: usize, np: usize, p2p: P2pMode) -> Self {
        HsgConfig {
            l,
            np,
            steps: 2,
            p2p,
            seed: 12345,
            compute: true,
            cost: HsgCost::default(),
            snake: false,
        }
    }

    /// The paper's strong-scaling configuration (timing-only for speed).
    pub fn paper(l: usize, np: usize, p2p: P2pMode) -> Self {
        HsgConfig {
            l,
            np,
            steps: 3,
            p2p,
            seed: 2013,
            compute: false,
            cost: HsgCost::default(),
            snake: false,
        }
    }
}

/// Aggregated result of a run.
#[derive(Debug, Clone)]
pub struct HsgResult {
    /// Wall time per spin update (the paper's `Ttot`), picoseconds.
    pub ttot_ps: f64,
    /// Boundary + network window per spin (`Tbnd + Tnet`), picoseconds.
    pub tbnd_net_ps: f64,
    /// Network window per spin (`Tnet`), picoseconds.
    pub tnet_ps: f64,
    /// Total wall time.
    pub wall: SimDuration,
    /// Energy before the first sweep (0 when `compute` is off).
    pub energy_initial: f64,
    /// Energy after the last sweep.
    pub energy_final: f64,
    /// Order-independent spin checksum summed over ranks.
    pub checksum: u64,
    /// Per-rank `(tbnd_ps, tnet_ps, wall_end_us)` breakdown.
    pub per_rank: Vec<(f64, f64, f64)>,
}

/// Torus shape used for `np` ranks (subset of the 4×2 Cluster I).
pub fn dims_for(np: usize) -> TorusDims {
    match np {
        1 => TorusDims::new(1, 1, 1),
        2 => TorusDims::new(2, 1, 1),
        4 => TorusDims::new(4, 1, 1),
        8 => TorusDims::new(4, 2, 1),
        _ => panic!("unsupported rank count {np}"),
    }
}

/// The torus coordinate hosting ring rank `r` of `np`.
pub fn coord_for(np: usize, r: usize, snake: bool) -> Coord {
    let dims = dims_for(np);
    if snake && np == 8 {
        // Hamiltonian cycle on the 4×2 torus: every ring hop is adjacent.
        const CYCLE: [(u8, u8); 8] = [
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (3, 1),
            (2, 1),
            (1, 1),
            (0, 1),
        ];
        let (x, y) = CYCLE[r];
        Coord::new(x, y, 0)
    } else {
        dims.coord_of(r)
    }
}

#[derive(Debug, Default)]
struct RankOutcome {
    wall_end: SimTime,
    tnet: SimDuration,
    tbnd: SimDuration,
    energy_initial: f64,
    energy_final: f64,
    checksum: u64,
}

struct HsgRank {
    cfg: HsgConfig,
    rank: usize,
    lz: usize,
    slab: Option<Slab>,
    // GPU buffers, double-buffered by checkerboard colour (phases of one
    // colour reuse their buffers only two phases later, so the pipeline
    // never stalls on send completion). Addresses are symmetric across
    // ranks because every rank allocates in the same order.
    send_up: [u64; 2],
    send_down: [u64; 2],
    recv_from_below: [u64; 2],
    recv_from_above: [u64; 2],
    // Host bounce buffers for the staged modes, also per colour.
    bounce_tx_up: [u64; 2],
    bounce_tx_down: [u64; 2],
    bounce_rx_below: [u64; 2],
    bounce_rx_above: [u64; 2],
    // Phase state.
    step: u32,
    color: u8,
    phase_start: SimTime,
    bnd_done: SimTime,
    bulk_done: SimTime,
    /// Latest usable-time of arrived halos, per colour.
    comm_end_c: [SimTime; 2],
    /// Halos arrived, per colour (early next-phase arrivals accumulate).
    halos_ready: [u8; 2],
    /// Bytes received per colour and side (staged chunks accumulate).
    halo_bytes_in: [[u64; 2]; 2],
    /// Cumulative submitted / completed TX descriptors.
    tx_expect_total: u32,
    tx_seen_total: u32,
    /// A phase may end once every send of *earlier* phases completed
    /// (one-phase-lagged barrier; current sends ride into the next phase).
    tx_barrier: u32,
    bulk_waited: bool,
    outcome: Rc<RefCell<Vec<RankOutcome>>>,
    acc_tnet: SimDuration,
    acc_tbnd: SimDuration,
}

const WAKE_BND: u64 = 1;
const WAKE_BULK: u64 = 2;

impl HsgRank {
    fn halo_len(&self) -> u64 {
        Slab::halo_bytes(self.cfg.l)
    }

    fn up_rank(&self) -> usize {
        (self.rank + 1) % self.cfg.np
    }

    fn down_rank(&self) -> usize {
        (self.rank + self.cfg.np - 1) % self.cfg.np
    }

    fn resident(&self) -> u64 {
        (self.lz * self.cfg.l * self.cfg.l) as u64
    }

    fn boundary_sites(&self) -> u64 {
        // Two boundary planes, one colour each phase.
        (2 * self.cfg.l * self.cfg.l / 2) as u64
    }

    fn bulk_sites(&self) -> u64 {
        self.resident() / 2 - self.boundary_sites()
    }

    /// Start a colour phase at `api.now`.
    fn start_phase(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        self.phase_start = api.now;
        self.bulk_waited = false;
        self.tx_barrier = self.tx_expect_total;
        if std::env::var_os("HSG_TRACE").is_some() {
            eprintln!(
                "r{} phase step{} c{} start at {}",
                self.rank, self.step, self.color, api.now
            );
        }
        if self.cfg.np == 1 {
            if let Some(s) = &mut self.slab {
                s.wrap_ghosts();
            }
        }
        let dev = &node.cuda[0];
        let kb = self.cfg.cost.kernel(self.boundary_sites(), self.resident());
        let s_bnd = apenet_gpu::cuda::CudaDevice::default_stream();
        let done = dev.borrow_mut().launch(api.now, s_bnd, kb);
        self.bnd_done = done;
        api.wake(done.since(api.now), WAKE_BND);
    }

    /// Boundary kernel finished: do the physics, exchange, start bulk.
    fn on_boundary_done(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let color = self.color;
        let _l = self.cfg.l;
        // Physics + send-buffer fill.
        if let Some(slab) = &mut self.slab {
            slab.update_color(color, 1, 1);
            if self.lz > 1 {
                slab.update_color(color, self.lz, self.lz);
            }
            let down_bytes = slab.pack_plane(1, color);
            let up_bytes = slab.pack_plane(self.lz, color);
            let mut dev = node.cuda[0].borrow_mut();
            dev.mem
                .write(self.send_down[color as usize], &down_bytes)
                .unwrap();
            dev.mem
                .write(self.send_up[color as usize], &up_bytes)
                .unwrap();
        } else {
            // Timing-only: the buffers still need materialized bytes.
            let zeros = vec![0u8; self.halo_len() as usize];
            let mut dev = node.cuda[0].borrow_mut();
            dev.mem
                .write(self.send_down[color as usize], &zeros)
                .unwrap();
            dev.mem.write(self.send_up[color as usize], &zeros).unwrap();
        }
        // Exchange (np == 1 wraps locally instead).
        if self.cfg.np > 1 {
            let up = coord_for(self.cfg.np, self.up_rank(), self.cfg.snake);
            let down = coord_for(self.cfg.np, self.down_rank(), self.cfg.snake);
            self.submit_halo(node, api, self.send_up[color as usize], up, true);
            self.submit_halo(node, api, self.send_down[color as usize], down, false);
        } else if let Some(slab) = &mut self.slab {
            slab.wrap_ghosts();
        }
        // Bulk kernel (serialized after the boundary kernel on the GPU,
        // overlapping the exchange).
        if let Some(slab) = &mut self.slab {
            if self.lz > 2 {
                slab.update_color(color, 2, self.lz - 1);
            }
        }
        let kb = self.cfg.cost.kernel(self.bulk_sites(), self.resident());
        let s_bulk = apenet_gpu::cuda::CudaDevice::default_stream();
        let done = node.cuda[0].borrow_mut().launch(api.now, s_bulk, kb);
        self.bulk_done = done;
        api.wake(done.since(api.now), WAKE_BULK);
    }

    /// Submit one halo message; `to_upper` selects the destination slot
    /// (my top plane becomes the upper neighbour's from-below ghost).
    fn submit_halo(
        &mut self,
        node: &mut NodeCtx,
        api: &mut HostApi<'_, '_>,
        src_gpu: u64,
        peer: Coord,
        to_upper: bool,
    ) {
        let len = self.halo_len();
        let staged_tx = matches!(self.cfg.p2p, P2pMode::Off | P2pMode::Rx);
        let staged_rx = matches!(self.cfg.p2p, P2pMode::Off);
        let c = self.color as usize;
        let dst = match (staged_rx, to_upper) {
            (false, true) => self.recv_from_below[c],
            (false, false) => self.recv_from_above[c],
            (true, true) => self.bounce_rx_below[c],
            (true, false) => self.bounce_rx_above[c],
        };
        if staged_tx {
            let bounce = if to_upper {
                self.bounce_tx_up[c]
            } else {
                self.bounce_tx_down[c]
            };
            let mut dev = node.cuda[0].borrow_mut();
            let mut hm = node.hostmem.borrow_mut();
            let plan = staged_put(
                &mut node.ep,
                &mut dev,
                &mut hm,
                api.now,
                src_gpu,
                bounce,
                len,
                peer,
                dst,
            )
            .expect("staged halo put");
            for (t, desc) in plan.submissions {
                self.tx_expect_total += 1;
                api.submit(t.since(api.now), desc);
            }
        } else {
            let out = node
                .ep
                .put(src_gpu, len, peer, dst, SrcHint::Gpu)
                .expect("halo put");
            self.tx_expect_total += 1;
            api.submit(out.host_cost, out.desc);
        }
    }

    /// Classify a delivery address into `(ghost_plane, colour, gpu_base,
    /// offset, staged)` — staged transfers deliver in chunks at offsets
    /// within the bounce buffer.
    fn classify_halo(&self, dst_vaddr: u64) -> (usize, usize, u64, u64, bool) {
        let len = self.halo_len();
        let within = |base: u64| dst_vaddr >= base && dst_vaddr < base + len;
        for c in 0..2 {
            if within(self.recv_from_below[c]) {
                return (
                    0,
                    c,
                    self.recv_from_below[c],
                    dst_vaddr - self.recv_from_below[c],
                    false,
                );
            }
            if within(self.recv_from_above[c]) {
                return (
                    self.lz + 1,
                    c,
                    self.recv_from_above[c],
                    dst_vaddr - self.recv_from_above[c],
                    false,
                );
            }
            if within(self.bounce_rx_below[c]) {
                return (
                    0,
                    c,
                    self.recv_from_below[c],
                    dst_vaddr - self.bounce_rx_below[c],
                    true,
                );
            }
            if within(self.bounce_rx_above[c]) {
                return (
                    self.lz + 1,
                    c,
                    self.recv_from_above[c],
                    dst_vaddr - self.bounce_rx_above[c],
                    true,
                );
            }
        }
        panic!("delivery at unknown address {dst_vaddr:#x}");
    }

    fn on_halo(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>, dst_vaddr: u64, len: u64) {
        let (ghost_plane, color, gpu_base, offset, staged) = self.classify_halo(dst_vaddr);
        let mut usable = api.now;
        if staged {
            // Copy this chunk up to the GPU destination.
            let mut dev = node.cuda[0].borrow_mut();
            let mut hm = node.hostmem.borrow_mut();
            usable = staged_recv_finish(
                &mut dev,
                &mut hm,
                api.now,
                dst_vaddr,
                gpu_base + offset,
                len,
            );
        }
        let side = usize::from(ghost_plane != 0);
        self.halo_bytes_in[color][side] += len;
        self.comm_end_c[color] = self.comm_end_c[color].max(usable);
        debug_assert!(self.halo_bytes_in[color][side] <= self.halo_len());
        let full = self.halo_len();
        if self.halo_bytes_in[color][side] == full {
            self.halo_bytes_in[color][side] = 0;
            if let Some(slab) = &mut self.slab {
                let bytes = node.cuda[0]
                    .borrow_mut()
                    .mem
                    .read_vec(gpu_base, full)
                    .unwrap();
                // Unpacking the opposite colour early is safe: the next
                // phase only reads the *other* colour's ghost sites.
                slab.unpack_ghost(ghost_plane, color as u8, &bytes);
            }
            self.halos_ready[color] += 1;
            if std::env::var_os("HSG_TRACE").is_some() && self.rank == 0 {
                eprintln!(
                    "r0 step{} c{} halo c{color} n{} at {} (bnd_done {})",
                    self.step, self.color, self.halos_ready[color], api.now, self.bnd_done
                );
            }
            self.maybe_finish_phase(node, api);
        }
    }

    fn phase_comm_done(&self) -> bool {
        self.cfg.np == 1
            || (self.halos_ready[self.color as usize] >= 2 && self.tx_seen_total >= self.tx_barrier)
    }

    fn maybe_finish_phase(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if self.step >= self.cfg.steps || !(self.bulk_waited && self.phase_comm_done()) {
            return;
        }
        // Phase accounting.
        let c = self.color as usize;
        let comm_end = self.comm_end_c[c];
        self.acc_tbnd += self.bnd_done.since(self.phase_start);
        if self.cfg.np > 1 {
            self.acc_tnet += comm_end.since(self.bnd_done);
        }
        // Consume this colour's arrivals.
        self.halos_ready[c] = 0;
        self.comm_end_c[c] = SimTime::ZERO;
        let end = self.bulk_done.max(comm_end).max(api.now);
        // Advance colour/step.
        if self.color == 0 {
            self.color = 1;
        } else {
            self.color = 0;
            self.step += 1;
        }
        if self.step == self.cfg.steps {
            let mut out = self.outcome.borrow_mut();
            let slot = &mut out[self.rank];
            slot.wall_end = end;
            slot.tnet = self.acc_tnet;
            slot.tbnd = self.acc_tbnd;
            if let Some(slab) = &self.slab {
                slot.energy_final = slab.owned_energy();
                slot.checksum = slab.checksum();
            }
            return;
        }
        // Next phase starts when both engines are done.
        let now = api.now;
        if end > now {
            // Defer via a wake at `end`.
            self.bulk_waited = false;
            api.wake(end.since(now), WAKE_BULK | 0x100);
        } else {
            self.start_phase(node, api);
        }
    }
}

impl HostProgram for HsgRank {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let len = self.halo_len();
        let mut dev = node.cuda[0].borrow_mut();
        for c in 0..2 {
            self.send_up[c] = dev.malloc(len).unwrap();
            self.send_down[c] = dev.malloc(len).unwrap();
            self.recv_from_below[c] = dev.malloc(len).unwrap();
            self.recv_from_above[c] = dev.malloc(len).unwrap();
        }
        drop(dev);
        let mut hm = node.hostmem.borrow_mut();
        for c in 0..2 {
            self.bounce_tx_up[c] = hm.alloc(len).unwrap();
            self.bounce_tx_down[c] = hm.alloc(len).unwrap();
            self.bounce_rx_below[c] = hm.alloc(len).unwrap();
            self.bounce_rx_above[c] = hm.alloc(len).unwrap();
        }
        drop(hm);
        // Register the PUT targets first: the BUF_LIST scan is linear, so
        // the hot RX buffers want the lowest indices.
        for c in 0..2 {
            for addr in [
                self.recv_from_below[c],
                self.recv_from_above[c],
                self.bounce_rx_below[c],
                self.bounce_rx_above[c],
            ] {
                node.ep.register(addr, len).unwrap();
            }
        }
        for c in 0..2 {
            for addr in [
                self.send_up[c],
                self.send_down[c],
                self.bounce_tx_up[c],
                self.bounce_tx_down[c],
            ] {
                node.ep.register(addr, len).unwrap();
            }
        }
        if self.cfg.compute {
            let slab = Slab::new(self.cfg.l, self.rank * self.lz, self.lz, self.cfg.seed);
            self.outcome.borrow_mut()[self.rank].energy_initial = slab.owned_energy();
            self.slab = Some(slab);
        }
        self.start_phase(node, api);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        match ev {
            HostIn::Wake(WAKE_BND) => self.on_boundary_done(node, api),
            HostIn::Wake(WAKE_BULK) => {
                self.bulk_waited = true;
                self.maybe_finish_phase(node, api);
            }
            HostIn::Wake(tag) if tag & 0x100 != 0 => {
                // Deferred phase turnover.
                self.start_phase(node, api);
            }
            HostIn::Wake(_) => {}
            HostIn::Delivered { dst_vaddr, len, .. } => {
                self.on_halo(node, api, dst_vaddr, len);
            }
            HostIn::TxDone { .. } => {
                self.tx_seen_total += 1;
                self.maybe_finish_phase(node, api);
            }
            HostIn::Fault(_) => {} // apps run on healthy clusters
            HostIn::Start => unreachable!("start handled by the actor"),
        }
    }
}

/// Run the APEnet+ version.
pub fn run_apenet(cfg: &HsgConfig) -> HsgResult {
    run_apenet_on(cfg, cluster_i_hsg())
}

/// Run the APEnet+ version on a custom node configuration.
pub fn run_apenet_on(cfg: &HsgConfig, node_cfg: NodeConfig) -> HsgResult {
    assert_eq!(cfg.l % cfg.np, 0, "np must divide L");
    let lz = cfg.l / cfg.np;
    assert!(lz >= 2 || cfg.np == 1, "need at least 2 planes per rank");
    let dims = dims_for(cfg.np);
    let outcome = Rc::new(RefCell::new(
        (0..cfg.np)
            .map(|_| RankOutcome::default())
            .collect::<Vec<_>>(),
    ));
    // Node n hosts the ring rank whose coordinate is n's coordinate.
    let mut node_to_rank = vec![0usize; cfg.np];
    for r in 0..cfg.np {
        node_to_rank[dims.rank_of(coord_for(cfg.np, r, cfg.snake))] = r;
    }
    let programs: Vec<Box<dyn HostProgram>> = (0..cfg.np)
        .map(|node| {
            let rank = node_to_rank[node];
            Box::new(HsgRank {
                cfg: cfg.clone(),
                rank,
                lz,
                slab: None,
                send_up: [0; 2],
                send_down: [0; 2],
                recv_from_below: [0; 2],
                recv_from_above: [0; 2],
                bounce_tx_up: [0; 2],
                bounce_tx_down: [0; 2],
                bounce_rx_below: [0; 2],
                bounce_rx_above: [0; 2],
                step: 0,
                color: 0,
                phase_start: SimTime::ZERO,
                bnd_done: SimTime::ZERO,
                bulk_done: SimTime::ZERO,
                comm_end_c: [SimTime::ZERO; 2],
                halos_ready: [0; 2],
                halo_bytes_in: [[0; 2]; 2],
                tx_expect_total: 0,
                tx_seen_total: 0,
                tx_barrier: 0,
                bulk_waited: false,
                outcome: outcome.clone(),
                acc_tnet: SimDuration::ZERO,
                acc_tbnd: SimDuration::ZERO,
            }) as Box<dyn HostProgram>
        })
        .collect();
    let mut cluster = ClusterBuilder::new(dims, node_cfg).build(programs);
    cluster.run();
    let out = outcome.borrow();
    aggregate(cfg, &out)
}

fn aggregate(cfg: &HsgConfig, out: &[RankOutcome]) -> HsgResult {
    let spins = (cfg.l as f64).powi(3) * cfg.steps as f64;
    let wall = out
        .iter()
        .map(|o| o.wall_end)
        .fold(SimTime::ZERO, SimTime::max)
        .since(SimTime::ZERO);
    let tnet: f64 = out.iter().map(|o| o.tnet.as_ps() as f64).sum::<f64>() / out.len() as f64;
    let tbnd: f64 = out.iter().map(|o| o.tbnd.as_ps() as f64).sum::<f64>() / out.len() as f64;
    HsgResult {
        ttot_ps: wall.as_ps() as f64 / spins,
        tbnd_net_ps: (tbnd + tnet) / spins,
        tnet_ps: tnet / spins,
        wall,
        energy_initial: out.iter().map(|o| o.energy_initial).sum(),
        energy_final: out.iter().map(|o| o.energy_final).sum(),
        checksum: out.iter().fold(0u64, |a, o| a.wrapping_add(o.checksum)),
        per_rank: out
            .iter()
            .map(|o| {
                (
                    o.tbnd.as_ps() as f64 / spins,
                    o.tnet.as_ps() as f64 / spins,
                    o.wall_end.as_us_f64(),
                )
            })
            .collect(),
    }
}

/// Run the OpenMPI/InfiniBand reference analytically (Table III).
pub fn run_ib(cfg: &HsgConfig, ib: IbConfig) -> HsgResult {
    assert_eq!(cfg.l % cfg.np, 0);
    let np = cfg.np;
    let lz = cfg.l / np;
    let resident = (lz * cfg.l * cfg.l) as u64;
    let halo = Slab::halo_bytes(cfg.l);
    let mut slabs: Vec<Option<Slab>> = (0..np)
        .map(|r| cfg.compute.then(|| Slab::new(cfg.l, r * lz, lz, cfg.seed)))
        .collect();
    let energy_initial: f64 = slabs
        .iter()
        .map(|s| s.as_ref().map_or(0.0, |s| s.owned_energy()))
        .sum();
    let mut mpi = CudaAwareMpi::new(np.max(2), ib);
    let mut clocks = vec![SimTime::ZERO; np];
    let boundary_sites = (cfg.l * cfg.l) as u64;
    let bulk_sites = resident / 2 - boundary_sites;
    let mut tnet_acc = SimDuration::ZERO;
    let mut tbnd_acc = SimDuration::ZERO;
    for _step in 0..cfg.steps {
        for color in 0..2u8 {
            // Boundary kernels.
            let bnd: Vec<SimTime> = clocks
                .iter()
                .map(|&t| t + cfg.cost.kernel(boundary_sites, resident))
                .collect();
            // Physics.
            let mut halos: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(np);
            for slab in slabs.iter_mut() {
                if let Some(s) = slab {
                    s.update_color(color, 1, 1);
                    if lz > 1 {
                        s.update_color(color, lz, lz);
                    }
                    if np == 1 {
                        s.wrap_ghosts();
                        halos.push((Vec::new(), Vec::new()));
                    } else {
                        halos.push((s.pack_plane(lz, color), s.pack_plane(1, color)));
                    }
                    if lz > 2 {
                        s.update_color(color, 2, lz - 1);
                    }
                } else {
                    halos.push((Vec::new(), Vec::new()));
                }
            }
            // Exchange.
            let mut arrivals = vec![SimTime::ZERO; np];
            let mut send_free = vec![SimTime::ZERO; np];
            if np > 1 {
                for r in 0..np {
                    let up = (r + 1) % np;
                    let down = (r + np - 1) % np;
                    let a = mpi.send_gg(bnd[r], r, up, halo);
                    let b = mpi.send_gg(bnd[r], r, down, halo);
                    arrivals[up] = arrivals[up].max(a.complete);
                    arrivals[down] = arrivals[down].max(b.complete);
                    send_free[r] = a.sender_free.max(b.sender_free);
                }
                for (r, slab) in slabs.iter_mut().enumerate() {
                    if let Some(s) = slab {
                        let up = (r + 1) % np;
                        let down = (r + np - 1) % np;
                        s.unpack_ghost(lz + 1, color, &halos[up].1);
                        s.unpack_ghost(0, color, &halos[down].0);
                    }
                }
            }
            // Phase turnover.
            for r in 0..np {
                let bulk_done = bnd[r] + cfg.cost.kernel(bulk_sites, resident);
                let comm_end = if np > 1 {
                    arrivals[r].max(send_free[r])
                } else {
                    bnd[r]
                };
                tbnd_acc += bnd[r].since(clocks[r]);
                if np > 1 {
                    tnet_acc += comm_end.since(bnd[r]);
                }
                clocks[r] = bulk_done.max(comm_end);
            }
        }
    }
    let spins = (cfg.l as f64).powi(3) * cfg.steps as f64;
    let wall = clocks
        .iter()
        .fold(SimTime::ZERO, |a, &t| a.max(t))
        .since(SimTime::ZERO);
    HsgResult {
        ttot_ps: wall.as_ps() as f64 / spins,
        tbnd_net_ps: (tbnd_acc.as_ps() as f64 + tnet_acc.as_ps() as f64) / (np as f64 * spins),
        tnet_ps: tnet_acc.as_ps() as f64 / (np as f64 * spins),
        wall,
        energy_initial,
        energy_final: slabs
            .iter()
            .map(|s| s.as_ref().map_or(0.0, |s| s.owned_energy()))
            .sum(),
        checksum: slabs.iter().fold(0u64, |a, s| {
            a.wrapping_add(s.as_ref().map_or(0, |s| s.checksum()))
        }),
        per_rank: Vec::new(),
    }
}
