//! The Heisenberg spin-glass lattice.
//!
//! Spins are unit 3-vectors on an L³ periodic lattice with quenched ±J
//! couplings; the over-relaxation move reflects each spin about its local
//! field, `s' = 2(s·h)/(h·h)·h − s`, which *exactly conserves the energy*
//! — the model's strongest end-to-end correctness invariant. The
//! checkerboard (even/odd) schedule makes same-colour updates
//! order-independent, so a distributed run must produce bit-identical
//! spins to the sequential reference.
//!
//! Couplings and initial spins are derived from deterministic hashes of
//! the *global* site coordinates, so every rank sees the same disorder
//! without storing or communicating it.

use apenet_sim::rng::SplitMix64;

/// A contiguous slab of `lz` planes of a global L³ lattice, plus one
/// ghost plane on each side.
#[derive(Debug, Clone)]
pub struct Slab {
    /// Global lattice side L.
    pub l: usize,
    /// Owned planes (global z in `z0 .. z0+lz`).
    pub lz: usize,
    /// Global z of the first owned plane.
    pub z0: usize,
    /// Disorder seed.
    pub seed: u64,
    /// Spins of `(lz + 2)` planes: local plane `p` holds global plane
    /// `z0 + p - 1` (p = 0 and p = lz+1 are ghosts).
    spins: Vec<[f32; 3]>,
}

/// A full lattice is a slab owning every plane.
pub type SpinLattice = Slab;

fn site_hash(seed: u64, x: usize, y: usize, z: usize, tag: u64) -> u64 {
    let key = (x as u64) | ((y as u64) << 16) | ((z as u64) << 32) | (tag << 48);
    let mut sm = SplitMix64::new(seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

/// Random unit vector for a site, deterministic in (seed, coords).
fn site_spin(seed: u64, x: usize, y: usize, z: usize) -> [f32; 3] {
    // Marsaglia rejection on deterministic draws.
    let mut k = 0u64;
    loop {
        let a = site_hash(seed, x, y, z, 1 + 2 * k);
        let b = site_hash(seed, x, y, z, 2 + 2 * k);
        let u = (a >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let v = (b >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let s = u * u + v * v;
        if s < 1.0 && s > 0.0 {
            let f = (1.0 - s).sqrt();
            return [
                (2.0 * u * f) as f32,
                (2.0 * v * f) as f32,
                (1.0 - 2.0 * s) as f32,
            ];
        }
        k += 1;
    }
}

/// The ±1 coupling on the bond leaving `(x,y,z)` in direction `dir`
/// (0 = +x, 1 = +y, 2 = +z), deterministic and globally consistent.
pub fn coupling(seed: u64, l: usize, x: usize, y: usize, z: usize, dir: usize) -> f32 {
    let (x, y, z) = (x % l, y % l, z % l);
    if site_hash(seed, x, y, z, 100 + dir as u64) & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

impl Slab {
    /// Build the slab owning global planes `z0 .. z0+lz` of an L³ lattice.
    pub fn new(l: usize, z0: usize, lz: usize, seed: u64) -> Self {
        assert!(lz >= 1 && lz <= l && z0 < l);
        let mut spins = vec![[0.0f32; 3]; (lz + 2) * l * l];
        for p in 0..lz + 2 {
            let zg = (z0 + l + p - 1) % l; // global plane of local p
            for y in 0..l {
                for x in 0..l {
                    spins[(p * l + y) * l + x] = site_spin(seed, x, y, zg);
                }
            }
        }
        Slab {
            l,
            lz,
            z0,
            seed,
            spins,
        }
    }

    /// A full (single-rank) lattice.
    pub fn full(l: usize, seed: u64) -> Self {
        Self::new(l, 0, l, seed)
    }

    /// Number of owned sites.
    pub fn owned_sites(&self) -> usize {
        self.lz * self.l * self.l
    }

    #[inline]
    fn idx(&self, p: usize, y: usize, x: usize) -> usize {
        (p * self.l + y) * self.l + x
    }

    /// The global z of local plane `p`.
    pub fn global_z(&self, p: usize) -> usize {
        (self.z0 + self.l + p - 1) % self.l
    }

    /// Read a spin at local plane `p` (ghosts allowed).
    pub fn spin(&self, p: usize, y: usize, x: usize) -> [f32; 3] {
        self.spins[self.idx(p, y, x)]
    }

    /// Parity of a site (checkerboard colour).
    #[inline]
    pub fn color_of(&self, x: usize, y: usize, zg: usize) -> u8 {
        ((x + y + zg) & 1) as u8
    }

    #[inline]
    fn field(&self, p: usize, y: usize, x: usize) -> [f32; 3] {
        let l = self.l;
        let zg = self.global_z(p);
        let s = self.seed;
        let xm = (x + l - 1) % l;
        let xp = (x + 1) % l;
        let ym = (y + l - 1) % l;
        let yp = (y + 1) % l;
        let zgm = (zg + l - 1) % l;
        let jxp = coupling(s, l, x, y, zg, 0);
        let jxm = coupling(s, l, xm, y, zg, 0);
        let jyp = coupling(s, l, x, y, zg, 1);
        let jym = coupling(s, l, x, ym, zg, 1);
        let jzp = coupling(s, l, x, y, zg, 2);
        let jzm = coupling(s, l, x, y, zgm, 2);
        let sp = &self.spins;
        let a = sp[self.idx(p, y, xp)];
        let b = sp[self.idx(p, y, xm)];
        let c = sp[self.idx(p, yp, x)];
        let d = sp[self.idx(p, ym, x)];
        let e = sp[self.idx(p + 1, y, x)];
        let f = sp[self.idx(p - 1, y, x)];
        [
            jxp * a[0] + jxm * b[0] + jyp * c[0] + jym * d[0] + jzp * e[0] + jzm * f[0],
            jxp * a[1] + jxm * b[1] + jyp * c[1] + jym * d[1] + jzp * e[1] + jzm * f[1],
            jxp * a[2] + jxm * b[2] + jyp * c[2] + jym * d[2] + jzp * e[2] + jzm * f[2],
        ]
    }

    /// Over-relax every site of `color` in local planes `p_lo..=p_hi`.
    /// Returns the number of spins updated.
    pub fn update_color(&mut self, color: u8, p_lo: usize, p_hi: usize) -> u64 {
        assert!(p_lo >= 1 && p_hi <= self.lz);
        let l = self.l;
        let mut n = 0;
        for p in p_lo..=p_hi {
            let zg = self.global_z(p);
            for y in 0..l {
                // Sites of the colour form a stride-2 pattern per row.
                let x0 = (color as usize + y + zg) & 1;
                for x in (x0..l).step_by(2) {
                    let h = self.field(p, y, x);
                    let hh = h[0] * h[0] + h[1] * h[1] + h[2] * h[2];
                    if hh > 0.0 {
                        let i = self.idx(p, y, x);
                        let s = self.spins[i];
                        let f = 2.0 * (s[0] * h[0] + s[1] * h[1] + s[2] * h[2]) / hh;
                        self.spins[i] = [f * h[0] - s[0], f * h[1] - s[1], f * h[2] - s[2]];
                    }
                    n += 1;
                }
            }
        }
        n
    }

    /// Refresh both ghost planes from the slab's own data (single-rank
    /// periodic wrap; only valid when `lz == l`).
    pub fn wrap_ghosts(&mut self) {
        assert_eq!(self.lz, self.l, "wrap_ghosts is for full lattices");
        let l = self.l;
        for y in 0..l {
            for x in 0..l {
                let top_src = self.idx(self.lz, y, x);
                let top_dst = self.idx(0, y, x);
                self.spins[top_dst] = self.spins[top_src];
                let bot_src = self.idx(1, y, x);
                let bot_dst = self.idx(self.lz + 1, y, x);
                self.spins[bot_dst] = self.spins[bot_src];
            }
        }
    }

    /// Pack the spins of `color` in local plane `p` (row-major y, x)
    /// into little-endian f32 bytes — the halo-exchange wire format.
    pub fn pack_plane(&self, p: usize, color: u8) -> Vec<u8> {
        let l = self.l;
        let zg = self.global_z(p);
        let mut out = Vec::with_capacity(l * l / 2 * 12);
        for y in 0..l {
            let x0 = (color as usize + y + zg) & 1;
            for x in (x0..l).step_by(2) {
                let s = self.spins[self.idx(p, y, x)];
                for c in s {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        out
    }

    /// Unpack halo bytes into a ghost plane (`p` = 0 or `lz + 1`).
    pub fn unpack_ghost(&mut self, p: usize, color: u8, data: &[u8]) {
        assert!(p == 0 || p == self.lz + 1, "only ghost planes");
        let l = self.l;
        let zg = self.global_z(p);
        let mut it = data.chunks_exact(4);
        for y in 0..l {
            let x0 = (color as usize + y + zg) & 1;
            for x in (x0..l).step_by(2) {
                let mut s = [0.0f32; 3];
                for c in &mut s {
                    let b = it.next().expect("halo payload size matches plane");
                    *c = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
                }
                let i = self.idx(p, y, x);
                self.spins[i] = s;
            }
        }
        assert!(it.next().is_none(), "halo payload exactly consumed");
    }

    /// Bytes of one halo message (one colour of one plane).
    pub fn halo_bytes(l: usize) -> u64 {
        (l * l / 2 * 12) as u64
    }

    /// Energy of the bonds this slab owns: all x/y bonds of owned planes
    /// plus the +z bond of every owned plane (the bond into the upper
    /// neighbour is owned by the lower plane, so ranks never double
    /// count). Summing over ranks gives the global energy.
    pub fn owned_energy(&self) -> f64 {
        let l = self.l;
        let mut e = 0.0f64;
        for p in 1..=self.lz {
            let zg = self.global_z(p);
            for y in 0..l {
                for x in 0..l {
                    let s = self.spin(p, y, x);
                    let nx = self.spin(p, y, (x + 1) % l);
                    let ny = self.spin(p, (y + 1) % l, x);
                    let nz = self.spin(p + 1, y, x);
                    let dot =
                        |a: [f32; 3], b: [f32; 3]| (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) as f64;
                    e -= coupling(self.seed, l, x, y, zg, 0) as f64 * dot(s, nx);
                    e -= coupling(self.seed, l, x, y, zg, 1) as f64 * dot(s, ny);
                    e -= coupling(self.seed, l, x, y, zg, 2) as f64 * dot(s, nz);
                }
            }
        }
        e
    }

    /// Checksum of owned spins (order-independent sum of bit patterns) —
    /// used to compare distributed runs against the reference.
    pub fn checksum(&self) -> u64 {
        let mut acc = 0u64;
        for p in 1..=self.lz {
            for y in 0..self.l {
                for x in 0..self.l {
                    let s = self.spin(p, y, x);
                    for c in s {
                        acc = acc.wrapping_add(c.to_bits() as u64);
                    }
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spins_are_unit_vectors() {
        let lat = Slab::full(8, 42);
        for p in 1..=8 {
            for y in 0..8 {
                for x in 0..8 {
                    let s = lat.spin(p, y, x);
                    let n = s[0] * s[0] + s[1] * s[1] + s[2] * s[2];
                    assert!((n - 1.0).abs() < 1e-5, "norm {n}");
                }
            }
        }
    }

    #[test]
    fn couplings_are_pm1_and_deterministic() {
        let a = coupling(7, 16, 3, 4, 5, 2);
        let b = coupling(7, 16, 3, 4, 5, 2);
        assert_eq!(a, b);
        assert!(a == 1.0 || a == -1.0);
        // Roughly balanced disorder.
        let mut plus = 0;
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..16 {
                    for d in 0..3 {
                        if coupling(7, 16, x, y, z, d) > 0.0 {
                            plus += 1;
                        }
                    }
                }
            }
        }
        let frac = plus as f64 / (16.0 * 16.0 * 16.0 * 3.0);
        assert!((0.45..0.55).contains(&frac), "{frac}");
    }

    #[test]
    fn overrelaxation_conserves_energy() {
        let mut lat = Slab::full(8, 99);
        lat.wrap_ghosts();
        let e0 = lat.owned_energy();
        for _ in 0..5 {
            for color in 0..2 {
                lat.update_color(color, 1, 8);
                lat.wrap_ghosts();
            }
        }
        let e1 = lat.owned_energy();
        assert!(
            (e0 - e1).abs() < 1e-2 * e0.abs().max(1.0),
            "energy drifted: {e0} -> {e1}"
        );
        // But spins did change.
        let fresh = Slab::full(8, 99);
        assert_ne!(lat.checksum(), fresh.checksum());
    }

    #[test]
    fn slab_init_matches_full_lattice() {
        let full = Slab::full(8, 5);
        let slab = Slab::new(8, 4, 4, 5);
        for p in 1..=4 {
            let zg = slab.global_z(p);
            for y in 0..8 {
                for x in 0..8 {
                    assert_eq!(slab.spin(p, y, x), full.spin(zg + 1, y, x));
                }
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let lat = Slab::full(8, 11);
        let mut dst = Slab::new(8, 2, 2, 11);
        // Plane global z=1 is dst's lower ghost (z0=2 → ghost holds z=1).
        let src_plane_global = 1;
        let bytes = lat.pack_plane(src_plane_global + 1, 0);
        assert_eq!(bytes.len() as u64, Slab::halo_bytes(8));
        dst.unpack_ghost(0, 0, &bytes);
        let zg = dst.global_z(0);
        assert_eq!(zg, 1);
        for y in 0..8 {
            for x in 0..8 {
                if dst.color_of(x, y, zg) == 0 {
                    assert_eq!(dst.spin(0, y, x), lat.spin(zg + 1, y, x));
                }
            }
        }
    }

    #[test]
    fn distributed_energy_partition_sums_to_global() {
        let full = Slab::full(8, 3);
        let total: f64 = (0..4)
            .map(|r| Slab::new(8, r * 2, 2, 3).owned_energy())
            .sum();
        assert!((full.owned_energy() - total).abs() < 1e-6);
    }

    #[test]
    fn update_counts_half_the_sites() {
        let mut lat = Slab::full(6, 1);
        lat.wrap_ghosts();
        let n = lat.update_color(0, 1, 6);
        assert_eq!(n, 6 * 6 * 6 / 2);
    }
}
