//! End-to-end BFS tests: traversal correctness through the simulated
//! fabric plus Table IV / Fig. 12 shape checks.

use apenet_apps::bfs::csr::Csr;
use apenet_apps::bfs::rmat;
use apenet_apps::bfs::run::{run_apenet, run_ib};
use apenet_apps::bfs::seq;
use apenet_apps::bfs::BfsConfig;
use apenet_ib::IbConfig;

fn reference(cfg: &BfsConfig) -> (Csr, seq::BfsTree) {
    let edges = rmat::generate_with(cfg.scale, cfg.edgefactor, cfg.seed, cfg.permute);
    let g = Csr::build(1 << cfg.scale, &edges);
    let t = seq::bfs(&g, cfg.root);
    (g, t)
}

#[test]
fn distributed_traversal_is_correct() {
    for np in [1usize, 2, 4, 8] {
        let cfg = BfsConfig::small(10, np);
        let r = run_apenet(&cfg);
        let (g, reference) = reference(&cfg);
        seq::validate(&g, cfg.root, &r.tree, &reference).unwrap_or_else(|e| panic!("np={np}: {e}"));
        assert!(r.traversed_edges > 1000);
    }
}

#[test]
fn permuted_graph_traversal_is_correct() {
    let mut cfg = BfsConfig::small(10, 4);
    cfg.permute = true;
    let r = run_apenet(&cfg);
    let (g, reference) = reference(&cfg);
    seq::validate(&g, cfg.root, &r.tree, &reference).unwrap();
}

#[test]
fn ib_traversal_is_correct_too() {
    let cfg = BfsConfig::small(10, 4);
    let r = run_ib(&cfg, IbConfig::cluster_ii());
    let (g, reference) = reference(&cfg);
    seq::validate(&g, cfg.root, &r.tree, &reference).unwrap();
}

#[test]
fn table4_single_gpu_teps() {
    let r = run_apenet(&BfsConfig::paper(1));
    assert!(
        (5.8e7..7.6e7).contains(&r.teps),
        "NP=1 TEPS {:.2e} (paper 6.7e7)",
        r.teps
    );
    let i = run_ib(&BfsConfig::paper(1), IbConfig::cluster_ii());
    assert!(
        (5.4e7..7.0e7).contains(&i.teps),
        "IB NP=1 TEPS {:.2e} (paper 6.2e7)",
        i.teps
    );
    assert!(r.teps > i.teps, "C2050 beats the S2075 module");
}

#[test]
fn table4_scaling_and_crossover() {
    // Table IV: APEnet 6.7/9.8/13/17 e7, IB 6.2/7.8/8.2/20 e7:
    // "APEnet+ performs better than InfiniBand up to four nodes/GPUs".
    let a1 = run_apenet(&BfsConfig::paper(1)).teps;
    let a2 = run_apenet(&BfsConfig::paper(2)).teps;
    let a4 = run_apenet(&BfsConfig::paper(4)).teps;
    let a8 = run_apenet(&BfsConfig::paper(8)).teps;
    let i2 = run_ib(&BfsConfig::paper(2), IbConfig::cluster_ii()).teps;
    let i4 = run_ib(&BfsConfig::paper(4), IbConfig::cluster_ii()).teps;
    let i8 = run_ib(&BfsConfig::paper(8), IbConfig::cluster_ii()).teps;
    assert!(a2 > i2, "APEnet wins at 2 ({a2:.2e} vs {i2:.2e})");
    assert!(a4 > i4, "APEnet wins at 4 ({a4:.2e} vs {i4:.2e})");
    // Strong-scaling gains near the paper's (1.46x at 2, 1.94x at 4,
    // 2.54x at 8 — sub-linear because the hub-heavy partition imbalances
    // every level).
    let (s2, s4, s8) = (a2 / a1, a4 / a1, a8 / a1);
    assert!((1.15..1.65).contains(&s2), "NP=2 speedup {s2} (paper 1.46)");
    assert!((1.45..2.15).contains(&s4), "NP=4 speedup {s4} (paper 1.94)");
    assert!((1.9..2.9).contains(&s8), "NP=8 speedup {s8} (paper 2.54)");
    // At 8 the torus all-to-all erodes the APEnet advantage; IB draws
    // level (the paper even saw it ahead).
    assert!(i8 > a8 * 0.85, "IB catches up at 8 ({i8:.2e} vs {a8:.2e})");
    assert!(i8 / i4 > 1.2, "IB keeps scaling 4->8");
}

#[test]
fn fig12_comm_breakdown_favors_apenet() {
    // Fig. 12, four tasks: communication lower on APEnet+ (the paper
    // measured 50% on its hardware; waiting on the slow rank dominates
    // both transports in the model, so the margin is thinner here).
    let ape = run_apenet(&BfsConfig::paper(4));
    let ib = run_ib(&BfsConfig::paper(4), IbConfig::cluster_ii());
    let ape_comm: f64 = ape.breakdown.iter().map(|(_, c)| c.as_secs_f64()).sum();
    let ib_comm: f64 = ib.breakdown.iter().map(|(_, c)| c.as_secs_f64()).sum();
    assert!(
        ape_comm < ib_comm,
        "APEnet comm {ape_comm:.4}s vs IB {ib_comm:.4}s"
    );
    // Computation splits are nearly identical (same kernels, §V.E).
    let ape_comp: f64 = ape.breakdown.iter().map(|(c, _)| c.as_secs_f64()).sum();
    let ib_comp: f64 = ib.breakdown.iter().map(|(c, _)| c.as_secs_f64()).sum();
    assert!((ib_comp - ape_comp).abs() / ape_comp < 0.15);
}

#[test]
fn ablation_relabelling_restores_scaling() {
    // With the graph500 permutation the per-level load balances and the
    // strong scaling sharpens — evidence that the paper's sub-linear
    // Table IV is an artifact of the hub-heavy contiguous partition.
    let raw = run_apenet(&BfsConfig::paper(4)).teps;
    let mut cfg = BfsConfig::paper(4);
    cfg.permute = true;
    let permuted = run_apenet(&cfg).teps;
    assert!(
        permuted > raw * 1.3,
        "permuted {permuted:.2e} vs raw {raw:.2e}"
    );
}
