//! End-to-end HSG tests: physics correctness through the full simulated
//! stack, plus Table II / Table III shape checks.

use apenet_apps::hsg::{run_apenet, run_ib, HsgConfig, P2pMode};
use apenet_ib::IbConfig;

#[test]
fn distributed_matches_sequential_bitwise() {
    // The checkerboard schedule makes same-colour updates order
    // independent, so the distributed run must produce *bit-identical*
    // spins to the single-rank run — through packing, RDMA PUT, torus
    // transfer and unpacking.
    let seq = run_apenet(&HsgConfig::small(8, 1, P2pMode::On));
    let np2 = run_apenet(&HsgConfig::small(8, 2, P2pMode::On));
    let np4 = run_apenet(&HsgConfig::small(8, 4, P2pMode::On));
    assert_eq!(seq.checksum, np2.checksum, "np=2 diverged");
    assert_eq!(seq.checksum, np4.checksum, "np=4 diverged");
}

#[test]
fn staged_modes_compute_identically() {
    let on = run_apenet(&HsgConfig::small(8, 2, P2pMode::On));
    let rx = run_apenet(&HsgConfig::small(8, 2, P2pMode::Rx));
    let off = run_apenet(&HsgConfig::small(8, 2, P2pMode::Off));
    assert_eq!(on.checksum, rx.checksum);
    assert_eq!(on.checksum, off.checksum);
}

#[test]
fn energy_conserved_through_network() {
    let r = run_apenet(&HsgConfig::small(16, 4, P2pMode::On));
    let rel = (r.energy_final - r.energy_initial).abs() / r.energy_initial.abs().max(1.0);
    assert!(
        rel < 1e-3,
        "energy drift {rel}: {} -> {}",
        r.energy_initial,
        r.energy_final
    );
    assert!(r.energy_initial != 0.0);
}

#[test]
fn ib_reference_matches_physics_too() {
    let ape = run_apenet(&HsgConfig::small(8, 2, P2pMode::On));
    let ib = run_ib(&HsgConfig::small(8, 2, P2pMode::On), IbConfig::cluster_ii());
    assert_eq!(
        ape.checksum, ib.checksum,
        "transport must not change physics"
    );
}

#[test]
fn table2_strong_scaling_shape() {
    // L = 256 timing-only; Table II: Ttot = 921/416/202/148 ps.
    let t: Vec<f64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&np| run_apenet(&HsgConfig::paper(256, np, P2pMode::On)).ttot_ps)
        .collect();
    assert!(
        (870.0..970.0).contains(&t[0]),
        "NP=1 Ttot {} (paper 921)",
        t[0]
    );
    assert!(
        (380.0..460.0).contains(&t[1]),
        "NP=2 Ttot {} (paper 416)",
        t[1]
    );
    assert!(
        (185.0..230.0).contains(&t[2]),
        "NP=4 Ttot {} (paper 202)",
        t[2]
    );
    // The naive ring-on-torus embedding degrades NP = 8 (paper: 148,
    // i.e. well off the ideal ~110; the convoy effect is stronger in the
    // model — see EXPERIMENTS.md and the snake-embedding ablation).
    assert!(
        (120.0..200.0).contains(&t[3]),
        "NP=8 Ttot {} (paper 148)",
        t[3]
    );
}

#[test]
fn table3_p2p_modes_ordering() {
    // Table III (L=256, NP=2): Tnet = 97 (ON), 91 (RX), 114 (OFF).
    let on = run_apenet(&HsgConfig::paper(256, 2, P2pMode::On));
    let rx = run_apenet(&HsgConfig::paper(256, 2, P2pMode::Rx));
    let off = run_apenet(&HsgConfig::paper(256, 2, P2pMode::Off));
    assert!(
        off.tnet_ps > on.tnet_ps,
        "staging must cost more: off {} vs on {}",
        off.tnet_ps,
        on.tnet_ps
    );
    assert!(
        (80.0..115.0).contains(&on.tnet_ps),
        "Tnet ON {} (paper 97)",
        on.tnet_ps
    );
    assert!(
        (100.0..135.0).contains(&off.tnet_ps),
        "Tnet OFF {} (paper 114)",
        off.tnet_ps
    );
    // RX-only staging is competitive (the paper even saw it beat full
    // P2P at 91 ps; in the model the staged-TX pipeline head leaves it
    // between ON and OFF — see EXPERIMENTS.md).
    assert!(
        rx.tnet_ps < off.tnet_ps * 1.06,
        "rx {} vs off {}",
        rx.tnet_ps,
        off.tnet_ps
    );
    assert!(rx.tnet_ps > on.tnet_ps * 0.9);
    // Ttot at NP=2: bulk hides communication (paper: 416 for all modes).
    for r in [&on, &rx, &off] {
        assert!(
            (380.0..470.0).contains(&r.ttot_ps),
            "Ttot {} (paper 416)",
            r.ttot_ps
        );
    }
}

#[test]
fn fig11_superlinear_at_512() {
    // L = 512 does not fit one GPU efficiently (1471 ps/spin); at NP = 8
    // the slabs are 256³-resident again → super-linear speed-up.
    let t1 = run_apenet(&HsgConfig::paper(512, 1, P2pMode::On)).ttot_ps;
    let t8 = run_apenet(&HsgConfig::paper(512, 8, P2pMode::On)).ttot_ps;
    let speedup = t1 / t8;
    assert!(
        (1400.0..1550.0).contains(&t1),
        "NP=1 Ttot {t1} (paper 1471)"
    );
    assert!(speedup > 8.0, "super-linear expected, got {speedup}");
    assert!(speedup < 14.0, "speed-up {speedup} beyond plausible");
}

#[test]
fn fig11_l128_stops_scaling() {
    let t1 = run_apenet(&HsgConfig::paper(128, 1, P2pMode::On)).ttot_ps;
    let t2 = run_apenet(&HsgConfig::paper(128, 2, P2pMode::On)).ttot_ps;
    let t8 = run_apenet(&HsgConfig::paper(128, 8, P2pMode::On)).ttot_ps;
    let s2 = t1 / t2;
    let s8 = t1 / t8;
    assert!(s2 > 1.6, "L=128 still scales to 2 nodes ({s2})");
    assert!(s8 < 6.0, "L=128 must fall off the ideal line at 8 ({s8})");
}

#[test]
fn ablation_snake_embedding_fixes_np8() {
    // Every ring hop adjacent on the torus → NP = 8 returns to the
    // bulk-bound ideal; the naive embedding's 2-hop seams cost ~60%.
    let naive = run_apenet(&HsgConfig::paper(256, 8, P2pMode::On));
    let mut cfg = HsgConfig::paper(256, 8, P2pMode::On);
    cfg.snake = true;
    let snake = run_apenet(&cfg);
    assert!(
        snake.ttot_ps < naive.ttot_ps * 0.75,
        "snake {} vs naive {}",
        snake.ttot_ps,
        naive.ttot_ps
    );
    assert!(
        (95.0..130.0).contains(&snake.ttot_ps),
        "snake Ttot {}",
        snake.ttot_ps
    );
}
