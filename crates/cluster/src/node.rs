//! One cluster node: host, PCIe fabric, GPUs, APEnet+ card.

use apenet_core::card::{Card, CardShared, Firmware, GpuHandle};
use apenet_core::config::CardConfig;
use apenet_core::coord::{Coord, LinkDir, TorusDims};
use apenet_core::torus::Port;
use apenet_gpu::cuda::CudaDevice;
use apenet_gpu::mem::Memory;
use apenet_gpu::uva::HOST_BASE;
use apenet_gpu::{GpuArch, GpuId, Uva, HOST_PAGE_SIZE};
use apenet_pcie::fabric::Fabric;
use apenet_pcie::link::LinkSpec;
use apenet_pcie::server::ReadServer;
use apenet_rdma::api::RdmaEndpoint;
use apenet_rdma::completion::CompletionQueue;
use apenet_rdma::driver::DriverConfig;
use apenet_sim::fault::FaultSpec;
use apenet_sim::{Bandwidth, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A scheduled hard failure: cut the torus cable on `rank`'s `dir` port
/// at simulated time `at`. The cluster builder delivers an admin
/// link-down to *both* endpoint cards (a cable has two ends), after
/// which every frame in flight on it is lost and the keepalive
/// detectors escalate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkKill {
    /// Rank owning the reference end of the cable.
    pub rank: u32,
    /// Direction of the cable from `rank`'s point of view.
    pub dir: LinkDir,
    /// Simulated time of the cut.
    pub at: SimTime,
}

/// Which ports of which cards get fault injectors, and with what rates.
///
/// The plan is pure configuration: the cluster builder turns it into
/// seeded [`apenet_sim::fault::FaultInjector`]s, deriving every
/// (card, port) stream independently from `seed` so one u64 reproduces
/// the whole cluster's fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Base seed for all injector streams.
    pub seed: u64,
    /// Spec applied to every torus link port of every card.
    pub links: FaultSpec,
    /// Spec applied to every card's internal loop-back port.
    pub loopback: FaultSpec,
    /// Per-(rank, port) overrides, taking precedence over the uniform
    /// specs (e.g. one flaky cable in an otherwise healthy torus).
    pub overrides: Vec<(u32, Port, FaultSpec)>,
    /// Scheduled hard link failures (cable cuts), delivered as admin
    /// kills to both endpoint cards at the given times.
    pub kills: Vec<LinkKill>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// No injected faults anywhere (the default).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            links: FaultSpec::default(),
            loopback: FaultSpec::default(),
            overrides: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// The same spec on every port of every card (loop-back included).
    pub fn uniform(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            links: spec,
            loopback: spec,
            overrides: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// Schedule a hard cut of the cable on `rank`'s `dir` port at `at`.
    pub fn kill_link(mut self, rank: u32, dir: LinkDir, at: SimTime) -> Self {
        self.kills.push(LinkKill { rank, dir, at });
        self
    }

    /// Schedule a whole-node isolation at `at`: cut every distinct cable
    /// touching `rank` in a torus of `dims` (self-loop rings of extent 1
    /// have no cable and are skipped).
    pub fn kill_node(mut self, rank: u32, coord: Coord, dims: TorusDims, at: SimTime) -> Self {
        for dir in LinkDir::ALL {
            if dims.neighbor(coord, dir) != coord {
                self.kills.push(LinkKill { rank, dir, at });
            }
        }
        self
    }

    /// The effective spec for one (rank, port).
    pub fn spec_for(&self, rank: u32, port: Port) -> FaultSpec {
        for (r, p, s) in &self.overrides {
            if *r == rank && *p == port {
                return *s;
            }
        }
        match port {
            Port::Loopback => self.loopback,
            Port::Link(_) => self.links,
        }
    }

    /// True when no port of any card can ever see a fault.
    pub fn is_noop(&self) -> bool {
        self.links.is_noop()
            && self.loopback.is_noop()
            && self.overrides.iter().all(|(_, _, s)| s.is_noop())
            && self.kills.is_empty()
    }
}

/// Configuration of one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// GPUs installed (Cluster I: one Fermi per node).
    pub gpus: Vec<GpuArch>,
    /// Card calibration.
    pub card: CardConfig,
    /// Host memory size.
    pub hostmem_bytes: u64,
    /// Driver cost model.
    pub driver: DriverConfig,
    /// Rate at which the card reads host memory (Table I: 2.4 GB/s).
    pub host_read_rate: Bandwidth,
    /// First-completion latency of host memory reads.
    pub host_read_latency: SimDuration,
    /// Fault-injection plan for the cluster's links (default: none).
    pub faults: FaultPlan,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            gpus: vec![GpuArch::Fermi2050],
            card: CardConfig::default(),
            hostmem_bytes: 256 << 20,
            driver: DriverConfig::default(),
            host_read_rate: Bandwidth::from_mb_per_sec(2400),
            host_read_latency: SimDuration::from_ns(400),
            faults: FaultPlan::none(),
        }
    }
}

/// The live pieces of one built node, shared with benchmarks and tests.
pub struct BuiltNode {
    /// The card model (moved into its actor by the cluster builder).
    pub card: Card,
    /// The RDMA endpoint (moved into the host actor).
    pub ep: RdmaEndpoint,
    /// The host completion queue (moved into the host actor).
    pub cq: CompletionQueue,
    /// GPU device handles (kept shareable for apps/benchmarks).
    pub cuda: Vec<Rc<RefCell<CudaDevice>>>,
    /// Host memory.
    pub hostmem: Rc<RefCell<Memory>>,
    /// The card-shared handles (fabric, firmware, …).
    pub shared: CardShared,
    /// The UVA layout of this host.
    pub uva: Uva,
}

/// Build one node at `coord` of a torus of `dims`.
///
/// The PCIe topology matches the Westmere nodes of the paper's clusters:
/// a single root complex with the host-memory target, the GPUs (x16) and
/// the APEnet+ card (x8) on it.
pub fn build_node(rank: u32, coord: Coord, dims: TorusDims, cfg: &NodeConfig) -> BuiltNode {
    let mut fabric = Fabric::new();
    let root = fabric.add_root(0);
    let hostmem_dev = fabric.add_endpoint(
        root,
        "hostmem",
        LinkSpec::GEN2_X16,
        SimDuration::from_ns(50),
    );
    let nic_dev = fabric.add_endpoint(root, "apenet", LinkSpec::GEN2_X8, SimDuration::from_ns(50));

    let hostmem = Rc::new(RefCell::new(Memory::new(
        HOST_BASE,
        cfg.hostmem_bytes,
        HOST_PAGE_SIZE,
    )));
    let mut uva = Uva::new();
    uva.set_host(&hostmem.borrow());

    let mut gpus = Vec::new();
    let mut cuda_handles = Vec::new();
    for (i, arch) in cfg.gpus.iter().enumerate() {
        let dev = fabric.add_endpoint(root, "gpu", LinkSpec::GEN2_X16, SimDuration::from_ns(50));
        let cuda = Rc::new(RefCell::new(CudaDevice::new(GpuId(i as u8), *arch)));
        uva.add_gpu(GpuId(i as u8), &cuda.borrow().mem);
        gpus.push(GpuHandle {
            pcie_dev: dev,
            cuda: cuda.clone(),
        });
        cuda_handles.push(cuda);
    }

    let shared = CardShared {
        fabric: Rc::new(RefCell::new(fabric)),
        nic_dev,
        hostmem_dev,
        hostmem: hostmem.clone(),
        host_read: Rc::new(RefCell::new(ReadServer::new(
            cfg.host_read_latency,
            cfg.host_read_rate,
        ))),
        gpus,
        firmware: Rc::new(RefCell::new(Firmware::new(cfg.gpus.len()))),
    };

    let card = Card::new(coord, dims, cfg.card.clone(), shared.clone());
    let ep = RdmaEndpoint::new(shared.clone(), uva.clone(), rank, cfg.driver.clone());

    BuiltNode {
        card,
        ep,
        cq: CompletionQueue::new(),
        cuda: cuda_handles,
        hostmem,
        shared,
        uva,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_has_wired_pieces() {
        let cfg = NodeConfig::default();
        let n = build_node(0, Coord::new(0, 0, 0), TorusDims::new(1, 1, 1), &cfg);
        assert_eq!(n.cuda.len(), 1);
        assert_eq!(n.shared.gpus.len(), 1);
        // UVA distinguishes host from GPU ranges.
        let g = n.cuda[0].borrow().mem.base();
        assert!(n.uva.is_gpu_ptr(g));
        assert!(!n.uva.is_gpu_ptr(n.hostmem.borrow().base()));
    }

    #[test]
    fn fault_plan_resolution() {
        use apenet_core::coord::LinkDir;
        assert!(FaultPlan::none().is_noop());
        let mut plan = FaultPlan::uniform(7, FaultSpec::corrupt(0.1));
        assert!(!plan.is_noop());
        assert_eq!(plan.spec_for(0, Port::Loopback), FaultSpec::corrupt(0.1));
        let hot = FaultSpec::chaos(0.5);
        plan.overrides.push((2, Port::Link(LinkDir::Xp), hot));
        assert_eq!(plan.spec_for(2, Port::Link(LinkDir::Xp)), hot);
        assert_eq!(
            plan.spec_for(2, Port::Link(LinkDir::Xm)),
            FaultSpec::corrupt(0.1)
        );
    }

    #[test]
    fn kill_plans_are_not_noop() {
        use apenet_core::coord::LinkDir;
        let plan = FaultPlan::none().kill_link(0, LinkDir::Xp, SimTime::from_ps(10_000));
        assert!(!plan.is_noop());
        // 2x1x1: only the X ring is wired, and its two directions are two
        // distinct cables — a node isolation cuts both.
        let dims = TorusDims::new(2, 1, 1);
        let iso = FaultPlan::none().kill_node(1, Coord::new(1, 0, 0), dims, SimTime::ZERO);
        assert_eq!(iso.kills.len(), 2);
        assert!(!iso.is_noop());
    }

    #[test]
    fn two_gpu_node() {
        let cfg = NodeConfig {
            gpus: vec![GpuArch::Fermi2075, GpuArch::Fermi2075],
            ..NodeConfig::default()
        };
        let n = build_node(3, Coord::new(1, 0, 0), TorusDims::new(4, 2, 1), &cfg);
        assert_eq!(n.cuda.len(), 2);
        assert_eq!(n.ep.rank(), 3);
        assert_ne!(n.cuda[0].borrow().mem.base(), n.cuda[1].borrow().mem.base());
    }
}
