//! The torus-wired cluster builder.

use crate::msg::{CardActor, ClusterActor, HostActor, HostIn, HostProgram, Msg, NodeCtx};
use crate::node::{build_node, NodeConfig};
use apenet_core::card::{CardIn, CardShared};
use apenet_core::coord::{LinkDir, TorusDims};
use apenet_core::torus::{Port, TorusLink};
use apenet_gpu::cuda::CudaDevice;
use apenet_gpu::mem::Memory;
use apenet_sim::engine::{ActorId, Sim};
use apenet_sim::fault::{derive_seed, FaultInjector};
use apenet_sim::trace::SharedSink;
use apenet_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Shareable handles of one node, kept by the cluster for inspection.
pub struct NodeHandles {
    /// GPU devices.
    pub cuda: Vec<Rc<RefCell<CudaDevice>>>,
    /// Host memory.
    pub hostmem: Rc<RefCell<Memory>>,
    /// The card-shared state (PCIe fabric, firmware, …) — lets tests and
    /// figure harnesses attach bus analyzers or inspect registrations.
    pub shared: CardShared,
}

/// A built cluster: the simulation plus actor ids and node handles.
pub struct Cluster {
    /// The event engine, ready to run. The actor type is the concrete
    /// [`ClusterActor`] enum, so dispatch is a single match — no boxing,
    /// no vtable — on the hot path.
    pub sim: Sim<Msg, ClusterActor>,
    /// Torus dimensions.
    pub dims: TorusDims,
    /// Host actor ids by rank.
    pub hosts: Vec<ActorId>,
    /// Card actor ids by rank.
    pub cards: Vec<ActorId>,
    /// Per-node shareable handles.
    pub nodes: Vec<NodeHandles>,
    /// The span-trace sink every card records into (null unless enabled
    /// via [`ClusterBuilder::with_trace`] or the `APENET_TRACE` env var).
    /// Drain with [`SharedSink::take`] after a run.
    pub trace: SharedSink,
}

/// Builder for a torus of identical nodes.
pub struct ClusterBuilder {
    dims: TorusDims,
    node_cfg: NodeConfig,
    trace: Option<SharedSink>,
}

/// Resolve the trace sink requested by the `APENET_TRACE` env var:
/// `"capture"` keeps every record (unbounded), `"ring:N"` keeps the last
/// `N` in a ring buffer, any other non-empty non-`"0"` value defaults to
/// `ring:65536`, and unset/empty/`"0"` disables tracing entirely.
pub fn trace_sink_from_env() -> SharedSink {
    match std::env::var("APENET_TRACE").ok().as_deref() {
        None | Some("") | Some("0") => SharedSink::null(),
        Some("capture") => SharedSink::capturing(),
        Some(v) => match v
            .strip_prefix("ring:")
            .and_then(|n| n.parse::<usize>().ok())
        {
            Some(cap) => SharedSink::ring(cap),
            None => SharedSink::ring(65_536),
        },
    }
}

impl ClusterBuilder {
    /// A cluster of `dims` nodes configured by `node_cfg`.
    pub fn new(dims: TorusDims, node_cfg: NodeConfig) -> Self {
        ClusterBuilder {
            dims,
            node_cfg,
            trace: None,
        }
    }

    /// Record every card's span trace into `sink` (overrides the
    /// `APENET_TRACE` env var). Tracing is pure observation: enabling it
    /// never changes what the simulation schedules.
    pub fn with_trace(mut self, sink: SharedSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Build with one host program per rank (must supply exactly
    /// `dims.nodes()` programs). Each host receives `HostIn::Start` at t=0.
    pub fn build(self, programs: Vec<Box<dyn HostProgram>>) -> Cluster {
        let dims = self.dims;
        assert_eq!(programs.len(), dims.nodes(), "one program per rank");
        let mut sim: Sim<Msg, ClusterActor> = Sim::new();
        // APENET_PROFILE attaches the passive sim-time profiler: every
        // event's gap and wall cost is bucketed by (actor, kind), with
        // zero effect on the calendar. Harnesses that want the profile
        // call `sim.take_profile()` after the run; everyone else just
        // drops it with the Sim.
        if std::env::var("APENET_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0") {
            sim.attach_profiler(crate::msg::kind_of);
        }
        let mut built = Vec::new();
        for (rank, _) in (0..dims.nodes()).enumerate() {
            let coord = dims.coord_of(rank);
            built.push(build_node(rank as u32, coord, dims, &self.node_cfg));
        }
        // Pre-create torus links: one per (node, direction).
        let link_gbps = self.node_cfg.card.link_gbps;
        let link_lat = self.node_cfg.card.link_latency;
        let trace = self.trace.clone().unwrap_or_else(trace_sink_from_env);
        for node in &mut built {
            node.card.set_trace(trace.clone());
            for dir in LinkDir::ALL {
                let link = Rc::new(RefCell::new(TorusLink::new_gbps(link_gbps, link_lat)));
                node.card.set_link(dir, link);
            }
        }
        // Attach fault injectors per the plan; every (card, port) pair
        // derives an independent stream from the single plan seed, so
        // the whole cluster's fault schedule replays from one u64.
        let plan = &self.node_cfg.faults;
        if !plan.is_noop() {
            for (rank, node) in built.iter_mut().enumerate() {
                for port in Port::ALL {
                    let spec = plan.spec_for(rank as u32, port);
                    if spec.is_noop() {
                        continue;
                    }
                    let salt = ((rank as u64) << 8) | port.index() as u64;
                    let inj = FaultInjector::new(spec, derive_seed(plan.seed, salt));
                    node.card.set_fault_injector(port, inj);
                }
            }
        }
        // Hard kills arm the fault plane on every card up front (so link
        // frames are windowed and replayable from t=0, not just after the
        // cut lands) — chaos runs only, so clean-run timing is untouched.
        if !plan.kills.is_empty() {
            for node in &mut built {
                node.card.arm_fault_plane();
            }
        }
        // Register actors: hosts first so cards can reference them.
        // Actor ids are assigned sequentially; we reserve [0, n) for cards
        // and [n, 2n) for hosts by adding cards first with placeholder
        // host ids, then fixing up is impossible — so compute ids ahead:
        // card i gets id i, host i gets id n + i.
        let n = dims.nodes();
        let mut handles = Vec::new();
        let mut cards = Vec::new();
        let mut programs = programs;
        // First pass: create card actors (ids 0..n).
        let mut host_ctxs = Vec::new();
        for (rank, node) in built.into_iter().enumerate() {
            let host_id = n + rank;
            let mut actor = CardActor::new(node.card, host_id);
            for dir in LinkDir::ALL {
                let nb = dims.neighbor(dims.coord_of(rank), dir);
                actor.neighbors[dir.index()] = Some(dims.rank_of(nb));
            }
            let id = sim.add_actor(ClusterActor::Card(Box::new(actor)));
            assert_eq!(id, rank);
            cards.push(id);
            handles.push(NodeHandles {
                cuda: node.cuda.clone(),
                hostmem: node.hostmem.clone(),
                shared: node.shared.clone(),
            });
            host_ctxs.push(NodeCtx {
                rank: rank as u32,
                coord: dims.coord_of(rank),
                dims,
                ep: node.ep,
                cq: node.cq,
                cuda: node.cuda,
                hostmem: node.hostmem,
            });
        }
        // Second pass: host actors (ids n..2n).
        let mut hosts = Vec::new();
        for (rank, ctx) in host_ctxs.into_iter().enumerate() {
            let program = programs.remove(0);
            let id = sim.add_actor(ClusterActor::Host(Box::new(HostActor::new(
                ctx,
                program,
                cards[rank],
            ))));
            assert_eq!(id, n + rank);
            hosts.push(id);
            sim.send(id, SimTime::ZERO, Msg::Host(HostIn::Start));
        }
        // Deliver scheduled cable cuts to BOTH endpoint cards: a cable has
        // two ends, and each card must stop seeing traffic on its own port
        // the instant the cut lands.
        for kill in &plan.kills {
            let coord = dims.coord_of(kill.rank as usize);
            let far = dims.neighbor(coord, kill.dir);
            if far == coord {
                continue; // extent-1 ring: the port is a self-loop, no cable
            }
            sim.send(
                cards[kill.rank as usize],
                kill.at,
                Msg::Card(CardIn::AdminLinkDown {
                    port: Port::Link(kill.dir),
                }),
            );
            sim.send(
                cards[dims.rank_of(far)],
                kill.at,
                Msg::Card(CardIn::AdminLinkDown {
                    port: Port::Link(kill.dir.opposite()),
                }),
            );
        }
        Cluster {
            sim,
            dims,
            hosts,
            cards,
            nodes: handles,
            trace,
        }
    }
}

impl Cluster {
    /// Run to quiescence and return the final time.
    pub fn run(&mut self) -> SimTime {
        self.sim.run()
    }

    /// Run until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.sim.run_until(deadline)
    }

    /// Borrow the host actor of `rank` (after a run) to read results.
    pub fn host(&self, rank: usize) -> &HostActor {
        self.sim
            .actor(self.hosts[rank])
            .as_host()
            .expect("host actor at host id")
    }

    /// Borrow the card actor of `rank` (after a run) to read statistics.
    pub fn card(&self, rank: usize) -> &CardActor {
        self.sim
            .actor(self.cards[rank])
            .as_card()
            .expect("card actor at card id")
    }

    /// Wake host `rank` at time `at` with `tag`.
    pub fn wake_host(&mut self, rank: usize, at: SimTime, tag: u64) {
        self.sim
            .send(self.hosts[rank], at, Msg::Host(HostIn::Wake(tag)));
    }

    /// Convenience: wake after a delay from now.
    pub fn wake_host_after(&mut self, rank: usize, delay: SimDuration, tag: u64) {
        let at = self.sim.now() + delay;
        self.wake_host(rank, at, tag);
    }
}
