//! Deterministic occupancy sampling: periodic read-only probes over a
//! running cluster.
//!
//! The sampler is driven *between* calendar events: [`Cluster::run_sampled`]
//! peeks at the next event time ([`apenet_sim::Sim::peek_next_at`]) and
//! fires every sample tick that falls strictly before it, then dispatches
//! the event. A tick at simulated time `T` therefore observes the state
//! left by every event with time ≤ `T` — and because nothing is ever
//! scheduled, no sequence number is consumed and no event is reordered,
//! the sampled run is *bit-identical* to an unsampled one. The golden
//! two-pass test holds this to the digest level.
//!
//! What gets recorded, per node rank `r`, into [`TimeSeries`] metrics:
//!
//! * `card{r}.*` — TX FIFO bytes/packets, header-FIFO elasticity
//!   (`push_wait`), staged and outstanding byte credits, open TX jobs,
//!   partially reassembled RX messages, RX event-ring fill and held-back
//!   completions;
//! * `card{r}.link.{dir}.*` — per-port go-back-N occupancy (replay and
//!   pending queues, in-flight window) and the cumulative wire-byte
//!   counter the congestion heatmap differentiates;
//! * `nios{r}.*` — cumulative firmware busy time and task count;
//! * `pcie{r}.*` — cumulative wire bytes on the card's PCIe uplink,
//!   both directions;
//! * `cluster.calendar` — pending-event count of the engine itself.

use crate::cluster::Cluster;
use apenet_core::coord::LinkDir;
use apenet_obs::sampler::sample_period_from_env;
use apenet_obs::Registry;
use apenet_pcie::link::Dir;
use apenet_sim::{SimDuration, SimTime};

/// Short stable labels for the six torus directions plus loop-back,
/// in port-index order.
pub const PORT_LABELS: [&str; 7] = ["x+", "x-", "y+", "y-", "z+", "z-", "lb"];

/// Label for the port of `dir`.
pub fn dir_label(dir: LinkDir) -> &'static str {
    PORT_LABELS[dir.index()]
}

/// The periodic occupancy probe. Owns a private [`Registry`] so sampled
/// series never leak into the global metrics namespace; consumers read
/// it back (or discard it, as the golden tests do) after the run.
pub struct OccupancySampler {
    period: SimDuration,
    next: SimTime,
    last: Option<SimTime>,
    samples: u64,
    reg: Registry,
}

impl OccupancySampler {
    /// A sampler with the given period, first tick at one period.
    pub fn new(period: SimDuration) -> Self {
        OccupancySampler {
            period,
            next: SimTime::ZERO + period,
            last: None,
            samples: 0,
            reg: Registry::new(),
        }
    }

    /// Build from the `APENET_SAMPLE` env spec (see
    /// [`apenet_obs::sampler`]); `None` when sampling is disabled.
    pub fn from_env() -> Option<Self> {
        sample_period_from_env().map(Self::new)
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Ticks taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The registry holding every recorded [`apenet_obs::TimeSeries`].
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Every recorded series as `(id, points)`, sorted by id — the
    /// shape [`apenet_obs::perfetto::counter_events`] consumes.
    pub fn series(&self) -> Vec<(String, Vec<(u64, u64)>)> {
        self.reg
            .series_ids()
            .into_iter()
            .map(|id| {
                let pts = self.reg.series(&id).points();
                (id, pts)
            })
            .collect()
    }

    /// Take one sample of `cluster` at simulated time `at`. Read-only:
    /// walks actor state and shared handles, pushes into the private
    /// registry, schedules nothing.
    pub fn sample(&mut self, at: SimTime, cluster: &Cluster) {
        for rank in 0..cluster.dims.nodes() {
            let card = cluster.card(rank).card();
            let occ = card.occupancy();
            let s = |suffix: &str| self.reg.series(&format!("card{rank}.{suffix}"));
            s("tx_fifo_bytes").push(at, occ.tx_fifo_bytes);
            s("tx_fifo_packets").push(at, occ.tx_fifo_packets as u64);
            s("push_wait").push(at, occ.push_wait as u64);
            s("staged_pending").push(at, occ.staged_pending);
            s("outstanding").push(at, occ.outstanding_total);
            s("tx_jobs").push(at, occ.tx_jobs as u64);
            s("rx_partial").push(at, occ.rx_partial_msgs as u64);
            s("rx_ring_used").push(at, occ.rx_ring_used as u64);
            s("rx_ring_held").push(at, occ.rx_ring_held as u64);
            for (pi, label) in PORT_LABELS.iter().enumerate() {
                let p = occ.ports[pi];
                let l = |suffix: &str| {
                    self.reg
                        .series(&format!("card{rank}.link.{label}.{suffix}"))
                };
                l("wire_bytes").push(at, p.wire_bytes);
                // Go-back-N state only exists on the torus directions.
                if pi < 6 {
                    l("replay").push(at, p.replay as u64);
                    l("pending").push(at, p.pending as u64);
                    l("in_flight").push(at, p.in_flight);
                }
            }
            self.reg
                .series(&format!("nios{rank}.busy_ps"))
                .push(at, card.nios.busy_total().as_ps());
            self.reg
                .series(&format!("nios{rank}.tasks"))
                .push(at, card.nios.tasks_run());
            let shared = &cluster.nodes[rank].shared;
            let fabric = shared.fabric.borrow();
            self.reg
                .series(&format!("pcie{rank}.up_bytes"))
                .push(at, fabric.uplink_carried(shared.nic_dev, Dir::Up));
            self.reg
                .series(&format!("pcie{rank}.down_bytes"))
                .push(at, fabric.uplink_carried(shared.nic_dev, Dir::Down));
        }
        self.reg
            .series("cluster.calendar")
            .push(at, cluster.sim.pending() as u64);
        self.last = Some(at);
        self.samples += 1;
    }
}

impl Cluster {
    /// Run to quiescence like [`Cluster::run`], taking a sample every
    /// period of simulated time (plus one final sample at the end so
    /// cumulative counters cover the whole run). The final simulated
    /// time — and every scheduled event — is identical to `run()`.
    pub fn run_sampled(&mut self, sampler: &mut OccupancySampler) -> SimTime {
        while let Some(at) = self.sim.peek_next_at() {
            while sampler.next < at {
                let tick = sampler.next;
                sampler.next = tick + sampler.period;
                sampler.sample(tick, self);
            }
            self.sim.step();
        }
        let end = self.sim.now();
        if sampler.last != Some(end) {
            sampler.sample(end, self);
        }
        end
    }

    /// Run to quiescence, sampling iff `APENET_SAMPLE` enables it; the
    /// sampler (and everything it recorded) is discarded. This is the
    /// default run path of the figure harnesses: observation that the
    /// golden digests prove has zero scheduling effect.
    pub fn run_auto(&mut self) -> SimTime {
        match OccupancySampler::from_env() {
            Some(mut s) => self.run_sampled(&mut s),
            None => self.sim.run(),
        }
    }
}
