//! # apenet-cluster — assembling nodes into the paper's test platforms
//!
//! This crate wires the hardware models into runnable simulations:
//!
//! * [`node`] — one cluster node: host memory, PCIe fabric, GPUs, the
//!   APEnet+ card, the RDMA endpoint;
//! * [`msg`] — the closed event type of a cluster simulation and the
//!   actors adapting cards and hosts to the engine;
//! * [`cluster`] — the torus-wired cluster builder;
//! * [`harness`] — the benchmark programs of §V coded against the RDMA
//!   API: loop-back, uni-directional bandwidth, ping-pong latency, host
//!   overhead;
//! * [`presets`] — the paper's platforms (Cluster I, Cluster II, the PLX
//!   single-node rig) and the calibration constants in one place;
//! * [`sampling`] — the deterministic occupancy sampler: periodic
//!   read-only probes driven between calendar events, recording queue
//!   depths, link utilization and ring fill without perturbing a single
//!   schedule.

pub mod cluster;
pub mod harness;
pub mod msg;
pub mod node;
pub mod presets;
pub mod sampling;

pub use cluster::{Cluster, ClusterBuilder};
pub use msg::{ClusterActor, HostIn, HostProgram, Msg, NodeCtx};
pub use node::NodeConfig;
pub use sampling::OccupancySampler;
