//! The paper's test platforms.

use crate::node::{FaultPlan, NodeConfig};
use apenet_core::config::{CardConfig, GpuReadMethod, GpuTxVersion};
use apenet_core::coord::TorusDims;
use apenet_gpu::GpuArch;
use apenet_sim::fault::FaultSpec;

/// Cluster I: "eight dual-socket Xeon Westmere nodes, arranged in a 4×2
/// torus topology, each one equipped with a single GPU (all Fermi 2050
/// but one 2070)" (§V). 28 Gbps links for the bandwidth/latency tests.
pub fn cluster_i_dims() -> TorusDims {
    TorusDims::new(4, 2, 1)
}

/// Node configuration of Cluster I with the given GPU_P2P_TX generation
/// and prefetch window.
pub fn cluster_i_node(version: GpuTxVersion, window: u64) -> NodeConfig {
    let card = match version {
        GpuTxVersion::V1 => CardConfig::paper_v1(),
        GpuTxVersion::V2 => CardConfig::paper_v2(window),
        GpuTxVersion::V3 => CardConfig::paper_v3(window),
    };
    NodeConfig {
        gpus: vec![GpuArch::Fermi2050],
        card,
        ..NodeConfig::default()
    }
}

/// The default benchmark configuration: the final (v3) engine with a
/// 128 KB in-flight cap, as the headline Fig. 6–10 results use.
pub fn cluster_i_default() -> NodeConfig {
    cluster_i_node(GpuTxVersion::V3, 128 * 1024)
}

/// The HSG application setup: same cluster, but the torus links ran at
/// 20 Gbps (Fig. 11 caption: "PCIe Gen2 X8, Link 20Gbps").
pub fn cluster_i_hsg() -> NodeConfig {
    let mut cfg = cluster_i_default();
    cfg.card.link_gbps = 20;
    cfg
}

/// Cluster I with a uniform seeded fault plan armed on every torus link
/// (loop-back stays healthy — chaos workloads exercise the cables).
pub fn cluster_i_chaos(seed: u64, spec: FaultSpec) -> NodeConfig {
    let mut cfg = cluster_i_default();
    cfg.faults = FaultPlan {
        seed,
        links: spec,
        loopback: FaultSpec::default(),
        overrides: Vec::new(),
        kills: Vec::new(),
    };
    cfg
}

/// Cluster I with the fault-tolerance plane compiled in *and active*:
/// fault-aware routing on, ready for hard-kill schedules added via
/// `cfg.faults.kills`. Soft-fault injectors stay off.
pub fn cluster_i_hard_fault() -> NodeConfig {
    let mut cfg = cluster_i_default();
    cfg.card.route_around_faults = true;
    cfg
}

/// [`cluster_i_chaos`] with the reliability layer disabled — the
/// kill-switch configuration the chaos suite uses to prove it detects a
/// broken link layer.
pub fn cluster_i_chaos_no_retrans(seed: u64, spec: FaultSpec) -> NodeConfig {
    let mut cfg = cluster_i_chaos(seed, spec);
    cfg.card.link_retrans = false;
    cfg
}

/// The single-node SuperMicro/PLX platform of the Table I and Fig. 3
/// measurements, with a selectable GPU.
pub fn plx_node(arch: GpuArch, version: GpuTxVersion, window: u64) -> NodeConfig {
    let mut cfg = cluster_i_node(version, window);
    cfg.gpus = vec![arch];
    cfg
}

/// The BAR1-transport variant of the PLX platform: the card reads GPU
/// memory through the BAR1 aperture instead of the P2P protocol (the
/// direction §VI calls "more promising" on Kepler).
pub fn plx_node_bar1(arch: GpuArch, window: u64) -> NodeConfig {
    let mut cfg = plx_node(arch, GpuTxVersion::V3, window);
    cfg.card.gpu_read = GpuReadMethod::Bar1;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_i_is_8_nodes() {
        assert_eq!(cluster_i_dims().nodes(), 8);
    }

    #[test]
    fn hsg_links_run_at_20g() {
        assert_eq!(cluster_i_hsg().card.link_gbps, 20);
        assert_eq!(cluster_i_default().card.link_gbps, 28);
    }

    #[test]
    fn chaos_presets_arm_links_only() {
        let c = cluster_i_chaos(42, FaultSpec::chaos(0.05));
        assert!(!c.faults.is_noop());
        assert!(c.faults.loopback.is_noop());
        assert!(c.card.link_retrans);
        assert!(
            !cluster_i_chaos_no_retrans(42, FaultSpec::chaos(0.05))
                .card
                .link_retrans
        );
    }

    #[test]
    fn plx_node_takes_any_arch() {
        let n = plx_node(GpuArch::KeplerK20, GpuTxVersion::V3, 65536);
        assert_eq!(n.gpus, vec![GpuArch::KeplerK20]);
    }
}
