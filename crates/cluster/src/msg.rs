//! The cluster event type and the actors that adapt cards and hosts to
//! the simulation engine.

use apenet_core::card::{Card, CardError, CardIn, CardOut, GetDesc, TxDesc};
use apenet_core::coord::{Coord, TorusDims};
use apenet_core::packet::MsgId;
use apenet_core::torus::Port;
use apenet_gpu::cuda::CudaDevice;
use apenet_gpu::mem::Memory;
use apenet_rdma::api::RdmaEndpoint;
use apenet_rdma::completion::CompletionQueue;
use apenet_sim::engine::{Actor, ActorId, Ctx};
use apenet_sim::{Device, Outbox, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The closed event type of a cluster simulation.
#[derive(Debug, Clone)]
pub enum Msg {
    /// An event for a card actor.
    Card(CardIn),
    /// An event for a host actor.
    Host(HostIn),
}

/// The event-kind label of `m`, for the sim-time profiler's
/// (component, kind) buckets: card events keep their datapath stage
/// name (link frames split by frame type — data vs. control vs.
/// keepalive), host events their notification name. Labels are
/// `'static` so classification costs no allocation per event.
pub fn kind_of(m: &Msg) -> &'static str {
    use apenet_core::torus::LinkMsg;
    match m {
        Msg::Card(c) => match c {
            CardIn::TxSubmit(_) => "tx-submit",
            CardIn::GetSubmit(_) => "get-submit",
            CardIn::GetServe { .. } => "get-serve",
            CardIn::LinkRx { msg, .. } => match msg {
                LinkMsg::Data(_) => "link-data",
                LinkMsg::Ack { .. } => "link-ack",
                LinkMsg::Nak { .. } => "link-nak",
                LinkMsg::Ping { .. } | LinkMsg::Pong { .. } => "link-keepalive",
                _ => "link-state",
            },
            CardIn::LinkTimeout { .. } => "link-timeout",
            CardIn::FetchArrived { .. } => "fetch",
            CardIn::PushReady { .. } => "push",
            CardIn::DrainNext => "drain",
            CardIn::AdminLinkDown { .. } => "admin-kill",
            CardIn::RxRingPop { .. } => "rx-ring-pop",
        },
        Msg::Host(h) => match h {
            HostIn::Start => "start",
            HostIn::Delivered { .. } => "delivered",
            HostIn::TxDone { .. } => "tx-done",
            HostIn::Wake(_) => "wake",
            HostIn::Fault(_) => "fault",
        },
    }
}

/// Events consumed by host actors.
#[derive(Debug, Clone)]
pub enum HostIn {
    /// Program start (seeded by the builder at t = 0).
    Start,
    /// The local card delivered a complete message into a local buffer.
    Delivered {
        /// Message id.
        msg: MsgId,
        /// Where it landed.
        dst_vaddr: u64,
        /// Message length.
        len: u64,
    },
    /// The local card finished fetching/enqueuing a transmission.
    TxDone {
        /// Message id.
        msg: MsgId,
    },
    /// A self-scheduled wake-up.
    Wake(u64),
    /// The local card raised a typed fault effect (dead link, unreachable
    /// drop, RX-ring backpressure). Only ever sent on fault runs.
    Fault(CardError),
}

/// The card actor: wraps the [`Card`] device and routes its effects.
pub struct CardActor {
    card: Card,
    host: ActorId,
    /// Neighbour card actors by link direction index.
    pub neighbors: [Option<ActorId>; 6],
    /// Every typed fault effect this card raised, in order (empty on
    /// clean runs) — for post-run inspection by tests and harnesses.
    pub errors: Vec<(SimTime, CardError)>,
    outbox: Outbox<CardOut>,
}

impl CardActor {
    /// Wrap a card; `host` is the actor receiving its notifications.
    pub fn new(card: Card, host: ActorId) -> Self {
        CardActor {
            card,
            host,
            neighbors: [None; 6],
            errors: Vec::new(),
            outbox: Outbox::new(),
        }
    }

    /// Immutable access to the wrapped card (for post-run inspection).
    pub fn card(&self) -> &Card {
        &self.card
    }
}

impl Actor<Msg> for CardActor {
    fn on_event(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::Card(ev) = ev else {
            panic!("card actor received a host event");
        };
        self.card.handle(ctx.now(), ev, &mut self.outbox);
        for (delay, eff) in self.outbox.drain() {
            match eff {
                CardOut::ToSelf(next) => ctx.send_self(delay, Msg::Card(next)),
                CardOut::TorusSend { dir, msg } => {
                    let to = self.neighbors[dir.index()]
                        .expect("torus neighbour wired for used direction");
                    // The neighbour receives on the opposite-direction port.
                    ctx.send(
                        to,
                        delay,
                        Msg::Card(CardIn::LinkRx {
                            port: Port::Link(dir.opposite()),
                            msg,
                        }),
                    );
                }
                CardOut::Delivered {
                    msg,
                    dst_vaddr,
                    len,
                } => {
                    ctx.send(
                        self.host,
                        delay,
                        Msg::Host(HostIn::Delivered {
                            msg,
                            dst_vaddr,
                            len,
                        }),
                    );
                }
                CardOut::TxComplete { msg } => {
                    ctx.send(self.host, delay, Msg::Host(HostIn::TxDone { msg }));
                }
                CardOut::Error(e) => {
                    self.errors.push((ctx.now(), e));
                    ctx.send(self.host, delay, Msg::Host(HostIn::Fault(e)));
                }
            }
        }
    }

    fn name(&self) -> &str {
        "apenet-card"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Everything a host program can touch on its node.
pub struct NodeCtx {
    /// Node rank.
    pub rank: u32,
    /// Torus coordinates.
    pub coord: Coord,
    /// Torus dimensions.
    pub dims: TorusDims,
    /// The RDMA endpoint.
    pub ep: RdmaEndpoint,
    /// Completion records.
    pub cq: CompletionQueue,
    /// Local GPUs.
    pub cuda: Vec<Rc<RefCell<CudaDevice>>>,
    /// Host memory.
    pub hostmem: Rc<RefCell<Memory>>,
}

/// Scheduling facilities handed to a host program.
pub struct HostApi<'a, 'b> {
    /// Current simulated time.
    pub now: SimTime,
    ctx: &'a mut Ctx<'b, Msg>,
    card: ActorId,
    self_id: ActorId,
}

impl HostApi<'_, '_> {
    /// Submit a TX descriptor to the local card after `delay` (usually the
    /// host cost of the `put()` that produced it).
    pub fn submit(&mut self, delay: SimDuration, desc: TxDesc) {
        self.ctx
            .send(self.card, delay, Msg::Card(CardIn::TxSubmit(desc)));
    }

    /// Submit a GET (RDMA-Read) descriptor to the local card after
    /// `delay` (the host cost of the `get()` that produced it). The
    /// completion arrives as a normal `Delivered` for the same message
    /// id once the remote reply stream finishes assembling.
    pub fn submit_get(&mut self, delay: SimDuration, desc: GetDesc) {
        self.ctx
            .send(self.card, delay, Msg::Card(CardIn::GetSubmit(desc)));
    }

    /// Schedule a wake-up for this host program.
    pub fn wake(&mut self, delay: SimDuration, tag: u64) {
        self.ctx
            .send(self.self_id, delay, Msg::Host(HostIn::Wake(tag)));
    }
}

/// A host-resident program: benchmark harnesses and applications
/// implement this.
pub trait HostProgram {
    /// Called once at simulation start.
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>);
    /// Called for every notification or wake-up.
    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>);
}

/// A host program that does nothing (pure receiver nodes).
pub struct IdleProgram;

impl HostProgram for IdleProgram {
    fn start(&mut self, _node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {}
    fn on_event(&mut self, _ev: HostIn, _node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {}
}

/// The host actor: owns the node context and drives its program.
pub struct HostActor {
    /// The node context (public for post-run inspection).
    pub node: NodeCtx,
    program: Box<dyn HostProgram>,
    card: ActorId,
}

impl HostActor {
    /// Wrap a node context and program; `card` is the local card actor.
    pub fn new(node: NodeCtx, program: Box<dyn HostProgram>, card: ActorId) -> Self {
        HostActor {
            node,
            program,
            card,
        }
    }
}

impl Actor<Msg> for HostActor {
    fn on_event(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::Host(ev) = ev else {
            panic!("host actor received a card event");
        };
        // Record completions before the program sees them.
        match &ev {
            HostIn::Delivered { msg, len, .. } => {
                self.node.cq.push_delivered(*msg, ctx.now(), *len);
            }
            HostIn::TxDone { msg } => {
                self.node.cq.push_tx_done(*msg, ctx.now());
            }
            _ => {}
        }
        let self_id = ctx.self_id();
        let mut api = HostApi {
            now: ctx.now(),
            ctx,
            card: self.card,
            self_id,
        };
        match ev {
            HostIn::Start => self.program.start(&mut self.node, &mut api),
            other => self.program.on_event(other, &mut self.node, &mut api),
        }
    }

    fn name(&self) -> &str {
        "host"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// The closed actor set of a cluster simulation. The cluster registers
/// this enum (not boxed trait objects) with the engine, so every event
/// dispatch is a single match on the variant — static dispatch into the
/// card or host code — instead of a vtable call. [`CardActor`] and
/// [`HostActor`] still implement [`Actor`] directly, which keeps them
/// usable in boxed unit rigs. Variants box their payload: a card is
/// ~3 KB of state, and the engine checks the target actor out of its
/// slab slot by move on every dispatch — boxing keeps that checkout a
/// pointer move while the match itself stays static (no vtable).
pub enum ClusterActor {
    /// A card (datapath) actor.
    Card(Box<CardActor>),
    /// A host (program) actor.
    Host(Box<HostActor>),
}

impl ClusterActor {
    /// The card inside, if this is a card actor.
    pub fn as_card(&self) -> Option<&CardActor> {
        match self {
            ClusterActor::Card(c) => Some(c),
            ClusterActor::Host(_) => None,
        }
    }

    /// The host inside, if this is a host actor.
    pub fn as_host(&self) -> Option<&HostActor> {
        match self {
            ClusterActor::Host(h) => Some(h),
            ClusterActor::Card(_) => None,
        }
    }
}

impl Actor<Msg> for ClusterActor {
    fn on_event(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
        match self {
            ClusterActor::Card(c) => c.on_event(ev, ctx),
            ClusterActor::Host(h) => h.on_event(ev, ctx),
        }
    }

    fn name(&self) -> &str {
        match self {
            ClusterActor::Card(c) => c.name(),
            ClusterActor::Host(h) => h.name(),
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        match self {
            ClusterActor::Card(c) => c.as_any(),
            ClusterActor::Host(h) => h.as_any(),
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        match self {
            ClusterActor::Card(c) => c.as_any_mut(),
            ClusterActor::Host(h) => h.as_any_mut(),
        }
    }
}
