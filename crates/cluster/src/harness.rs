//! The benchmark programs of §V, coded against the RDMA API.
//!
//! * [`flush_read_bandwidth`] — the Table I / Fig. 4 memory-read test:
//!   "the test allocates a single receive buffer, then it enters a tight
//!   loop, enqueuing as many RDMA PUT as possible as to keep the
//!   transmission queue constantly full", with TX injection FIFOs flushed;
//! * [`loopback_bandwidth`] — the same loop against the internal switch
//!   (Table I loop-back rows, Fig. 5);
//! * [`two_node_bandwidth`] — the Fig. 6/7 uni-directional bandwidth test
//!   for every source/destination buffer-kind combination, with optional
//!   host staging (P2P=OFF);
//! * [`pingpong_half_rtt`] — the Fig. 8/9 latency test (half round-trip);
//! * sender-side submit intervals for the Fig. 10 host-overhead plot.

use crate::cluster::ClusterBuilder;
use crate::msg::{HostApi, HostIn, HostProgram, NodeCtx};
use crate::node::NodeConfig;
use crate::sampling::OccupancySampler;
use apenet_core::config::TxSinkMode;
use apenet_core::coord::{Coord, TorusDims};
use apenet_obs::{CounterSnapshot, Registry};
use apenet_rdma::api::SrcHint;
use apenet_rdma::signal::{self, SendQueue, SignalConfig};
use apenet_rdma::staging::{staged_put, staged_recv_finish};
use apenet_sim::profile::SimProfile;
use apenet_sim::trace::{SharedSink, TraceRecord};
use apenet_sim::{Bandwidth, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Which memory a test buffer lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufSide {
    /// Host memory ("H" in the figures).
    Host,
    /// GPU device memory ("G").
    Gpu,
}

impl BufSide {
    fn hint(self) -> SrcHint {
        match self {
            BufSide::Host => SrcHint::Host,
            BufSide::Gpu => SrcHint::Gpu,
        }
    }
}

/// Shared measurement records filled in by the programs.
#[derive(Debug, Default)]
pub struct BenchRecords {
    /// Times each PUT was handed to the card (sender side).
    pub submits: Vec<SimTime>,
    /// TX-complete times (sender side).
    pub tx_done: Vec<SimTime>,
    /// Delivery times (receiver side, message granularity).
    pub deliveries: Vec<SimTime>,
    /// Post-processed completion `(time, bytes)` records (e.g. after the
    /// staged H2D copy; staged transfers complete chunk-wise).
    pub completions: Vec<(SimTime, u64)>,
}

type Shared = Rc<RefCell<BenchRecords>>;

fn alloc_buf(node: &NodeCtx, side: BufSide, len: u64) -> u64 {
    match side {
        BufSide::Host => node.hostmem.borrow_mut().alloc(len).expect("host alloc"),
        BufSide::Gpu => node.cuda[0].borrow_mut().malloc(len).expect("gpu alloc"),
    }
}

fn fill_buf(node: &NodeCtx, side: BufSide, addr: u64, len: u64, seed: u8) {
    let data: Vec<u8> = (0..len)
        .map(|i| (i as u8).wrapping_mul(31) ^ seed)
        .collect();
    match side {
        BufSide::Host => node.hostmem.borrow_mut().write(addr, &data).unwrap(),
        BufSide::Gpu => node.cuda[0].borrow_mut().mem.write(addr, &data).unwrap(),
    }
}

/// The streaming sender: keeps `window` PUTs outstanding until `count`
/// have been issued.
struct StreamSender {
    peer: Coord,
    src: BufSide,
    src_addr: u64,
    dst_vaddr: u64,
    size: u64,
    count: u32,
    window: u32,
    issued: u32,
    records: Shared,
}

impl StreamSender {
    fn send_one(
        &mut self,
        node: &mut NodeCtx,
        api: &mut HostApi<'_, '_>,
        mut clock: SimDuration,
    ) -> SimDuration {
        let out = node
            .ep
            .put(
                self.src_addr,
                self.size,
                self.peer,
                self.dst_vaddr,
                self.src.hint(),
            )
            .expect("put");
        clock += out.host_cost;
        self.records.borrow_mut().submits.push(api.now + clock);
        api.submit(clock, out.desc);
        self.issued += 1;
        clock
    }
}

impl HostProgram for StreamSender {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let reg = node
            .ep
            .register(self.src_addr, self.size)
            .expect("register src");
        let mut clock = reg;
        let burst = self.window.min(self.count);
        for _ in 0..burst {
            clock = self.send_one(node, api, clock);
        }
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let HostIn::TxDone { .. } = ev {
            self.records.borrow_mut().tx_done.push(api.now);
            if self.issued < self.count {
                self.send_one(node, api, SimDuration::ZERO);
            }
        }
    }
}

/// The receiving side: registers the destination buffer and records
/// deliveries; optionally finishes staged receptions with an H2D copy.
struct StreamReceiver {
    dst: BufSide,
    dst_vaddr: u64,
    size: u64,
    /// For staged (P2P=OFF) reception: copy up to this GPU address.
    staged_gpu_dst: Option<u64>,
    records: Shared,
}

impl HostProgram for StreamReceiver {
    fn start(&mut self, node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {
        node.ep
            .register(self.dst_vaddr, self.size)
            .expect("register dst");
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let HostIn::Delivered { dst_vaddr, len, .. } = ev {
            let mut rec = self.records.borrow_mut();
            rec.deliveries.push(api.now);
            let done = if let Some(gpu_dst) = self.staged_gpu_dst {
                let mut dev = node.cuda[0].borrow_mut();
                let mut hm = node.hostmem.borrow_mut();
                staged_recv_finish(&mut dev, &mut hm, api.now, dst_vaddr, gpu_dst, len)
            } else {
                api.now
            };
            rec.completions.push((done, len));
            let _ = self.dst;
        }
    }
}

/// The staged (P2P=OFF) sender: `cudaMemcpy` into a bounce buffer, then
/// pipelined PUTs of the bounce.
struct StagedSender {
    peer: Coord,
    src_dev: u64,
    bounce: u64,
    dst_vaddr: u64,
    size: u64,
    count: u32,
    issued: u32,
    chunks_left: u32,
    records: Shared,
}

impl StagedSender {
    fn send_one(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let mut dev = node.cuda[0].borrow_mut();
        let mut hm = node.hostmem.borrow_mut();
        // Split the borrow: staged_put needs the endpoint too.
        let plan = {
            let NodeCtx { ep, .. } = node;
            staged_put(
                ep,
                &mut dev,
                &mut hm,
                api.now,
                self.src_dev,
                self.bounce,
                self.size,
                self.peer,
                self.dst_vaddr,
            )
            .expect("staged put")
        };
        self.chunks_left = plan.submissions.len() as u32;
        let mut rec = self.records.borrow_mut();
        for (at, desc) in plan.submissions {
            rec.submits.push(at);
            api.submit(at.since(api.now), desc);
        }
        self.issued += 1;
    }
}

impl HostProgram for StagedSender {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        node.ep
            .register(self.bounce, self.size)
            .expect("register bounce");
        self.send_one(node, api);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let HostIn::TxDone { .. } = ev {
            self.records.borrow_mut().tx_done.push(api.now);
            self.chunks_left -= 1;
            if self.chunks_left == 0 && self.issued < self.count {
                self.send_one(node, api);
            }
        }
    }
}

/// Result of a bandwidth-style run.
#[derive(Debug, Clone, Copy)]
pub struct BwResult {
    /// Steady-state delivered bandwidth.
    pub bandwidth: Bandwidth,
    /// Mean sender-side inter-submit interval (the Fig. 10 host overhead).
    pub submit_interval: SimDuration,
    /// Completion time of the first message (startup latency).
    pub first_completion: SimTime,
    /// Time the first PUT was handed to the card (the Fig. 3 trigger).
    pub first_submit: SimTime,
}

fn measure(records: &BenchRecords, size: u64) -> BwResult {
    // Completion records carry byte counts (staged transfers complete in
    // chunks); TX-done records are per whole message.
    let comps: Vec<(SimTime, u64)> = if records.completions.is_empty() {
        records.tx_done.iter().map(|&t| (t, size)).collect()
    } else {
        records.completions.clone()
    };
    assert!(comps.len() >= 2, "need at least two completions to measure");
    let first_submit = records.submits.first().copied().unwrap_or(SimTime::ZERO);
    let bytes: u64 = comps.iter().skip(1).map(|&(_, b)| b).sum();
    let span = comps[comps.len() - 1].0.since(comps[0].0);
    let bandwidth = Bandwidth::measured(bytes, span.max(SimDuration::from_ps(1)));
    let submits = &records.submits;
    let submit_interval = if submits.len() >= 2 {
        submits[submits.len() - 1].since(submits[0]) / (submits.len() as u64 - 1)
    } else {
        SimDuration::ZERO
    };
    BwResult {
        bandwidth,
        submit_interval,
        first_completion: comps[0].0,
        first_submit,
    }
}

/// Fig. 4 / Table I memory-read rows: single node, TX FIFO flushed.
pub fn flush_read_bandwidth(node_cfg: NodeConfig, src: BufSide, size: u64, count: u32) -> BwResult {
    flush_read_impl(node_cfg, src, size, count, None, None).0
}

/// [`flush_read_bandwidth`] with an optional bus-analyzer interposer on
/// the card's PCIe uplink (the Fig. 3 setup); returns the capture.
pub fn flush_read_with_trace(
    node_cfg: NodeConfig,
    src: BufSide,
    size: u64,
    count: u32,
    sink: Option<SharedSink>,
) -> (BwResult, Vec<TraceRecord>) {
    let (bw, analyzer, _) = flush_read_impl(node_cfg, src, size, count, sink, None);
    (bw, analyzer)
}

/// [`flush_read_bandwidth`] with the card's span trace enabled: returns
/// the measurement plus every span-correlated record the datapath
/// emitted (post → fetch → stage → tx-done), for per-stage breakdowns.
pub fn flush_read_instrumented(
    node_cfg: NodeConfig,
    src: BufSide,
    size: u64,
    count: u32,
) -> (BwResult, Vec<TraceRecord>) {
    let (bw, _, spans) = flush_read_impl(
        node_cfg,
        src,
        size,
        count,
        None,
        Some(SharedSink::capturing()),
    );
    (bw, spans)
}

fn flush_read_impl(
    mut node_cfg: NodeConfig,
    src: BufSide,
    size: u64,
    count: u32,
    analyzer: Option<SharedSink>,
    card_trace: Option<SharedSink>,
) -> (BwResult, Vec<TraceRecord>, Vec<TraceRecord>) {
    node_cfg.card.tx_sink = TxSinkMode::Flush;
    let dims = TorusDims::new(1, 1, 1);
    let records: Shared = Rc::new(RefCell::new(BenchRecords::default()));
    let sender = ProbeSetupSender {
        inner: None,
        src,
        size,
        count,
        records: records.clone(),
    };
    let mut builder = ClusterBuilder::new(dims, node_cfg);
    if let Some(t) = card_trace {
        builder = builder.with_trace(t);
    }
    let mut cluster = builder.build(vec![Box::new(sender)]);
    let sink = analyzer.unwrap_or_else(SharedSink::null);
    if sink.enabled() {
        let shared = &cluster.nodes[0].shared;
        shared
            .fabric
            .borrow_mut()
            .attach_analyzer(shared.nic_dev, sink.clone());
    }
    cluster.run_auto();
    let r = records.borrow();
    (measure(&r, size), sink.take(), cluster.trace.take())
}

/// Wrapper that allocates its buffers lazily at start (single-node tests).
struct ProbeSetupSender {
    inner: Option<StreamSender>,
    src: BufSide,
    size: u64,
    count: u32,
    records: Shared,
}

impl HostProgram for ProbeSetupSender {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let src_addr = alloc_buf(node, self.src, self.size);
        fill_buf(node, self.src, src_addr, self.size, 0xA5);
        let mut s = StreamSender {
            peer: node.coord, // self: flushed or loop-back
            src: self.src,
            src_addr,
            dst_vaddr: src_addr, // unused in flush mode
            size: self.size,
            count: self.count,
            window: 8,
            issued: 0,
            records: self.records.clone(),
        };
        s.start(node, api);
        self.inner = Some(s);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let Some(s) = &mut self.inner {
            s.on_event(ev, node, api);
        }
    }
}

/// Single-node loop-back test (Table I loop-back rows, Fig. 5): the
/// message goes through the full TX *and* RX datapaths of one card.
pub fn loopback_bandwidth(
    node_cfg: NodeConfig,
    src: BufSide,
    dst: BufSide,
    size: u64,
    count: u32,
) -> BwResult {
    let dims = TorusDims::new(1, 1, 1);
    let records: Shared = Rc::new(RefCell::new(BenchRecords::default()));
    let prog = LoopbackProgram {
        sender: None,
        receiver: None,
        src,
        dst,
        size,
        count,
        records: records.clone(),
    };
    let mut cluster = ClusterBuilder::new(dims, node_cfg).build(vec![Box::new(prog)]);
    cluster.run_auto();
    let r = records.borrow();
    let comps = &r.deliveries;
    assert!(comps.len() >= 2);
    let n = comps.len() as u64;
    let span = comps[n as usize - 1].since(comps[0]);
    BwResult {
        bandwidth: Bandwidth::measured((n - 1) * size, span.max(SimDuration::from_ps(1))),
        submit_interval: SimDuration::ZERO,
        first_completion: comps[0],
        first_submit: r.submits.first().copied().unwrap_or(SimTime::ZERO),
    }
}

/// Loop-back = a sender and a receiver sharing one node.
struct LoopbackProgram {
    sender: Option<StreamSender>,
    receiver: Option<StreamReceiver>,
    src: BufSide,
    dst: BufSide,
    size: u64,
    count: u32,
    records: Shared,
}

impl HostProgram for LoopbackProgram {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let src_addr = alloc_buf(node, self.src, self.size);
        let dst_addr = alloc_buf(node, self.dst, self.size);
        fill_buf(node, self.src, src_addr, self.size, 0x3C);
        let mut recv = StreamReceiver {
            dst: self.dst,
            dst_vaddr: dst_addr,
            size: self.size,
            staged_gpu_dst: None,
            records: self.records.clone(),
        };
        recv.start(node, api);
        let mut send = StreamSender {
            peer: node.coord,
            src: self.src,
            src_addr,
            dst_vaddr: dst_addr,
            size: self.size,
            count: self.count,
            window: 8,
            issued: 0,
            records: self.records.clone(),
        };
        send.start(node, api);
        self.sender = Some(send);
        self.receiver = Some(recv);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        match &ev {
            HostIn::Delivered { .. } => {
                if let Some(r) = &mut self.receiver {
                    r.on_event(ev, node, api);
                }
            }
            _ => {
                if let Some(s) = &mut self.sender {
                    s.on_event(ev, node, api);
                }
            }
        }
    }
}

/// Parameters of a two-node transfer test.
#[derive(Debug, Clone, Copy)]
pub struct TwoNodeParams {
    /// Source buffer side on the sender.
    pub src: BufSide,
    /// Destination buffer side on the receiver.
    pub dst: BufSide,
    /// Message size.
    pub size: u64,
    /// Number of messages.
    pub count: u32,
    /// Use host staging instead of peer-to-peer for GPU buffers (P2P=OFF).
    pub staged: bool,
}

/// Fig. 6/7 two-node uni-directional bandwidth test.
pub fn two_node_bandwidth(node_cfg: NodeConfig, p: TwoNodeParams) -> BwResult {
    two_node_impl(node_cfg, p, None, false).0
}

/// [`two_node_bandwidth`] with both cards' span traces enabled: returns
/// the measurement plus the merged trace (sender fetch/stage/frame-tx and
/// receiver frame-rx/rx-write/delivered records, span-correlated).
pub fn two_node_instrumented(
    node_cfg: NodeConfig,
    p: TwoNodeParams,
) -> (BwResult, Vec<TraceRecord>) {
    let (bw, trace, _) = two_node_impl(node_cfg, p, Some(SharedSink::capturing()), false);
    (bw, trace)
}

/// [`two_node_bandwidth`] with the sim-time profiler attached: returns
/// the measurement plus the exact (component, event-kind) partition of
/// the run's simulated time — the Fig. 3/4-style "where do the
/// nanoseconds go" view, computed instead of sampled.
pub fn two_node_profiled(node_cfg: NodeConfig, p: TwoNodeParams) -> (BwResult, SimProfile) {
    let (bw, _, prof) = two_node_impl(node_cfg, p, None, true);
    (bw, prof.expect("profiler attached by two_node_impl"))
}

fn two_node_impl(
    node_cfg: NodeConfig,
    p: TwoNodeParams,
    trace: Option<SharedSink>,
    profile: bool,
) -> (BwResult, Vec<TraceRecord>, Option<SimProfile>) {
    let dims = TorusDims::new(2, 1, 1);
    let records: Shared = Rc::new(RefCell::new(BenchRecords::default()));
    // Destination addresses are deterministic: first allocation on the
    // receiver's memory. Compute them from the allocator's behaviour.
    let dst_vaddr = first_alloc_addr(&node_cfg, p.dst, p.size, p.staged);
    let sender: Box<dyn HostProgram> = if p.staged && p.src == BufSide::Gpu {
        Box::new(StagedSetupSender {
            inner: None,
            size: p.size,
            count: p.count,
            dst_vaddr,
            records: records.clone(),
        })
    } else {
        Box::new(TwoNodeSetupSender {
            inner: None,
            src: p.src,
            size: p.size,
            count: p.count,
            dst_vaddr,
            records: records.clone(),
        })
    };
    let receiver = Box::new(TwoNodeSetupReceiver {
        inner: None,
        dst: p.dst,
        size: p.size,
        staged: p.staged,
        records: records.clone(),
    });
    let mut builder = ClusterBuilder::new(dims, node_cfg);
    if let Some(t) = trace {
        builder = builder.with_trace(t);
    }
    let mut cluster = builder.build(vec![sender, receiver]);
    if profile {
        cluster.sim.attach_profiler(crate::msg::kind_of);
    }
    cluster.run_auto();
    let prof = cluster.sim.take_profile();
    let r = records.borrow();
    (measure(&r, p.size), cluster.trace.take(), prof)
}

/// The address the first allocation of `size` bytes lands at.
fn first_alloc_addr(node_cfg: &NodeConfig, side: BufSide, size: u64, staged: bool) -> u64 {
    let probe = crate::node::build_node(9, Coord::new(0, 0, 0), TorusDims::new(1, 1, 1), node_cfg);
    match (side, staged) {
        (BufSide::Host, _) => probe.hostmem.borrow_mut().alloc(size).unwrap(),
        // Staged GPU reception lands in a host bounce buffer first.
        (BufSide::Gpu, true) => probe.hostmem.borrow_mut().alloc(size).unwrap(),
        (BufSide::Gpu, false) => probe.cuda[0].borrow_mut().malloc(size).unwrap(),
    }
}

struct TwoNodeSetupSender {
    inner: Option<StreamSender>,
    src: BufSide,
    size: u64,
    count: u32,
    dst_vaddr: u64,
    records: Shared,
}

impl HostProgram for TwoNodeSetupSender {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let src_addr = alloc_buf(node, self.src, self.size);
        fill_buf(node, self.src, src_addr, self.size, 0x5A);
        let mut s = StreamSender {
            peer: node.dims.coord_of(1),
            src: self.src,
            src_addr,
            dst_vaddr: self.dst_vaddr,
            size: self.size,
            count: self.count,
            window: 8,
            issued: 0,
            records: self.records.clone(),
        };
        s.start(node, api);
        self.inner = Some(s);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let Some(s) = &mut self.inner {
            s.on_event(ev, node, api);
        }
    }
}

struct StagedSetupSender {
    inner: Option<StagedSender>,
    size: u64,
    count: u32,
    dst_vaddr: u64,
    records: Shared,
}

impl HostProgram for StagedSetupSender {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let src_dev = alloc_buf(node, BufSide::Gpu, self.size);
        let bounce = alloc_buf(node, BufSide::Host, self.size);
        fill_buf(node, BufSide::Gpu, src_dev, self.size, 0x5A);
        let mut s = StagedSender {
            peer: node.dims.coord_of(1),
            src_dev,
            bounce,
            dst_vaddr: self.dst_vaddr,
            size: self.size,
            count: self.count,
            issued: 0,
            chunks_left: 0,
            records: self.records.clone(),
        };
        s.start(node, api);
        self.inner = Some(s);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let Some(s) = &mut self.inner {
            s.on_event(ev, node, api);
        }
    }
}

struct TwoNodeSetupReceiver {
    inner: Option<StreamReceiver>,
    dst: BufSide,
    size: u64,
    staged: bool,
    records: Shared,
}

impl HostProgram for TwoNodeSetupReceiver {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let (dst_vaddr, staged_gpu_dst) = if self.staged && self.dst == BufSide::Gpu {
            let bounce = alloc_buf(node, BufSide::Host, self.size);
            let gpu = alloc_buf(node, BufSide::Gpu, self.size);
            (bounce, Some(gpu))
        } else {
            (alloc_buf(node, self.dst, self.size), None)
        };
        let mut r = StreamReceiver {
            dst: self.dst,
            dst_vaddr,
            size: self.size,
            staged_gpu_dst,
            records: self.records.clone(),
        };
        r.start(node, api);
        self.inner = Some(r);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let Some(r) = &mut self.inner {
            r.on_event(ev, node, api);
        }
    }
}

/// Ping-pong latency test: returns the half round-trip time.
pub fn pingpong_half_rtt(
    node_cfg: NodeConfig,
    src: BufSide,
    dst: BufSide,
    size: u64,
    iters: u32,
    staged: bool,
) -> SimDuration {
    pingpong_impl(node_cfg, src, dst, size, iters, staged, None, None).0
}

/// [`pingpong_half_rtt`] with both cards' span traces enabled: returns
/// the latency plus the span-correlated trace of every PUT in the
/// exchange (the input to the Perfetto exporter and the latency
/// breakdown report).
pub fn pingpong_instrumented(
    node_cfg: NodeConfig,
    src: BufSide,
    dst: BufSide,
    size: u64,
    iters: u32,
    staged: bool,
) -> (SimDuration, Vec<TraceRecord>) {
    pingpong_impl(
        node_cfg,
        src,
        dst,
        size,
        iters,
        staged,
        Some(SharedSink::capturing()),
        None,
    )
}

/// [`pingpong_instrumented`] with an [`OccupancySampler`] ticking
/// through the same run: spans and occupancy series share one timeline,
/// which is what the Perfetto export wants (counter tracks under the
/// message slices).
#[allow(clippy::too_many_arguments)]
pub fn pingpong_sampled_instrumented(
    node_cfg: NodeConfig,
    src: BufSide,
    dst: BufSide,
    size: u64,
    iters: u32,
    staged: bool,
    sampler: &mut OccupancySampler,
) -> (SimDuration, Vec<TraceRecord>) {
    pingpong_impl(
        node_cfg,
        src,
        dst,
        size,
        iters,
        staged,
        Some(SharedSink::capturing()),
        Some(sampler),
    )
}

#[allow(clippy::too_many_arguments)]
fn pingpong_impl(
    node_cfg: NodeConfig,
    src: BufSide,
    dst: BufSide,
    size: u64,
    iters: u32,
    staged: bool,
    trace: Option<SharedSink>,
    sampler: Option<&mut OccupancySampler>,
) -> (SimDuration, Vec<TraceRecord>) {
    let dims = TorusDims::new(2, 1, 1);
    let records: Shared = Rc::new(RefCell::new(BenchRecords::default()));
    let peer_dst = first_alloc_addr(&node_cfg, dst, size, staged);
    let initiator = Box::new(PingPongProgram {
        initiator: true,
        src,
        dst,
        size,
        iters,
        staged,
        peer_dst,
        addrs: None,
        done: 0,
        timer_start: None,
        records: records.clone(),
    });
    let responder = Box::new(PingPongProgram {
        initiator: false,
        src,
        dst,
        size,
        iters,
        staged,
        peer_dst,
        addrs: None,
        done: 0,
        timer_start: None,
        records: records.clone(),
    });
    let mut builder = ClusterBuilder::new(dims, node_cfg);
    if let Some(t) = trace {
        builder = builder.with_trace(t);
    }
    let mut cluster = builder.build(vec![initiator, responder]);
    match sampler {
        Some(s) => cluster.run_sampled(s),
        None => cluster.run_auto(),
    };
    let r = records.borrow();
    // completions[0] is the timer start (after warm-up); the last is the
    // final pong. Each iteration is one full round trip.
    assert!(
        r.completions.len() >= 2,
        "pingpong produced no measurements"
    );
    let span = r.completions[r.completions.len() - 1]
        .0
        .since(r.completions[0].0);
    (
        span / (2 * (r.completions.len() as u64 - 1)),
        cluster.trace.take(),
    )
}

/// Both sides of the ping-pong. The destination buffer layout is
/// symmetric, so `peer_dst` is the same on both nodes.
struct PingPongProgram {
    initiator: bool,
    src: BufSide,
    dst: BufSide,
    size: u64,
    iters: u32,
    staged: bool,
    peer_dst: u64,
    addrs: Option<(u64, u64, Option<u64>, Option<u64>)>, // src, dst, bounce_tx, gpu_dst
    done: u32,
    timer_start: Option<SimTime>,
    records: Shared,
}

const PINGPONG_WARMUP: u32 = 2;

impl PingPongProgram {
    fn peer(&self, node: &NodeCtx) -> Coord {
        node.dims.coord_of(if self.initiator { 1 } else { 0 })
    }

    fn send(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>, at: SimTime) {
        let (src_addr, _dst, bounce_tx, _gpu) = self.addrs.expect("addresses set in start");
        let peer = self.peer(node);
        if self.staged && self.src == BufSide::Gpu {
            let bounce = bounce_tx.expect("staged sender has a bounce");
            let mut dev = node.cuda[0].borrow_mut();
            let mut hm = node.hostmem.borrow_mut();
            let plan = staged_put(
                &mut node.ep,
                &mut dev,
                &mut hm,
                at,
                src_addr,
                bounce,
                self.size,
                peer,
                self.peer_dst,
            )
            .expect("staged put");
            for (t, desc) in plan.submissions {
                api.submit(t.since(api.now), desc);
            }
        } else {
            let out = node
                .ep
                .put(src_addr, self.size, peer, self.peer_dst, self.src.hint())
                .expect("put");
            api.submit(at.since(api.now) + out.host_cost, out.desc);
        }
    }
}

impl HostProgram for PingPongProgram {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        // Allocation order must match `first_alloc_addr`: destination first.
        let (dst_addr, gpu_dst) = if self.staged && self.dst == BufSide::Gpu {
            let bounce = alloc_buf(node, BufSide::Host, self.size);
            let gpu = alloc_buf(node, BufSide::Gpu, self.size);
            (bounce, Some(gpu))
        } else {
            (alloc_buf(node, self.dst, self.size), None)
        };
        let src_addr = alloc_buf(node, self.src, self.size);
        fill_buf(
            node,
            self.src,
            src_addr,
            self.size,
            if self.initiator { 1 } else { 2 },
        );
        let bounce_tx = if self.staged && self.src == BufSide::Gpu {
            Some(alloc_buf(node, BufSide::Host, self.size))
        } else {
            None
        };
        node.ep.register(dst_addr, self.size).expect("register dst");
        self.addrs = Some((src_addr, dst_addr, bounce_tx, gpu_dst));
        if self.initiator {
            self.send(node, api, api.now);
        }
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let HostIn::Delivered { dst_vaddr, len, .. } = ev {
            // Staged reception must land in the GPU before replying.
            let usable = if let (true, Some((_, _, _, Some(gpu_dst)))) =
                (self.staged && self.dst == BufSide::Gpu, self.addrs)
            {
                let mut dev = node.cuda[0].borrow_mut();
                let mut hm = node.hostmem.borrow_mut();
                staged_recv_finish(&mut dev, &mut hm, api.now, dst_vaddr, gpu_dst, len)
            } else {
                api.now
            };
            if self.initiator {
                self.done += 1;
                if self.done >= PINGPONG_WARMUP {
                    self.timer_start.get_or_insert(usable);
                    self.records.borrow_mut().completions.push((usable, len));
                }
                if self.done < self.iters + PINGPONG_WARMUP {
                    self.send(node, api, usable);
                }
            } else {
                // Echo.
                self.send(node, api, usable);
            }
        }
    }
}

/// A node that both streams to its peer and receives (the bi-directional
/// test the paper alludes to: "the APEnet+ bi-directional bandwidth …
/// will reflect a similar behaviour" to the loop-back plot, §IV).
struct BidirProgram {
    src: BufSide,
    dst: BufSide,
    size: u64,
    count: u32,
    peer_rank: usize,
    dst_vaddr: u64,
    sender: Option<StreamSender>,
    receiver: Option<StreamReceiver>,
    records: Shared,
}

impl HostProgram for BidirProgram {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        // Allocation order matches on both ranks: dst first, then src.
        let dst_addr = alloc_buf(node, self.dst, self.size);
        let src_addr = alloc_buf(node, self.src, self.size);
        fill_buf(node, self.src, src_addr, self.size, node.rank as u8);
        let mut recv = StreamReceiver {
            dst: self.dst,
            dst_vaddr: dst_addr,
            size: self.size,
            staged_gpu_dst: None,
            records: self.records.clone(),
        };
        recv.start(node, api);
        let mut send = StreamSender {
            peer: node.dims.coord_of(self.peer_rank),
            src: self.src,
            src_addr,
            dst_vaddr: self.dst_vaddr,
            size: self.size,
            count: self.count,
            window: 8,
            issued: 0,
            records: self.records.clone(),
        };
        send.start(node, api);
        self.sender = Some(send);
        self.receiver = Some(recv);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        match &ev {
            HostIn::Delivered { .. } => {
                if let Some(r) = &mut self.receiver {
                    r.on_event(ev, node, api);
                }
            }
            _ => {
                if let Some(s) = &mut self.sender {
                    s.on_event(ev, node, api);
                }
            }
        }
    }
}

/// Two-node bi-directional bandwidth: both nodes stream simultaneously;
/// returns the *aggregate* (sum of both directions) steady bandwidth.
pub fn two_node_bidir_bandwidth(
    node_cfg: NodeConfig,
    src: BufSide,
    dst: BufSide,
    size: u64,
    count: u32,
) -> BwResult {
    let dims = TorusDims::new(2, 1, 1);
    let records: Shared = Rc::new(RefCell::new(BenchRecords::default()));
    let dst_vaddr = first_alloc_addr(&node_cfg, dst, size, false);
    let programs: Vec<Box<dyn HostProgram>> = (0..2)
        .map(|rank| {
            Box::new(BidirProgram {
                src,
                dst,
                size,
                count,
                peer_rank: 1 - rank,
                dst_vaddr,
                sender: None,
                receiver: None,
                records: records.clone(),
            }) as Box<dyn HostProgram>
        })
        .collect();
    let mut cluster = ClusterBuilder::new(dims, node_cfg).build(programs);
    cluster.run_auto();
    let r = records.borrow();
    // Deliveries from both directions interleave; aggregate rate over the
    // combined completion stream.
    measure(&r, size)
}

// ---------------------------------------------------------------------------
// Chaos harness: exactly-once delivery under injected link faults.
// ---------------------------------------------------------------------------

/// Parameters of one chaos run (see [`chaos_run`]).
#[derive(Debug, Clone)]
pub struct ChaosParams {
    /// Messages each rank streams to its ring successor.
    pub msgs_per_rank: u32,
    /// Length of each message in bytes.
    pub msg_len: u64,
    /// Poll the driver watchdog from host wake-ups and re-issue expired
    /// messages (application-level recovery above the link layer).
    pub watchdog_reissue: bool,
}

/// Everything a chaos run proves or measures, aggregated over the
/// cluster.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Messages the run expected to deliver.
    pub expected: u64,
    /// Distinct messages actually delivered.
    pub delivered: u64,
    /// Repeat deliveries seen by any completion queue (exactly-once
    /// requires 0).
    pub duplicates: u64,
    /// Every delivered payload byte-exact at its destination GPU.
    pub payload_ok: bool,
    /// Every card drained all queues, replay buffers and partial
    /// reassembly state.
    pub quiesced: bool,
    /// Driver-watchdog alarms (0 while link-level recovery is healthy).
    pub watchdog_fired: u64,
    /// Messages re-issued by the watchdog path.
    pub watchdog_reissues: u64,
    /// Messages the watchdog escalated to typed error completions after
    /// exhausting its re-issue budget (unreachable destinations).
    pub watchdog_failed: u64,
    /// Error completions recorded across all completion queues.
    pub error_completions: u64,
    /// Card ports declared dead (2 per killed cable: one per endpoint).
    pub dead_links: u64,
    /// Packets routed the long way round a dead ring arc.
    pub detours: u64,
    /// Packets dropped because every arc to their destination was dead.
    pub unreachable_drops: u64,
    /// In-flight frames moved from dead ports onto detour routes.
    pub requeued: u64,
    /// End-to-end duplicate fragments suppressed at destinations.
    pub rx_dup_fragments: u64,
    /// Link-layer replays across all cards.
    pub retransmits: u64,
    /// Retransmit-timer expirations that triggered a replay.
    pub timeouts: u64,
    /// Duplicate data frames discarded (and re-ACKed) on receive.
    pub dup_frames: u64,
    /// Frames dropped on CRC failure (only with retransmission disabled).
    pub crc_dropped: u64,
    /// NAKs sent across all cards.
    pub naks: u64,
    /// Injected (corruptions, drops, stalls) across all cards.
    pub injected: (u64, u64, u64),
    /// Total injected stall time across all links, in picoseconds.
    pub stall_ps: u64,
    /// Latest delivery timestamp across all ranks (effective-bandwidth
    /// endpoint; `end` includes trailing watchdog poll wake-ups).
    pub last_delivery: SimTime,
    /// Simulated end time.
    pub end: SimTime,
    /// Signaled WQEs posted across all send queues (0 on PUT runs).
    pub cq_signaled: u64,
    /// Posts whose doorbell was covered by a batched ring (0 on PUT runs).
    pub doorbell_batched: u64,
    /// WQEs posted into send-queue moderation (0 on PUT runs).
    pub sq_posted: u64,
    /// WQEs retired through batched CQEs (must equal `sq_posted` when
    /// the run drains; 0 on PUT runs).
    pub sq_retired: u64,
    /// The run's full counter snapshot from its private metrics registry
    /// (link-reliability ids from `apenet_core::card::metrics` plus the
    /// watchdog ids from `apenet_rdma::driver::metrics` and the signaling
    /// ids from `apenet_rdma::signal::metrics`). The scalar counter
    /// fields above are views into this snapshot.
    pub metrics: CounterSnapshot,
}

/// A re-issuable chaos descriptor: the verb decides how the watchdog
/// hands an expired message back to the card.
#[derive(Debug, Clone)]
enum ChaosDesc {
    Put(apenet_core::card::TxDesc),
    Get(apenet_core::card::GetDesc),
}

struct ChaosShared {
    watchdog: apenet_rdma::driver::Watchdog,
    delivered: std::collections::BTreeSet<apenet_core::packet::MsgId>,
    descs: std::collections::BTreeMap<apenet_core::packet::MsgId, ChaosDesc>,
    /// Expired messages routed back to their source rank for re-issue.
    reissue: Vec<std::collections::VecDeque<ChaosDesc>>,
    /// Escalated messages routed back to their source rank, to complete
    /// with a typed error on that rank's completion queue.
    failed: Vec<std::collections::VecDeque<apenet_core::packet::MsgId>>,
    /// Per-rank send-queue moderation models (GET runs only; empty on
    /// PUT runs).
    sendqs: Vec<SendQueue>,
}

struct ChaosRank {
    rank: u32,
    msgs: u32,
    msg_len: u64,
    reissue: bool,
    poll: SimDuration,
    peer: Coord,
    tx_buf: u64,
    rx_buf: u64,
    shared: Rc<RefCell<ChaosShared>>,
}

/// The deterministic payload byte of `(src_rank, byte offset)` — the
/// whole TX region of one rank is one stream of these.
fn chaos_byte(src_rank: u32, off: u64) -> u8 {
    (off as u8)
        .wrapping_mul(31)
        .wrapping_add((src_rank as u8).wrapping_mul(97))
        ^ 0x5A
}

impl ChaosRank {
    fn pump(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let mut sh = self.shared.borrow_mut();
        // Route every globally-expired message to its source rank (the
        // watchdog re-armed each with a backed-off deadline), then drain
        // this rank's own queues. Escalated messages complete with a
        // typed error on their source rank's completion queue — the
        // watchdog's bounded give-up is never a silent drop.
        let ex = sh.watchdog.poll_expired(api.now);
        for msg in ex.reissue {
            let desc = sh.descs[&msg].clone();
            sh.reissue[msg.src_rank as usize].push_back(desc);
        }
        for msg in ex.failed {
            sh.failed[msg.src_rank as usize].push_back(msg);
        }
        while let Some(desc) = sh.reissue[self.rank as usize].pop_front() {
            match desc {
                ChaosDesc::Put(d) => api.submit(SimDuration::ZERO, d),
                ChaosDesc::Get(d) => api.submit_get(SimDuration::ZERO, d),
            }
        }
        while let Some(msg) = sh.failed[self.rank as usize].pop_front() {
            node.cq.push_error(
                msg,
                api.now,
                apenet_rdma::completion::CompletionError::Unreachable,
            );
        }
        // Keep polling while anything in the cluster is still armed.
        if sh.watchdog.outstanding() > 0
            || sh.reissue.iter().any(|q| !q.is_empty())
            || sh.failed.iter().any(|q| !q.is_empty())
        {
            api.wake(self.poll, 0);
        }
    }
}

impl HostProgram for ChaosRank {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let region = (self.msgs as u64 * self.msg_len).max(1);
        // Allocation order is identical on every rank, so this rank's RX
        // address equals its peer's — senders can address peer memory
        // without an out-of-band exchange.
        self.rx_buf = node.cuda[0].borrow_mut().malloc(region).unwrap();
        self.tx_buf = node.cuda[0].borrow_mut().malloc(region).unwrap();
        node.ep.register(self.rx_buf, region).unwrap();
        node.ep.register(self.tx_buf, region).unwrap();
        let data: Vec<u8> = (0..region).map(|o| chaos_byte(self.rank, o)).collect();
        node.cuda[0]
            .borrow_mut()
            .mem
            .write(self.tx_buf, &data)
            .unwrap();
        for i in 0..self.msgs {
            let off = i as u64 * self.msg_len;
            let out = node
                .ep
                .put(
                    self.tx_buf + off,
                    self.msg_len,
                    self.peer,
                    self.rx_buf + off,
                    SrcHint::Gpu,
                )
                .unwrap();
            let mut sh = self.shared.borrow_mut();
            sh.watchdog.arm(out.desc.msg, api.now);
            sh.descs
                .insert(out.desc.msg, ChaosDesc::Put(out.desc.clone()));
            drop(sh);
            api.submit(out.host_cost, out.desc);
        }
        if self.reissue {
            api.wake(self.poll, 0);
        }
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        match ev {
            HostIn::Delivered { msg, .. } => {
                let mut sh = self.shared.borrow_mut();
                sh.delivered.insert(msg);
                sh.watchdog.disarm(&msg);
            }
            HostIn::Wake(_) if self.reissue => self.pump(node, api),
            _ => {}
        }
    }
}

/// The GET-verb chaos rank: every rank *reads* its ring successor's TX
/// region into its own RX buffer with one-sided GETs, posting each GET
/// through send-queue moderation (selective signaling + doorbell
/// batching). The requester is the completion side, so the watchdog,
/// re-issue and Unreachable escalation all run here — composed with
/// whatever the fault plan does to the request and reply streams.
struct GetChaosRank {
    rank: u32,
    msgs: u32,
    msg_len: u64,
    reissue: bool,
    poll: SimDuration,
    peer: Coord,
    tx_buf: u64,
    rx_buf: u64,
    shared: Rc<RefCell<ChaosShared>>,
}

impl GetChaosRank {
    fn reap_if_due(sh: &mut ChaosShared, rank: usize) {
        let sq = &mut sh.sendqs[rank];
        // Reap at the latest when the CQ is half full, so moderation
        // keeps retiring in batches without ever overflowing the depth.
        if sq.cq_occupancy() * 2 >= sq.cq_depth().max(1) {
            let _ = sq.reap();
        }
    }

    fn pump(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let mut sh = self.shared.borrow_mut();
        let ex = sh.watchdog.poll_expired(api.now);
        for msg in ex.reissue {
            let desc = sh.descs[&msg].clone();
            sh.reissue[msg.src_rank as usize].push_back(desc);
        }
        for msg in ex.failed {
            sh.failed[msg.src_rank as usize].push_back(msg);
        }
        while let Some(desc) = sh.reissue[self.rank as usize].pop_front() {
            match desc {
                ChaosDesc::Put(d) => api.submit(SimDuration::ZERO, d),
                ChaosDesc::Get(d) => api.submit_get(SimDuration::ZERO, d),
            }
        }
        while let Some(msg) = sh.failed[self.rank as usize].pop_front() {
            node.cq.push_error(
                msg,
                api.now,
                apenet_rdma::completion::CompletionError::Unreachable,
            );
            // An escalated GET still terminates its WQE: the error
            // completion retires it so the batch behind it can drain.
            sh.sendqs[self.rank as usize].complete(&msg);
            Self::reap_if_due(&mut sh, self.rank as usize);
        }
        if sh.watchdog.outstanding() > 0
            || sh.reissue.iter().any(|q| !q.is_empty())
            || sh.failed.iter().any(|q| !q.is_empty())
        {
            api.wake(self.poll, 0);
        }
    }
}

impl HostProgram for GetChaosRank {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let region = (self.msgs as u64 * self.msg_len).max(1);
        // Identical allocation order on every rank: this rank's TX
        // address equals its peer's, so requesters can name remote
        // source memory without an out-of-band exchange.
        self.rx_buf = node.cuda[0].borrow_mut().malloc(region).unwrap();
        self.tx_buf = node.cuda[0].borrow_mut().malloc(region).unwrap();
        node.ep.register(self.rx_buf, region).unwrap();
        node.ep.register(self.tx_buf, region).unwrap();
        let data: Vec<u8> = (0..region).map(|o| chaos_byte(self.rank, o)).collect();
        node.cuda[0]
            .borrow_mut()
            .mem
            .write(self.tx_buf, &data)
            .unwrap();
        for i in 0..self.msgs {
            let off = i as u64 * self.msg_len;
            let out = node
                .ep
                .get(
                    self.rx_buf + off,
                    self.msg_len,
                    self.peer,
                    self.tx_buf + off,
                    SrcHint::Gpu,
                )
                .unwrap();
            let msg = out.desc.msg;
            let mut sh = self.shared.borrow_mut();
            sh.watchdog.arm(msg, api.now);
            sh.descs.insert(msg, ChaosDesc::Get(out.desc.clone()));
            // The last post of the burst is force-signaled so the tail
            // of unsignaled WQEs always retires.
            sh.sendqs[self.rank as usize].post(msg, i + 1 == self.msgs);
            drop(sh);
            api.submit_get(out.host_cost, out.desc);
        }
        if self.reissue {
            api.wake(self.poll, 0);
        }
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        match ev {
            HostIn::Delivered { msg, .. } => {
                let mut sh = self.shared.borrow_mut();
                sh.delivered.insert(msg);
                sh.watchdog.disarm(&msg);
                sh.sendqs[self.rank as usize].complete(&msg);
                Self::reap_if_due(&mut sh, self.rank as usize);
            }
            HostIn::Wake(_) if self.reissue => self.pump(node, api),
            _ => {}
        }
    }
}

/// Run a seeded chaos workload: every rank of `dims` streams
/// `msgs_per_rank` GPU-to-GPU PUTs to its ring successor while the fault
/// plan in `node_cfg.faults` corrupts, drops and stalls link frames. The
/// report carries everything the exactly-once proof needs: distinct
/// deliveries, duplicate completions, byte-exactness of every destination
/// region, card quiescence and the fault/recovery counter totals.
pub fn chaos_run(dims: TorusDims, node_cfg: NodeConfig, p: ChaosParams) -> ChaosReport {
    chaos_run_impl(dims, node_cfg, p, None, None)
}

/// [`chaos_run`] with the GET verb: every rank *reads* its ring
/// successor's TX region with one-sided GETs posted through send-queue
/// moderation tuned by `sig`. Exactly-once, byte-exactness, quiescence
/// and watchdog composition are proven the same way; the report
/// additionally carries the signaling counters and the send-queue
/// retirement totals (`sq_retired` must equal `sq_posted`).
pub fn get_chaos_run(
    dims: TorusDims,
    node_cfg: NodeConfig,
    p: ChaosParams,
    sig: SignalConfig,
) -> ChaosReport {
    chaos_run_impl(dims, node_cfg, p, None, Some(sig))
}

/// [`chaos_run`] with an explicit [`OccupancySampler`] ticking through
/// the run — the congestion-heatmap harness uses this to record the
/// per-port wire-byte and queue-depth series while the fault plan does
/// its worst. Sampling never changes the schedule, so the report is
/// identical to an unsampled run's.
pub fn chaos_run_sampled(
    dims: TorusDims,
    node_cfg: NodeConfig,
    p: ChaosParams,
    sampler: &mut OccupancySampler,
) -> ChaosReport {
    chaos_run_impl(dims, node_cfg, p, Some(sampler), None)
}

fn chaos_run_impl(
    dims: TorusDims,
    node_cfg: NodeConfig,
    p: ChaosParams,
    sampler: Option<&mut OccupancySampler>,
    get_verb: Option<SignalConfig>,
) -> ChaosReport {
    let n = dims.nodes();
    assert!(n >= 2, "the ring workload needs at least two nodes");
    // Every counter the report quotes flows through this per-run
    // registry: the watchdog mirrors its alarms in, each card publishes
    // its link-reliability totals after the run, and the send queues
    // mirror their signaling activity. The signaling ids are pre-created
    // at zero so PUT runs publish the full id set too.
    let reg = Registry::new();
    signal::register_metrics(&reg);
    let wd_cfg = node_cfg.driver.watchdog.clone();
    let poll = SimDuration::from_ps((wd_cfg.timeout.as_ps() / 4).max(1));
    let mut watchdog = apenet_rdma::driver::Watchdog::new(wd_cfg);
    watchdog.attach_metrics(&reg);
    let is_get = get_verb.is_some();
    let sendqs: Vec<SendQueue> = match &get_verb {
        Some(sig) => (0..n)
            .map(|_| {
                let mut sq = SendQueue::new(sig.clone());
                sq.attach_metrics(&reg);
                sq
            })
            .collect(),
        None => Vec::new(),
    };
    let shared = Rc::new(RefCell::new(ChaosShared {
        watchdog,
        delivered: Default::default(),
        descs: Default::default(),
        reissue: (0..n).map(|_| Default::default()).collect(),
        failed: (0..n).map(|_| Default::default()).collect(),
        sendqs,
    }));
    let programs: Vec<Box<dyn HostProgram>> = (0..n)
        .map(|r| {
            if is_get {
                Box::new(GetChaosRank {
                    rank: r as u32,
                    msgs: p.msgs_per_rank,
                    msg_len: p.msg_len,
                    reissue: p.watchdog_reissue,
                    poll,
                    peer: dims.coord_of((r + 1) % n),
                    tx_buf: 0,
                    rx_buf: 0,
                    shared: shared.clone(),
                }) as Box<dyn HostProgram>
            } else {
                Box::new(ChaosRank {
                    rank: r as u32,
                    msgs: p.msgs_per_rank,
                    msg_len: p.msg_len,
                    reissue: p.watchdog_reissue,
                    poll,
                    peer: dims.coord_of((r + 1) % n),
                    tx_buf: 0,
                    rx_buf: 0,
                    shared: shared.clone(),
                }) as Box<dyn HostProgram>
            }
        })
        .collect();
    let mut cluster = ClusterBuilder::new(dims, node_cfg).build(programs);
    let end = match sampler {
        Some(s) => cluster.run_sampled(s),
        None => cluster.run_auto(),
    };

    // Drain the send queues' final CQEs and collect retirement totals
    // before taking the long immutable borrow below.
    let (sq_posted, sq_retired) = {
        let mut sh = shared.borrow_mut();
        let mut posted = 0;
        let mut retired = 0;
        for sq in sh.sendqs.iter_mut() {
            let _ = sq.reap();
            posted += sq.posted;
            retired += sq.retired;
        }
        (posted, retired)
    };

    // Verify every destination region byte-exactly: rank d's RX buffer
    // must hold its predecessor's TX stream (PUT: the predecessor wrote
    // it here; GET: rank d read its successor's stream into it).
    let region = p.msgs_per_rank as u64 * p.msg_len;
    let mut payload_ok = true;
    let sh = shared.borrow();
    if region > 0 {
        for d in 0..n {
            // PUT: rank d receives from its ring predecessor. GET: rank
            // d pulled from its ring successor.
            let src = if is_get {
                (d + 1) % n
            } else {
                ((d + n) - 1) % n
            };
            let host = cluster.host(d);
            let rx_buf = {
                // Same deterministic allocation order as the rank
                // programs' start(): the RX region is the first GPU
                // allocation.
                let gpu_base = host.node.cuda[0].borrow().mem.base();
                gpu_base
            };
            // Only fully-delivered slots are checked: with recovery
            // disabled, lost messages leave their slots unwritten.
            for i in 0..p.msgs_per_rank {
                let slot = rx_buf + i as u64 * p.msg_len;
                let msg_delivered = sh.descs.iter().any(|(m, desc)| match desc {
                    ChaosDesc::Put(t) => {
                        m.src_rank == src as u32 && t.dst_vaddr == slot && sh.delivered.contains(m)
                    }
                    ChaosDesc::Get(g) => {
                        m.src_rank == d as u32 && g.local_vaddr == slot && sh.delivered.contains(m)
                    }
                });
                if !msg_delivered {
                    continue;
                }
                let off = i as u64 * p.msg_len;
                let got = host.node.cuda[0]
                    .borrow_mut()
                    .mem
                    .read_vec(rx_buf + off, p.msg_len)
                    .unwrap();
                let ok = got
                    .iter()
                    .enumerate()
                    .all(|(j, &b)| b == chaos_byte(src as u32, off + j as u64));
                payload_ok &= ok;
            }
        }
    }

    let mut duplicates = 0;
    let mut quiesced = true;
    let mut last_delivery = SimTime::ZERO;
    let mut error_completions = 0;
    for r in 0..n {
        let cq = &cluster.host(r).node.cq;
        duplicates += cq.duplicate_count();
        error_completions += cq.error_count() as u64;
        if let Some(t) = cq.last_delivery() {
            last_delivery = last_delivery.max(t);
        }
        let card = cluster.card(r).card();
        quiesced &= card.quiesced();
        card.publish_link_metrics(&reg);
    }
    let metrics = reg.counters();
    use apenet_core::card::metrics as lm;
    use apenet_rdma::driver::metrics as wm;
    use apenet_rdma::signal::metrics as sm;
    ChaosReport {
        expected: n as u64 * p.msgs_per_rank as u64,
        delivered: sh.delivered.len() as u64,
        duplicates,
        payload_ok,
        quiesced,
        watchdog_fired: metrics.get(wm::FIRED),
        watchdog_reissues: metrics.get(wm::REISSUES),
        watchdog_failed: metrics.get(wm::UNREACHABLE),
        error_completions,
        dead_links: metrics.get(lm::LINK_DEAD),
        detours: metrics.get(lm::ROUTE_DETOUR),
        unreachable_drops: metrics.get(lm::ROUTE_UNREACHABLE),
        requeued: metrics.get(lm::ROUTE_REQUEUED),
        rx_dup_fragments: metrics.get(lm::RX_DUP_FRAGMENTS),
        retransmits: metrics.get(lm::RETRANSMITS),
        timeouts: metrics.get(lm::TIMEOUTS),
        dup_frames: metrics.get(lm::DUP_FRAMES),
        crc_dropped: metrics.get(lm::CRC_DROPPED),
        naks: metrics.get(lm::NAKS_SENT),
        injected: (
            metrics.get(lm::INJECTED_CORRUPT),
            metrics.get(lm::INJECTED_DROPS),
            metrics.get(lm::INJECTED_STALLS),
        ),
        stall_ps: metrics.get(lm::STALL_PS),
        last_delivery,
        end,
        cq_signaled: metrics.get(sm::CQ_SIGNALED),
        doorbell_batched: metrics.get(sm::DOORBELL_BATCHED),
        sq_posted,
        sq_retired,
        metrics,
    }
}

// ---------------------------------------------------------------------------
// GET stream harness: the batch-size-vs-throughput sweep workload.
// ---------------------------------------------------------------------------

/// Parameters of a two-node GET stream (the `get_sweep` workload).
#[derive(Debug, Clone)]
pub struct GetStreamParams {
    /// Bytes per GET.
    pub size: u64,
    /// Number of GETs.
    pub count: u32,
    /// GETs kept outstanding.
    pub window: u32,
    /// Send-queue moderation tuning (`doorbell_batch` is the swept knob).
    pub sig: SignalConfig,
}

/// The GET requester: keeps `window` reads outstanding against the
/// responder's source buffer, charging the *moderated* host cost per
/// post — every post builds a descriptor, only batch-closing posts ring
/// the doorbell. This is the sweep's measurement loop: with doorbell
/// batching off (batch = 1) the per-post host cost caps small-message
/// throughput; with it on, the wire saturates at large batches.
struct GetStreamRequester {
    peer: Coord,
    peer_vaddr: u64,
    size: u64,
    count: u32,
    window: u32,
    issued: u32,
    rx_buf: u64,
    /// When the host core finishes its current post (posts serialize on
    /// the issuing CPU — this is the LogP *o* bound the doorbell batch
    /// amortises).
    host_free: SimTime,
    sendq: SendQueue,
    drv: apenet_rdma::driver::DriverConfig,
    records: Shared,
}

impl GetStreamRequester {
    fn issue_one(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let out = node
            .ep
            .get(
                self.rx_buf,
                self.size,
                self.peer,
                self.peer_vaddr,
                SrcHint::Gpu,
            )
            .expect("get");
        let force = self.issued + 1 == self.count;
        let info = self.sendq.post(out.desc.msg, force);
        // The issuing core serializes descriptor builds and doorbells:
        // each post occupies it for its host cost after the previous
        // post retires, regardless of how the card pipeline is doing.
        let end = self.host_free.max(api.now) + info.host_cost(&self.drv);
        self.host_free = end;
        self.records.borrow_mut().submits.push(end);
        api.submit_get(end.since(api.now), out.desc);
        self.issued += 1;
        if force && self.sendq.flush_doorbell() {
            // Tail flush: the last burst may not land on a batch
            // boundary; the ring is charged but gates nothing.
        }
    }
}

impl HostProgram for GetStreamRequester {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        self.rx_buf = alloc_buf(node, BufSide::Gpu, self.size);
        node.ep
            .register(self.rx_buf, self.size)
            .expect("register rx");
        let burst = self.window.min(self.count);
        for _ in 0..burst {
            self.issue_one(node, api);
        }
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        if let HostIn::Delivered { msg, len, .. } = ev {
            self.sendq.complete(&msg);
            if self.sendq.cq_occupancy() * 2 >= self.sendq.cq_depth().max(1) {
                let _ = self.sendq.reap();
            }
            self.records.borrow_mut().completions.push((api.now, len));
            if self.issued < self.count {
                self.issue_one(node, api);
            }
        }
    }
}

/// The GET responder: owns the source buffer the requester reads. All
/// serving happens on the card (BUF_LIST walk + reply stream), so the
/// host just registers and idles — the one-sided half of the verb.
struct GetStreamResponder {
    size: u64,
}

impl HostProgram for GetStreamResponder {
    fn start(&mut self, node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {
        let src = alloc_buf(node, BufSide::Gpu, self.size);
        fill_buf(node, BufSide::Gpu, src, self.size, 0x6E);
        node.ep.register(src, self.size).expect("register src");
    }

    fn on_event(&mut self, _ev: HostIn, _node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {}
}

/// Two-node GET stream bandwidth: rank 0 reads rank 1's GPU buffer with
/// `count` pipelined GETs through send-queue moderation.
pub fn get_stream_bandwidth(node_cfg: NodeConfig, p: GetStreamParams) -> BwResult {
    let dims = TorusDims::new(2, 1, 1);
    let records: Shared = Rc::new(RefCell::new(BenchRecords::default()));
    // Both ranks' first GPU allocation lands at the same address, so the
    // requester can name the responder's buffer without an exchange.
    let peer_vaddr = first_alloc_addr(&node_cfg, BufSide::Gpu, p.size, false);
    let drv = node_cfg.driver.clone();
    let requester = Box::new(GetStreamRequester {
        peer: dims.coord_of(1),
        peer_vaddr,
        size: p.size,
        count: p.count,
        window: p.window,
        issued: 0,
        rx_buf: 0,
        host_free: SimTime::ZERO,
        sendq: SendQueue::new(p.sig.clone()),
        drv,
        records: records.clone(),
    });
    let responder = Box::new(GetStreamResponder { size: p.size });
    let mut cluster = ClusterBuilder::new(dims, node_cfg).build(vec![requester, responder]);
    cluster.run_auto();
    let r = records.borrow();
    measure(&r, p.size)
}
