//! Hard-failure suite: dead-link detection, fault-aware rerouting and
//! graceful resource exhaustion.
//!
//! Where the chaos suite injects *recoverable* faults (corruption,
//! drops, stalls) and proves go-back-N hides them, this suite kills
//! cables outright and proves the layer above:
//!
//! * a link killed mid-transfer still yields **exactly-once, byte-exact**
//!   delivery — in-flight frames are requeued onto a detour route after
//!   keepalive escalation declares the cable dead;
//! * a **fully partitioned** node makes every RDMA op targeting it
//!   complete with a **typed error** within the watchdog's bounded
//!   escalation — no infinite retry, no panic, finite event stream;
//! * a full RX event ring **backpressures** (holds completions, raises a
//!   typed error) instead of dropping or panicking, and recovers when
//!   the host reaps entries;
//! * with the fault plane compiled in but **inactive**, a clean run is
//!   timing-identical to the plane-off build.

use apenet_cluster::cluster::ClusterBuilder;
use apenet_cluster::harness::{chaos_run, ChaosParams, ChaosReport};
use apenet_cluster::msg::{HostApi, HostIn, HostProgram, Msg, NodeCtx};
use apenet_cluster::node::{FaultPlan, NodeConfig};
use apenet_cluster::presets::{cluster_i_default, cluster_i_hard_fault};
use apenet_core::card::{CardError, CardIn};
use apenet_core::coord::{Coord, LinkDir, TorusDims};
use apenet_rdma::api::SrcHint;
use apenet_sim::fault::FaultSpec;
use apenet_sim::{SimDuration, SimTime};

fn us(n: u64) -> SimTime {
    SimTime::from_ps(n * 1_000_000)
}

fn kill_run(dims: TorusDims, cfg: NodeConfig, p: ChaosParams) -> ChaosReport {
    chaos_run(dims, cfg, p)
}

/// One cable killed mid-transfer on the Cluster I torus: every message
/// still arrives exactly once and byte-exact, rerouted the long way
/// round the broken ring, and both endpoint cards report the death.
#[test]
fn mid_transfer_link_kill_delivers_exactly_once_via_detour() {
    let dims = TorusDims::new(4, 2, 1);
    let mut cfg = cluster_i_hard_fault();
    // Rank 0's +X cable dies 20 us in — well inside the transfer window
    // of 4 x 64 KB per rank, so frames are in flight on it.
    cfg.faults = FaultPlan::none().kill_link(0, LinkDir::Xp, us(20));
    let r = kill_run(
        dims,
        cfg,
        ChaosParams {
            msgs_per_rank: 4,
            msg_len: 64 * 1024,
            watchdog_reissue: true,
        },
    );
    assert_eq!(r.delivered, r.expected, "every message delivered");
    assert_eq!(r.duplicates, 0, "no duplicate completions");
    assert!(r.payload_ok, "payloads byte-exact after rerouting");
    assert!(r.quiesced, "all cards drained despite the dead cable");
    assert_eq!(r.dead_links, 2, "one port declared dead per cable end");
    assert!(r.detours > 0, "traffic took the long way round");
    assert!(r.requeued > 0, "in-flight frames moved off the dead port");
    assert_eq!(r.watchdog_failed, 0, "card-level reroute beat the watchdog");
    assert_eq!(r.error_completions, 0, "no host-visible failures");
    assert_eq!(r.unreachable_drops, 0, "the torus stayed connected");
}

/// The kill schedule is part of the deterministic event stream: the same
/// schedule replays to identical timing and identical counters.
#[test]
fn link_kill_runs_are_deterministic() {
    let run = || {
        let dims = TorusDims::new(4, 2, 1);
        let mut cfg = cluster_i_hard_fault();
        cfg.faults = FaultPlan::none().kill_link(2, LinkDir::Yp, us(35));
        kill_run(
            dims,
            cfg,
            ChaosParams {
                msgs_per_rank: 3,
                msg_len: 32 * 1024,
                watchdog_reissue: true,
            },
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.delivered, a.expected);
    assert_eq!(a.end, b.end, "identical end time");
    assert_eq!(a.last_delivery, b.last_delivery);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.detours, b.detours);
    assert_eq!(a.requeued, b.requeued);
    assert_eq!(a.dead_links, b.dead_links);
}

/// Hard kill on top of soft chaos: one cable dies while every link also
/// corrupts/drops/stalls frames at random. Go-back-N absorbs the soft
/// faults, the detour absorbs the hard one; the delivery contract holds.
#[test]
fn kill_during_soft_chaos_still_exactly_once() {
    let dims = TorusDims::new(4, 2, 1);
    let mut cfg = cluster_i_hard_fault();
    cfg.faults = FaultPlan::uniform(
        0xDEC0DE,
        FaultSpec {
            corrupt_rate: 1.0 / 200.0,
            drop_rate: 1.0 / 200.0,
            stall_rate: 1.0 / 500.0,
            stall_min: SimDuration::from_ns(500),
            stall_max: SimDuration::from_us(5),
        },
    )
    .kill_link(0, LinkDir::Xp, us(50));
    cfg.faults.loopback = FaultSpec::default();
    let r = kill_run(
        dims,
        cfg,
        ChaosParams {
            msgs_per_rank: 3,
            msg_len: 48 * 1024,
            watchdog_reissue: true,
        },
    );
    assert_eq!(r.delivered, r.expected, "soft+hard: every message lands");
    assert_eq!(r.duplicates, 0);
    assert!(r.payload_ok);
    assert!(r.quiesced);
    assert_eq!(r.dead_links, 2);
}

/// A node cut off from the torus entirely: PUTs targeting it complete
/// with a typed `Unreachable` error within the watchdog's closed-form
/// escalation bound. Nothing retries forever, nothing panics, and the
/// run terminates (a hung event stream would never return).
#[test]
fn fully_partitioned_node_fails_puts_with_typed_error_within_bound() {
    let dims = TorusDims::new(2, 1, 1);
    let mut cfg = cluster_i_hard_fault();
    // Both distinct cables of the 2-ring die 10 us in, isolating rank 1
    // while most of the 4 x 32 KB per rank is still untransmitted.
    cfg.faults = FaultPlan::none().kill_node(1, dims.coord_of(1), dims, us(10));
    let wd = cfg.driver.watchdog.clone();
    let r = kill_run(
        dims,
        cfg,
        ChaosParams {
            msgs_per_rank: 4,
            msg_len: 32 * 1024,
            watchdog_reissue: true,
        },
    );
    // Every message either delivered (before the cut) or failed with a
    // typed error — none lost silently, none retried forever.
    assert_eq!(
        r.delivered + r.error_completions,
        r.expected,
        "delivered + typed errors account for every message"
    );
    assert!(r.error_completions > 0, "the partition failed some PUTs");
    assert_eq!(
        r.watchdog_failed, r.error_completions,
        "every escalation became exactly one error completion"
    );
    assert_eq!(r.duplicates, 0);
    assert!(r.payload_ok, "delivered payloads still byte-exact");
    assert_eq!(r.dead_links, 4, "both ends of both cables retired");
    assert!(r.unreachable_drops > 0, "routing declared the dead end");
    // Escalation bound: max_attempts alarms with capped exponential
    // backoff, plus the harness's poll granularity per alarm.
    let mut bound = r.last_delivery.max(us(10));
    let poll = SimDuration::from_ps(wd.timeout.as_ps() / 4);
    for k in 0..wd.max_attempts {
        let shift = k.min(wd.backoff_cap);
        bound = bound + SimDuration::from_ps(wd.timeout.as_ps() << shift) + poll;
    }
    assert!(
        r.end <= bound,
        "typed errors within the escalation bound: end {:?} > bound {:?}",
        r.end,
        bound
    );
}

// ---------------------------------------------------------------------------
// RX event-ring exhaustion: credit backpressure, typed error, recovery.
// ---------------------------------------------------------------------------

/// Rank 0 streams `msgs` PUTs to rank 1; rank 1 is a pure receiver.
/// Buffers are allocated in the same order on both ranks, so the sender
/// can address peer memory without an exchange (chaos-harness idiom).
struct Streamer {
    msgs: u32,
    len: u64,
    peer: Coord,
    send: bool,
}

impl HostProgram for Streamer {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let region = self.msgs as u64 * self.len;
        let rx = node.cuda[0].borrow_mut().malloc(region).unwrap();
        node.ep.register(rx, region).unwrap();
        if !self.send {
            return;
        }
        let tx = node.cuda[0].borrow_mut().malloc(region).unwrap();
        node.ep.register(tx, region).unwrap();
        for i in 0..self.msgs {
            let off = i as u64 * self.len;
            let out = node
                .ep
                .put(tx + off, self.len, self.peer, rx + off, SrcHint::Gpu)
                .unwrap();
            api.submit(out.host_cost, out.desc);
        }
    }

    fn on_event(&mut self, _ev: HostIn, _node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {}
}

#[test]
fn rx_ring_exhaustion_backpressures_then_recovers() {
    let dims = TorusDims::new(2, 1, 1);
    let mut cfg = cluster_i_hard_fault();
    // A one-entry RX event ring on every card: the second completed
    // message at the receiver has nowhere to post its event.
    cfg.card.rx_ring_entries = Some(1);
    let programs: Vec<Box<dyn HostProgram>> = vec![
        Box::new(Streamer {
            msgs: 3,
            len: 4096,
            peer: dims.coord_of(1),
            send: true,
        }),
        Box::new(Streamer {
            msgs: 3,
            len: 4096,
            peer: dims.coord_of(0),
            send: false,
        }),
    ];
    let mut cluster = ClusterBuilder::new(dims, cfg).build(programs);
    let end = cluster.run();

    // Phase 1 — exhaustion: one delivery fills the ring; the other two
    // complete in the card but are held behind credit backpressure, each
    // raising a typed RxRingFull error. Nothing is dropped, nothing
    // panics, and the card reports itself un-quiesced (held events).
    assert_eq!(cluster.host(1).node.cq.delivered_count(), 1);
    let stalls: Vec<_> = cluster
        .card(1)
        .errors
        .iter()
        .filter(|(_, e)| matches!(e, CardError::RxRingFull { .. }))
        .collect();
    assert_eq!(stalls.len(), 2, "two completions hit the full ring");
    assert_eq!(cluster.card(1).card().stats.rx_ring_stalls, 2);
    assert!(!cluster.card(1).card().quiesced(), "held events pending");

    // Phase 2 — recovery: the host reaps ring entries one at a time;
    // each pop releases exactly one held completion.
    let card1 = cluster.cards[1];
    for i in 0..3u64 {
        cluster.sim.send(
            card1,
            end + SimDuration::from_us(10 * (i + 1)),
            Msg::Card(CardIn::RxRingPop { n: 1 }),
        );
    }
    cluster.run();
    assert_eq!(cluster.host(1).node.cq.delivered_count(), 3);
    assert_eq!(cluster.host(1).node.cq.duplicate_count(), 0);
    assert!(
        cluster.card(1).card().quiesced(),
        "ring drained, card clean"
    );
}

/// With no faults scheduled, the fault plane being compiled in and even
/// *enabled* changes nothing: keepalives only ride fault-run timers, so
/// a clean run is event-for-event identical to the plane-off build.
#[test]
fn clean_run_timing_identical_with_plane_on_and_off() {
    let run = |cfg: NodeConfig| {
        kill_run(
            TorusDims::new(4, 2, 1),
            cfg,
            ChaosParams {
                msgs_per_rank: 2,
                msg_len: 64 * 1024,
                watchdog_reissue: false,
            },
        )
    };
    let off = run(cluster_i_default());
    let on = run(cluster_i_hard_fault());
    assert_eq!(on.end, off.end, "identical end time");
    assert_eq!(on.last_delivery, off.last_delivery);
    assert_eq!(on.delivered, off.delivered);
    for r in [&on, &off] {
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.dead_links, 0);
        assert_eq!(r.detours, 0);
        assert_eq!(r.timeouts, 0, "clean runs arm no timers at all");
    }
}
