//! Seeded GET chaos suite: exactly-once one-sided reads under injected
//! link faults, composed with selective signaling.
//!
//! The mirror image of the PUT chaos suite (`chaos.rs`): every rank
//! *reads* its ring successor's GPU region with one-sided GETs while
//! the fault plan corrupts, drops and stalls both the request and the
//! reply streams. Each case asserts the full delivery contract:
//!
//! * every GET lands **byte-exact** in the requester's GPU buffer,
//! * **exactly once** (no duplicate completions, re-served replies
//!   deduplicated at the requester),
//! * every card **quiesces** (no stuck reply jobs or reassembly state),
//! * the **driver watchdog stays silent** while link recovery is on,
//! * send-queue moderation **retires every WQE** through batched CQEs
//!   (`sq_retired == sq_posted`), and the moderated run's completion
//!   counts match a naive `sig_all = true` oracle on the same seed.
//!
//! Case counts scale with `APENET_CHAOS_CASES` (default 200 across the
//! suite); a failing case prints its seed for exact replay via
//! `APENET_PROP_SEED`.

use apenet_cluster::cluster::ClusterBuilder;
use apenet_cluster::harness::{get_chaos_run, ChaosParams, ChaosReport};
use apenet_cluster::msg::{HostApi, HostIn, HostProgram, Msg, NodeCtx};
use apenet_cluster::node::FaultPlan;
use apenet_cluster::presets::{cluster_i_chaos, cluster_i_default, cluster_i_hard_fault};
use apenet_core::card::metrics as lm;
use apenet_core::card::{CardError, CardIn};
use apenet_core::coord::{Coord, LinkDir, TorusDims};
use apenet_core::packet::MsgId;
use apenet_rdma::api::SrcHint;
use apenet_rdma::driver::metrics as wm;
use apenet_rdma::driver::Watchdog;
use apenet_rdma::signal::SignalConfig;
use apenet_sim::check::{self, Gen};
use apenet_sim::fault::FaultSpec;
use apenet_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn us(n: u64) -> SimTime {
    SimTime::from_ps(n * 1_000_000)
}

/// Per-test case budget: `APENET_CHAOS_CASES` (default 200) split across
/// the suite's property tests.
fn budget(share: u32) -> u32 {
    let total: u32 = std::env::var("APENET_CHAOS_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(200);
    (total * share / 100).max(4)
}

/// A random fault spec with per-frame rates up to 1-in-20.
fn random_spec(g: &mut Gen) -> FaultSpec {
    let rate = |g: &mut Gen| match g.usize(0, 4) {
        0 => 0.0,
        1 => 1.0 / 1000.0,
        2 => 1.0 / 100.0,
        _ => 1.0 / 20.0,
    };
    FaultSpec {
        corrupt_rate: rate(g),
        drop_rate: rate(g),
        stall_rate: rate(g),
        stall_min: SimDuration::from_ns(g.u64(100, 2_000)),
        stall_max: SimDuration::from_us(g.u64(1, 20)),
    }
}

/// A random moderation tuning: every (batch size, CQ depth, high-water)
/// combination the model admits, including the hw == depth corner.
fn random_sig(g: &mut Gen) -> SignalConfig {
    let cq_depth = *g.pick(&[1usize, 2, 4, 16, 64]);
    SignalConfig {
        sig_all: false,
        cq_depth,
        high_water: g.usize(1, cq_depth + 1),
        doorbell_batch: *g.pick(&[1usize, 2, 8, 32]),
    }
}

fn assert_get_exactly_once(r: &ChaosReport, ctx: &str) {
    assert_eq!(r.delivered, r.expected, "{ctx}: every GET delivered");
    assert_eq!(r.duplicates, 0, "{ctx}: no duplicate completions");
    assert!(r.payload_ok, "{ctx}: payloads byte-exact");
    assert!(r.quiesced, "{ctx}: cards drained");
    assert_eq!(
        r.metrics.get(wm::FIRED),
        0,
        "{ctx}: link recovery beat the driver watchdog \
         (retransmits {}, injected {:?})",
        r.metrics.get(lm::RETRANSMITS),
        r.injected
    );
    // Send-queue moderation: every WQE posted came back through a
    // batched CQE, none lost, none duplicated.
    assert_eq!(r.sq_posted, r.expected, "{ctx}: one WQE per GET");
    assert_eq!(r.sq_retired, r.sq_posted, "{ctx}: moderation drained");
    assert!(r.cq_signaled >= 1, "{ctx}: the forced tail signal posted");
    assert!(r.cq_signaled <= r.sq_posted, "{ctx}");
    // The card-level GET protocol counters are consistent: every
    // delivered read was served at least once, and every serve came
    // from some request.
    let served = r.metrics.get(lm::GET_SERVED);
    let requests = r.metrics.get(lm::GET_REQUESTS);
    assert!(served >= r.delivered, "{ctx}: served {served} < delivered");
    assert!(requests >= r.expected, "{ctx}: requests {requests}");
}

#[test]
fn two_node_get_chaos_delivers_exactly_once() {
    check::cases("two-node GET chaos", budget(30), |g| {
        let seed = g.u64(0, u64::MAX - 1);
        let spec = random_spec(g);
        let cfg = cluster_i_chaos(seed, spec);
        let p = ChaosParams {
            msgs_per_rank: g.u32(1, 9),
            msg_len: g.u64(1, 20_000),
            watchdog_reissue: true,
        };
        let sig = random_sig(g);
        let r = get_chaos_run(TorusDims::new(2, 1, 1), cfg, p, sig);
        assert_get_exactly_once(&r, &format!("seed {seed:#x}"));
        if spec.corrupt_rate >= 0.05 && r.metrics.get(lm::INJECTED_CORRUPT) > 0 {
            assert!(
                r.metrics.get(lm::RETRANSMITS) > 0,
                "corruption recovered by replay"
            );
        }
    });
}

#[test]
fn multi_node_get_chaos_delivers_exactly_once() {
    check::cases("multi-node GET chaos", budget(20), |g| {
        let seed = g.u64(0, u64::MAX - 1);
        let spec = random_spec(g);
        let cfg = cluster_i_chaos(seed, spec);
        let dims = *g.pick(&[
            TorusDims::new(4, 1, 1),
            TorusDims::new(2, 2, 1),
            TorusDims::new(4, 2, 1),
        ]);
        let p = ChaosParams {
            msgs_per_rank: g.u32(1, 5),
            msg_len: g.u64(1, 10_000),
            watchdog_reissue: true,
        };
        let sig = random_sig(g);
        let r = get_chaos_run(dims, cfg, p, sig);
        assert_get_exactly_once(&r, &format!("seed {seed:#x} dims {dims:?}"));
    });
}

/// Satellite: moderated completion counts match a naive `sig_all = true`
/// oracle run on the same seed — and because moderation is host-side
/// bookkeeping, the two runs are *timing-identical* too. This covers the
/// "signaled WQE itself dropped then retransmitted" corner implicitly:
/// the fault schedule hits whichever frames it hits in both runs.
#[test]
fn get_moderation_matches_sig_all_oracle_on_same_seed() {
    check::cases("GET moderation vs oracle", budget(15), |g| {
        let seed = g.u64(0, u64::MAX - 1);
        let spec = random_spec(g);
        let p = ChaosParams {
            msgs_per_rank: g.u32(1, 6),
            msg_len: g.u64(1, 12_000),
            watchdog_reissue: true,
        };
        let sig = random_sig(g);
        let oracle_sig = SignalConfig {
            sig_all: true,
            ..sig.clone()
        };
        let dims = TorusDims::new(2, 1, 1);
        let moderated = get_chaos_run(dims, cluster_i_chaos(seed, spec), p.clone(), sig);
        let oracle = get_chaos_run(dims, cluster_i_chaos(seed, spec), p, oracle_sig);
        let ctx = format!("seed {seed:#x}");
        assert_eq!(moderated.delivered, oracle.delivered, "{ctx}");
        assert_eq!(moderated.duplicates, oracle.duplicates, "{ctx}");
        assert_eq!(moderated.sq_posted, oracle.sq_posted, "{ctx}");
        assert_eq!(
            moderated.sq_retired, oracle.sq_retired,
            "{ctx}: moderation retires exactly what sig_all retires"
        );
        assert!(
            moderated.cq_signaled <= oracle.cq_signaled,
            "{ctx}: moderation never signals more than the oracle"
        );
        assert_eq!(
            moderated.end, oracle.end,
            "{ctx}: signaling policy never perturbs the schedule"
        );
        assert_eq!(moderated.last_delivery, oracle.last_delivery, "{ctx}");
    });
}

/// Clean runs (no faults scheduled) deliver everything, keep the
/// watchdog and every fault counter at zero, and replay to identical
/// timing — the GET verb inherits the determinism contract.
#[test]
fn clean_get_runs_are_silent_and_deterministic() {
    let run = || {
        get_chaos_run(
            TorusDims::new(4, 2, 1),
            cluster_i_default(),
            ChaosParams {
                msgs_per_rank: 3,
                msg_len: 24 * 1024,
                watchdog_reissue: true,
            },
            SignalConfig::default(),
        )
    };
    let a = run();
    let b = run();
    assert_get_exactly_once(&a, "clean GET run");
    assert_eq!(a.retransmits, 0, "clean runs replay nothing");
    assert_eq!(a.timeouts, 0, "clean runs arm no link timers");
    assert_eq!(a.watchdog_fired, 0);
    assert_eq!(a.rx_dup_fragments, 0, "no re-serves on a clean run");
    assert_eq!(a.metrics.get(lm::GET_DUP_REQUESTS), 0);
    assert_eq!(a.end, b.end, "identical end time");
    assert_eq!(a.last_delivery, b.last_delivery);
    assert_eq!(a.cq_signaled, b.cq_signaled);
    assert_eq!(a.doorbell_batched, b.doorbell_batched);
}

/// Hard-fault composition: a cable killed mid-transfer on the Cluster I
/// torus. GET requests and reply streams both reroute the long way
/// round; the contract holds and the fault plane's counters prove the
/// detour actually happened.
#[test]
fn mid_transfer_link_kill_get_delivers_exactly_once_via_detour() {
    let dims = TorusDims::new(4, 2, 1);
    let mut cfg = cluster_i_hard_fault();
    cfg.faults = FaultPlan::none().kill_link(0, LinkDir::Xp, us(20));
    let r = get_chaos_run(
        dims,
        cfg,
        ChaosParams {
            msgs_per_rank: 4,
            msg_len: 64 * 1024,
            watchdog_reissue: true,
        },
        SignalConfig::default(),
    );
    assert_eq!(r.delivered, r.expected, "every GET delivered");
    assert_eq!(r.duplicates, 0);
    assert!(r.payload_ok, "payloads byte-exact after rerouting");
    assert!(r.quiesced);
    assert_eq!(r.dead_links, 2, "one port declared dead per cable end");
    assert!(r.detours > 0, "traffic took the long way round");
    assert_eq!(r.error_completions, 0, "no host-visible failures");
    assert_eq!(r.sq_retired, r.sq_posted, "moderation drained");
}

/// Satellite negative path: a fully partitioned responder. Every GET
/// targeting it completes with a typed `Unreachable` error within the
/// watchdog's closed-form escalation bound — and the error completions
/// still retire their WQEs, so send-queue moderation drains even though
/// nothing was delivered.
#[test]
fn partitioned_responder_fails_gets_with_typed_error_within_bound() {
    let dims = TorusDims::new(2, 1, 1);
    let mut cfg = cluster_i_hard_fault();
    cfg.faults = FaultPlan::none().kill_node(1, dims.coord_of(1), dims, us(10));
    let wd = cfg.driver.watchdog.clone();
    let r = get_chaos_run(
        dims,
        cfg,
        ChaosParams {
            msgs_per_rank: 4,
            msg_len: 32 * 1024,
            watchdog_reissue: true,
        },
        SignalConfig::default(),
    );
    assert_eq!(
        r.delivered + r.error_completions,
        r.expected,
        "delivered + typed errors account for every GET"
    );
    assert!(r.error_completions > 0, "the partition failed some GETs");
    assert_eq!(
        r.watchdog_failed, r.error_completions,
        "every escalation became exactly one error completion"
    );
    assert_eq!(r.duplicates, 0);
    assert!(r.payload_ok, "delivered payloads still byte-exact");
    assert_eq!(r.dead_links, 4, "both ends of both cables retired");
    // Error completions terminate WQEs too: moderation drains fully.
    assert_eq!(r.sq_retired, r.sq_posted, "failed WQEs retired via errors");
    let mut bound = r.last_delivery.max(us(10));
    let poll = SimDuration::from_ps(wd.timeout.as_ps() / 4);
    for k in 0..wd.max_attempts {
        let shift = k.min(wd.backoff_cap);
        bound = bound + SimDuration::from_ps(wd.timeout.as_ps() << shift) + poll;
    }
    assert!(
        r.end <= bound,
        "typed errors within the escalation bound: end {:?} > bound {:?}",
        r.end,
        bound
    );
}

// ---------------------------------------------------------------------------
// Watchdog re-issue of an unsignaled GET WQE (late responder
// registration), and RX-ring backpressure with GETs in flight.
// ---------------------------------------------------------------------------

struct LateShared {
    watchdog: Watchdog,
    descs: std::collections::BTreeMap<MsgId, apenet_core::card::GetDesc>,
    sendq: apenet_rdma::signal::SendQueue,
    delivered: u64,
}

/// Rank 0: issues `msgs` GETs against rank 1's buffer immediately and
/// runs its own watchdog loop. The GETs arrive before the responder has
/// registered the buffer, are dropped as unmatched, and only succeed on
/// watchdog re-issue.
struct LateRequester {
    msgs: u32,
    len: u64,
    poll: SimDuration,
    shared: Rc<RefCell<LateShared>>,
}

impl HostProgram for LateRequester {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let region = self.msgs as u64 * self.len;
        let rx = node.cuda[0].borrow_mut().malloc(region).unwrap();
        let tx_mirror = node.cuda[0].borrow_mut().malloc(region).unwrap();
        node.ep.register(rx, region).unwrap();
        let mut sh = self.shared.borrow_mut();
        for i in 0..self.msgs {
            let off = i as u64 * self.len;
            // The peer's source buffer sits at this rank's mirror
            // address (identical allocation order on both ranks).
            let out = node
                .ep
                .get(
                    rx + off,
                    self.len,
                    node.dims.coord_of(1),
                    tx_mirror + off,
                    SrcHint::Gpu,
                )
                .unwrap();
            sh.watchdog.arm(out.desc.msg, api.now);
            // Every WQE unsignaled except the forced tail.
            sh.sendq.post(out.desc.msg, i + 1 == self.msgs);
            sh.descs.insert(out.desc.msg, out.desc.clone());
            api.submit_get(out.host_cost, out.desc);
        }
        drop(sh);
        api.wake(self.poll, 0);
    }

    fn on_event(&mut self, ev: HostIn, _node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let mut sh = self.shared.borrow_mut();
        match ev {
            HostIn::Delivered { msg, .. } => {
                sh.delivered += 1;
                sh.watchdog.disarm(&msg);
                sh.sendq.complete(&msg);
                let _ = sh.sendq.reap();
            }
            HostIn::Wake(_) => {
                let ex = sh.watchdog.poll_expired(api.now);
                assert!(ex.failed.is_empty(), "late registration must recover");
                for msg in ex.reissue {
                    let desc = sh.descs[&msg].clone();
                    api.submit_get(SimDuration::ZERO, desc);
                }
                if sh.watchdog.outstanding() > 0 {
                    api.wake(self.poll, 0);
                }
            }
            _ => {}
        }
    }
}

/// Rank 1: allocates and fills its source buffer at start but only
/// *registers* it at `register_at` — until then inbound GETs miss the
/// BUF_LIST and are dropped unmatched.
struct LateResponder {
    msgs: u32,
    len: u64,
    register_at: SimDuration,
    src: u64,
}

impl HostProgram for LateResponder {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let region = self.msgs as u64 * self.len;
        // Mirror the requester's allocation order so addresses line up.
        let _rx_mirror = node.cuda[0].borrow_mut().malloc(region).unwrap();
        self.src = node.cuda[0].borrow_mut().malloc(region).unwrap();
        let data: Vec<u8> = (0..region)
            .map(|o| (o as u8).wrapping_mul(7) ^ 0x2B)
            .collect();
        node.cuda[0]
            .borrow_mut()
            .mem
            .write(self.src, &data)
            .unwrap();
        api.wake(self.register_at, 1);
    }

    fn on_event(&mut self, ev: HostIn, node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {
        if let HostIn::Wake(1) = ev {
            let region = self.msgs as u64 * self.len;
            node.ep.register(self.src, region).unwrap();
        }
    }
}

/// Satellite edge case: watchdog re-issue of *unsignaled* WQEs. The
/// responder registers its buffer only after the watchdog deadline, so
/// the first wave of GETs is dropped unmatched and every delivery comes
/// from a re-issued request. Completion counts still match the post
/// count exactly — no WQE lost, none duplicated — and the responder's
/// `get.unmatched` counter proves the first wave really missed.
#[test]
fn watchdog_reissue_of_unsignaled_gets_recovers_late_registration() {
    let dims = TorusDims::new(2, 1, 1);
    let cfg = cluster_i_default();
    let wd_cfg = cfg.driver.watchdog.clone();
    let poll = SimDuration::from_ps(wd_cfg.timeout.as_ps() / 4);
    let shared = Rc::new(RefCell::new(LateShared {
        watchdog: Watchdog::new(wd_cfg.clone()),
        descs: Default::default(),
        sendq: apenet_rdma::signal::SendQueue::new(SignalConfig {
            high_water: 2,
            ..SignalConfig::default()
        }),
        delivered: 0,
    }));
    let msgs = 3u32;
    let len = 4096u64;
    let programs: Vec<Box<dyn HostProgram>> = vec![
        Box::new(LateRequester {
            msgs,
            len,
            poll,
            shared: shared.clone(),
        }),
        Box::new(LateResponder {
            msgs,
            len,
            // Past the first watchdog deadline (20 ms default).
            register_at: wd_cfg.timeout + SimDuration::from_ms(5),
            src: 0,
        }),
    ];
    let mut cluster = ClusterBuilder::new(dims, cfg).build(programs);
    cluster.run();
    let mut sh = shared.borrow_mut();
    let _ = sh.sendq.reap();
    assert_eq!(sh.delivered, msgs as u64, "every GET recovered");
    assert!(sh.watchdog.fired >= msgs as u64, "first wave expired");
    assert_eq!(sh.watchdog.gave_up, 0);
    assert_eq!(sh.sendq.posted, msgs as u64);
    assert_eq!(
        sh.sendq.retired, sh.sendq.posted,
        "re-issued unsignaled WQEs retired exactly once"
    );
    assert!(sh.sendq.drained());
    assert_eq!(cluster.host(0).node.cq.duplicate_count(), 0);
    let responder = cluster.card(1).card();
    assert!(
        responder.stats.get_unmatched >= msgs as u64,
        "the early wave missed the BUF_LIST"
    );
    assert_eq!(responder.stats.get_served, msgs as u64);
    assert!(cluster.card(0).card().quiesced());
    assert!(responder.quiesced());
}

/// Rank 0 GETs `msgs` reads from rank 1; replies land against rank 0's
/// one-entry RX event ring.
struct RingGetter {
    msgs: u32,
    len: u64,
    peer: Coord,
    requester: bool,
}

impl HostProgram for RingGetter {
    fn start(&mut self, node: &mut NodeCtx, api: &mut HostApi<'_, '_>) {
        let region = self.msgs as u64 * self.len;
        let rx = node.cuda[0].borrow_mut().malloc(region).unwrap();
        let tx = node.cuda[0].borrow_mut().malloc(region).unwrap();
        node.ep.register(rx, region).unwrap();
        node.ep.register(tx, region).unwrap();
        if !self.requester {
            let data: Vec<u8> = (0..region).map(|o| (o as u8) ^ 0x77).collect();
            node.cuda[0].borrow_mut().mem.write(tx, &data).unwrap();
            return;
        }
        for i in 0..self.msgs {
            let off = i as u64 * self.len;
            let out = node
                .ep
                .get(rx + off, self.len, self.peer, tx + off, SrcHint::Gpu)
                .unwrap();
            api.submit_get(out.host_cost, out.desc);
        }
    }

    fn on_event(&mut self, _ev: HostIn, _node: &mut NodeCtx, _api: &mut HostApi<'_, '_>) {}
}

/// Satellite negative path: RX-ring backpressure with GETs in flight.
/// The *requester's* ring fills (GET completions arrive there), held
/// replies raise typed `RxRingFull` errors, and host pops release them
/// one at a time — nothing dropped, exactly-once preserved.
#[test]
fn get_rx_ring_exhaustion_backpressures_then_recovers() {
    let dims = TorusDims::new(2, 1, 1);
    let mut cfg = cluster_i_hard_fault();
    cfg.card.rx_ring_entries = Some(1);
    let programs: Vec<Box<dyn HostProgram>> = vec![
        Box::new(RingGetter {
            msgs: 3,
            len: 4096,
            peer: dims.coord_of(1),
            requester: true,
        }),
        Box::new(RingGetter {
            msgs: 3,
            len: 4096,
            peer: dims.coord_of(0),
            requester: false,
        }),
    ];
    let mut cluster = ClusterBuilder::new(dims, cfg).build(programs);
    let end = cluster.run();

    // Phase 1 — exhaustion at the *requester*: one reply delivered, the
    // other two held behind ring credit with typed errors raised.
    assert_eq!(cluster.host(0).node.cq.delivered_count(), 1);
    let stalls = cluster
        .card(0)
        .errors
        .iter()
        .filter(|(_, e)| matches!(e, CardError::RxRingFull { .. }))
        .count();
    assert_eq!(stalls, 2, "two GET replies hit the full ring");
    assert!(!cluster.card(0).card().quiesced(), "held events pending");

    // Phase 2 — recovery: each pop releases exactly one held reply.
    let card0 = cluster.cards[0];
    for i in 0..3u64 {
        cluster.sim.send(
            card0,
            end + SimDuration::from_us(10 * (i + 1)),
            Msg::Card(CardIn::RxRingPop { n: 1 }),
        );
    }
    cluster.run();
    assert_eq!(cluster.host(0).node.cq.delivered_count(), 3);
    assert_eq!(cluster.host(0).node.cq.duplicate_count(), 0);
    assert!(
        cluster.card(0).card().quiesced(),
        "ring drained, card clean"
    );
    assert!(cluster.card(1).card().quiesced(), "responder clean too");
}
