//! Calibration tests: the harness must land on the paper's headline
//! numbers within tolerance bands (DESIGN.md §4).

use apenet_cluster::harness::{
    flush_read_bandwidth, loopback_bandwidth, pingpong_half_rtt, two_node_bandwidth, BufSide,
    TwoNodeParams,
};
use apenet_cluster::presets::{cluster_i_default, plx_node};
use apenet_core::config::GpuTxVersion;
use apenet_gpu::GpuArch;

fn mbs(r: apenet_cluster::harness::BwResult) -> f64 {
    r.bandwidth.mb_per_sec_f64()
}

#[test]
fn table1_host_memory_read_2_4_gbs() {
    let r = flush_read_bandwidth(cluster_i_default(), BufSide::Host, 1 << 20, 16);
    let got = mbs(r);
    assert!(
        (2200.0..2500.0).contains(&got),
        "host read {got} MB/s (paper: 2400)"
    );
}

#[test]
fn table1_fermi_p2p_read_1_5_gbs() {
    let cfg = plx_node(GpuArch::Fermi2050, GpuTxVersion::V3, 128 * 1024);
    let r = flush_read_bandwidth(cfg, BufSide::Gpu, 1 << 20, 16);
    let got = mbs(r);
    assert!(
        (1400.0..1560.0).contains(&got),
        "Fermi P2P read {got} MB/s (paper: 1500)"
    );
}

#[test]
fn table1_v1_read_600_mbs() {
    let cfg = plx_node(GpuArch::Fermi2050, GpuTxVersion::V1, 4096);
    let r = flush_read_bandwidth(cfg, BufSide::Gpu, 1 << 20, 16);
    let got = mbs(r);
    assert!(
        (520.0..680.0).contains(&got),
        "v1 read {got} MB/s (paper: ~600)"
    );
}

#[test]
fn table1_loopback_hh_1_2_gbs() {
    let r = loopback_bandwidth(
        cluster_i_default(),
        BufSide::Host,
        BufSide::Host,
        1 << 20,
        16,
    );
    let got = mbs(r);
    assert!(
        (1080.0..1320.0).contains(&got),
        "H-H loopback {got} MB/s (paper: 1200)"
    );
}

#[test]
fn table1_loopback_gg_1_1_gbs() {
    let r = loopback_bandwidth(cluster_i_default(), BufSide::Gpu, BufSide::Gpu, 1 << 20, 16);
    let got = mbs(r);
    assert!(
        (980.0..1200.0).contains(&got),
        "G-G loopback {got} MB/s (paper: 1100)"
    );
}

#[test]
fn fig6_two_node_hh_plateau_1_2_gbs() {
    let r = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Host,
            dst: BufSide::Host,
            size: 1 << 20,
            count: 16,
            staged: false,
        },
    );
    let got = mbs(r);
    assert!(
        (1080.0..1320.0).contains(&got),
        "two-node H-H {got} MB/s (paper: 1200)"
    );
}

#[test]
fn fig6_two_node_gg_plateau_1_0_gbs() {
    let r = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Gpu,
            dst: BufSide::Gpu,
            size: 1 << 20,
            count: 16,
            staged: false,
        },
    );
    let got = mbs(r);
    assert!(
        (950.0..1190.0).contains(&got),
        "two-node G-G {got} MB/s (paper: ~1000-1100)"
    );
}

#[test]
fn fig8_hh_latency_6_3_us() {
    let lat = pingpong_half_rtt(
        cluster_i_default(),
        BufSide::Host,
        BufSide::Host,
        32,
        20,
        false,
    );
    let us = lat.as_us_f64();
    assert!((5.6..7.0).contains(&us), "H-H latency {us} us (paper: 6.3)");
}

#[test]
fn fig9_gg_latency_8_2_us() {
    let lat = pingpong_half_rtt(
        cluster_i_default(),
        BufSide::Gpu,
        BufSide::Gpu,
        32,
        20,
        false,
    );
    let us = lat.as_us_f64();
    assert!(
        (7.4..9.3).contains(&us),
        "G-G P2P latency {us} us (paper: 8.2)"
    );
}

#[test]
fn fig9_gg_staged_latency_16_8_us() {
    let lat = pingpong_half_rtt(
        cluster_i_default(),
        BufSide::Gpu,
        BufSide::Gpu,
        32,
        20,
        true,
    );
    let us = lat.as_us_f64();
    assert!(
        (15.0..19.0).contains(&us),
        "G-G staged latency {us} us (paper: 16.8)"
    );
}

#[test]
fn fig7_crossover_staging_wins_large() {
    let p2p = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Gpu,
            dst: BufSide::Gpu,
            size: 4 << 20,
            count: 8,
            staged: false,
        },
    );
    let staged = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Gpu,
            dst: BufSide::Gpu,
            size: 4 << 20,
            count: 8,
            staged: true,
        },
    );
    // "after that limit [32 KB], staging seems a better approach"
    assert!(
        mbs(staged) > mbs(p2p) * 0.99,
        "staged {} vs p2p {} at 4 MB",
        mbs(staged),
        mbs(p2p)
    );
    let p2p_small = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Gpu,
            dst: BufSide::Gpu,
            size: 8 << 10,
            count: 24,
            staged: false,
        },
    );
    let staged_small = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Gpu,
            dst: BufSide::Gpu,
            size: 8 << 10,
            count: 24,
            staged: true,
        },
    );
    // "GPU peer-to-peer technique is definitively effective for small sizes"
    assert!(
        mbs(p2p_small) > mbs(staged_small) * 1.5,
        "p2p {} vs staged {} at 8 KB",
        mbs(p2p_small),
        mbs(staged_small)
    );
}

#[test]
fn fig4_window_scaling_v2() {
    // "GPU_P2P_TX v2 shows a 20% improvement while increasing the
    // pre-fetch window size from 4KB to 8KB".
    let bw4 = mbs(flush_read_bandwidth(
        plx_node(GpuArch::Fermi2050, GpuTxVersion::V2, 4 * 1024),
        BufSide::Gpu,
        1 << 20,
        8,
    ));
    let bw8 = mbs(flush_read_bandwidth(
        plx_node(GpuArch::Fermi2050, GpuTxVersion::V2, 8 * 1024),
        BufSide::Gpu,
        1 << 20,
        8,
    ));
    let bw32 = mbs(flush_read_bandwidth(
        plx_node(GpuArch::Fermi2050, GpuTxVersion::V2, 32 * 1024),
        BufSide::Gpu,
        1 << 20,
        8,
    ));
    let gain = bw8 / bw4;
    assert!(
        (1.1..1.45).contains(&gain),
        "4K→8K gain {gain} (paper: ~1.2)"
    );
    assert!(
        (1350.0..1540.0).contains(&bw32),
        "v2 w=32K {bw32} MB/s (paper: ~1.5 GB/s)"
    );
}

#[test]
fn table1_kepler_reads() {
    let p2p = mbs(flush_read_bandwidth(
        plx_node(GpuArch::KeplerK20, GpuTxVersion::V3, 128 * 1024),
        BufSide::Gpu,
        1 << 20,
        8,
    ));
    assert!(
        (1480.0..1640.0).contains(&p2p),
        "K20 P2P read {p2p} MB/s (paper: 1600)"
    );
}

#[test]
fn data_integrity_two_node_gg() {
    // Not a paper number, but the invariant behind every test above:
    // bytes must arrive intact through the whole simulated stack.
    // (Covered in depth by the workspace integration tests; here we just
    // re-run a transfer and rely on the harness's internal fills.)
    let r = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Gpu,
            dst: BufSide::Gpu,
            size: 64 << 10,
            count: 4,
            staged: false,
        },
    );
    assert!(mbs(r) > 0.0);
}

#[test]
fn table1_bar1_reads_through_the_card() {
    use apenet_cluster::presets::plx_node_bar1;
    // Fermi BAR1 is terrible (150 MB/s); Kepler BAR1 matches P2P.
    let fermi = flush_read_bandwidth(
        plx_node_bar1(GpuArch::Fermi2050, 128 * 1024),
        BufSide::Gpu,
        1 << 20,
        8,
    );
    let f = mbs(fermi);
    assert!(
        (135.0..160.0).contains(&f),
        "Fermi BAR1 {f} MB/s (paper: 150)"
    );
    let k20 = flush_read_bandwidth(
        plx_node_bar1(GpuArch::KeplerK20, 128 * 1024),
        BufSide::Gpu,
        1 << 20,
        8,
    );
    let k = mbs(k20);
    assert!(
        (1480.0..1650.0).contains(&k),
        "Kepler BAR1 {k} MB/s (paper: 1600)"
    );
}

#[test]
fn bidirectional_bandwidth_is_nios_limited() {
    use apenet_cluster::harness::two_node_bidir_bandwidth;
    // The paper: bi-directional behaves like the loop-back plot — each
    // node's Nios II serves TX control and RX at once, so the aggregate
    // exceeds the uni-directional rate but each direction pays.
    let uni = two_node_bandwidth(
        cluster_i_default(),
        TwoNodeParams {
            src: BufSide::Gpu,
            dst: BufSide::Gpu,
            size: 1 << 20,
            count: 12,
            staged: false,
        },
    );
    let bidir =
        two_node_bidir_bandwidth(cluster_i_default(), BufSide::Gpu, BufSide::Gpu, 1 << 20, 12);
    let (u, b) = (mbs(uni), mbs(bidir));
    assert!(
        b > u * 1.4,
        "aggregate bidir {b} should well exceed uni {u}"
    );
    assert!(
        b < u * 2.0,
        "but each direction pays the shared-Nios tax ({b} vs {u})"
    );
}
