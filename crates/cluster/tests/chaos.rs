//! Seeded chaos suite: exactly-once RDMA delivery under injected link
//! faults.
//!
//! Every case draws a random fault schedule (bit corruption, whole-frame
//! drops, link stalls — rates up to 1-in-20 per frame), runs a ring of
//! GPU-to-GPU PUTs over it, and asserts the full delivery contract:
//!
//! * every message arrives **byte-exact** at its destination GPU,
//! * **exactly once** (no duplicate completions),
//! * every card **quiesces** (no stuck replay buffers or partial
//!   reassembly state),
//! * the **driver watchdog never fires** — link-level go-back-N recovers
//!   everything long before the RDMA layer's deadline.
//!
//! Case counts scale with `APENET_CHAOS_CASES` (default 200 across the
//! suite); a failing case prints its seed for exact replay via
//! `APENET_PROP_SEED`.

use apenet_cluster::harness::{chaos_run, ChaosParams, ChaosReport};
use apenet_cluster::presets::{cluster_i_chaos, cluster_i_chaos_no_retrans};
use apenet_core::card::metrics as lm;
use apenet_core::coord::TorusDims;
use apenet_rdma::driver::metrics as wm;
use apenet_sim::check::{self, Gen};
use apenet_sim::fault::FaultSpec;

/// Per-test case budget: `APENET_CHAOS_CASES` (default 200) split across
/// the suite's three property tests.
fn budget(share: u32) -> u32 {
    let total: u32 = std::env::var("APENET_CHAOS_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(200);
    (total * share / 100).max(4)
}

/// A random fault spec with per-frame rates up to 1-in-20.
fn random_spec(g: &mut Gen) -> FaultSpec {
    let rate = |g: &mut Gen| match g.usize(0, 4) {
        0 => 0.0,
        1 => 1.0 / 1000.0,
        2 => 1.0 / 100.0,
        _ => 1.0 / 20.0,
    };
    FaultSpec {
        corrupt_rate: rate(g),
        drop_rate: rate(g),
        stall_rate: rate(g),
        stall_min: apenet_sim::SimDuration::from_ns(g.u64(100, 2_000)),
        stall_max: apenet_sim::SimDuration::from_us(g.u64(1, 20)),
    }
}

fn assert_exactly_once(r: &ChaosReport, ctx: &str) {
    assert_eq!(r.delivered, r.expected, "{ctx}: every message delivered");
    assert_eq!(r.duplicates, 0, "{ctx}: no duplicate completions");
    assert!(r.payload_ok, "{ctx}: payloads byte-exact");
    assert!(r.quiesced, "{ctx}: cards drained");
    // Counters are read through the run's metrics registry snapshot —
    // the same ids every other consumer (repro-all, ad-hoc debugging)
    // sees — not bespoke per-test plumbing.
    assert_eq!(
        r.metrics.get(wm::FIRED),
        0,
        "{ctx}: link recovery beat the driver watchdog \
         (retransmits {}, injected {:?})",
        r.metrics.get(lm::RETRANSMITS),
        r.injected
    );
    // The scalar report fields are views into the same snapshot.
    assert_eq!(r.watchdog_fired, r.metrics.get(wm::FIRED), "{ctx}");
    assert_eq!(r.retransmits, r.metrics.get(lm::RETRANSMITS), "{ctx}");
}

#[test]
fn two_node_chaos_delivers_exactly_once() {
    check::cases("two-node chaos", budget(55), |g| {
        let seed = g.u64(0, u64::MAX - 1);
        let spec = random_spec(g);
        let cfg = cluster_i_chaos(seed, spec);
        let p = ChaosParams {
            msgs_per_rank: g.u32(1, 9),
            msg_len: g.u64(1, 20_000),
            watchdog_reissue: true,
        };
        let r = chaos_run(TorusDims::new(2, 1, 1), cfg, p);
        assert_exactly_once(&r, &format!("seed {seed:#x}"));
        // The schedule must actually have bitten when rates are hot,
        // otherwise the suite silently tests nothing.
        if spec.corrupt_rate >= 0.05 && r.metrics.get(lm::INJECTED_CORRUPT) > 0 {
            assert!(
                r.metrics.get(lm::RETRANSMITS) > 0,
                "corruption recovered by replay"
            );
        }
    });
}

#[test]
fn multi_node_chaos_delivers_exactly_once() {
    check::cases("multi-node chaos", budget(30), |g| {
        let seed = g.u64(0, u64::MAX - 1);
        let spec = random_spec(g);
        let cfg = cluster_i_chaos(seed, spec);
        let dims = *g.pick(&[
            TorusDims::new(4, 1, 1),
            TorusDims::new(2, 2, 1),
            TorusDims::new(4, 2, 1),
        ]);
        let p = ChaosParams {
            msgs_per_rank: g.u32(1, 5),
            msg_len: g.u64(1, 10_000),
            watchdog_reissue: true,
        };
        let r = chaos_run(dims, cfg, p);
        assert_exactly_once(&r, &format!("seed {seed:#x} dims {dims:?}"));
    });
}

/// Kill-switch check: with link retransmission disabled the same
/// schedules must make the contract fail — this is the proof that the
/// suite can detect a broken reliability layer at all.
#[test]
fn kill_switch_chaos_loses_messages() {
    let mut broken = 0u32;
    let cases = budget(10);
    check::cases("kill-switch chaos", cases, |g| {
        let seed = g.u64(0, u64::MAX - 1);
        // Hot rates so nearly every schedule actually bites.
        let spec = FaultSpec {
            corrupt_rate: 1.0 / 20.0,
            drop_rate: 1.0 / 20.0,
            ..FaultSpec::default()
        };
        let cfg = cluster_i_chaos_no_retrans(seed, spec);
        let p = ChaosParams {
            msgs_per_rank: 4,
            msg_len: 16_384,
            watchdog_reissue: false,
        };
        let r = chaos_run(TorusDims::new(2, 1, 1), cfg, p);
        assert_eq!(
            r.metrics.get(lm::RETRANSMITS),
            0,
            "reliability layer is off"
        );
        if r.delivered < r.expected {
            broken += 1;
            assert!(
                r.metrics.get(lm::CRC_DROPPED) > 0 || r.metrics.get(lm::INJECTED_DROPS) > 0,
                "losses must trace back to injected faults"
            );
        }
    });
    assert!(
        broken > cases / 2,
        "the kill switch must visibly break delivery \
         (only {broken}/{cases} cases lost messages)"
    );
}

/// With the link layer disabled, the driver watchdog's bounded-backoff
/// re-issue is the only recovery path — single-packet messages make its
/// retries idempotent, so delivery completes despite drops.
#[test]
fn watchdog_recovers_when_link_layer_cannot() {
    check::cases("watchdog recovery", budget(5), |g| {
        let seed = g.u64(0, u64::MAX - 1);
        let spec = FaultSpec {
            drop_rate: 1.0 / 20.0,
            corrupt_rate: 1.0 / 20.0,
            ..FaultSpec::default()
        };
        let cfg = cluster_i_chaos_no_retrans(seed, spec);
        let p = ChaosParams {
            msgs_per_rank: 6,
            msg_len: 2_048, // single packet: re-issue is idempotent
            watchdog_reissue: true,
        };
        let r = chaos_run(TorusDims::new(2, 1, 1), cfg, p);
        assert_eq!(
            r.delivered, r.expected,
            "seed {seed:#x}: watchdog recovered"
        );
        assert!(r.payload_ok, "seed {seed:#x}");
        assert!(r.quiesced, "seed {seed:#x}");
        if r.metrics.get(lm::CRC_DROPPED) > 0 || r.metrics.get(lm::INJECTED_DROPS) > 0 {
            assert!(
                r.metrics.get(wm::FIRED) > 0 && r.metrics.get(wm::REISSUES) > 0,
                "seed {seed:#x}: losses with no link recovery imply alarms"
            );
        }
    });
}

/// The whole suite is deterministic: one schedule, two runs, identical
/// reports.
#[test]
fn chaos_runs_replay_bit_identically() {
    let cfg = || cluster_i_chaos(0xC0FFEE, FaultSpec::chaos(1.0 / 50.0));
    let p = || ChaosParams {
        msgs_per_rank: 6,
        msg_len: 12_345,
        watchdog_reissue: true,
    };
    let r1 = chaos_run(TorusDims::new(2, 2, 1), cfg(), p());
    let r2 = chaos_run(TorusDims::new(2, 2, 1), cfg(), p());
    assert_eq!(r1.end, r2.end, "same final event time");
    // Determinism holds for the entire counter snapshot, not just a few
    // hand-picked fields.
    assert_eq!(r1.metrics, r2.metrics, "identical registry snapshots");
    assert_eq!(r1.injected, r2.injected);
    assert_exactly_once(&r1, "replay");
}
