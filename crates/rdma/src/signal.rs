//! Selective signaling and doorbell batching for the send queue.
//!
//! The production idiom this models (`sq_sig_all = 0`): most WQEs are
//! posted *unsignaled* and generate no CQE of their own. A signaled WQE
//! is force-posted when the number of unretired WQEs crosses a
//! high-water mark; its CQE retires the whole run of unsignaled WQEs
//! behind it in one reap. Orthogonally, the doorbell MMIO write that
//! kicks the card is rung once per N descriptors instead of once per
//! post, amortising the per-PUT host overhead split in
//! [`DriverConfig::desc_build`]/[`DriverConfig::doorbell_cost`].
//!
//! [`SendQueue`] is a host-side bookkeeping model: it decides which
//! posts are signaled, charges the right host cost per post, and turns
//! per-message completions (delivered *or* failed — every armed message
//! terminates one way or the other) into batched CQEs. It is
//! deliberately tolerant of the chaos plane: completions may arrive out
//! of order across batches (retransmission reorders them) and more than
//! once (a watchdog re-issue can complete twice); retirement stays
//! exactly-once regardless.
//!
//! [`DriverConfig::desc_build`]: crate::driver::DriverConfig::desc_build
//! [`DriverConfig::doorbell_cost`]: crate::driver::DriverConfig::doorbell_cost

use crate::driver::DriverConfig;
use apenet_core::packet::MsgId;
use apenet_obs::{Counter, Registry};
use apenet_sim::SimDuration;
use std::collections::{BTreeMap, VecDeque};

/// Registry ids for the signaling counters.
pub mod metrics {
    /// Signaled WQEs posted (forced by the high-water mark, a flush, or
    /// `sig_all`).
    pub const CQ_SIGNALED: &str = "cq.signaled";
    /// Posts that skipped their own doorbell because a batched ring
    /// covered them.
    pub const DOORBELL_BATCHED: &str = "doorbell.batched";

    /// Every signaling id, in reporting order, for the completeness test.
    pub const ALL: [&str; 2] = [CQ_SIGNALED, DOORBELL_BATCHED];
}

/// Pre-create the signaling counters at zero so a run that never posts
/// through a [`SendQueue`] still publishes the full id set.
pub fn register_metrics(reg: &Registry) {
    for id in metrics::ALL {
        let _ = reg.counter(id);
    }
}

/// Send-queue moderation tuning.
#[derive(Debug, Clone)]
pub struct SignalConfig {
    /// Signal every WQE (the naive oracle mode). Default off.
    pub sig_all: bool,
    /// CQE capacity of the completion queue; unreaped CQEs never exceed
    /// this (the high-water mark keeps each batch small enough).
    pub cq_depth: usize,
    /// Force a signaled WQE when the unretired-WQE count (including the
    /// one being posted) reaches this mark.
    pub high_water: usize,
    /// Ring the doorbell once per this many descriptors.
    pub doorbell_batch: usize,
}

impl Default for SignalConfig {
    fn default() -> Self {
        SignalConfig {
            sig_all: false,
            cq_depth: 64,
            high_water: 16,
            doorbell_batch: 8,
        }
    }
}

/// What one `post()` did, for host-cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostInfo {
    /// This WQE carries a completion flag.
    pub signaled: bool,
    /// This post rang the doorbell (batch boundary reached).
    pub doorbell: bool,
}

impl PostInfo {
    /// Host CPU time this post occupied: every post builds a
    /// descriptor; only batch-closing posts pay the doorbell.
    pub fn host_cost(&self, cfg: &DriverConfig) -> SimDuration {
        if self.doorbell {
            cfg.desc_build + cfg.doorbell_cost
        } else {
            cfg.desc_build
        }
    }
}

/// One batched completion: the signaled WQE plus every unsignaled WQE
/// it retires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cqe {
    /// The signaled WQE that closed the batch.
    pub signaled: MsgId,
    /// Every message the CQE retires, in post order (includes
    /// `signaled` itself).
    pub retired: Vec<MsgId>,
}

#[derive(Debug, Clone, Copy)]
struct Wqe {
    batch: u64,
    completed: bool,
}

#[derive(Debug, Clone)]
struct Batch {
    members: Vec<MsgId>,
    completed: usize,
    /// Set when a signaled WQE closed the batch; open batches never
    /// emit a CQE (the classic unsignaled-tail foot-gun — flush or
    /// force-signal the last post).
    closed_by: Option<MsgId>,
}

/// Host-side send-queue moderation model.
#[derive(Debug, Default)]
pub struct SendQueue {
    cfg: SignalConfig,
    wqes: BTreeMap<MsgId, Wqe>,
    batches: BTreeMap<u64, Batch>,
    open_batch: u64,
    next_batch: u64,
    cq: VecDeque<Cqe>,
    since_doorbell: usize,
    /// Lifetime counters, exactly-once by construction.
    pub posted: u64,
    /// WQEs retired through reaped CQEs.
    pub retired: u64,
    /// Signaled WQEs posted.
    pub signaled_posts: u64,
    /// Posts covered by a batched doorbell (did not ring their own).
    pub doorbells_saved: u64,
    /// Duplicate `complete()` calls absorbed (watchdog re-issues).
    pub dup_completions: u64,
    counters: Option<SignalCounters>,
}

#[derive(Debug, Clone)]
struct SignalCounters {
    signaled: Counter,
    batched: Counter,
}

impl SendQueue {
    /// A send queue with the given moderation tuning.
    pub fn new(cfg: SignalConfig) -> Self {
        assert!(cfg.high_water >= 1, "high-water mark must be positive");
        assert!(cfg.doorbell_batch >= 1, "doorbell batch must be positive");
        SendQueue {
            cfg,
            ..SendQueue::default()
        }
    }

    /// Mirror signaling activity into `reg` under the [`metrics`] ids.
    pub fn attach_metrics(&mut self, reg: &Registry) {
        self.counters = Some(SignalCounters {
            signaled: reg.counter(metrics::CQ_SIGNALED),
            batched: reg.counter(metrics::DOORBELL_BATCHED),
        });
    }

    /// WQEs posted but not yet retired through a reaped CQE.
    pub fn outstanding(&self) -> usize {
        self.wqes.len()
    }

    /// CQEs emitted but not yet reaped.
    pub fn cq_occupancy(&self) -> usize {
        self.cq.len()
    }

    /// The configured CQE capacity (for reap-cadence policy in callers).
    pub fn cq_depth(&self) -> usize {
        self.cfg.cq_depth
    }

    /// Post one WQE. Signaled when `sig_all`, when `force_signal` (the
    /// caller's last post of a burst), or when the unretired count
    /// reaches the high-water mark. Returns what the post did so the
    /// caller can charge [`PostInfo::host_cost`].
    pub fn post(&mut self, msg: MsgId, force_signal: bool) -> PostInfo {
        let occupancy = self.wqes.len() + 1;
        let signaled = self.cfg.sig_all || force_signal || occupancy >= self.cfg.high_water;
        let batch_id = self.open_batch;
        self.wqes.insert(
            msg,
            Wqe {
                batch: batch_id,
                completed: false,
            },
        );
        let batch = self.batches.entry(batch_id).or_insert_with(|| Batch {
            members: Vec::new(),
            completed: 0,
            closed_by: None,
        });
        batch.members.push(msg);
        self.posted += 1;
        if signaled {
            batch.closed_by = Some(msg);
            self.next_batch += 1;
            self.open_batch = self.next_batch;
            self.signaled_posts += 1;
            if let Some(c) = &self.counters {
                c.signaled.incr();
            }
        }
        self.since_doorbell += 1;
        let doorbell = self.since_doorbell >= self.cfg.doorbell_batch;
        if doorbell {
            self.since_doorbell = 0;
        } else {
            self.doorbells_saved += 1;
            if let Some(c) = &self.counters {
                c.batched.incr();
            }
        }
        PostInfo { signaled, doorbell }
    }

    /// Ring the doorbell for any descriptors still waiting on a batch
    /// boundary. Returns true when a ring was actually needed (charge
    /// `doorbell_cost`), false when the last post already rang it.
    pub fn flush_doorbell(&mut self) -> bool {
        if self.since_doorbell == 0 {
            return false;
        }
        self.since_doorbell = 0;
        true
    }

    /// A message terminated — delivered, or completed with a typed
    /// error. Both count: every armed message terminates exactly one
    /// way, so batches always drain. Idempotent: duplicate completions
    /// (a watchdog re-issue finishing twice) are absorbed and counted.
    /// When the completion fills a closed batch, its CQE is emitted;
    /// batches may fill out of order under retransmission and each
    /// still emits exactly one CQE.
    pub fn complete(&mut self, msg: &MsgId) {
        let Some(wqe) = self.wqes.get_mut(msg) else {
            // Already retired (or never posted): a late duplicate.
            self.dup_completions += 1;
            return;
        };
        if wqe.completed {
            self.dup_completions += 1;
            return;
        }
        wqe.completed = true;
        let batch_id = wqe.batch;
        let batch = self.batches.get_mut(&batch_id).expect("wqe has a batch");
        batch.completed += 1;
        if batch.closed_by.is_some() && batch.completed == batch.members.len() {
            let batch = self.batches.remove(&batch_id).expect("just seen");
            for m in &batch.members {
                self.wqes.remove(m);
            }
            self.retired += batch.members.len() as u64;
            debug_assert!(
                self.cq.len() < self.cfg.cq_depth,
                "CQ overflow: reap before posting more"
            );
            self.cq.push_back(Cqe {
                signaled: batch.closed_by.expect("closed"),
                retired: batch.members,
            });
        }
    }

    /// Drain every emitted CQE. Each reaped CQE costs the caller one
    /// `completion_poll`; the WQEs it covers were already retired at
    /// emission time.
    pub fn reap(&mut self) -> Vec<Cqe> {
        self.cq.drain(..).collect()
    }

    /// True when every posted WQE has been retired and reaped — the
    /// send queue is quiescent.
    pub fn drained(&self) -> bool {
        self.wqes.is_empty() && self.cq.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(seq: u64) -> MsgId {
        MsgId { src_rank: 0, seq }
    }

    /// A deterministic xorshift so corner sweeps can shuffle completion
    /// order without pulling in a PRNG dependency.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn sig_all_signals_and_retires_every_post() {
        let mut sq = SendQueue::new(SignalConfig {
            sig_all: true,
            ..SignalConfig::default()
        });
        for s in 0..10 {
            let info = sq.post(msg(s), false);
            assert!(info.signaled);
        }
        for s in 0..10 {
            sq.complete(&msg(s));
        }
        let cqes = sq.reap();
        assert_eq!(cqes.len(), 10, "one CQE per WQE in oracle mode");
        assert!(cqes.iter().all(|c| c.retired.len() == 1));
        assert_eq!(sq.retired, 10);
        assert!(sq.drained());
    }

    #[test]
    fn high_water_closes_batches_and_one_cqe_retires_the_run() {
        let cfg = SignalConfig {
            sig_all: false,
            cq_depth: 8,
            high_water: 4,
            doorbell_batch: 1,
        };
        let mut sq = SendQueue::new(cfg);
        // Posts 0..2 unsignaled; post 3 hits the mark and closes.
        let infos: Vec<PostInfo> = (0..4).map(|s| sq.post(msg(s), false)).collect();
        assert_eq!(
            infos.iter().filter(|i| i.signaled).count(),
            1,
            "only the high-water post is signaled"
        );
        assert!(infos[3].signaled);
        for s in 0..4 {
            sq.complete(&msg(s));
        }
        let cqes = sq.reap();
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].signaled, msg(3));
        assert_eq!(cqes[0].retired, vec![msg(0), msg(1), msg(2), msg(3)]);
        assert!(sq.drained());
    }

    #[test]
    fn unsignaled_tail_never_retires_until_forced() {
        let mut sq = SendQueue::new(SignalConfig {
            high_water: 100,
            ..SignalConfig::default()
        });
        sq.post(msg(0), false);
        sq.post(msg(1), false);
        sq.complete(&msg(0));
        sq.complete(&msg(1));
        assert!(sq.reap().is_empty(), "open batch emits nothing");
        assert_eq!(sq.outstanding(), 2);
        // The classic fix: force-signal the last post of the burst.
        let info = sq.post(msg(2), true);
        assert!(info.signaled);
        sq.complete(&msg(2));
        let cqes = sq.reap();
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].retired.len(), 3);
        assert!(sq.drained());
    }

    #[test]
    fn duplicate_completions_are_absorbed_exactly_once() {
        let mut sq = SendQueue::new(SignalConfig::default());
        sq.post(msg(0), false);
        sq.post(msg(1), true);
        // Watchdog re-issue: the unsignaled WQE completes twice, once
        // before retirement and once after.
        sq.complete(&msg(0));
        sq.complete(&msg(0));
        sq.complete(&msg(1));
        sq.complete(&msg(0));
        assert_eq!(sq.dup_completions, 2);
        let cqes = sq.reap();
        assert_eq!(cqes.len(), 1);
        assert_eq!(sq.retired, 2, "dup completions never double-retire");
        assert!(sq.drained());
    }

    #[test]
    fn out_of_order_batches_each_emit_exactly_one_cqe() {
        let cfg = SignalConfig {
            high_water: 3,
            doorbell_batch: 1,
            ..SignalConfig::default()
        };
        let mut sq = SendQueue::new(cfg);
        for s in 0..6 {
            sq.post(msg(s), false);
        }
        // Posts 0..2 form the first batch (occupancy hits the mark at
        // 2); with completions lagging, occupancy stays high and every
        // later post degrades to a signaled single — exactly the
        // pressure response the mark exists for.
        // Retransmission reorders completions: the singles land first,
        // the three-member batch retires last, each batch emits one CQE.
        for s in [4, 1, 5, 0, 3, 2] {
            sq.complete(&msg(s));
        }
        let cqes = sq.reap();
        assert_eq!(cqes.len(), 4);
        let signaled: Vec<MsgId> = cqes.iter().map(|c| c.signaled).collect();
        assert_eq!(signaled, vec![msg(4), msg(5), msg(3), msg(2)]);
        assert_eq!(cqes[3].retired, vec![msg(0), msg(1), msg(2)]);
        assert_eq!(sq.retired, 6);
        assert!(sq.drained());
    }

    #[test]
    fn doorbell_rings_once_per_batch_and_flush_covers_the_tail() {
        let cfg = SignalConfig {
            doorbell_batch: 4,
            high_water: 100,
            ..SignalConfig::default()
        };
        let drv = DriverConfig::default();
        let mut sq = SendQueue::new(cfg);
        let mut host = SimDuration::ZERO;
        for s in 0..10 {
            host += sq.post(msg(s), false).host_cost(&drv);
        }
        if sq.flush_doorbell() {
            host += drv.doorbell_cost;
        }
        // 10 descriptor builds, 3 doorbells (after posts 4 and 8, one
        // flush for the tail of 2).
        let expect = drv.desc_build * 10 + drv.doorbell_cost * 3;
        assert_eq!(host, expect);
        assert_eq!(sq.doorbells_saved, 8);
        assert!(!sq.flush_doorbell(), "flush is idempotent");
        // Batch of one degenerates to the classic per-PUT overhead.
        let mut unbatched = SendQueue::new(SignalConfig {
            doorbell_batch: 1,
            ..SignalConfig::default()
        });
        assert_eq!(
            unbatched.post(msg(0), false).host_cost(&drv),
            drv.put_overhead
        );
    }

    /// The tentpole model test: across every (doorbell batch, CQ depth,
    /// high-water) corner, with completions arriving in a seeded random
    /// order and a duplicate completion thrown at every third message,
    /// no CQE is lost or duplicated — retirement matches the naive
    /// sig_all oracle run on the same schedule, exactly once.
    #[test]
    fn moderation_matches_sig_all_oracle_across_all_corners() {
        let n: u64 = 48;
        for &batch in &[1usize, 2, 7, 48, 64] {
            for &depth in &[1usize, 2, 16, 64] {
                for &hw in &[1usize, 2, 3, 16, 48, 64] {
                    if hw > depth {
                        // The mark must keep batches inside the CQ:
                        // occupancy-triggered signaling caps unreaped
                        // CQEs at depth only when hw <= depth.
                        continue;
                    }
                    let mut order: Vec<u64> = (0..n).collect();
                    let mut rng =
                        Rng(0x5EED ^ ((batch as u64) << 32 | (depth as u64) << 16 | hw as u64));
                    for i in (1..order.len()).rev() {
                        let j = (rng.next() % (i as u64 + 1)) as usize;
                        order.swap(i, j);
                    }
                    let cfg = SignalConfig {
                        sig_all: false,
                        cq_depth: depth,
                        high_water: hw,
                        doorbell_batch: batch,
                    };
                    let mut sq = SendQueue::new(cfg);
                    let mut oracle = SendQueue::new(SignalConfig {
                        sig_all: true,
                        cq_depth: depth.max(n as usize),
                        high_water: hw,
                        doorbell_batch: batch,
                    });
                    for s in 0..n {
                        let force = s == n - 1;
                        sq.post(msg(s), force);
                        oracle.post(msg(s), force);
                    }
                    let mut reaped = 0u64;
                    let mut cqes = 0u64;
                    for (i, &s) in order.iter().enumerate() {
                        sq.complete(&msg(s));
                        oracle.complete(&msg(s));
                        if s % 3 == 0 {
                            sq.complete(&msg(s)); // watchdog double-fire
                        }
                        // The poster's contract: reap at the latest when
                        // the CQ fills (plus a periodic reap to exercise
                        // partial drains).
                        if sq.cq_occupancy() >= depth || i % 5 == 4 {
                            for c in sq.reap() {
                                cqes += 1;
                                reaped += c.retired.len() as u64;
                            }
                        }
                        oracle.reap();
                        assert!(
                            sq.cq_occupancy() <= depth,
                            "CQ bounded at depth {depth} (hw {hw})"
                        );
                    }
                    for c in sq.reap() {
                        cqes += 1;
                        reaped += c.retired.len() as u64;
                    }
                    oracle.reap();
                    assert_eq!(reaped, n, "every WQE retired exactly once");
                    assert_eq!(sq.retired, oracle.retired, "matches oracle");
                    assert!(cqes <= n, "never more CQEs than WQEs");
                    assert!(sq.drained() && oracle.drained());
                    assert_eq!(sq.posted, oracle.posted);
                }
            }
        }
    }

    /// Satellite edge case: the CQ exactly full at the high-water mark —
    /// hw == depth, every batch is a single signaled WQE once occupancy
    /// pins at the mark, and reaping at the boundary keeps it legal.
    #[test]
    fn cq_exactly_full_at_high_water_mark() {
        let depth = 4usize;
        let cfg = SignalConfig {
            sig_all: false,
            cq_depth: depth,
            high_water: depth,
            doorbell_batch: 1,
        };
        let mut sq = SendQueue::new(cfg);
        let mut retired = 0u64;
        for s in 0..32u64 {
            sq.post(msg(s), false);
            sq.complete(&msg(s));
            assert!(sq.cq_occupancy() <= depth);
            if sq.cq_occupancy() == depth {
                retired += sq
                    .reap()
                    .iter()
                    .map(|c| c.retired.len() as u64)
                    .sum::<u64>();
            }
        }
        retired += sq
            .reap()
            .iter()
            .map(|c| c.retired.len() as u64)
            .sum::<u64>();
        // Batches of exactly hw WQEs retire together, so the CQ fills
        // to precisely its depth before each boundary reap.
        assert_eq!(retired + sq.outstanding() as u64, 32);
        sq.post(msg(32), true);
        sq.complete(&msg(32));
        retired += sq
            .reap()
            .iter()
            .map(|c| c.retired.len() as u64)
            .sum::<u64>();
        assert_eq!(retired, 33);
        assert!(sq.drained());
    }

    /// Satellite edge case: the signaled WQE itself is "dropped" — its
    /// completion arrives only after a retransmission delay, long after
    /// the unsignaled WQEs it covers. Nothing retires early, everything
    /// retires once.
    #[test]
    fn dropped_signaled_wqe_retires_late_but_exactly_once() {
        let cfg = SignalConfig {
            high_water: 4,
            doorbell_batch: 1,
            ..SignalConfig::default()
        };
        let mut sq = SendQueue::new(cfg);
        for s in 0..4 {
            sq.post(msg(s), false);
        }
        // Unsignaled members complete; the signaled one (3) is lost.
        for s in 0..3 {
            sq.complete(&msg(s));
        }
        assert!(sq.reap().is_empty(), "no CQE until the signaled WQE lands");
        assert_eq!(sq.outstanding(), 4);
        // Retransmission finally completes it — twice (the original and
        // the replay both report).
        sq.complete(&msg(3));
        sq.complete(&msg(3));
        let cqes = sq.reap();
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].retired.len(), 4);
        assert_eq!(sq.dup_completions, 1);
        assert!(sq.drained());
    }

    #[test]
    fn attached_registry_mirrors_signaling() {
        let reg = Registry::new();
        register_metrics(&reg);
        let mut sq = SendQueue::new(SignalConfig {
            high_water: 2,
            doorbell_batch: 4,
            ..SignalConfig::default()
        });
        sq.attach_metrics(&reg);
        for s in 0..4 {
            sq.post(msg(s), false);
        }
        let snap = reg.counters();
        assert_eq!(snap.get(metrics::CQ_SIGNALED), sq.signaled_posts);
        assert_eq!(snap.get(metrics::DOORBELL_BATCHED), sq.doorbells_saved);
        assert_eq!(snap.get(metrics::DOORBELL_BATCHED), 3);
    }
}
