//! Host-memory staging: the P2P=OFF transfer path.
//!
//! Without peer-to-peer, sending a GPU buffer means `cudaMemcpy`-ing it
//! into a pinned host bounce buffer and PUTting from there; the receiver
//! lands the message in a host bounce and copies it up to the GPU. For
//! large messages the copy and the network send are pipelined in chunks —
//! which is why staging eventually beats peer-to-peer beyond ~32 KB in
//! Fig. 7, while losing badly on latency (Fig. 9: 16.8 µs vs 8.2 µs).

use crate::api::{PutOutcome, RdmaEndpoint, RdmaError, SrcHint};
use apenet_core::card::TxDesc;
use apenet_core::coord::Coord;
use apenet_gpu::cuda::CudaDevice;
use apenet_gpu::mem::Memory;
use apenet_sim::SimTime;

/// Default staging pipeline chunk.
pub const STAGING_CHUNK: u64 = 128 * 1024;

/// Messages at or below this size use a single blocking copy (pipelining
/// overhead is not worth it).
pub const PIPELINE_THRESHOLD: u64 = 64 * 1024;

/// The outcome of planning a staged PUT: descriptors to submit at given
/// times, and when the host is free again.
#[derive(Debug, Clone)]
pub struct StagedPut {
    /// `(submit_time, descriptor)` pairs, in submission order.
    pub submissions: Vec<(SimTime, TxDesc)>,
    /// When the sending host regains control.
    pub host_free: SimTime,
}

/// Plan a staged transmission of `len` bytes from GPU address `src_dev`
/// through the host bounce buffer at `bounce`, to `dst_vaddr` on `dst`.
///
/// Real bytes move: device → bounce now, so the PUTs read actual data.
/// The bounce buffer must be registered and at least `len` bytes.
#[allow(clippy::too_many_arguments)]
pub fn staged_put(
    ep: &mut RdmaEndpoint,
    dev: &mut CudaDevice,
    hostmem: &mut Memory,
    now: SimTime,
    src_dev: u64,
    bounce: u64,
    len: u64,
    dst: Coord,
    dst_vaddr: u64,
) -> Result<StagedPut, RdmaError> {
    let mut submissions = Vec::new();
    if len <= PIPELINE_THRESHOLD {
        // Small message: one fully synchronous D2H copy, then one PUT.
        let cp = dev
            .memcpy_d2h_sync(now, hostmem, bounce, src_dev, len)
            .expect("bounce range validated by caller");
        let out: PutOutcome = ep.put(bounce, len, dst, dst_vaddr, SrcHint::Host)?;
        let submit = cp.host_free + out.host_cost;
        submissions.push((submit, out.desc));
        return Ok(StagedPut {
            submissions,
            host_free: submit,
        });
    }
    // Large message: chunked pipeline on a dedicated stream. Each chunk is
    // copied asynchronously; its PUT is submitted when the copy lands.
    let stream = dev.create_stream();
    let mut off = 0u64;
    let mut prev_submit = now;
    while off < len {
        let n = STAGING_CHUNK.min(len - off);
        let cp = dev
            .memcpy_d2h_async(now, stream, hostmem, bounce + off, src_dev + off, n)
            .expect("bounce range validated by caller");
        let out = ep.put(bounce + off, n, dst, dst_vaddr + off, SrcHint::Host)?;
        let submit = cp.data_done.max(prev_submit) + out.host_cost;
        submissions.push((submit, out.desc));
        prev_submit = submit;
        off += n;
    }
    Ok(StagedPut {
        submissions,
        host_free: prev_submit,
    })
}

/// Finish a staged reception: the message landed in the host bounce at
/// `bounce`; copy it up to the GPU destination. Returns when the data is
/// usable on the device.
pub fn staged_recv_finish(
    dev: &mut CudaDevice,
    hostmem: &mut Memory,
    now: SimTime,
    bounce: u64,
    dst_dev: u64,
    len: u64,
) -> SimTime {
    let cp = dev
        .memcpy_h2d_sync(now, hostmem, dst_dev, bounce, len)
        .expect("staged destination validated by caller");
    cp.host_free
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverConfig;
    use apenet_core::card::{CardShared, Firmware, GpuHandle};
    use apenet_gpu::uva::HOST_BASE;
    use apenet_gpu::{GpuArch, GpuId, Uva, HOST_PAGE_SIZE};
    use apenet_pcie::fabric::plx_platform;
    use apenet_pcie::server::ReadServer;
    use apenet_sim::{Bandwidth, SimDuration};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn rig() -> (RdmaEndpoint, Rc<RefCell<CudaDevice>>, Rc<RefCell<Memory>>) {
        let (fabric, gpu_dev, nic_dev, hostmem_dev) = plx_platform();
        let cuda = Rc::new(RefCell::new(CudaDevice::new(GpuId(0), GpuArch::Fermi2050)));
        let hostmem = Rc::new(RefCell::new(Memory::new(
            HOST_BASE,
            64 << 20,
            HOST_PAGE_SIZE,
        )));
        let mut uva = Uva::new();
        uva.set_host(&hostmem.borrow());
        uva.add_gpu(GpuId(0), &cuda.borrow().mem);
        let shared = CardShared {
            fabric: Rc::new(RefCell::new(fabric)),
            nic_dev,
            hostmem_dev,
            hostmem: hostmem.clone(),
            host_read: Rc::new(RefCell::new(ReadServer::new(
                SimDuration::from_ns(600),
                Bandwidth::from_mb_per_sec(2400),
            ))),
            gpus: vec![GpuHandle {
                pcie_dev: gpu_dev,
                cuda: cuda.clone(),
            }],
            firmware: Rc::new(RefCell::new(Firmware::new(1))),
        };
        (
            RdmaEndpoint::new(shared, uva, 0, DriverConfig::default()),
            cuda,
            hostmem,
        )
    }

    #[test]
    fn small_staged_put_pays_sync_copy() {
        let (mut ep, cuda, hostmem) = rig();
        let mut dev = cuda.borrow_mut();
        let mut hm = hostmem.borrow_mut();
        let g = dev.malloc(4096).unwrap();
        let b = hm.alloc(4096).unwrap();
        dev.mem.write(g, &[7u8; 4096]).unwrap();
        drop(hm);
        ep.register(b, 4096).unwrap();
        let mut hm = hostmem.borrow_mut();
        let plan = staged_put(
            &mut ep,
            &mut dev,
            &mut hm,
            SimTime::ZERO,
            g,
            b,
            4096,
            Coord::new(1, 0, 0),
            0,
        )
        .unwrap();
        assert_eq!(plan.submissions.len(), 1);
        // Bounce holds the real data.
        assert_eq!(hm.read_vec(b, 4096).unwrap(), vec![7u8; 4096]);
        // Host was blocked ≥ the 10 us sync D2H overhead.
        assert!(plan.host_free.since(SimTime::ZERO) >= SimDuration::from_us(10));
        assert_eq!(
            plan.submissions[0].1.src_kind,
            apenet_core::nios::BufKind::Host
        );
    }

    #[test]
    fn large_staged_put_pipelines_chunks() {
        let (mut ep, cuda, hostmem) = rig();
        let mut dev = cuda.borrow_mut();
        let mut hm = hostmem.borrow_mut();
        let len = 1u64 << 20;
        let g = dev.malloc(len).unwrap();
        let b = hm.alloc(len).unwrap();
        drop(hm);
        ep.register(b, len).unwrap();
        let mut hm = hostmem.borrow_mut();
        let plan = staged_put(
            &mut ep,
            &mut dev,
            &mut hm,
            SimTime::ZERO,
            g,
            b,
            len,
            Coord::new(1, 0, 0),
            0,
        )
        .unwrap();
        assert_eq!(plan.submissions.len(), (len / STAGING_CHUNK) as usize);
        // Chunk submissions are strictly increasing and start long before
        // the whole copy could have finished (pipelining).
        let copy_all = GpuArch::Fermi2050.spec().dma_rate.time_for(len);
        assert!(plan.submissions[0].0.since(SimTime::ZERO) < copy_all);
        for w in plan.submissions.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Offsets cover the message contiguously.
        let mut expect = 0;
        for (_, d) in &plan.submissions {
            assert_eq!(d.dst_vaddr, expect);
            expect += d.len;
        }
        assert_eq!(expect, len);
    }

    #[test]
    fn staged_recv_copies_up() {
        let (_ep, cuda, hostmem) = rig();
        let mut dev = cuda.borrow_mut();
        let mut hm = hostmem.borrow_mut();
        let g = dev.malloc(8192).unwrap();
        let b = hm.alloc(8192).unwrap();
        hm.write(b, &[3u8; 8192]).unwrap();
        let done = staged_recv_finish(&mut dev, &mut hm, SimTime::ZERO, b, g, 8192);
        assert_eq!(dev.mem.read_vec(g, 8192).unwrap(), vec![3u8; 8192]);
        assert!(done > SimTime::ZERO);
    }
}
