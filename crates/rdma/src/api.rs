//! The RDMA endpoint API: registration and PUT.
//!
//! One [`RdmaEndpoint`] lives on each host. It validates and registers
//! buffers into the card's firmware state (BUF_LIST + V2P tables), keeps
//! the internal mapping cache of §IV.A, and turns `put()` calls into
//! [`TxDesc`]s for the card, charging the host-side driver costs.

use crate::driver::DriverConfig;
use apenet_core::card::{CardShared, GetDesc, TxDesc};
use apenet_core::coord::Coord;
use apenet_core::nios::BufKind;
use apenet_core::packet::MsgId;
use apenet_gpu::{MemKind, Uva};
use apenet_sim::SimDuration;
use std::collections::HashMap;
use std::fmt;

/// Errors surfaced by the endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaError {
    /// The address range is not in any registered local buffer.
    NotRegistered,
    /// The pointer does not belong to host memory or any local GPU.
    UnknownPointer,
    /// The source-kind flag contradicts the actual pointer kind.
    KindMismatch,
    /// The card's BUF_LIST has no free slot: deregister something and
    /// retry. Registration state is untouched.
    BufListFull,
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::NotRegistered => write!(f, "buffer not registered"),
            RdmaError::UnknownPointer => write!(f, "pointer outside UVA ranges"),
            RdmaError::KindMismatch => write!(f, "source kind flag mismatch"),
            RdmaError::BufListFull => write!(f, "BUF_LIST at capacity"),
        }
    }
}

impl std::error::Error for RdmaError {}

/// The source-kind flag of the PUT API: "the source memory buffer type is
/// chosen at compilation time by passing a flag to the PUT API. This is
/// useful to avoid a call to `cuPointerGetAttribute()`" (§IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcHint {
    /// Caller asserts host memory.
    Host,
    /// Caller asserts GPU memory.
    Gpu,
    /// Resolve at runtime with a (charged) pointer query.
    Auto,
}

/// What a successful `put()` returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    /// The descriptor to deliver to the card (as `CardIn::TxSubmit`).
    pub desc: TxDesc,
    /// Host CPU time the call occupied (LogP overhead).
    pub host_cost: SimDuration,
}

/// What a successful `get()` returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetOutcome {
    /// The descriptor to deliver to the card (as `CardIn::GetSubmit`).
    pub desc: GetDesc,
    /// Host CPU time the call occupied (LogP overhead).
    pub host_cost: SimDuration,
}

/// The per-host RDMA endpoint.
pub struct RdmaEndpoint {
    shared: CardShared,
    uva: Uva,
    cfg: DriverConfig,
    pid: u32,
    rank: u32,
    seq: u64,
    reg_cache: HashMap<u64, BufKind>, // base addr -> kind
}

impl RdmaEndpoint {
    /// Create the endpoint for the host owning `shared`.
    pub fn new(shared: CardShared, uva: Uva, rank: u32, cfg: DriverConfig) -> Self {
        RdmaEndpoint {
            shared,
            uva,
            cfg,
            pid: 1000 + rank,
            rank,
            seq: 0,
            reg_cache: HashMap::new(),
        }
    }

    /// The node rank this endpoint belongs to.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Classify a UVA pointer into a buffer kind.
    fn classify(&self, addr: u64) -> Result<BufKind, RdmaError> {
        match self.uva.pointer_get_attribute(addr) {
            Some(attr) => Ok(match attr.kind {
                MemKind::Host => BufKind::Host,
                MemKind::Gpu(id) => BufKind::Gpu(id),
            }),
            None => Err(RdmaError::UnknownPointer),
        }
    }

    /// Register (pin + map) a buffer so it can be a PUT target or source.
    /// "GPU buffers … are mapped on-the-fly if not already present in an
    /// internal cache" — repeated registrations hit the cache and are
    /// nearly free. Returns the host time the call took.
    pub fn register(&mut self, addr: u64, len: u64) -> Result<SimDuration, RdmaError> {
        if let Some(_kind) = self.reg_cache.get(&addr) {
            return Ok(self.cfg.reg_cache_hit);
        }
        let kind = self.classify(addr)?;
        let mut fw = self.shared.firmware.borrow_mut();
        let cost = match kind {
            BufKind::Host => fw
                .try_register_host(addr, len, self.pid)
                .map(|_| self.cfg.reg_host),
            BufKind::Gpu(id) => fw
                .try_register_gpu(id, addr, len, self.pid)
                .map(|_| self.cfg.reg_gpu),
        };
        drop(fw);
        let Some(cost) = cost else {
            // Full BUF_LIST: typed error, nothing cached, so the caller
            // can deregister a buffer and retry the same address.
            return Err(RdmaError::BufListFull);
        };
        self.reg_cache.insert(addr, kind);
        Ok(cost)
    }

    /// True when `addr..addr+len` lies inside a registered buffer.
    pub fn is_registered(&self, addr: u64, len: u64) -> bool {
        self.shared
            .firmware
            .borrow()
            .buf_list
            .lookup(addr, len)
            .0
            .is_some()
    }

    /// Deregister a buffer: removes it from the BUF_LIST (subsequent
    /// inbound PUTs targeting it are dropped as unmatched) and from the
    /// mapping cache.
    pub fn deregister(&mut self, addr: u64) -> bool {
        let removed = self.shared.firmware.borrow_mut().buf_list.unregister(addr);
        self.reg_cache.remove(&addr);
        removed
    }

    /// Enqueue a PUT of `len` bytes from local `src_addr` to `dst_vaddr`
    /// on node `dst`. The source must be registered (the call maps it on
    /// the fly when not, charging the mapping cost).
    pub fn put(
        &mut self,
        src_addr: u64,
        len: u64,
        dst: Coord,
        dst_vaddr: u64,
        hint: SrcHint,
    ) -> Result<PutOutcome, RdmaError> {
        let mut host_cost = self.cfg.put_overhead;
        let kind = match hint {
            SrcHint::Host => BufKind::Host,
            SrcHint::Gpu => match self.classify(src_addr)? {
                k @ BufKind::Gpu(_) => k,
                BufKind::Host => return Err(RdmaError::KindMismatch),
            },
            SrcHint::Auto => {
                host_cost += self.cfg.pointer_query;
                self.classify(src_addr)?
            }
        };
        if let (SrcHint::Host, BufKind::Host) = (hint, kind) {
            // Trust but verify cheaply: host pointers must be host range.
            if self.classify(src_addr)? != BufKind::Host {
                return Err(RdmaError::KindMismatch);
            }
        }
        // On-the-fly mapping of unregistered sources.
        if !self.is_registered(src_addr, len) {
            host_cost += self.register(src_addr, len)?;
        }
        let msg = MsgId {
            src_rank: self.rank,
            seq: self.seq,
        };
        self.seq += 1;
        Ok(PutOutcome {
            desc: TxDesc {
                msg,
                dst,
                dst_vaddr,
                len,
                src_addr,
                src_kind: kind,
            },
            host_cost,
        })
    }

    /// Enqueue a GET (RDMA-Read) of `len` bytes from `peer_vaddr` on node
    /// `peer` into local `dst_addr`. The *local destination* must be
    /// registered so the reply stream matches the BUF_LIST on arrival —
    /// the call maps it on the fly when not, charging the mapping cost.
    /// The hint describes the local destination buffer; the remote source
    /// kind is resolved by the responder's own V2P walk.
    pub fn get(
        &mut self,
        dst_addr: u64,
        len: u64,
        peer: Coord,
        peer_vaddr: u64,
        hint: SrcHint,
    ) -> Result<GetOutcome, RdmaError> {
        let mut host_cost = self.cfg.put_overhead;
        let kind = match hint {
            SrcHint::Host => BufKind::Host,
            SrcHint::Gpu => match self.classify(dst_addr)? {
                k @ BufKind::Gpu(_) => k,
                BufKind::Host => return Err(RdmaError::KindMismatch),
            },
            SrcHint::Auto => {
                host_cost += self.cfg.pointer_query;
                self.classify(dst_addr)?
            }
        };
        if let (SrcHint::Host, BufKind::Host) = (hint, kind) {
            if self.classify(dst_addr)? != BufKind::Host {
                return Err(RdmaError::KindMismatch);
            }
        }
        // On-the-fly mapping of unregistered destinations. A full
        // BUF_LIST surfaces here, before any V2P side effects: no read
        // request is built and nothing leaves the host.
        if !self.is_registered(dst_addr, len) {
            host_cost += self.register(dst_addr, len)?;
        }
        let msg = MsgId {
            src_rank: self.rank,
            seq: self.seq,
        };
        self.seq += 1;
        Ok(GetOutcome {
            desc: GetDesc {
                msg,
                peer,
                peer_vaddr,
                len,
                local_vaddr: dst_addr,
            },
            host_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apenet_core::card::Firmware;
    use apenet_core::config::CardConfig;
    use apenet_gpu::cuda::CudaDevice;
    use apenet_gpu::mem::Memory;
    use apenet_gpu::uva::HOST_BASE;
    use apenet_gpu::{GpuArch, GpuId, HOST_PAGE_SIZE};
    use apenet_pcie::fabric::plx_platform;
    use apenet_pcie::server::ReadServer;
    use apenet_sim::Bandwidth;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn endpoint() -> (RdmaEndpoint, Rc<RefCell<CudaDevice>>, Rc<RefCell<Memory>>) {
        let (fabric, gpu_dev, nic_dev, hostmem_dev) = plx_platform();
        let cuda = Rc::new(RefCell::new(CudaDevice::new(GpuId(0), GpuArch::Fermi2050)));
        let hostmem = Rc::new(RefCell::new(Memory::new(
            HOST_BASE,
            64 << 20,
            HOST_PAGE_SIZE,
        )));
        let mut uva = Uva::new();
        uva.set_host(&hostmem.borrow());
        uva.add_gpu(GpuId(0), &cuda.borrow().mem);
        let shared = CardShared {
            fabric: Rc::new(RefCell::new(fabric)),
            nic_dev,
            hostmem_dev,
            hostmem: hostmem.clone(),
            host_read: Rc::new(RefCell::new(ReadServer::new(
                apenet_sim::SimDuration::from_ns(600),
                Bandwidth::from_mb_per_sec(2400),
            ))),
            gpus: vec![apenet_core::card::GpuHandle {
                pcie_dev: gpu_dev,
                cuda: cuda.clone(),
            }],
            firmware: Rc::new(RefCell::new(Firmware::new(1))),
        };
        let _ = CardConfig::default();
        (
            RdmaEndpoint::new(shared, uva, 0, DriverConfig::default()),
            cuda,
            hostmem,
        )
    }

    #[test]
    fn register_host_and_gpu_with_cache() {
        let (mut ep, cuda, hostmem) = endpoint();
        let h = hostmem.borrow_mut().alloc(8192).unwrap();
        let g = cuda.borrow_mut().malloc(8192).unwrap();
        let c1 = ep.register(h, 8192).unwrap();
        let c2 = ep.register(g, 8192).unwrap();
        assert!(c2 > c1, "GPU mapping more expensive than host pinning");
        let c3 = ep.register(g, 8192).unwrap();
        assert!(c3 < c1, "cache hit is nearly free");
        assert!(ep.is_registered(h, 8192));
        assert!(ep.is_registered(g + 100, 1000));
        assert!(!ep.is_registered(h + 8192, 1));
    }

    #[test]
    fn full_buf_list_rejects_then_recovers() {
        let (mut ep, _cuda, hostmem) = endpoint();
        ep.shared
            .firmware
            .borrow_mut()
            .buf_list
            .set_capacity(Some(2));
        let a = hostmem.borrow_mut().alloc(4096).unwrap();
        let b = hostmem.borrow_mut().alloc(4096).unwrap();
        let c = hostmem.borrow_mut().alloc(4096).unwrap();
        ep.register(a, 4096).unwrap();
        ep.register(b, 4096).unwrap();
        // Exhausted: typed error, no registration, no cache pollution.
        assert_eq!(ep.register(c, 4096).unwrap_err(), RdmaError::BufListFull);
        assert!(!ep.is_registered(c, 4096));
        // Re-registering a cached buffer still works (no new slot needed).
        assert_eq!(
            ep.register(a, 4096).unwrap(),
            DriverConfig::default().reg_cache_hit
        );
        // Freeing a slot recovers the failed registration.
        assert!(ep.deregister(b));
        ep.register(c, 4096).unwrap();
        assert!(ep.is_registered(c, 4096));
    }

    #[test]
    fn put_builds_descriptor_and_sequences() {
        let (mut ep, _cuda, hostmem) = endpoint();
        let h = hostmem.borrow_mut().alloc(4096).unwrap();
        ep.register(h, 4096).unwrap();
        let a = ep
            .put(h, 4096, Coord::new(1, 0, 0), 0xDEAD_0000, SrcHint::Host)
            .unwrap();
        let b = ep
            .put(h, 4096, Coord::new(1, 0, 0), 0xDEAD_0000, SrcHint::Host)
            .unwrap();
        assert_eq!(a.desc.len, 4096);
        assert_eq!(a.desc.src_kind, BufKind::Host);
        assert!(b.desc.msg.seq > a.desc.msg.seq);
        assert_eq!(a.host_cost, DriverConfig::default().put_overhead);
    }

    #[test]
    fn auto_hint_costs_pointer_query() {
        let (mut ep, cuda, _) = endpoint();
        let g = cuda.borrow_mut().malloc(4096).unwrap();
        ep.register(g, 4096).unwrap();
        let auto = ep
            .put(g, 4096, Coord::new(1, 0, 0), 0, SrcHint::Auto)
            .unwrap();
        let flagged = ep
            .put(g, 4096, Coord::new(1, 0, 0), 0, SrcHint::Gpu)
            .unwrap();
        assert!(auto.host_cost > flagged.host_cost);
        assert_eq!(auto.desc.src_kind, BufKind::Gpu(GpuId(0)));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let (mut ep, _cuda, hostmem) = endpoint();
        let h = hostmem.borrow_mut().alloc(4096).unwrap();
        ep.register(h, 4096).unwrap();
        assert_eq!(
            ep.put(h, 64, Coord::new(1, 0, 0), 0, SrcHint::Gpu)
                .unwrap_err(),
            RdmaError::KindMismatch
        );
        assert_eq!(
            ep.put(0xBAD, 64, Coord::new(1, 0, 0), 0, SrcHint::Auto)
                .unwrap_err(),
            RdmaError::UnknownPointer
        );
    }

    #[test]
    fn deregister_removes_target() {
        let (mut ep, _cuda, hostmem) = endpoint();
        let h = hostmem.borrow_mut().alloc(4096).unwrap();
        ep.register(h, 4096).unwrap();
        assert!(ep.is_registered(h, 4096));
        assert!(ep.deregister(h));
        assert!(!ep.is_registered(h, 4096));
        assert!(!ep.deregister(h), "second deregister is a no-op");
        // Re-registration pays the full cost again (cache was dropped).
        let c = ep.register(h, 4096).unwrap();
        assert!(c >= DriverConfig::default().reg_host);
    }

    #[test]
    fn get_builds_descriptor_and_shares_sequence_with_put() {
        let (mut ep, _cuda, hostmem) = endpoint();
        let h = hostmem.borrow_mut().alloc(4096).unwrap();
        ep.register(h, 4096).unwrap();
        let p = ep
            .put(h, 1024, Coord::new(1, 0, 0), 0xDEAD_0000, SrcHint::Host)
            .unwrap();
        let g = ep
            .get(h, 4096, Coord::new(1, 0, 0), 0xBEEF_0000, SrcHint::Host)
            .unwrap();
        assert_eq!(g.desc.len, 4096);
        assert_eq!(g.desc.peer, Coord::new(1, 0, 0));
        assert_eq!(g.desc.peer_vaddr, 0xBEEF_0000);
        assert_eq!(g.desc.local_vaddr, h);
        assert!(
            g.desc.msg.seq > p.desc.msg.seq,
            "GET and PUT draw from one sequence space"
        );
        assert_eq!(g.host_cost, DriverConfig::default().put_overhead);
    }

    #[test]
    fn get_maps_unregistered_destination_on_the_fly() {
        let (mut ep, cuda, _) = endpoint();
        let g = cuda.borrow_mut().malloc(4096).unwrap();
        let out = ep
            .get(g, 4096, Coord::new(1, 0, 0), 0, SrcHint::Gpu)
            .unwrap();
        assert!(
            out.host_cost >= DriverConfig::default().reg_gpu,
            "first GET pays the mapping"
        );
        let again = ep
            .get(g, 4096, Coord::new(1, 0, 0), 0, SrcHint::Gpu)
            .unwrap();
        assert!(again.host_cost < out.host_cost, "cached afterwards");
    }

    #[test]
    fn get_kind_mismatch_and_unknown_pointer_rejected() {
        let (mut ep, _cuda, hostmem) = endpoint();
        let h = hostmem.borrow_mut().alloc(4096).unwrap();
        ep.register(h, 4096).unwrap();
        assert_eq!(
            ep.get(h, 64, Coord::new(1, 0, 0), 0, SrcHint::Gpu)
                .unwrap_err(),
            RdmaError::KindMismatch
        );
        assert_eq!(
            ep.get(0xBAD, 64, Coord::new(1, 0, 0), 0, SrcHint::Auto)
                .unwrap_err(),
            RdmaError::UnknownPointer
        );
    }

    #[test]
    fn get_buf_list_full_fails_before_side_effects() {
        let (mut ep, _cuda, hostmem) = endpoint();
        ep.shared
            .firmware
            .borrow_mut()
            .buf_list
            .set_capacity(Some(1));
        let a = hostmem.borrow_mut().alloc(4096).unwrap();
        let b = hostmem.borrow_mut().alloc(4096).unwrap();
        ep.register(a, 4096).unwrap();
        // Full BUF_LIST: the GET is rejected with the typed error before
        // any V2P side effects — nothing registered, no sequence burned.
        assert_eq!(
            ep.get(b, 4096, Coord::new(1, 0, 0), 0, SrcHint::Host)
                .unwrap_err(),
            RdmaError::BufListFull
        );
        assert!(!ep.is_registered(b, 4096));
        let next = ep
            .get(a, 4096, Coord::new(1, 0, 0), 0, SrcHint::Host)
            .unwrap();
        assert_eq!(next.desc.msg.seq, 0, "failed GET burned no sequence");
        // Freeing the slot recovers the rejected GET.
        assert!(ep.deregister(a));
        ep.get(b, 4096, Coord::new(1, 0, 0), 0, SrcHint::Host)
            .unwrap();
        assert!(ep.is_registered(b, 4096));
    }

    #[test]
    fn put_maps_unregistered_source_on_the_fly() {
        let (mut ep, cuda, _) = endpoint();
        let g = cuda.borrow_mut().malloc(4096).unwrap();
        let out = ep
            .put(g, 4096, Coord::new(1, 0, 0), 0, SrcHint::Gpu)
            .unwrap();
        assert!(
            out.host_cost >= DriverConfig::default().reg_gpu,
            "first PUT pays the mapping"
        );
        let again = ep
            .put(g, 4096, Coord::new(1, 0, 0), 0, SrcHint::Gpu)
            .unwrap();
        assert!(again.host_cost < out.host_cost, "cached afterwards");
    }
}
