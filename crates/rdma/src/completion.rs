//! Completion bookkeeping for the host side.
//!
//! The cluster host actor feeds card notifications (`Delivered`,
//! `TxComplete`) into a [`CompletionQueue`]; benchmark harnesses and
//! applications poll it to sequence their next steps and to timestamp
//! results.

use apenet_core::packet::MsgId;
use apenet_sim::SimTime;
use std::collections::HashMap;

/// Why an operation completed with an error instead of a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionError {
    /// The driver watchdog exhausted its re-issue budget: as far as the
    /// host can tell, the destination node is unreachable.
    Unreachable,
}

impl std::fmt::Display for CompletionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompletionError::Unreachable => write!(f, "destination unreachable"),
        }
    }
}

/// Arrival records of one host.
#[derive(Debug, Default, Clone)]
pub struct CompletionQueue {
    delivered: HashMap<MsgId, (SimTime, u64)>,
    tx_done: HashMap<MsgId, SimTime>,
    errors: HashMap<MsgId, (SimTime, CompletionError)>,
    delivered_bytes: u64,
    last_delivery: Option<SimTime>,
    duplicates: u64,
}

impl CompletionQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an RX completion. A second completion for the same message
    /// keeps the first record and bumps [`CompletionQueue::duplicate_count`]
    /// — the chaos suite's exactly-once proof rests on that counter
    /// staying at zero.
    pub fn push_delivered(&mut self, msg: MsgId, at: SimTime, len: u64) {
        if self.delivered.contains_key(&msg) {
            self.duplicates += 1;
            return;
        }
        self.delivered.insert(msg, (at, len));
        self.delivered_bytes += len;
        self.last_delivery = Some(self.last_delivery.map_or(at, |t| t.max(at)));
    }

    /// Record a TX completion.
    pub fn push_tx_done(&mut self, msg: MsgId, at: SimTime) {
        self.tx_done.insert(msg, at);
    }

    /// Record a typed error completion: the operation terminated without
    /// delivery (e.g. watchdog escalation on an unreachable node). The
    /// first record wins; repeats are ignored.
    pub fn push_error(&mut self, msg: MsgId, at: SimTime, err: CompletionError) {
        self.errors.entry(msg).or_insert((at, err));
    }

    /// Did `msg` complete with an error?
    pub fn is_failed(&self, msg: MsgId) -> bool {
        self.errors.contains_key(&msg)
    }

    /// The error completion of `msg`, if it failed.
    pub fn error_of(&self, msg: MsgId) -> Option<(SimTime, CompletionError)> {
        self.errors.get(&msg).copied()
    }

    /// Number of error completions.
    pub fn error_count(&self) -> usize {
        self.errors.len()
    }

    /// Has `msg` been delivered locally?
    pub fn is_delivered(&self, msg: MsgId) -> bool {
        self.delivered.contains_key(&msg)
    }

    /// Delivery time of `msg`, if it arrived.
    pub fn delivery_time(&self, msg: MsgId) -> Option<SimTime> {
        self.delivered.get(&msg).map(|&(t, _)| t)
    }

    /// Number of delivered messages.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// Total delivered payload bytes.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Timestamp of the most recent delivery.
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.last_delivery
    }

    /// Number of completed transmissions.
    pub fn tx_done_count(&self) -> usize {
        self.tx_done.len()
    }

    /// Number of repeat deliveries observed for already-completed
    /// messages (0 unless the exactly-once guarantee is broken).
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Drop all records (between benchmark repetitions).
    pub fn clear(&mut self) {
        self.delivered.clear();
        self.tx_done.clear();
        self.errors.clear();
        self.delivered_bytes = 0;
        self.last_delivery = None;
        self.duplicates = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apenet_sim::SimDuration;

    fn msg(seq: u64) -> MsgId {
        MsgId { src_rank: 0, seq }
    }

    #[test]
    fn records_and_counts() {
        let mut cq = CompletionQueue::new();
        let t1 = SimTime::ZERO + SimDuration::from_us(1);
        let t2 = SimTime::ZERO + SimDuration::from_us(2);
        cq.push_delivered(msg(0), t2, 100);
        cq.push_delivered(msg(1), t1, 50);
        cq.push_tx_done(msg(0), t1);
        assert!(cq.is_delivered(msg(0)));
        assert!(!cq.is_delivered(msg(9)));
        assert_eq!(cq.delivery_time(msg(1)), Some(t1));
        assert_eq!(cq.delivered_count(), 2);
        assert_eq!(cq.delivered_bytes(), 150);
        assert_eq!(cq.last_delivery(), Some(t2), "max, not last-pushed");
        assert_eq!(cq.tx_done_count(), 1);
        cq.clear();
        assert_eq!(cq.delivered_count(), 0);
        assert_eq!(cq.last_delivery(), None);
    }

    #[test]
    fn error_completions_are_typed_and_first_wins() {
        let mut cq = CompletionQueue::new();
        let t1 = SimTime::ZERO + SimDuration::from_us(1);
        let t2 = SimTime::ZERO + SimDuration::from_us(2);
        cq.push_error(msg(0), t1, CompletionError::Unreachable);
        cq.push_error(msg(0), t2, CompletionError::Unreachable);
        assert!(cq.is_failed(msg(0)));
        assert!(!cq.is_failed(msg(1)));
        assert_eq!(
            cq.error_of(msg(0)),
            Some((t1, CompletionError::Unreachable))
        );
        assert_eq!(cq.error_count(), 1);
        assert!(!cq.is_delivered(msg(0)), "an error is not a delivery");
        cq.clear();
        assert_eq!(cq.error_count(), 0);
    }

    #[test]
    fn duplicate_deliveries_are_counted_not_recorded() {
        let mut cq = CompletionQueue::new();
        let t1 = SimTime::ZERO + SimDuration::from_us(1);
        let t2 = SimTime::ZERO + SimDuration::from_us(2);
        cq.push_delivered(msg(0), t1, 100);
        cq.push_delivered(msg(0), t2, 100);
        assert_eq!(cq.duplicate_count(), 1);
        assert_eq!(cq.delivered_count(), 1);
        assert_eq!(cq.delivered_bytes(), 100, "duplicate bytes not counted");
        assert_eq!(cq.delivery_time(msg(0)), Some(t1), "first record kept");
        cq.clear();
        assert_eq!(cq.duplicate_count(), 0);
    }
}
