//! Kernel-driver cost model.
//!
//! On the transmit side "host buffer transmission … is completely handled
//! by the kernel driver, which implements the message fragmentation and
//! pushes transaction descriptors" (§III.B). The driver costs below are
//! the host-CPU time each API call occupies — the LogP *overhead*
//! parameter that Fig. 10 plots.

use apenet_core::packet::MsgId;
use apenet_obs::{Counter, Registry};
use apenet_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Registry ids for the watchdog counters, so every consumer (chaos
/// suite, repro harness, ad-hoc debugging) reads the same keys.
pub mod metrics {
    /// Total watchdog alarms raised (0 on every healthy run).
    pub const FIRED: &str = "watchdog.fired";
    /// Messages abandoned after `max_attempts` alarms.
    pub const GAVE_UP: &str = "watchdog.gave_up";
    /// Messages handed back to the application for re-issue.
    pub const REISSUES: &str = "watchdog.reissues";
    /// Messages that exhausted `max_attempts` and completed with a typed
    /// error — the destination is unreachable as far as the host can tell.
    pub const UNREACHABLE: &str = "rdma.unreachable";

    /// Every watchdog id, in reporting order. The completeness test in
    /// the bench suite asserts that no published id escapes this list
    /// (or the card's `metrics::ALL`).
    pub const ALL: [&str; 4] = [FIRED, GAVE_UP, REISSUES, UNREACHABLE];
}

/// Completion-watchdog tuning.
///
/// The watchdog is the driver's last line of defence above the link
/// layer: if a PUT's completion has not arrived within `timeout`, the
/// message is handed back to the application for re-issue. Link-level
/// go-back-N recovers every injected fault long before this deadline, so
/// the [`Watchdog::fired`] counter doubles as a health check — the chaos
/// suite asserts it stays at zero while retransmission is enabled.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Time from submission (or last re-issue) to the first alarm.
    pub timeout: SimDuration,
    /// Cap on the exponential backoff: the k-th alarm for one message
    /// waits `timeout << min(k, backoff_cap)`.
    pub backoff_cap: u32,
    /// Give up re-issuing a message after this many alarms.
    pub max_attempts: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            // Well above the link RTO (100 us default) times a few
            // back-offs, so the card always gets to recover first.
            timeout: SimDuration::from_ms(20),
            backoff_cap: 4,
            max_attempts: 6,
        }
    }
}

/// One armed message.
#[derive(Debug, Clone, Copy)]
struct WatchEntry {
    deadline: SimTime,
    alarms: u32,
}

/// Driver-level completion watchdog.
///
/// Passive and deterministic: the owner arms a message when it submits a
/// PUT, disarms it on completion, and polls [`Watchdog::expired`] from
/// its wake-ups. Entries live in a `BTreeMap` so expiry scans visit
/// messages in `MsgId` order regardless of insertion history.
#[derive(Debug, Default, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    armed: BTreeMap<MsgId, WatchEntry>,
    /// Total alarms raised (0 on every healthy run).
    pub fired: u64,
    /// Messages abandoned after `max_attempts` alarms.
    pub gave_up: u64,
    /// Optional registry counters mirroring `fired`/`gave_up`/re-issues.
    counters: Option<WatchdogCounters>,
}

#[derive(Debug, Clone)]
struct WatchdogCounters {
    fired: Counter,
    gave_up: Counter,
    reissues: Counter,
    unreachable: Counter,
}

/// The outcome of one expiry poll: `reissue` goes back to the card,
/// `failed` must surface to the application as typed error completions —
/// the watchdog has exhausted its attempts and declares the destination
/// unreachable. Nothing is ever silently dropped.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Expiry {
    /// Messages to hand back for re-issue (deadline re-armed, backed off).
    pub reissue: Vec<MsgId>,
    /// Messages that hit `max_attempts`: complete these with an error.
    pub failed: Vec<MsgId>,
}

impl Watchdog {
    /// A watchdog with the given tuning.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            armed: BTreeMap::new(),
            fired: 0,
            gave_up: 0,
            counters: None,
        }
    }

    /// Mirror alarm activity into `reg` under the [`metrics`] ids, in
    /// addition to the public `fired`/`gave_up` fields.
    pub fn attach_metrics(&mut self, reg: &Registry) {
        self.counters = Some(WatchdogCounters {
            fired: reg.counter(metrics::FIRED),
            gave_up: reg.counter(metrics::GAVE_UP),
            reissues: reg.counter(metrics::REISSUES),
            unreachable: reg.counter(metrics::UNREACHABLE),
        });
    }

    /// Start (or restart) the clock for `msg`.
    pub fn arm(&mut self, msg: MsgId, now: SimTime) {
        self.armed.insert(
            msg,
            WatchEntry {
                deadline: now + self.cfg.timeout,
                alarms: 0,
            },
        );
    }

    /// Completion arrived: stop watching `msg`.
    pub fn disarm(&mut self, msg: &MsgId) {
        self.armed.remove(msg);
    }

    /// Messages still awaiting completion.
    pub fn outstanding(&self) -> usize {
        self.armed.len()
    }

    /// Earliest deadline among armed messages — the time to schedule the
    /// next wake-up for (None when nothing is armed).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.armed.values().map(|e| e.deadline).min()
    }

    /// Collect every message whose deadline has passed, re-arming each
    /// with exponentially backed-off deadlines. The caller re-issues
    /// `reissue`; ones past `max_attempts` land in `failed` and MUST be
    /// completed with a typed error — the escalation is bounded, never an
    /// infinite retry and never a silent drop.
    pub fn poll_expired(&mut self, now: SimTime) -> Expiry {
        let due: Vec<MsgId> = self
            .armed
            .iter()
            .filter(|(_, e)| e.deadline <= now)
            .map(|(&m, _)| m)
            .collect();
        let mut out = Expiry::default();
        for msg in due {
            let e = self.armed.get_mut(&msg).expect("just listed");
            e.alarms += 1;
            self.fired += 1;
            if let Some(c) = &self.counters {
                c.fired.incr();
            }
            if e.alarms >= self.cfg.max_attempts {
                self.armed.remove(&msg);
                self.gave_up += 1;
                if let Some(c) = &self.counters {
                    c.gave_up.incr();
                    c.unreachable.incr();
                }
                out.failed.push(msg);
                continue;
            }
            let shift = e.alarms.min(self.cfg.backoff_cap);
            e.deadline = now + SimDuration::from_ps(self.cfg.timeout.as_ps() << shift);
            if let Some(c) = &self.counters {
                c.reissues.incr();
            }
            out.reissue.push(msg);
        }
        out
    }

    /// [`Watchdog::poll_expired`] reduced to the re-issue list, for
    /// callers that track give-ups through the counters alone.
    pub fn expired(&mut self, now: SimTime) -> Vec<MsgId> {
        self.poll_expired(now).reissue
    }
}

/// Host-side cost constants.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Host CPU time per PUT call (descriptor build + doorbell).
    pub put_overhead: SimDuration,
    /// Descriptor-build share of `put_overhead`: the host cost of
    /// formatting one WQE into the send queue, paid per descriptor even
    /// when the doorbell is batched.
    pub desc_build: SimDuration,
    /// Doorbell share of `put_overhead`: the MMIO write that kicks the
    /// card. With doorbell batching one ring covers N descriptors, so
    /// this is paid once per batch instead of once per post. The split
    /// must satisfy `desc_build + doorbell_cost == put_overhead`, so a
    /// batch of one costs exactly the classic per-PUT overhead.
    pub doorbell_cost: SimDuration,
    /// First-time registration of a host buffer (pinning + HOST_V2P fill).
    pub reg_host: SimDuration,
    /// First-time registration/mapping of a GPU buffer ("buffer mapping
    /// consists in retrieving the peer-to-peer informations, then passing
    /// them down to the kernel driver and from there to the Nios II").
    pub reg_gpu: SimDuration,
    /// Cache hit in the internal mapping cache.
    pub reg_cache_hit: SimDuration,
    /// Cost of `cuPointerGetAttribute` when the PUT source kind is not
    /// given as a flag — "possibly expensive, at least on early CUDA 4
    /// releases" (§IV.A).
    pub pointer_query: SimDuration,
    /// Host CPU time to reap one completion event.
    pub completion_poll: SimDuration,
    /// Completion-watchdog tuning.
    pub watchdog: WatchdogConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            put_overhead: SimDuration::from_ns(1000),
            desc_build: SimDuration::from_ns(150),
            doorbell_cost: SimDuration::from_ns(850),
            reg_host: SimDuration::from_us(40),
            reg_gpu: SimDuration::from_us(120),
            reg_cache_hit: SimDuration::from_ns(200),
            pointer_query: SimDuration::from_us(3),
            completion_poll: SimDuration::from_ns(250),
            watchdog: WatchdogConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let d = DriverConfig::default();
        assert!(d.reg_gpu > d.reg_host, "GPU mapping costs more");
        assert!(d.reg_cache_hit < d.put_overhead);
        assert!(
            d.pointer_query > d.put_overhead,
            "the flag exists to skip this"
        );
        // The watchdog must sit far above the link RTO so link-level
        // recovery always gets to finish first.
        assert!(d.watchdog.timeout > SimDuration::from_ms(1));
        // Doorbell batching splits the classic per-PUT overhead in two;
        // a batch of one must cost exactly what an unbatched PUT did, or
        // every pre-batching timing figure silently shifts.
        assert_eq!(d.desc_build + d.doorbell_cost, d.put_overhead);
    }

    #[test]
    fn watchdog_arms_fires_and_backs_off() {
        use apenet_sim::SimTime;
        let msg = |seq| MsgId { src_rank: 0, seq };
        let cfg = WatchdogConfig {
            timeout: SimDuration::from_us(10),
            backoff_cap: 2,
            max_attempts: 4,
        };
        let mut wd = Watchdog::new(cfg);
        let t0 = SimTime::ZERO;
        wd.arm(msg(0), t0);
        wd.arm(msg(1), t0);
        assert_eq!(wd.outstanding(), 2);
        assert_eq!(wd.next_deadline(), Some(t0 + SimDuration::from_us(10)));

        // Completion before the deadline: no alarm ever fires.
        wd.disarm(&msg(1));
        assert!(wd.expired(t0 + SimDuration::from_us(9)).is_empty());
        assert_eq!(wd.fired, 0);

        // First alarm at the deadline; backoff doubles each time up to
        // the cap (10 << 1, << 2, << 2 ...).
        let t1 = t0 + SimDuration::from_us(10);
        assert_eq!(wd.expired(t1), vec![msg(0)]);
        assert_eq!(wd.fired, 1);
        assert_eq!(wd.next_deadline(), Some(t1 + SimDuration::from_us(20)));
        let t2 = t1 + SimDuration::from_us(20);
        assert_eq!(wd.expired(t2), vec![msg(0)]);
        assert_eq!(wd.next_deadline(), Some(t2 + SimDuration::from_us(40)));

        // Alarms 3 and 4: the 4th hits max_attempts and gives up.
        let t3 = t2 + SimDuration::from_us(40);
        assert_eq!(wd.expired(t3), vec![msg(0)]);
        let t4 = t3 + SimDuration::from_us(40);
        assert!(wd.expired(t4).is_empty(), "given up, not re-issued");
        assert_eq!(wd.gave_up, 1);
        assert_eq!(wd.outstanding(), 0);
        assert_eq!(wd.fired, 4);
    }

    #[test]
    fn watchdog_escalates_to_failure_within_bound() {
        use apenet_sim::SimTime;
        let msg = MsgId {
            src_rank: 3,
            seq: 9,
        };
        let cfg = WatchdogConfig::default();
        // Escalation bound with the defaults: alarms at timeout <<
        // min(k, cap), k = 0..max_attempts-1, summed.
        let mut bound = SimDuration::ZERO;
        for k in 0..cfg.max_attempts {
            bound += SimDuration::from_ps(cfg.timeout.as_ps() << k.min(cfg.backoff_cap));
        }
        let mut wd = Watchdog::new(cfg.clone());
        wd.arm(msg, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut failed = Vec::new();
        let mut polls = 0;
        while wd.outstanding() > 0 {
            now = wd.next_deadline().expect("armed implies a deadline");
            let ex = wd.poll_expired(now);
            failed.extend(ex.failed);
            polls += 1;
            assert!(polls <= cfg.max_attempts, "escalation must terminate");
        }
        // The message is handed back as failed exactly once, never
        // silently dropped, and within the closed-form bound.
        assert_eq!(failed, vec![msg]);
        assert_eq!(wd.gave_up, 1);
        assert!(now <= SimTime::ZERO + bound);
        // Nothing fires after give-up: the retry stream is finite.
        assert_eq!(wd.poll_expired(now + cfg.timeout), Expiry::default());
    }

    #[test]
    fn rearming_resets_the_clock() {
        use apenet_sim::SimTime;
        let msg = MsgId {
            src_rank: 2,
            seq: 7,
        };
        let mut wd = Watchdog::new(WatchdogConfig {
            timeout: SimDuration::from_us(5),
            backoff_cap: 1,
            max_attempts: 10,
        });
        let t0 = SimTime::ZERO;
        wd.arm(msg, t0);
        let t1 = t0 + SimDuration::from_us(5);
        assert_eq!(wd.expired(t1).len(), 1);
        // The owner re-issued and re-armed: alarms start over.
        wd.arm(msg, t1);
        assert_eq!(wd.next_deadline(), Some(t1 + SimDuration::from_us(5)));
        assert!(wd.expired(t1 + SimDuration::from_us(4)).is_empty());
    }

    #[test]
    fn attached_registry_mirrors_alarm_activity() {
        use apenet_sim::SimTime;
        let reg = Registry::new();
        let mut wd = Watchdog::new(WatchdogConfig {
            timeout: SimDuration::from_us(10),
            backoff_cap: 1,
            max_attempts: 2,
        });
        wd.attach_metrics(&reg);
        wd.arm(
            MsgId {
                src_rank: 1,
                seq: 0,
            },
            SimTime::ZERO,
        );

        // Alarm 1 re-issues; alarm 2 hits max_attempts and gives up.
        let t1 = SimTime::ZERO + SimDuration::from_us(10);
        assert_eq!(wd.expired(t1).len(), 1);
        let t2 = t1 + SimDuration::from_us(20);
        assert!(wd.expired(t2).is_empty());

        let snap = reg.counters();
        assert_eq!(snap.get(metrics::FIRED), wd.fired);
        assert_eq!(snap.get(metrics::GAVE_UP), wd.gave_up);
        assert_eq!(snap.get(metrics::REISSUES), 1);
        assert_eq!(wd.fired, 2);
    }
}
