//! Kernel-driver cost model.
//!
//! On the transmit side "host buffer transmission … is completely handled
//! by the kernel driver, which implements the message fragmentation and
//! pushes transaction descriptors" (§III.B). The driver costs below are
//! the host-CPU time each API call occupies — the LogP *overhead*
//! parameter that Fig. 10 plots.

use apenet_sim::SimDuration;

/// Host-side cost constants.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Host CPU time per PUT call (descriptor build + doorbell).
    pub put_overhead: SimDuration,
    /// First-time registration of a host buffer (pinning + HOST_V2P fill).
    pub reg_host: SimDuration,
    /// First-time registration/mapping of a GPU buffer ("buffer mapping
    /// consists in retrieving the peer-to-peer informations, then passing
    /// them down to the kernel driver and from there to the Nios II").
    pub reg_gpu: SimDuration,
    /// Cache hit in the internal mapping cache.
    pub reg_cache_hit: SimDuration,
    /// Cost of `cuPointerGetAttribute` when the PUT source kind is not
    /// given as a flag — "possibly expensive, at least on early CUDA 4
    /// releases" (§IV.A).
    pub pointer_query: SimDuration,
    /// Host CPU time to reap one completion event.
    pub completion_poll: SimDuration,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            put_overhead: SimDuration::from_ns(1000),
            reg_host: SimDuration::from_us(40),
            reg_gpu: SimDuration::from_us(120),
            reg_cache_hit: SimDuration::from_ns(200),
            pointer_query: SimDuration::from_us(3),
            completion_poll: SimDuration::from_ns(250),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let d = DriverConfig::default();
        assert!(d.reg_gpu > d.reg_host, "GPU mapping costs more");
        assert!(d.reg_cache_hit < d.put_overhead);
        assert!(
            d.pointer_query > d.put_overhead,
            "the flag exists to skip this"
        );
    }
}
