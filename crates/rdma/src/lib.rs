//! # apenet-rdma — the APEnet+ RDMA programming model
//!
//! "The APEnet+ architecture is designed around a simple Remote Direct
//! Memory Access (RDMA) programming model. The model has been extended
//! with the ability to read and write the GPU private memory … directly
//! over the PCIe bus" (§III.B).
//!
//! This crate is the *host-side* half of that model:
//!
//! * [`api`] — buffer registration (host and GPU buffers through UVA, with
//!   the internal mapping cache of §IV.A) and the `PUT` call with its
//!   compile-time source-kind flag;
//! * [`driver`] — the kernel-driver cost model (per-message overheads, the
//!   LogP *o* parameter of Fig. 10);
//! * [`staging`] — the P2P=OFF fallback: `cudaMemcpy` bounce-buffer
//!   staging with chunked pipelining for large messages;
//! * [`completion`] — completion-queue bookkeeping for PUT/delivery
//!   events;
//! * [`signal`] — `sq_sig_all=0` selective signaling and doorbell
//!   batching for the send queue.

pub mod api;
pub mod completion;
pub mod driver;
pub mod signal;
pub mod staging;

pub use api::{GetOutcome, PutOutcome, RdmaEndpoint, RdmaError, SrcHint};
pub use completion::CompletionQueue;
pub use driver::DriverConfig;
pub use signal::{SendQueue, SignalConfig};
