//! # apenet-obs — the observability plane
//!
//! The paper's evaluation is built on instrumentation: a PCIe bus
//! analyzer interposed on the Gen2 link (Fig. 3) and Nios II cycle
//! counters decomposing per-message latency (Fig. 4, Table 1). This
//! crate is the reproduction's equivalent — a measurement substrate
//! that every perf PR can use to prove where simulated nanoseconds go:
//!
//! * [`registry`] — a deterministic typed metrics registry (counters,
//!   gauges, [`apenet_sim::stats::LogHistogram`]-backed latency
//!   histograms, time-windowed bandwidth series) keyed by stable string
//!   ids and snapshotted to sorted JSON.
//! * [`breakdown`] — folds span-correlated [`apenet_sim::trace`]
//!   records into per-message phase decompositions (post → fetch →
//!   wire → delivery).
//! * [`perfetto`] — exports those spans as Chrome/Perfetto
//!   `trace_event` JSON keyed by simulated time — span slices plus
//!   counter tracks fed by the occupancy sampler — with a
//!   dependency-free JSON sanity parser and a nesting/counter
//!   validator used by CI.
//! * [`sampler`] — the `APENET_SAMPLE` grammar shared by the
//!   cluster-level occupancy sampler and its consumers.
//! * [`heatmap`] — deterministic ASCII congestion heatmaps (per-link
//!   utilization over time) rendered from sampled byte counters.
//! * [`gate`] — the perf-regression comparator: fresh `BENCH_*.json`
//!   vs. committed baselines with per-metric tolerances.
//!
//! Everything here is observation-only: sinks and registries never
//! schedule events, so metrics-on and metrics-off runs are
//! byte-identical (the golden-digest tests enforce this).

pub mod breakdown;
pub mod gate;
pub mod heatmap;
pub mod perfetto;
pub mod registry;
pub mod sampler;

pub use registry::{
    global, BandwidthSeries, Counter, CounterSnapshot, Gauge, Histogram, Registry, TimeSeries,
};
