//! Chrome/Perfetto `trace_event` JSON export of message spans.
//!
//! Produces the legacy `{"traceEvents": [...]}` format that both
//! `chrome://tracing` and <https://ui.perfetto.dev> load. Timestamps are
//! *simulated* microseconds; each source rank gets its own track (tid),
//! with one complete ("X") slice per message span and its monotonic
//! phase partition nested inside. Retransmit-carrying spans are marked
//! with instant ("i") events so injected-fault runs are visible at a
//! glance.
//!
//! The workspace is dependency-free, so this module also carries a
//! minimal hand-rolled JSON parser ([`json_sanity`]) and a nesting
//! validator ([`validate_nesting`]) that CI's trace-export smoke step
//! runs against the generated file.

use crate::breakdown::{self, SpanPhases};
use apenet_sim::trace::TraceRecord;
use std::fmt::Write as _;

/// One `trace_event`. Times are integer simulated picoseconds; JSON
/// serialization converts to the format's microsecond unit.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Slice/instant name.
    pub name: String,
    /// Phase: 'X' complete slice, 'i' instant, 'M' metadata,
    /// 'C' counter sample.
    pub ph: char,
    /// Start time in simulated ps.
    pub ts_ps: u64,
    /// Duration in ps ('X' only).
    pub dur_ps: u64,
    /// Process id (always 1: the simulation).
    pub pid: u32,
    /// Thread id — one track per source rank.
    pub tid: u64,
    /// `key: value` argument pairs (values pre-rendered as JSON).
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    fn end_ps(&self) -> u64 {
        self.ts_ps + self.dur_ps
    }
}

const PID: u32 = 1;

fn slice(name: String, tid: u64, start: u64, end: u64) -> TraceEvent {
    TraceEvent {
        name,
        ph: 'X',
        ts_ps: start,
        dur_ps: end.saturating_sub(start),
        pid: PID,
        tid,
        args: Vec::new(),
    }
}

/// Export span-correlated `records` as trace events. Spanless records
/// (bare interposer TLPs) are not exported — the analyzer report covers
/// those; this view is the per-message timeline.
pub fn export(records: &[TraceRecord]) -> Vec<TraceEvent> {
    let spans = breakdown::collect(records);
    let mut events = Vec::new();
    let mut ranks: Vec<u32> = spans.iter().map(|s| s.span.src_rank()).collect();
    ranks.sort_unstable();
    ranks.dedup();
    for rank in &ranks {
        events.push(TraceEvent {
            name: "thread_name".into(),
            ph: 'M',
            ts_ps: 0,
            dur_ps: 0,
            pid: PID,
            tid: *rank as u64 + 1,
            args: vec![("name".into(), format!("\"rank {rank} tx\""))],
        });
    }
    for sp in &spans {
        events.extend(span_events(sp));
    }
    events
}

fn span_events(sp: &SpanPhases) -> Vec<TraceEvent> {
    let tid = sp.span.src_rank() as u64 + 1;
    let [t0, t1, t2, t3] = sp.boundaries().map(|t| t.as_ps());
    let mut parent = slice(format!("msg {}", sp.span), tid, t0, t3.max(t0 + 1));
    parent.args = vec![
        ("len".into(), sp.msg_len.to_string()),
        ("frames".into(), sp.frames.to_string()),
        ("retransmits".into(), sp.retransmits.to_string()),
        ("fetch_bytes".into(), sp.fetch_bytes.to_string()),
    ];
    let mut out = vec![parent];
    // The phase partition: children tile [t0, t3] monotonically, so
    // they always nest inside the parent and never overlap each other.
    for (name, a, b) in [("tx-pipeline", t0, t1), ("link", t1, t2), ("rx", t2, t3)] {
        if b > a {
            out.push(slice(name.into(), tid, a, b));
        }
    }
    if sp.retransmits > 0 {
        out.push(TraceEvent {
            name: format!("retransmits x{}", sp.retransmits),
            ph: 'i',
            ts_ps: t1,
            dur_ps: 0,
            pid: PID,
            tid,
            args: Vec::new(),
        });
    }
    out
}

/// Build counter-track ('C') events from sampled time series. Each
/// `(id, points)` pair becomes one counter track named by the series id
/// (the occupancy sampler's stable metric ids), with one sample per
/// `(simulated ps, value)` observation. Counter tracks sit next to the
/// span tracks in the Perfetto UI, which is exactly the Fig. 3 view:
/// queue depth over the same timeline as the message slices.
pub fn counter_events(series: &[(String, Vec<(u64, u64)>)]) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for (id, points) in series {
        for &(ps, v) in points {
            events.push(TraceEvent {
                name: id.clone(),
                ph: 'C',
                ts_ps: ps,
                dur_ps: 0,
                pid: PID,
                tid: 0,
                args: vec![("value".into(), v.to_string())],
            });
        }
    }
    events
}

fn ts_us(ps: u64) -> String {
    // Exact: ps -> µs is a /1e6 scale; render with 6 fractional digits
    // so every distinct picosecond keeps a distinct, stable text form.
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Render events as a Chrome/Perfetto `trace_event` JSON document.
pub fn to_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {}, ",
            escape(&e.name),
            e.ph,
            ts_us(e.ts_ps)
        );
        if e.ph == 'X' {
            let _ = write!(out, "\"dur\": {}, ", ts_us(e.dur_ps));
        }
        if e.ph == 'i' {
            out.push_str("\"s\": \"t\", ");
        }
        let _ = write!(out, "\"pid\": {}, \"tid\": {}", e.pid, e.tid);
        if !e.args.is_empty() {
            out.push_str(", \"args\": {");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", escape(k), v);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Check that 'X' slices obey stack discipline per (pid, tid) — every
/// pair of slices on a track is either disjoint or properly contained —
/// and that 'C' counter samples are well-formed: each carries at least
/// one integer-valued arg, and per (pid, counter name) the samples are
/// sorted by non-decreasing timestamp (the trace_event format renders a
/// counter track from its samples in file order). Returns the number of
/// validated slices plus counter samples.
pub fn validate_nesting(events: &[TraceEvent]) -> Result<usize, String> {
    let mut tracks: std::collections::BTreeMap<(u32, u64), Vec<&TraceEvent>> =
        std::collections::BTreeMap::new();
    for e in events.iter().filter(|e| e.ph == 'X') {
        tracks.entry((e.pid, e.tid)).or_default().push(e);
    }
    let mut checked = 0;
    let mut counter_ts: std::collections::BTreeMap<(u32, &str), u64> =
        std::collections::BTreeMap::new();
    for e in events.iter().filter(|e| e.ph == 'C') {
        if e.args.is_empty() {
            return Err(format!("counter {:?} sample carries no value args", e.name));
        }
        for (k, v) in &e.args {
            if v.parse::<i64>().is_err() && v.parse::<f64>().is_err() {
                return Err(format!(
                    "counter {:?} arg {k:?} is not numeric: {v:?}",
                    e.name
                ));
            }
        }
        let last = counter_ts.entry((e.pid, e.name.as_str())).or_insert(0);
        if e.ts_ps < *last {
            return Err(format!(
                "counter {:?} samples go backwards: {} after {}",
                e.name, e.ts_ps, last
            ));
        }
        *last = e.ts_ps;
        checked += 1;
    }
    for ((pid, tid), mut evs) in tracks {
        // Chrome's stacking order: by start time, longer slices first.
        evs.sort_by(|a, b| a.ts_ps.cmp(&b.ts_ps).then(b.dur_ps.cmp(&a.dur_ps)));
        let mut stack: Vec<&TraceEvent> = Vec::new();
        for e in evs {
            while let Some(top) = stack.last() {
                if top.end_ps() <= e.ts_ps {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if e.end_ps() > top.end_ps() {
                    return Err(format!(
                        "track pid={pid} tid={tid}: slice {:?} [{}..{}] straddles the \
                         boundary of enclosing {:?} [{}..{}]",
                        e.name,
                        e.ts_ps,
                        e.end_ps(),
                        top.name,
                        top.ts_ps,
                        top.end_ps()
                    ));
                }
            }
            stack.push(e);
            checked += 1;
        }
    }
    Ok(checked)
}

/// Minimal recursive-descent JSON well-formedness check (the workspace
/// has no serde). Accepts exactly the RFC 8259 grammar; numbers are
/// validated syntactically, not parsed.
pub fn json_sanity(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {i}", i = *i)),
        None => Err("unexpected end of input".into()),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *i));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *i)),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *i)),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *i));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *i));
                            }
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *i)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *i)),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *i))
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let mut digits = 0;
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        let mut frac = 0;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        let mut exp = 0;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apenet_sim::trace::{kind, SpanId, TracePayload as P};
    use apenet_sim::SimTime;

    fn rec(at_ns: u64, k: &'static str, span: SpanId, payload: P) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_ps(at_ns * 1000),
            source: "card",
            kind: k,
            span: Some(span),
            payload,
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        let mut v = Vec::new();
        for (rank, base) in [(0u32, 0u64), (1, 500)] {
            for seq in 0..2u64 {
                let s = SpanId::from_msg(rank, seq);
                let t = base + seq * 200;
                v.push(rec(t + 10, kind::POST, s, P::Msg { len: 4096 }));
                v.push(rec(
                    t + 30,
                    kind::FRAME_TX,
                    s,
                    P::Frame {
                        seq,
                        wire: 4200,
                        retrans: false,
                    },
                ));
                v.push(rec(
                    t + 60,
                    kind::FRAME_RX,
                    s,
                    P::Frame {
                        seq,
                        wire: 4200,
                        retrans: false,
                    },
                ));
                v.push(rec(t + 80, kind::DELIVERED, s, P::Msg { len: 4096 }));
            }
        }
        v
    }

    #[test]
    fn export_nests_and_serializes() {
        let events = export(&sample_records());
        // 4 spans x (1 parent + 3 phases) + 2 thread_name metadata.
        assert_eq!(events.iter().filter(|e| e.ph == 'X').count(), 16);
        assert_eq!(events.iter().filter(|e| e.ph == 'M').count(), 2);
        let checked = validate_nesting(&events).expect("phases nest inside parents");
        assert_eq!(checked, 16);
        let json = to_json(&events);
        json_sanity(&json).expect("export is well-formed JSON");
        assert!(json.contains("\"msg r0#0\""));
        assert!(json.contains("\"tx-pipeline\""));
        // ts conversion: 10ns = 0.010000 us.
        assert!(json.contains("\"ts\": 0.010000"));
    }

    #[test]
    fn validator_rejects_straddling_slices() {
        let a = slice("a".into(), 1, 0, 100);
        let b = slice("b".into(), 1, 50, 150); // overlaps a's tail
        assert!(validate_nesting(&[a.clone(), b]).is_err());
        let c = slice("c".into(), 2, 50, 150); // different track: fine
        assert_eq!(validate_nesting(&[a, c]).unwrap(), 2);
    }

    #[test]
    fn counter_tracks_validate_and_serialize() {
        let series = vec![
            ("card0.tx_fifo".to_string(), vec![(0, 3), (2_000_000, 7)]),
            ("link.x+.util".to_string(), vec![(1_000_000, 450)]),
        ];
        let events = counter_events(&series);
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.ph == 'C'));
        let checked = validate_nesting(&events).expect("well-formed counters");
        assert_eq!(checked, 3);
        let json = to_json(&events);
        json_sanity(&json).expect("counter export is well-formed JSON");
        assert!(json.contains("\"card0.tx_fifo\""));
        assert!(json.contains("\"args\": {\"value\": 450}"));

        // Out-of-order samples on one counter are rejected...
        let mut bad = counter_events(&series);
        bad[0].ts_ps = 9_000_000;
        assert!(validate_nesting(&bad).is_err());
        // ...as are samples with no args or non-numeric args.
        let mut no_args = counter_events(&series);
        no_args[0].args.clear();
        assert!(validate_nesting(&no_args).is_err());
        let mut bad_arg = counter_events(&series);
        bad_arg[0].args[0].1 = "\"three\"".into();
        assert!(validate_nesting(&bad_arg).is_err());
    }

    #[test]
    fn json_sanity_accepts_and_rejects() {
        json_sanity("{}").unwrap();
        json_sanity("[1, 2.5, -3e4, \"x\\n\", true, null, {\"k\": []}]").unwrap();
        json_sanity("  {\"a\": {\"b\": [1]}}  ").unwrap();
        assert!(json_sanity("{").is_err());
        assert!(json_sanity("{\"a\": }").is_err());
        assert!(json_sanity("[1,]").is_err());
        assert!(json_sanity("1 2").is_err());
        assert!(json_sanity("\"unterminated").is_err());
        assert!(json_sanity("12.").is_err());
        assert!(
            json_sanity("{\"inf\": Infinity}").is_err(),
            "non-JSON floats rejected"
        );
    }

    #[test]
    fn instants_mark_retransmitting_spans() {
        let s = SpanId::from_msg(0, 0);
        let records = vec![
            rec(10, kind::POST, s, P::Msg { len: 64 }),
            rec(
                20,
                kind::FRAME_TX,
                s,
                P::Frame {
                    seq: 0,
                    wire: 100,
                    retrans: false,
                },
            ),
            rec(
                40,
                kind::FRAME_TX,
                s,
                P::Frame {
                    seq: 0,
                    wire: 100,
                    retrans: true,
                },
            ),
            rec(
                60,
                kind::FRAME_RX,
                s,
                P::Frame {
                    seq: 0,
                    wire: 100,
                    retrans: false,
                },
            ),
            rec(70, kind::DELIVERED, s, P::Msg { len: 64 }),
        ];
        let events = export(&records);
        let inst: Vec<&TraceEvent> = events.iter().filter(|e| e.ph == 'i').collect();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].name, "retransmits x1");
        json_sanity(&to_json(&events)).unwrap();
    }
}
