//! Sampling-period configuration for the occupancy sampler.
//!
//! The sampler itself lives in the assembly layer (`apenet-cluster`),
//! where the component state it reads is reachable; this module owns
//! the *policy* side — parsing the `APENET_SAMPLE` environment spec
//! into a period — so bins, tests and the cluster agree on one
//! grammar:
//!
//! * unset, empty, `0`, `off` — sampling disabled;
//! * `1`, `on` — enabled at the default period (2 µs of simulated time);
//! * `<N>us` / `<N>ns` — enabled with an explicit period;
//! * bare `<N>` (N ≥ 2) — enabled, period N µs.
//!
//! Sampling is driven *between* calendar events (see
//! `Sim::peek_next_at`), so any period — including one much finer than
//! the event spacing — observes state without perturbing schedules.

use apenet_sim::SimDuration;

/// Environment variable holding the sampling spec.
pub const SAMPLE_ENV: &str = "APENET_SAMPLE";

/// Default sampling period: 2 µs of simulated time — fine enough to
/// resolve the ≈4 µs pingpong round trips, coarse enough that a
/// millisecond-scale run stays in the hundreds of samples per series.
pub const DEFAULT_PERIOD: SimDuration = SimDuration::from_us(2);

/// Parse one sampling spec (the `APENET_SAMPLE` grammar above).
/// Returns `None` when sampling is disabled, `Some(period)` otherwise.
pub fn parse_sample_spec(spec: &str) -> Option<SimDuration> {
    let s = spec.trim();
    match s {
        "" | "0" | "off" => None,
        "1" | "on" => Some(DEFAULT_PERIOD),
        _ => {
            let (digits, unit_ps) = if let Some(n) = s.strip_suffix("us") {
                (n, 1_000_000)
            } else if let Some(n) = s.strip_suffix("ns") {
                (n, 1_000)
            } else {
                (s, 1_000_000)
            };
            let n: u64 = digits.trim().parse().ok()?;
            if n == 0 {
                return None;
            }
            Some(SimDuration::from_ps(n * unit_ps))
        }
    }
}

/// Read the sampling period from `APENET_SAMPLE`, if enabled.
pub fn sample_period_from_env() -> Option<SimDuration> {
    std::env::var(SAMPLE_ENV)
        .ok()
        .and_then(|s| parse_sample_spec(&s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar() {
        assert_eq!(parse_sample_spec(""), None);
        assert_eq!(parse_sample_spec("0"), None);
        assert_eq!(parse_sample_spec("off"), None);
        assert_eq!(parse_sample_spec("1"), Some(DEFAULT_PERIOD));
        assert_eq!(parse_sample_spec("on"), Some(DEFAULT_PERIOD));
        assert_eq!(parse_sample_spec("5us"), Some(SimDuration::from_us(5)));
        assert_eq!(parse_sample_spec("250ns"), Some(SimDuration::from_ns(250)));
        assert_eq!(parse_sample_spec("10"), Some(SimDuration::from_us(10)));
        assert_eq!(parse_sample_spec(" 3us "), Some(SimDuration::from_us(3)));
        assert_eq!(parse_sample_spec("0us"), None);
        assert_eq!(parse_sample_spec("banana"), None);
    }
}
